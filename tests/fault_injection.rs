//! Fault-injection acceptance for the DES engine: with seeded drops,
//! duplicates, and delays (reorders) on every fetch and fill message,
//! the gravity traversal must still complete — via idempotent duplicate
//! handling and retry-on-timeout — and produce results identical to the
//! fault-free run. In debug builds the cache audit also runs at every
//! phase boundary inside `run_iteration`, so these tests double as
//! audit coverage under adversarial delivery.

use paratreet_apps::gravity::GravityVisitor;
use paratreet_baselines::direct::rms_acc_error;
use paratreet_core::{CacheModel, Configuration, DistributedEngine, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::{CrashConfig, CrashPhase, CrashTrigger, FaultConfig, MachineSpec};

fn config() -> Configuration {
    Configuration { bucket_size: 8, n_subtrees: 16, n_partitions: 32, ..Default::default() }
}

fn faults(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        drop_p: 0.15,
        duplicate_p: 0.15,
        delay_p: 0.20,
        delay_s: 2e-3,
        retry_timeout_s: 5e-3,
        crash: None,
    }
}

/// A perfect network carrying exactly one scheduled crash of rank 1.
fn crash_only(trigger: CrashTrigger, restart: bool) -> FaultConfig {
    FaultConfig {
        seed: 1,
        drop_p: 0.0,
        duplicate_p: 0.0,
        delay_p: 0.0,
        delay_s: 2e-3,
        retry_timeout_s: 5e-3,
        crash: Some(CrashConfig { rank: 1, trigger, restart, restart_delay_s: 5e-3 }),
    }
}

fn run(
    ps: &[paratreet_particles::Particle],
    f: Option<FaultConfig>,
) -> paratreet_core::des_engine::IterationReport {
    let visitor = GravityVisitor::default();
    let mut engine = DistributedEngine::new(
        MachineSpec::test(4, 2),
        config(),
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    );
    if let Some(f) = f {
        engine = engine.with_faults(f);
    }
    engine.run_iteration(ps.to_vec())
}

#[test]
fn faulty_network_reaches_identical_results() {
    let ps = gen::clustered(1000, 4, 23, 1.0, 1.0);
    let clean = run(&ps, None);
    let faulty = run(&ps, Some(faults(7)));

    // The fault layer actually fired all three kinds on this seed...
    assert!(faulty.faults.dropped > 0, "no drops injected: {:?}", faulty.faults);
    assert!(faulty.faults.duplicated > 0, "no duplicates injected: {:?}", faulty.faults);
    assert!(faulty.faults.delayed > 0, "no delays injected: {:?}", faulty.faults);
    // ...dropped messages forced timeout retries...
    assert!(faulty.fetch_retries > 0, "drops must trigger re-requests");
    // ...and redundant fills were absorbed idempotently, never rejected.
    assert!(faulty.cache.fills_duplicate > 0, "duplicate fills must be detected");
    assert_eq!(faulty.fill_errors, 0, "faults reorder/duplicate but never corrupt");

    // Same pruning decisions, same exact work.
    assert_eq!(faulty.counts.leaf_interactions, clean.counts.leaf_interactions);
    assert_eq!(faulty.counts.node_interactions, clean.counts.node_interactions);
    // Same physics (forces differ only by FP summation order).
    let err = rms_acc_error(&faulty.particles, &clean.particles);
    assert!(err < 1e-9, "force mismatch under faults: {err}");

    // A perfect network injects nothing and never retries.
    assert_eq!(clean.faults.dropped + clean.faults.duplicated + clean.faults.delayed, 0);
    assert_eq!(clean.fetch_retries, 0);
    assert_eq!(clean.fill_errors, 0);
}

#[test]
fn faulty_runs_replay_deterministically() {
    let ps = gen::uniform_cube(600, 37, 1.0, 1.0);
    let a = run(&ps, Some(faults(11)));
    let b = run(&ps, Some(faults(11)));
    assert_eq!(a.makespan, b.makespan, "same seed must replay the same timeline");
    assert_eq!(a.comm.messages, b.comm.messages);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.fetch_retries, b.fetch_retries);
    assert_eq!(a.counts, b.counts);
}

#[test]
fn faults_cost_time_but_not_correctness_across_cache_models() {
    let ps = gen::clustered(800, 4, 31, 1.0, 1.0);
    for model in [CacheModel::WaitFree, CacheModel::XWrite] {
        let visitor = GravityVisitor::default();
        let clean = DistributedEngine::new(
            MachineSpec::test(3, 2),
            config(),
            model,
            TraversalKind::TopDown,
            &visitor,
        )
        .run_iteration(ps.clone());
        let faulty = DistributedEngine::new(
            MachineSpec::test(3, 2),
            config(),
            model,
            TraversalKind::TopDown,
            &visitor,
        )
        .with_faults(faults(3))
        .run_iteration(ps.clone());
        assert_eq!(faulty.counts, clean.counts, "{model:?}");
        let err = rms_acc_error(&faulty.particles, &clean.particles);
        assert!(err < 1e-9, "{model:?}: force mismatch under faults: {err}");
        // Lost and delayed messages can only stretch the timeline.
        assert!(faulty.makespan >= clean.makespan * 0.999, "{model:?}");
    }
}

// ---------------------------------------------------------------------------
// Crash-stop chaos suite: a rank dies mid-pipeline and the iteration
// must still finish with results *bit-identical* to the fault-free run
// (the engine applies visitors in canonical order after the simulation,
// so even FP summation order is preserved across recovery paths).
// ---------------------------------------------------------------------------

#[test]
fn crash_at_every_phase_is_bit_identical_to_clean_run() {
    let ps = gen::clustered(900, 4, 23, 1.0, 1.0);
    let clean = run(&ps, None);
    assert_eq!(clean.recovery.count, 0, "no crash configured, none recovered");

    for phase in [
        CrashPhase::Decomposition,
        CrashPhase::TreeBuild,
        CrashPhase::LeafSharing,
        CrashPhase::Traversal,
    ] {
        for restart in [true, false] {
            let rep = run(&ps, Some(crash_only(CrashTrigger::AtPhase(phase), restart)));
            let mode = if restart { "restart" } else { "re-shard" };
            assert_eq!(rep.recovery.count, 1, "{phase:?}/{mode}: crash must be recovered");
            assert_eq!(rep.recovery.phase_idx, u64::from(phase.index()), "{phase:?}/{mode}");
            assert_eq!(rep.recovery.restarted, u64::from(restart), "{phase:?}/{mode}");
            assert!(
                rep.recovery.completed_s >= rep.recovery.detected_s,
                "{phase:?}/{mode}: recovery cannot finish before detection"
            );
            assert!(
                rep.recovery.detected_s >= rep.recovery.crash_time_s,
                "{phase:?}/{mode}: detection follows the crash"
            );
            if restart {
                assert!(
                    rep.recovery.restored_bytes > 0,
                    "{phase:?}/{mode}: restart must read the checkpoint"
                );
            } else {
                assert!(
                    rep.recovery.resharded_subtrees > 0,
                    "{phase:?}/{mode}: a dead rank's subtrees must move"
                );
            }
            assert_eq!(rep.fill_errors, 0, "{phase:?}/{mode}: recovery never corrupts fills");
            // Placeholder re-visits differ when partitions move ranks,
            // but the *physics* work is exact.
            assert_eq!(
                rep.counts.node_interactions, clean.counts.node_interactions,
                "{phase:?}/{mode}: same exact node work"
            );
            assert_eq!(
                rep.counts.leaf_interactions, clean.counts.leaf_interactions,
                "{phase:?}/{mode}: same exact leaf work"
            );
            assert_eq!(
                rep.particles, clean.particles,
                "{phase:?}/{mode}: accelerations must be bit-identical"
            );
        }
    }
}

#[test]
fn mid_flight_crash_at_absolute_time_recovers() {
    let ps = gen::clustered(900, 4, 23, 1.0, 1.0);
    let clean = run(&ps, None);
    for restart in [true, false] {
        // A quarter of the clean makespan lands mid-pipeline regardless
        // of workload scale.
        let t = clean.makespan * 0.25;
        let rep = run(&ps, Some(crash_only(CrashTrigger::AtTime(t), restart)));
        assert_eq!(rep.recovery.count, 1);
        assert_eq!(rep.counts.node_interactions, clean.counts.node_interactions);
        assert_eq!(rep.counts.leaf_interactions, clean.counts.leaf_interactions);
        assert_eq!(rep.particles, clean.particles, "restart={restart}");
    }
}

#[test]
fn crash_combined_with_message_faults_is_still_exact() {
    let ps = gen::clustered(700, 4, 29, 1.0, 1.0);
    let clean = run(&ps, None);
    let mut f = faults(7);
    f.crash = Some(CrashConfig {
        rank: 2,
        trigger: CrashTrigger::AtPhase(CrashPhase::Traversal),
        restart: true,
        restart_delay_s: 5e-3,
    });
    let rep = run(&ps, Some(f));
    assert_eq!(rep.recovery.count, 1);
    assert!(rep.faults.dropped > 0, "message faults still fire alongside the crash");
    assert_eq!(rep.fill_errors, 0);
    assert_eq!(rep.counts, clean.counts);
    assert_eq!(rep.particles, clean.particles);
}

#[test]
fn crash_recovery_replays_deterministically() {
    let ps = gen::uniform_cube(600, 37, 1.0, 1.0);
    for restart in [true, false] {
        let f = crash_only(CrashTrigger::AtPhase(CrashPhase::LeafSharing), restart);
        let a = run(&ps, Some(f));
        let b = run(&ps, Some(f));
        assert_eq!(a.makespan, b.makespan, "same seed must replay the same timeline");
        assert_eq!(a.comm.messages, b.comm.messages);
        assert_eq!(a.comm.bytes, b.comm.bytes);
        assert_eq!(a.recovery, b.recovery, "recovery statistics must replay exactly");
        assert_eq!(a.counts, b.counts);
    }
}

#[test]
fn crash_recovery_traces_are_byte_identical() {
    use paratreet_telemetry::{export, Telemetry};
    let ps = gen::uniform_cube(500, 41, 1.0, 1.0);
    let visitor = GravityVisitor::default();
    let trace = |run_tag: u32| {
        let telemetry = Telemetry::virtual_time(1);
        let engine = DistributedEngine::new(
            MachineSpec::test(4, 2),
            config(),
            CacheModel::WaitFree,
            TraversalKind::TopDown,
            &visitor,
        )
        .with_faults(crash_only(CrashTrigger::AtPhase(CrashPhase::Traversal), true))
        .with_telemetry(telemetry.clone());
        let rep = engine.run_iteration(ps.clone());
        assert_eq!(rep.recovery.count, 1, "run {run_tag}");
        let path = std::env::temp_dir().join(format!("paratreet_chaos_trace_{run_tag}.json"));
        export::write_chrome_trace(&path, &telemetry.drain()).expect("trace write");
        let bytes = std::fs::read(&path).expect("trace read");
        let _ = std::fs::remove_file(&path);
        bytes
    };
    let (a, b) = (trace(0), trace(1));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same crash schedule must produce a byte-identical trace");
}

#[test]
fn knn_up_and_down_survives_traversal_crash() {
    use paratreet_apps::knn::KnnVisitor;
    let ps = gen::uniform_cube(400, 41, 1.0, 1.0);
    let visitor = KnnVisitor { k: 8 };
    let states = |f: Option<FaultConfig>| {
        let mut engine = DistributedEngine::new(
            MachineSpec::test(4, 2),
            config(),
            CacheModel::WaitFree,
            TraversalKind::UpAndDown,
            &visitor,
        );
        if let Some(f) = f {
            engine = engine.with_faults(f);
        }
        let (rep, states) = engine.run_iteration_states(ps.clone());
        // Per leaf key, the ascending neighbour lists of every particle.
        let mut out: Vec<(u64, Vec<Vec<u64>>)> = states
            .into_iter()
            .map(|(key, s)| {
                let lists = s
                    .heaps
                    .into_iter()
                    .map(|h| h.into_sorted().into_iter().map(|n| n.id).collect())
                    .collect();
                (key.raw(), lists)
            })
            .collect();
        out.sort();
        (rep, out)
    };
    let (_, clean) = states(None);
    for restart in [true, false] {
        let (rep, chaotic) =
            states(Some(crash_only(CrashTrigger::AtPhase(CrashPhase::Traversal), restart)));
        assert_eq!(rep.recovery.count, 1, "restart={restart}");
        assert_eq!(chaotic, clean, "restart={restart}: identical neighbour lists");
    }
}

#[test]
fn collision_detection_survives_tree_build_crash() {
    use paratreet_apps::collision::CollisionVisitor;
    use paratreet_particles::gen::DiskParams;
    let mut params = DiskParams::default();
    params.body_radius *= 5e4; // inflated radii: guaranteed collision pairs
    let ps = gen::keplerian_disk(600, 11, params);
    let visitor = CollisionVisitor { dt: 1e-3 };
    let states = |f: Option<FaultConfig>| {
        let mut engine = DistributedEngine::new(
            MachineSpec::test(4, 2),
            config(),
            CacheModel::WaitFree,
            TraversalKind::TopDown,
            &visitor,
        );
        if let Some(f) = f {
            engine = engine.with_faults(f);
        }
        let (rep, states) = engine.run_iteration_states(ps.clone());
        let mut out: Vec<_> = states.into_iter().map(|(k, s)| (k.raw(), s)).collect();
        out.sort_by_key(|(k, _)| *k);
        (rep, out)
    };
    let (_, clean) = states(None);
    assert!(
        clean.iter().any(|(_, events)| !events.is_empty()),
        "inflated radii must produce collision events"
    );
    for restart in [true, false] {
        let (rep, chaotic) =
            states(Some(crash_only(CrashTrigger::AtPhase(CrashPhase::TreeBuild), restart)));
        assert_eq!(rep.recovery.count, 1, "restart={restart}");
        assert_eq!(chaotic, clean, "restart={restart}: identical collision events");
    }
}
