//! A minimal 3-component vector.
//!
//! The physics kernels are bandwidth-bound; keeping the vector a plain
//! `#[repr(C)]` triple of `f64` keeps particle arrays dense and lets the
//! compiler vectorise the inner interaction loops.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-component `f64` vector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

/// The zero vector.
pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = ZERO;

    /// Builds a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// A vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Vec3 {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Squared Euclidean norm. Preferred in hot loops — no `sqrt`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn dist_sq(self, o: Vec3) -> f64 {
        (self - o).norm_sq()
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        self.dist_sq(o).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// The value of the largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// The index (0..3) of the largest component; ties break toward x.
    #[inline]
    pub fn argmax(self) -> usize {
        if self.x >= self.y && self.x >= self.z {
            0
        } else if self.y >= self.z {
            1
        } else {
            2
        }
    }

    /// Reads component `i` (0, 1, or 2).
    #[inline]
    pub fn component(self, i: usize) -> f64 {
        match i {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("vector component out of range: {i}"),
        }
    }

    /// Writes component `i` (0, 1, or 2).
    #[inline]
    pub fn set_component(&mut self, i: usize, v: f64) {
        match i {
            0 => self.x = v,
            1 => self.y = v,
            2 => self.z = v,
            _ => panic!("vector component out of range: {i}"),
        }
    }

    /// Unit vector in the same direction; the zero vector is returned
    /// unchanged rather than producing NaNs.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            self
        } else {
            self / n
        }
    }

    /// True when all components are finite (no NaN or infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        self.x *= s;
        self.y *= s;
        self.z *= s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        self.x /= s;
        self.y /= s;
        self.z /= s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("vector component out of range: {i}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> [f64; 3] {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.5, 0.25);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0, a + a);
        assert_eq!(a / 2.0 + a / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.dot(x), 1.0);
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dist(Vec3::ZERO), 5.0);
        assert_eq!(v.normalized().norm(), 1.0);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn component_access() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.component(0), 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v.component(2), 3.0);
        v.set_component(1, 9.0);
        assert_eq!(v.y, 9.0);
        assert_eq!(v.argmax(), 1);
        assert_eq!(Vec3::splat(2.0).argmax(), 0);
        assert_eq!(v.max_component(), 9.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, -3.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, -3.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
    }

    #[test]
    fn sum_folds_from_zero() {
        let total: Vec3 = (0..4).map(|i| Vec3::splat(i as f64)).sum();
        assert_eq!(total, Vec3::splat(6.0));
    }

    #[test]
    fn finite_detection() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    #[should_panic]
    fn component_out_of_range_panics() {
        Vec3::ZERO.component(3);
    }
}
