//! Property tests for the friends-of-friends finder: the full forest
//! pipeline (decompose → seam balance → ghost exchange → dual-tree
//! linking → cross-box union-find) must agree with the brute-force
//! O(n²) minimum-image reference on every small workload — including
//! halos that straddle box seams and wrap through periodic faces.

use paratreet_apps::fof::{brute_force_fof, link_forest, FofParams};
use paratreet_core::{
    decompose_forest, enforce_seam_balance, exchange_ghosts, Configuration, DomainSpec,
};
use paratreet_geometry::Vec3;
use paratreet_particles::Particle;
use paratreet_telemetry::Telemetry;
use paratreet_tree::{CountData, TreeType};
use proptest::prelude::*;

fn particles_in(extent: f64, max_n: usize) -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec((0.0..extent, 0.0..extent, 0.0..extent), 2..max_n).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y, z))| Particle::point_mass(i as u64, 1.0, Vec3::new(x, y, z)))
            .collect()
    })
}

/// Runs the full forest FoF pipeline.
fn forest_fof(
    ps: Vec<Particle>,
    spec: &DomainSpec,
    params: &FofParams,
) -> paratreet_apps::fof::FofCatalog {
    let config = Configuration {
        tree_type: TreeType::Octree,
        bucket_size: 8,
        n_subtrees: 8,
        n_partitions: 8,
        ..Default::default()
    };
    let forest = decompose_forest(ps, &config, spec);
    let mut trees = forest.build_trees::<CountData>(&config, false);
    enforce_seam_balance(
        &mut trees,
        &forest.boxes,
        &forest.routes,
        config.tree_type,
        config.bucket_size,
    );
    let layer = exchange_ghosts(&forest, &trees, params.link, &Telemetry::disabled());
    link_forest(&forest, &trees, &layer, params, config.tree_type, config.bucket_size)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn forest_fof_matches_brute_force(
        ps in particles_in(2.0, 120),
        link in 0.02f64..0.3,
        periodic in any::<bool>(),
        min_members in 2usize..6,
    ) {
        let spec = DomainSpec::tiled([2, 1, 1], 1.0, periodic);
        let params = FofParams { link, min_members };
        let period = spec.period();
        let wrapped: Vec<Particle> = ps
            .iter()
            .map(|p| Particle { pos: period.wrap(p.pos, Vec3::ZERO), ..*p })
            .collect();
        let cat = forest_fof(ps, &spec, &params);
        let truth = brute_force_fof(&wrapped, &period, &params);
        prop_assert_eq!(cat.n_links, truth.n_links, "spanning-link counts differ");
        prop_assert_eq!(cat.halos.len(), truth.halos.len(), "halo counts differ");
        for (a, b) in cat.halos.iter().zip(&truth.halos) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.members, &b.members, "membership differs for halo {}", a.id);
        }
    }

    #[test]
    fn periodic_seam_halos_match_brute_force(
        y in 0.1f64..0.9,
        z in 0.1f64..0.9,
        gap in 0.005f64..0.02,
        extra in particles_in(2.0, 40),
    ) {
        // A halo purpose-built to straddle the periodic x seam: chains of
        // particles hugging x = 0 and x = 2 that only connect through the
        // wrap-around image, plus random background.
        let mut ps: Vec<Particle> = Vec::new();
        for i in 0..6u64 {
            ps.push(Particle::point_mass(
                i,
                1.0,
                Vec3::new(0.001 + gap * i as f64, y, z),
            ));
            ps.push(Particle::point_mass(
                6 + i,
                1.0,
                Vec3::new(1.999 - gap * i as f64, y, z),
            ));
        }
        let base = ps.len() as u64;
        for (i, p) in extra.iter().enumerate() {
            ps.push(Particle { id: base + i as u64, ..*p });
        }
        let spec = DomainSpec::tiled([2, 1, 1], 1.0, true);
        let params = FofParams { link: 2.5 * gap, min_members: 4 };
        let period = spec.period();
        let wrapped: Vec<Particle> = ps
            .iter()
            .map(|p| Particle { pos: period.wrap(p.pos, Vec3::ZERO), ..*p })
            .collect();
        let cat = forest_fof(ps, &spec, &params);
        let truth = brute_force_fof(&wrapped, &period, &params);
        prop_assert_eq!(cat.halos.len(), truth.halos.len());
        for (a, b) in cat.halos.iter().zip(&truth.halos) {
            prop_assert_eq!(&a.members, &b.members);
        }
        // The seeded chain really is one halo through the seam.
        let seam = cat.halos.iter().find(|h| h.members.contains(&0));
        prop_assert!(seam.is_some(), "seam chain must survive the min-members cut");
        let seam = seam.unwrap();
        for i in 0..12u64 {
            prop_assert!(seam.members.contains(&i), "chain member {i} missing from seam halo");
        }
    }
}
