//! Concurrency tests for the sharded recorder: 8 real threads recording
//! spans and counters, with and without concurrent drains.

#![cfg(feature = "recorder")]

use paratreet_telemetry::{Span, Telemetry, Track};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

const THREADS: usize = 8;
const SPANS_PER_THREAD: usize = 2_000;

fn record_burst(t: &Telemetry, rank: u32) {
    for i in 0..SPANS_PER_THREAD {
        t.span_at(Track { rank, worker: 0 }, "work", i as f64, 1.0, Some(rank as u64));
        t.count("spans", 1);
    }
}

#[test]
fn eight_threads_lose_nothing() {
    let t = Telemetry::wall(THREADS);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for rank in 0..THREADS as u32 {
            let t = &t;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                record_burst(t, rank);
            });
        }
    });
    let trace = t.drain();
    assert_eq!(trace.spans.len(), THREADS * SPANS_PER_THREAD);
    assert_eq!(trace.counters["spans"], (THREADS * SPANS_PER_THREAD) as u64);

    // Per-rank spans keep their recorded order: each writer's starts
    // were monotone, and shard buffers preserve push order.
    for rank in 0..THREADS as u32 {
        let starts: Vec<f64> =
            trace.spans.iter().filter(|s| s.track.rank == rank).map(|s| s.start_us).collect();
        assert_eq!(starts.len(), SPANS_PER_THREAD);
        assert!(starts.windows(2).all(|w| w[0] < w[1]), "rank {rank} spans out of order");
    }
}

#[test]
fn concurrent_drains_partition_the_stream() {
    let t = Telemetry::wall(THREADS);
    let stop = AtomicBool::new(false);
    let mut drained: Vec<Span> = Vec::new();
    std::thread::scope(|s| {
        let mut writers = Vec::new();
        for rank in 0..THREADS as u32 {
            let t = &t;
            let stop = &stop;
            writers.push(s.spawn(move || {
                let mut n = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    t.span_at(Track { rank, worker: 0 }, "w", n as f64, 1.0, None);
                    n += 1;
                    if n >= SPANS_PER_THREAD {
                        break;
                    }
                }
                n
            }));
        }
        // Drain aggressively while writers run.
        let mut rounds = 0;
        while writers.iter().any(|w| !w.is_finished()) || rounds < 2 {
            drained.extend(t.drain().spans);
            rounds += 1;
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let written: usize = writers.into_iter().map(|w| w.join().unwrap()).sum();
        drained.extend(t.drain().spans);
        assert_eq!(drained.len(), written, "every span lands in exactly one drain");
    });

    // Even split across interleaved drains, each writer's spans stay in
    // order and complete.
    for rank in 0..THREADS as u32 {
        let starts: Vec<f64> =
            drained.iter().filter(|s| s.track.rank == rank).map(|s| s.start_us).collect();
        assert!(
            starts.windows(2).all(|w| w[0] < w[1]),
            "rank {rank} spans reordered across drains"
        );
        assert_eq!(starts.len(), SPANS_PER_THREAD);
    }
}

#[test]
fn nested_wall_spans_order_by_start() {
    // Span nesting: an outer wall_span encloses two inner ones. The
    // recorder stores completion order; sorting recovers start order
    // with the outer span first (Perfetto renders the containment).
    let t = Telemetry::wall(1);
    t.wall_span(0, "outer", None, || {
        t.wall_span(0, "inner a", None, || std::thread::sleep(std::time::Duration::from_millis(1)));
        t.wall_span(0, "inner b", None, || std::thread::sleep(std::time::Duration::from_millis(1)));
    });
    let mut trace = t.drain();
    trace.sort();
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
    assert_eq!(names, vec!["outer", "inner a", "inner b"]);
    let outer = trace.spans[0];
    for inner in &trace.spans[1..] {
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1.0);
    }
}
