//! Table I: relevant characteristics of the supercomputers used.
//!
//! These are the machine-model presets every scaling harness simulates.
//!
//! ```text
//! cargo run -p paratreet-bench --bin table1_machines
//! ```

use paratreet_runtime::MachineSpec;

fn main() {
    println!("TABLE I: Relevant characteristics of (simulated) supercomputers.\n");
    println!(
        "{:>10} {:>8} {:>10} {:>11} {:>12}",
        "Name", "Cores/N", "CPU Type", "Clock Freq", "Comm. Layer"
    );
    println!("{}", "-".repeat(56));
    for (name, cores, cpu, clock, comm) in MachineSpec::table1() {
        println!("{name:>10} {cores:>8} {cpu:>10} {:>10.2}G {comm:>12}", clock);
    }
    println!();
    println!("paper Table I:   Summit    42  POWER9     3.1 GHz   UCX");
    println!("                 Stampede2 48  Skylake    2.1 GHz   MPI");
    println!("                 Bridges2 128  EPYC 7742  2.25 GHz  Infiniband");
}
