//! Ablation: "number of nodes fetched per request" (§II-D-2).
//!
//! The fetch depth is one of ParaTreeT's performance hyperparameters: a
//! shallow fetch sends many small fills (latency-bound chatter), a deep
//! fetch ships subtree data the traversal may prune (wasted bytes).
//! This harness sweeps the depth and reports requests, bytes, insertion
//! work, and the iteration makespan on the machine model.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin ablate_fetch_depth -- \
//!     --particles 40000 --procs 16
//! ```

use paratreet_apps::gravity::GravityVisitor;
use paratreet_bench::{fmt_bytes, fmt_seconds, harness_telemetry, write_telemetry_outputs, Args};
use paratreet_core::{CacheModel, Configuration, DistributedEngine, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 30_000);
    let seed = args.get_u64("seed", 21);
    let procs = args.get_usize("procs", 16);

    let particles = gen::clustered(n, 6, seed, 1.0, 1.0);
    let visitor = GravityVisitor::default();

    println!("Ablation: fetch depth (levels shipped per fill), {n} clustered particles");
    println!("(Stampede2 model, {procs} processes x 24 workers)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "depth", "requests", "fills", "fill bytes", "makespan", "util"
    );
    println!("{}", "-".repeat(66));

    let telemetry = harness_telemetry(&args, true);
    let mut last_metrics = None;
    for depth in 1..=6u32 {
        let config = Configuration { fetch_depth: depth, bucket_size: 16, ..Default::default() };
        let _ = telemetry.drain(); // keep only the final depth's spans
        let engine = DistributedEngine::new(
            MachineSpec::stampede2_24(procs),
            config,
            CacheModel::WaitFree,
            TraversalKind::TopDown,
            &visitor,
        )
        .with_telemetry(telemetry.clone());
        let rep = engine.run_iteration(particles.clone());
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12} {:>9.1}%",
            depth,
            rep.cache.requests_sent,
            rep.cache.fills_inserted,
            fmt_bytes(rep.cache.bytes_received),
            fmt_seconds(rep.makespan),
            rep.utilization * 100.0
        );
        last_metrics = Some(rep.metrics);
    }
    write_telemetry_outputs(&args, &telemetry, last_metrics.as_ref());
    println!();
    println!("expected: requests fall steeply with depth while bytes grow;");
    println!("the makespan bottoms out at a moderate depth (the default is 3).");
}
