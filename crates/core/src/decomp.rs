//! The Partitions–Subtrees decomposition (§II-C).
//!
//! "Tree decompositions serve dual purposes in traditional n-body codes:
//! dividing work among processors, and acting as a distributed repository
//! of hierarchically organized data. Our model separates these concerns."
//!
//! [`decompose`] therefore produces two independent views of one particle
//! set:
//!
//! * **Subtrees** — pieces aligned with the *tree type*: each piece is a
//!   genuine node of the global tree (key + region), produced by
//!   repeatedly splitting the most populated piece by the tree's split
//!   rule. Subtrees own particles and build tree memory.
//! * **A [`Partitioner`]** — the *decomposition type*'s assignment of
//!   every particle to a Partition (work). SFC slices the Morton line
//!   uniformly in count; Oct aligns partitions with octree regions; Kd
//!   and LongestDim use binary median planes.
//!
//! Because the two views need not agree, a tree leaf's particles may land
//! in several Partitions; the *leaf sharing* step (in the engines) splits
//! exactly those buckets — never interior tree paths — which is the
//! model's communication saving.

use crate::config::{Configuration, DecompType, SfcCurve};
use paratreet_geometry::{Axis, BoundingBox, MortonKey, NodeKey, Vec3, ROOT_KEY};
use paratreet_particles::{Particle, ParticleVec};
use paratreet_tree::TreeType;

/// One Subtree piece: a node of the global tree plus its particles.
#[derive(Clone, Debug)]
pub struct SubtreePiece {
    /// The piece's node key in the global tree.
    pub key: NodeKey,
    /// The piece's spatial region (octant region or median-split slab).
    pub bbox: BoundingBox,
    /// Depth of `key` below the global root.
    pub depth: u32,
    /// The particles this Subtree owns.
    pub particles: Vec<Particle>,
}

/// Binary decision node of a plane-based partitioner. Children encode
/// either another node (`Node`) or a partition id (`Part`).
#[derive(Clone, Copy, Debug)]
pub enum PlaneChild {
    /// Index of a further split in the plane tree.
    Node(u32),
    /// Terminal partition id.
    Part(u32),
}

/// One median split plane.
#[derive(Clone, Copy, Debug)]
pub struct PlaneNode {
    /// Split axis.
    pub axis: Axis,
    /// Coordinates `< plane` go left, `>= plane` go right.
    pub plane: f64,
    /// Low-side child.
    pub lo: PlaneChild,
    /// High-side child.
    pub hi: PlaneChild,
}

/// Assigns particles to Partitions.
#[derive(Clone, Debug)]
pub enum Partitioner {
    /// Partition `i` covers Morton keys in `[splitters[i-1], splitters[i])`
    /// (with implicit 0 and ∞ at the ends). Used by SFC and Oct.
    KeyRanges {
        /// Ascending interior boundaries (`n_partitions - 1` of them).
        splitters: Vec<MortonKey>,
    },
    /// A binary tree of median planes. Used by Kd and LongestDim.
    Planes {
        /// Plane nodes; index 0 is the root (empty means 1 partition).
        nodes: Vec<PlaneNode>,
    },
}

impl Partitioner {
    /// The Partition owning particle `p` (whose `key` must be assigned).
    pub fn assign(&self, p: &Particle) -> u32 {
        match self {
            Partitioner::KeyRanges { splitters } => {
                splitters.partition_point(|s| *s <= p.key) as u32
            }
            Partitioner::Planes { nodes } => {
                if nodes.is_empty() {
                    return 0;
                }
                let mut cur = 0u32;
                loop {
                    let n = &nodes[cur as usize];
                    let side = if p.pos.component(n.axis.index()) < n.plane { n.lo } else { n.hi };
                    match side {
                        PlaneChild::Node(i) => cur = i,
                        PlaneChild::Part(id) => return id,
                    }
                }
            }
        }
    }
}

/// The full output of the decomposition phase.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The global root's region (a cube for octrees).
    pub universe: BoundingBox,
    /// Subtree pieces (≥ the configured minimum; tiles the universe).
    pub subtrees: Vec<SubtreePiece>,
    /// Particle → Partition assignment.
    pub partitioner: Partitioner,
    /// Number of Partitions the partitioner produces.
    pub n_partitions: usize,
}

/// Splits `piece` by `tree_type`'s rule, returning the child pieces
/// (empty octants are skipped). The piece's particles are consumed.
fn split_piece(mut piece: SubtreePiece, tree_type: TreeType) -> Vec<SubtreePiece> {
    let bits = tree_type.bits_per_level();
    match tree_type {
        TreeType::Octree => {
            let bbox = piece.bbox;
            piece.particles.sort_unstable_by_key(|p| bbox.octant_of(p.pos));
            let mut out = Vec::new();
            let mut rest = piece.particles;
            while !rest.is_empty() {
                let oct = bbox.octant_of(rest[0].pos);
                let split_at = rest.iter().take_while(|p| bbox.octant_of(p.pos) == oct).count();
                let tail = rest.split_off(split_at);
                out.push(SubtreePiece {
                    key: piece.key.child(oct, bits),
                    bbox: bbox.octant(oct),
                    depth: piece.depth + 1,
                    particles: rest,
                });
                rest = tail;
            }
            out
        }
        TreeType::BinaryOct => {
            let axis = tree_type.cycling_axis(piece.depth).expect("binary oct cycles axes");
            let plane = piece.bbox.center().component(axis.index());
            piece.particles.sort_unstable_by(|a, b| {
                a.pos
                    .component(axis.index())
                    .partial_cmp(&b.pos.component(axis.index()))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mid = piece.particles.partition_point(|p| p.pos.component(axis.index()) < plane);
            let hi_particles = piece.particles.split_off(mid);
            let (lo_box, hi_box) = piece.bbox.split_at(axis, plane);
            let mut out = Vec::new();
            if !piece.particles.is_empty() {
                out.push(SubtreePiece {
                    key: piece.key.child(0, bits),
                    bbox: lo_box,
                    depth: piece.depth + 1,
                    particles: piece.particles,
                });
            }
            if !hi_particles.is_empty() {
                out.push(SubtreePiece {
                    key: piece.key.child(1, bits),
                    bbox: hi_box,
                    depth: piece.depth + 1,
                    particles: hi_particles,
                });
            }
            out
        }
        TreeType::KdTree | TreeType::LongestDim => {
            let axis = match tree_type.cycling_axis(piece.depth) {
                Some(a) => a,
                None => piece.bbox.longest_axis(),
            };
            let mid = piece.particles.len() / 2;
            piece.particles.select_nth_unstable_by(mid, |a, b| {
                a.pos
                    .component(axis.index())
                    .partial_cmp(&b.pos.component(axis.index()))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let plane = piece.particles[mid].pos.component(axis.index());
            let hi_particles = piece.particles.split_off(mid);
            let (lo_box, hi_box) = piece.bbox.split_at(axis, plane);
            vec![
                SubtreePiece {
                    key: piece.key.child(0, bits),
                    bbox: lo_box,
                    depth: piece.depth + 1,
                    particles: piece.particles,
                },
                SubtreePiece {
                    key: piece.key.child(1, bits),
                    bbox: hi_box,
                    depth: piece.depth + 1,
                    particles: hi_particles,
                },
            ]
        }
    }
}

/// Splits the particle set into at least `min_pieces` Subtree pieces by
/// repeatedly splitting the most populated piece with the tree rule.
fn find_subtree_pieces(
    particles: Vec<Particle>,
    universe: BoundingBox,
    tree_type: TreeType,
    min_pieces: usize,
    bucket_size: usize,
) -> Vec<SubtreePiece> {
    let mut pieces = vec![SubtreePiece { key: ROOT_KEY, bbox: universe, depth: 0, particles }];
    while pieces.len() < min_pieces {
        // Split the most populated piece; stop if nothing is splittable.
        let (idx, _) = match pieces
            .iter()
            .enumerate()
            .filter(|(_, p)| p.particles.len() > bucket_size.max(1))
            .max_by_key(|(_, p)| p.particles.len())
        {
            Some((i, p)) => (i, p.particles.len()),
            None => break,
        };
        let piece = pieces.swap_remove(idx);
        let kids = split_piece(piece, tree_type);
        pieces.extend(kids);
    }
    // Deterministic order: by key (pieces form an antichain, so Morton
    // floors are disjoint and ordered).
    pieces.sort_by_key(|p| (p.depth, p.key.raw()));
    pieces
}

/// Builds the SFC partitioner: slice the Morton-sorted order into
/// `n_partitions` equal-count ranges.
fn sfc_partitioner(sorted: &[Particle], n_partitions: usize) -> Partitioner {
    let n = sorted.len();
    let mut splitters = Vec::with_capacity(n_partitions.saturating_sub(1));
    for j in 1..n_partitions {
        let idx = j * n / n_partitions;
        if idx < n {
            splitters.push(sorted[idx].key);
        }
    }
    splitters.dedup();
    Partitioner::KeyRanges { splitters }
}

/// Builds the Oct partitioner: decompose by octree rule into at least
/// `n_partitions` pieces and use their Morton ranges as key splitters —
/// partitions are octree regions, so load follows the spatial
/// distribution, not the particle count (the Fig. 13 imbalance).
fn oct_partitioner(
    sorted: &[Particle],
    universe: BoundingBox,
    n_partitions: usize,
    bucket_size: usize,
) -> (Partitioner, usize) {
    let pieces =
        find_subtree_pieces(sorted.to_vec(), universe, TreeType::Octree, n_partitions, bucket_size);
    let mut floors: Vec<MortonKey> = pieces.iter().map(|p| p.key.morton_range(21).0).collect();
    floors.sort_unstable();
    let count = floors.len();
    let splitters = floors.split_off(1);
    (Partitioner::KeyRanges { splitters }, count)
}

/// Recursively builds a plane-based partitioner over `parts` partitions,
/// splitting particle counts proportionally. Returns the child handle
/// for this range and appends plane nodes to `nodes`.
fn build_planes(
    particles: &mut [Particle],
    bbox: BoundingBox,
    depth: u32,
    parts: u32,
    next_part: &mut u32,
    nodes: &mut Vec<PlaneNode>,
    tree_type: TreeType,
) -> PlaneChild {
    if parts <= 1 {
        let id = *next_part;
        *next_part += 1;
        return PlaneChild::Part(id);
    }
    let axis = match tree_type.cycling_axis(depth) {
        Some(a) => a,
        None => bbox.longest_axis(),
    };
    let lo_parts = parts / 2;
    let mid = particles.len() * lo_parts as usize / parts as usize;
    let plane = if particles.is_empty() {
        // Degenerate range: split space at the box centre so the plane
        // tree stays well-formed and partition ids stay dense.
        bbox.center().component(axis.index())
    } else {
        let sel = mid.min(particles.len() - 1);
        particles.select_nth_unstable_by(sel, |a, b| {
            a.pos
                .component(axis.index())
                .partial_cmp(&b.pos.component(axis.index()))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        particles[sel].pos.component(axis.index())
    };
    let (lo_box, hi_box) = bbox.split_at(axis, plane);
    let my_index = nodes.len() as u32;
    nodes.push(PlaneNode {
        axis,
        plane,
        lo: PlaneChild::Part(u32::MAX),
        hi: PlaneChild::Part(u32::MAX),
    });
    let (lo_slice, hi_slice) = particles.split_at_mut(mid);
    let lo = build_planes(lo_slice, lo_box, depth + 1, lo_parts, next_part, nodes, tree_type);
    let hi =
        build_planes(hi_slice, hi_box, depth + 1, parts - lo_parts, next_part, nodes, tree_type);
    nodes[my_index as usize].lo = lo;
    nodes[my_index as usize].hi = hi;
    PlaneChild::Node(my_index)
}

/// Runs the decomposition phase: computes the universe, assigns Morton
/// keys, sorts into SFC order, finds both sets of splitters, and returns
/// the Subtree pieces plus the Partition assignment function.
pub fn decompose(particles: Vec<Particle>, config: &Configuration) -> Decomposition {
    let universe = universe_for(&particles, config, 0.0);
    decompose_within(particles, config, universe)
}

/// The universe box [`decompose`] would use for `particles`, inflated by
/// `pad` × the largest extent on every side before cubing. `pad = 0`
/// reproduces [`decompose`]'s box exactly; incremental maintenance seeds
/// with a positive pad so slowly drifting hull particles stay inside the
/// maintained root regions across iterations.
pub fn universe_for(particles: &[Particle], config: &Configuration, pad: f64) -> BoundingBox {
    let mut tight = particles.bounding_box().padded(1e-9);
    if pad > 0.0 && !tight.is_empty() {
        let extent = tight.hi - tight.lo;
        let margin = pad * extent.x.max(extent.y).max(extent.z);
        tight = tight.padded(margin);
    }
    let universe = match config.tree_type {
        TreeType::Octree | TreeType::BinaryOct => tight.bounding_cube(),
        _ => tight,
    };
    if universe.is_empty() {
        BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0))
    } else {
        universe
    }
}

/// Like [`decompose`] but over an explicitly supplied universe box
/// (see [`universe_for`]). The box must contain every particle.
pub fn decompose_within(
    mut particles: Vec<Particle>,
    config: &Configuration,
    universe: BoundingBox,
) -> Decomposition {
    // Key particles along the configured curve. The Hilbert curve only
    // applies to SFC decomposition — octree decomposition derives its
    // splitters from Morton digit structure.
    if config.sfc == SfcCurve::Hilbert && config.decomp_type == DecompType::Sfc {
        for p in particles.iter_mut() {
            p.key = paratreet_geometry::hilbert_key(p.pos, &universe);
        }
        particles.sort_by_sfc_key();
    } else {
        particles.assign_keys(&universe);
        particles.sort_by_sfc_key();
    }

    let (partitioner, n_partitions) = match config.decomp_type {
        DecompType::Sfc => (sfc_partitioner(&particles, config.n_partitions), config.n_partitions),
        DecompType::Oct => {
            oct_partitioner(&particles, universe, config.n_partitions, config.bucket_size)
        }
        DecompType::Kd | DecompType::LongestDim => {
            let rule = if config.decomp_type == DecompType::Kd {
                TreeType::KdTree
            } else {
                TreeType::LongestDim
            };
            let mut nodes = Vec::new();
            let mut next = 0u32;
            let mut scratch = particles.clone();
            build_planes(
                &mut scratch,
                universe,
                0,
                config.n_partitions as u32,
                &mut next,
                &mut nodes,
                rule,
            );
            (Partitioner::Planes { nodes }, next as usize)
        }
    };

    let mut subtrees = find_subtree_pieces(
        particles,
        universe,
        config.tree_type,
        config.n_subtrees,
        config.bucket_size,
    );
    // Order pieces along the same curve the Partitions use, so
    // contiguous blocks of Subtrees and contiguous blocks of Partitions
    // land on the same ranks (the locality that makes leaf sharing and
    // traversal mostly rank-local).
    if config.sfc == SfcCurve::Hilbert && config.decomp_type == DecompType::Sfc {
        subtrees.sort_by_key(|p| paratreet_geometry::hilbert_key(p.bbox.center(), &universe));
    }

    Decomposition { universe, subtrees, partitioner, n_partitions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_particles::gen;

    fn config(decomp: DecompType, tree: TreeType) -> Configuration {
        Configuration {
            decomp_type: decomp,
            tree_type: tree,
            n_subtrees: 8,
            n_partitions: 6,
            bucket_size: 8,
            ..Default::default()
        }
    }

    fn total_subtree_particles(d: &Decomposition) -> usize {
        d.subtrees.iter().map(|s| s.particles.len()).sum()
    }

    #[test]
    fn subtree_pieces_conserve_particles_and_tile() {
        for tree in [TreeType::Octree, TreeType::KdTree, TreeType::LongestDim] {
            let ps = gen::uniform_cube(1000, 3, 1.0, 1.0);
            let d = decompose(ps, &config(DecompType::Sfc, tree));
            assert_eq!(total_subtree_particles(&d), 1000, "{tree:?}");
            assert!(d.subtrees.len() >= 8, "{tree:?}");
            // Pieces form an antichain: no piece's key is an ancestor of
            // another's.
            let bits = tree.bits_per_level();
            for a in &d.subtrees {
                for b in &d.subtrees {
                    if a.key != b.key {
                        assert!(!a.key.is_ancestor_of(b.key, bits));
                    }
                }
                // Every particle is inside its piece's region.
                for p in &a.particles {
                    assert!(a.bbox.padded(1e-12).contains(p.pos));
                }
            }
        }
    }

    #[test]
    fn sfc_partitions_are_balanced() {
        let ps = gen::clustered(1200, 4, 9, 1.0, 1.0);
        let d = decompose(ps.clone(), &config(DecompType::Sfc, TreeType::Octree));
        let mut counts = vec![0usize; d.n_partitions];
        for s in &d.subtrees {
            for p in &s.particles {
                counts[d.partitioner.assign(p) as usize] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), 1200);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // SFC slices are uniform in count up to key ties.
        assert!(max - min <= 1200 / 6 / 2, "counts {counts:?}");
    }

    #[test]
    fn oct_partitions_follow_space_not_count() {
        // A clustered set under Oct decomposition yields imbalanced
        // partitions — that is the Fig. 13 effect the paper describes.
        let ps = gen::clustered(1200, 2, 5, 1.0, 1.0);
        let d = decompose(ps, &config(DecompType::Oct, TreeType::Octree));
        let mut counts = vec![0usize; d.n_partitions];
        for s in &d.subtrees {
            for p in &s.particles {
                counts[d.partitioner.assign(p) as usize] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), 1200);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > 2 * (min + 1), "expected imbalance, got {counts:?}");
    }

    #[test]
    fn kd_partitions_are_balanced_even_when_clustered() {
        let ps = gen::clustered(1024, 3, 7, 1.0, 1.0);
        let d = decompose(ps, &config(DecompType::Kd, TreeType::KdTree));
        let mut counts = vec![0usize; d.n_partitions];
        for s in &d.subtrees {
            for p in &s.particles {
                counts[d.partitioner.assign(p) as usize] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), 1024);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1024 / 6, "counts {counts:?}");
    }

    #[test]
    fn partition_ids_are_dense() {
        for decomp in [DecompType::Sfc, DecompType::Oct, DecompType::Kd, DecompType::LongestDim] {
            let ps = gen::uniform_cube(600, 11, 1.0, 1.0);
            let d = decompose(ps, &config(decomp, TreeType::Octree));
            let mut seen = vec![false; d.n_partitions];
            for s in &d.subtrees {
                for p in &s.particles {
                    let id = d.partitioner.assign(p) as usize;
                    assert!(id < d.n_partitions, "{decomp:?}: id {id}");
                    seen[id] = true;
                }
            }
            let used = seen.iter().filter(|&&b| b).count();
            assert!(used >= d.n_partitions / 2, "{decomp:?}: only {used} partitions used");
        }
    }

    #[test]
    fn empty_input_decomposes() {
        let d = decompose(vec![], &config(DecompType::Sfc, TreeType::Octree));
        assert_eq!(d.subtrees.len(), 1);
        assert!(d.subtrees[0].particles.is_empty());
    }

    #[test]
    fn single_particle_decomposes() {
        let ps = gen::uniform_cube(1, 1, 1.0, 1.0);
        let d = decompose(ps, &config(DecompType::Kd, TreeType::KdTree));
        assert_eq!(total_subtree_particles(&d), 1);
    }

    #[test]
    fn disk_longest_dim_slices_the_plane() {
        // A thin disk decomposed by LongestDim should never split along z.
        let ps = gen::keplerian_disk(800, 3, gen::DiskParams::default());
        let d = decompose(ps, &config(DecompType::LongestDim, TreeType::LongestDim));
        if let Partitioner::Planes { nodes } = &d.partitioner {
            assert!(!nodes.is_empty());
            for n in nodes {
                assert_ne!(n.axis, Axis::Z, "disk should split in-plane");
            }
        } else {
            panic!("longest-dim uses planes");
        }
    }
}
