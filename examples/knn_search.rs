//! k-nearest-neighbour search with the up-and-down traversal, checked
//! against brute force — the intro's second headline workload.
//!
//! ```text
//! cargo run --release --example knn_search -- [n] [k]
//! ```

use paratreet::core_api::{Configuration, TraversalKind};
use paratreet_apps::knn::knn_search;
use paratreet_particles::gen;
use paratreet_tree::TreeType;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    let particles = gen::clustered(n, 5, 11, 1.0, 1.0);

    // k-d trees suit kNN: children uniform in particle count (§I).
    let config = Configuration {
        tree_type: TreeType::KdTree,
        bucket_size: 16,
        n_subtrees: 8,
        n_partitions: 8,
        ..Default::default()
    };

    let t0 = Instant::now();
    let neighbors = knn_search(particles.clone(), k, config, TraversalKind::UpAndDown);
    let tree_time = t0.elapsed();

    // Validate a sample against brute force.
    let t0 = Instant::now();
    let mut checked = 0;
    let mut correct = 0;
    for p in particles.iter().step_by((n / 64).max(1)) {
        let mut dists: Vec<(f64, u64)> = particles
            .iter()
            .filter(|q| q.id != p.id)
            .map(|q| (q.pos.dist_sq(p.pos), q.id))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let brute: Vec<u64> = dists.into_iter().take(k).map(|(_, id)| id).collect();
        let got: Vec<u64> = neighbors[&p.id].iter().map(|nb| nb.id).collect();
        checked += 1;
        if got == brute {
            correct += 1;
        }
    }
    let brute_time = t0.elapsed();

    println!("kNN over {n} clustered particles, k = {k} (k-d tree, up-and-down traversal)");
    println!("tree search (all particles):   {tree_time:?}");
    println!("brute force ({checked} sampled):      {brute_time:?}");
    println!("sample agreement: {correct}/{checked}");

    // Show one query's neighbours.
    let q = &particles[0];
    println!("\nparticle {} at {:?}:", q.id, q.pos);
    for nb in neighbors[&q.id].iter().take(5) {
        println!("  neighbour {:>6}  dist {:.5}", nb.id, nb.dist_sq.sqrt());
    }
    assert_eq!(correct, checked, "tree kNN must match brute force exactly");
}
