//! Offline stand-in for the `serde` crate.
//!
//! Marker traits plus no-op derive macros. The workspace only tags POD
//! types as serde-compatible for downstream tooling; all real wire
//! formats are hand-rolled (`particles::io`, `cache::wire`), so no
//! serializer machinery is needed.

/// Marker: type is serde-serialisable.
pub trait Serialize {}

/// Marker: type is serde-deserialisable.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
