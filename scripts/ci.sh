#!/usr/bin/env bash
# Network-free CI gate: the workspace vendors all dependencies as local
# shims (see shims/), so every step below runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo build --workspace --no-default-features (telemetry off) =="
cargo build --workspace --no-default-features

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== fig9 smoke (--json) =="
cargo run --release -q -p paratreet-bench --bin fig9_time_profile -- \
    --particles 2000 --procs 2 --bins 8 --json true > /dev/null

echo "== chaos smoke (rank crash mid-traversal recovers) =="
chaos_metrics=$(mktemp /tmp/paratreet-chaos-XXXXXX.json)
trap 'rm -f "$chaos_metrics"' EXIT
cargo run --release -q -- gravity --particles 3000 --engine machine --ranks 4 \
    --crash-rank 1 --crash-phase traversal --crash-restart true \
    --metrics-out "$chaos_metrics" > /dev/null
grep -q '"recovery.count":1' "$chaos_metrics" ||
    { echo "chaos smoke: no recovery recorded in $chaos_metrics"; exit 1; }
grep -q '"fault.crash.count":1' "$chaos_metrics" ||
    { echo "chaos smoke: crash not counted in $chaos_metrics"; exit 1; }
grep -q '"recovery.restored_bytes":[1-9]' "$chaos_metrics" ||
    { echo "chaos smoke: checkpoint restore read zero bytes"; exit 1; }

echo "== incremental smoke (multi-iteration maintained tree) =="
inc_metrics=$(mktemp /tmp/paratreet-inc-XXXXXX.json)
trap 'rm -f "$chaos_metrics" "$inc_metrics"' EXIT
cargo run --release -q -- gravity --particles 3000 --engine machine --ranks 4 \
    --iterations 3 --incremental true \
    --metrics-out "$inc_metrics" > /dev/null
grep -q '"tree.update.steps":[1-9]' "$inc_metrics" ||
    { echo "incremental smoke: no maintained steps in $inc_metrics"; exit 1; }
grep -q '"tree.update.patched":[1-9]' "$inc_metrics" ||
    { echo "incremental smoke: no buckets patched in $inc_metrics"; exit 1; }
grep -q '"tree.update.moved":[1-9]' "$inc_metrics" ||
    { echo "incremental smoke: drift moved no particles in $inc_metrics"; exit 1; }

echo "== incremental disk smoke (batched escapees, no drift rebuilds) =="
disk_metrics=$(mktemp /tmp/paratreet-disk-XXXXXX.json)
trap 'rm -f "$chaos_metrics" "$inc_metrics" "$disk_metrics"' EXIT
cargo run --release -q -- gravity --particles 3000 --engine machine --ranks 4 \
    --iterations 4 --incremental true --dist disk \
    --metrics-out "$disk_metrics" > /dev/null
grep -q '"tree.update.batches":[1-9]' "$disk_metrics" ||
    { echo "disk smoke: no grouped insert batches applied in $disk_metrics"; exit 1; }
# The disk-churn regression: orbital shear once forced dozens of drift
# rebuilds per run. Batched sieve-down absorbs the escapees instead, so
# a short maintained disk run must trigger no rebuilds at all.
grep -q '"tree.update.full_rebuilds":0' "$disk_metrics" ||
    { echo "disk smoke: maintained disk run fell back to full rebuilds"; exit 1; }
grep -q '"tree.update.subtree_rebuilds":0' "$disk_metrics" ||
    { echo "disk smoke: drift rebuilds not bounded in $disk_metrics"; exit 1; }
grep -q '"tree.update.update_errors":0' "$disk_metrics" ||
    { echo "disk smoke: structured update errors recorded in $disk_metrics"; exit 1; }

echo "== serve smoke (live writer + reader pool, latency histograms) =="
serve_metrics=$(mktemp /tmp/paratreet-serve-XXXXXX.json)
trap 'rm -f "$chaos_metrics" "$inc_metrics" "$disk_metrics" "$serve_metrics"' EXIT
cargo run --release -q -- serve-bench --particles 3000 --clients 40 \
    --queries 25 --serve-workers 2 --threads 2 \
    --metrics-out "$serve_metrics" > /dev/null
grep -q '"serve.queries.completed":1000' "$serve_metrics" ||
    { echo "serve smoke: not every query completed in $serve_metrics"; exit 1; }
grep -q '"serve.latency.knn.p99":[1-9]' "$serve_metrics" ||
    { echo "serve smoke: no kNN p99 latency recorded in $serve_metrics"; exit 1; }
grep -q '"serve.snapshots.published":[1-9]' "$serve_metrics" ||
    { echo "serve smoke: writer published no snapshots in $serve_metrics"; exit 1; }

echo "== overload smoke (tiny capacity, tight deadlines, injected worker panic) =="
overload_metrics=$(mktemp /tmp/paratreet-overload-XXXXXX.json)
trap 'rm -f "$chaos_metrics" "$inc_metrics" "$disk_metrics" "$serve_metrics" "$overload_metrics"' EXIT
# One worker (deterministic batch numbering for the fail point), a tiny
# queue, 1ms deadlines, and a panic injected at the 3rd batch: the run
# must still exit 0 — overload and faults are answered, never fatal.
cargo run --release -q -- serve-bench --particles 3000 --clients 40 \
    --queries 25 --serve-workers 1 --threads 2 --queue 8 --batch 32 \
    --admission shed --deadline-ms 1 --inject-worker-panic 3 \
    --metrics-out "$overload_metrics" > /dev/null
grep -q '"serve.deadline_exceeded":[1-9]' "$overload_metrics" ||
    { echo "overload smoke: no deadline expiries recorded in $overload_metrics"; exit 1; }
grep -q '"serve.worker.panics":[1-9]' "$overload_metrics" ||
    { echo "overload smoke: injected panic not counted in $overload_metrics"; exit 1; }
grep -q '"serve.worker.respawns":[1-9]' "$overload_metrics" ||
    { echo "overload smoke: supervisor respawned no worker in $overload_metrics"; exit 1; }

echo "== forest smoke (tiled FoF over DES ghost exchange) =="
forest_metrics=$(mktemp /tmp/paratreet-forest-XXXXXX.json)
trap 'rm -f "$chaos_metrics" "$inc_metrics" "$disk_metrics" "$serve_metrics" "$overload_metrics" "$forest_metrics"' EXIT
# Four periodic boxes on two DES ranks: the halo catalog must be
# non-empty and the ghost layer must actually cross the seams — both
# as materialized particles and as priced bytes on the DES NIC.
cargo run --release -q -- fof --particles 6000 --tiles 2x2x1 \
    --engine machine --ranks 2 \
    --metrics-out "$forest_metrics" > /dev/null
grep -q '"fof.halos":[1-9]' "$forest_metrics" ||
    { echo "forest smoke: no halos found in $forest_metrics"; exit 1; }
grep -q '"ghost.particles":[1-9]' "$forest_metrics" ||
    { echo "forest smoke: ghost layer exchanged no particles"; exit 1; }
grep -q '"ghost.bytes":[1-9]' "$forest_metrics" ||
    { echo "forest smoke: ghost layer carried zero bytes"; exit 1; }
grep -q '"ghost.des.comm.bytes":[1-9]' "$forest_metrics" ||
    { echo "forest smoke: DES exchange priced zero comm bytes"; exit 1; }

echo "== analyze smoke (traced serve run -> paratreet-analyze --check) =="
obs_dir=$(mktemp -d /tmp/paratreet-obs-XXXXXX)
trap 'rm -f "$chaos_metrics" "$inc_metrics" "$disk_metrics" "$serve_metrics" "$overload_metrics" "$forest_metrics"; rm -rf "$obs_dir"' EXIT
cargo run --release -q -- serve-bench --particles 3000 --clients 40 \
    --queries 25 --serve-workers 2 --threads 2 \
    --trace-out "$obs_dir/trace.json" --metrics-out "$obs_dir/metrics.json" \
    --timeseries-out "$obs_dir/flight.json" > /dev/null
# --check enforces the observability invariants: a nonzero critical
# path, a busy utilization row for every worker track, and a p999
# exemplar that resolves to a complete request span chain.
cargo run --release -q -p paratreet-analyze --bin paratreet-analyze -- \
    --trace "$obs_dir/trace.json" --metrics "$obs_dir/metrics.json" \
    --timeseries "$obs_dir/flight.json" --check \
    --json-out "$obs_dir/report.json" > "$obs_dir/report.txt"
grep -q 'critical path' "$obs_dir/report.txt" ||
    { echo "analyze smoke: no critical path section"; exit 1; }
grep -q '"utilization"' "$obs_dir/report.json" ||
    { echo "analyze smoke: no utilization profile in the JSON report"; exit 1; }
grep -q '"complete":true' "$obs_dir/report.json" ||
    { echo "analyze smoke: p999 exemplar chain incomplete"; exit 1; }

echo "CI green."
