//! The request/fill wire protocol (Steps 1–2 of Fig. 2).
//!
//! A *fill* ships "the requested node and a user-specified number of its
//! descendants, along with particles for any leaves" as one collapsed
//! byte array. The receiver converts it back into [`CacheNode`] objects
//! and wires parent/child pointers privately before publication.
//!
//! Layout (wire version 2): a 9-byte header, then nodes in preorder.
//!
//! ```text
//! magic: u32 | version: u8 | epoch: u32
//! ```
//!
//! then each node is
//!
//! ```text
//! key: u64 | kind: u8 | home_rank: u32 | bbox: 6×f64 | n_particles: u32
//! | data: D::encode | (leaf) count: u32 + particles
//! | (internal) child-mask: u8, then present children in slot order
//! ```
//!
//! Internal nodes at the requested depth limit are demoted to
//! [`NodeKind::Placeholder`] on the wire — their summaries travel, their
//! structure stays home until someone asks for it.
//!
//! The `epoch` is the sender's recovery epoch at serialisation time
//! (see [`crate::CacheTree::epoch`]): after a rank crash the engine
//! bumps every cache's epoch, so in-flight fills serialised before the
//! crash decode fine but are rejected on insert with
//! [`CacheError::StaleEpoch`]. Payloads from the pre-epoch wire format
//! (no magic) are rejected with [`CacheError::LegacyFragment`] instead
//! of being mis-decoded as node data.

use crate::error::CacheError;
use crate::node::{CacheNode, NodeKind};
use paratreet_geometry::{BoundingBox, NodeKey, Vec3};
use paratreet_particles::io::{get_particle, put_particle};
use paratreet_tree::Data;
use std::sync::atomic::Ordering;

/// Maximum children per node on the wire (octree width).
pub const MAX_BRANCH: usize = 8;

/// First four bytes of every versioned fill payload.
pub const FRAGMENT_MAGIC: u32 = 0xFA57_7EE7;

/// Current wire version (bumped when the node layout changes).
pub const WIRE_VERSION: u8 = 2;

/// Bytes of the fragment header (magic + version + epoch).
pub const HEADER_BYTES: usize = 9;

/// A decoded fill: boxed nodes (stable heap addresses) with child
/// pointers already wired among themselves. Index 0 is the fragment root.
/// Frontier children are fresh placeholder nodes inside `nodes`.
pub struct Fragment<D> {
    /// All materialised nodes, fragment root first.
    pub nodes: Vec<Box<CacheNode<D>>>,
    /// Total particles carried (for stats).
    pub n_particles: u64,
    /// Recovery epoch the sender serialised under.
    pub epoch: u32,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u8(input: &[u8], off: &mut usize) -> Option<u8> {
    let v = *input.get(*off)?;
    *off += 1;
    Some(v)
}

fn get_u32(input: &[u8], off: &mut usize) -> Option<u32> {
    let bytes: [u8; 4] = input.get(*off..*off + 4)?.try_into().ok()?;
    *off += 4;
    Some(u32::from_le_bytes(bytes))
}

fn get_u64(input: &[u8], off: &mut usize) -> Option<u64> {
    let bytes: [u8; 8] = input.get(*off..*off + 8)?.try_into().ok()?;
    *off += 8;
    Some(u64::from_le_bytes(bytes))
}

fn get_f64(input: &[u8], off: &mut usize) -> Option<f64> {
    let bytes: [u8; 8] = input.get(*off..*off + 8)?.try_into().ok()?;
    *off += 8;
    Some(f64::from_le_bytes(bytes))
}

fn kind_to_u8(k: NodeKind) -> u8 {
    match k {
        NodeKind::Internal => 0,
        NodeKind::Leaf => 1,
        NodeKind::Empty => 2,
        NodeKind::Placeholder => 3,
    }
}

fn kind_from_u8(v: u8) -> Option<NodeKind> {
    Some(match v {
        0 => NodeKind::Internal,
        1 => NodeKind::Leaf,
        2 => NodeKind::Empty,
        3 => NodeKind::Placeholder,
        _ => return None,
    })
}

/// Serialises the subtree under `root` to relative depth `depth_limit`,
/// stamped with the sender's recovery `epoch`. Internal nodes exactly at
/// the limit (and placeholders encountered on the way) are encoded as
/// placeholders; leaves ship with particles.
pub fn encode_fragment<D: Data>(root: &CacheNode<D>, depth_limit: u32, epoch: u32) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, FRAGMENT_MAGIC);
    out.push(WIRE_VERSION);
    put_u32(&mut out, epoch);
    encode_node(root, depth_limit, &mut out);
    out
}

fn encode_node<D: Data>(node: &CacheNode<D>, levels_left: u32, out: &mut Vec<u8>) {
    let demote = node.kind == NodeKind::Internal && levels_left == 0;
    let kind = if demote { NodeKind::Placeholder } else { node.kind };
    put_u64(out, node.key.raw());
    out.push(kind_to_u8(kind));
    put_u32(out, node.home_rank);
    put_f64(out, node.bbox.lo.x);
    put_f64(out, node.bbox.lo.y);
    put_f64(out, node.bbox.lo.z);
    put_f64(out, node.bbox.hi.x);
    put_f64(out, node.bbox.hi.y);
    put_f64(out, node.bbox.hi.z);
    put_u32(out, node.n_particles);
    node.data.encode(out);
    match kind {
        NodeKind::Leaf => {
            put_u32(out, node.particles.len() as u32);
            for p in &node.particles {
                put_particle(out, p);
            }
        }
        NodeKind::Internal => {
            let mut mask = 0u8;
            let mut kids: Vec<&CacheNode<D>> = Vec::new();
            for i in 0..MAX_BRANCH {
                if let Some(c) = node.child(i) {
                    mask |= 1 << i;
                    kids.push(c);
                }
            }
            out.push(mask);
            for c in kids {
                encode_node(c, levels_left - 1, out);
            }
        }
        NodeKind::Empty | NodeKind::Placeholder => {}
    }
}

/// Decodes a fill into a privately wired [`Fragment`]. Malformed input
/// (truncation, bad kind bytes, trailing garbage, wrong version) is
/// [`CacheError::MalformedFragment`]; a payload without the magic is
/// the pre-epoch wire format, [`CacheError::LegacyFragment`].
pub fn decode_fragment<D: Data>(input: &[u8]) -> Result<Fragment<D>, CacheError> {
    let len = input.len();
    let mut off = 0;
    let header = (|| {
        let magic = get_u32(input, &mut off)?;
        let version = get_u8(input, &mut off)?;
        let epoch = get_u32(input, &mut off)?;
        Some((magic, version, epoch))
    })();
    let Some((magic, version, epoch)) = header else {
        return Err(CacheError::MalformedFragment { len });
    };
    if magic != FRAGMENT_MAGIC {
        return Err(CacheError::LegacyFragment { len });
    }
    if version != WIRE_VERSION {
        return Err(CacheError::MalformedFragment { len });
    }
    let mut nodes = Vec::new();
    let mut n_particles = 0u64;
    if decode_node::<D>(input, &mut off, &mut nodes, &mut n_particles).is_none() {
        return Err(CacheError::MalformedFragment { len });
    }
    if off != input.len() {
        return Err(CacheError::MalformedFragment { len }); // trailing garbage
    }
    Ok(Fragment { nodes, n_particles, epoch })
}

/// Decodes one node (and recursively its children), appends the boxed
/// nodes to `nodes` in preorder, and returns the raw pointer of the node
/// just decoded so the parent can wire its child slot.
fn decode_node<D: Data>(
    input: &[u8],
    off: &mut usize,
    nodes: &mut Vec<Box<CacheNode<D>>>,
    n_particles: &mut u64,
) -> Option<*mut CacheNode<D>> {
    let key = NodeKey(get_u64(input, off)?);
    let kind = kind_from_u8(get_u8(input, off)?)?;
    let home_rank = get_u32(input, off)?;
    let lo = Vec3::new(get_f64(input, off)?, get_f64(input, off)?, get_f64(input, off)?);
    let hi = Vec3::new(get_f64(input, off)?, get_f64(input, off)?, get_f64(input, off)?);
    let count = get_u32(input, off)?;
    let (data, used) = D::decode(&input[*off..])?;
    *off += used;
    let bbox = BoundingBox { lo, hi };
    let mut node = Box::new(CacheNode::new(key, bbox, count, data, home_rank, kind, Vec::new()));
    match kind {
        NodeKind::Leaf => {
            let n = get_u32(input, off)? as usize;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(get_particle(input, off)?);
            }
            *n_particles += n as u64;
            node.particles = ps;
        }
        NodeKind::Internal => {
            let mask = get_u8(input, off)?;
            // Reserve our slot in preorder before the children.
            let my_index = nodes.len();
            nodes.push(node);
            for i in 0..MAX_BRANCH {
                if mask & (1 << i) != 0 {
                    let child = decode_node::<D>(input, off, nodes, n_particles)?;
                    nodes[my_index].children[i].store(child, Ordering::Relaxed);
                }
            }
            return Some(&mut *nodes[my_index] as *mut _);
        }
        NodeKind::Empty | NodeKind::Placeholder => {}
    }
    nodes.push(node);
    let last = nodes.len() - 1;
    Some(&mut *nodes[last] as *mut _)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_geometry::ROOT_KEY;
    use paratreet_particles::Particle;
    use paratreet_tree::CountData;

    /// Unwraps the error side of a decode (the `Fragment` itself has no
    /// `Debug`, so `unwrap_err` is unavailable).
    fn decode_err(r: Result<Fragment<CountData>, CacheError>) -> CacheError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("payload unexpectedly decoded"),
        }
    }

    /// Hand-builds: root(internal) -> [leaf(2 particles), internal -> [leaf(1)]]
    #[allow(clippy::vec_box)] // mirrors the cache's boxed-node storage
    fn sample_tree() -> Vec<Box<CacheNode<CountData>>> {
        let b = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let mk_leaf = |key: NodeKey, ids: &[u64]| {
            let ps: Vec<Particle> =
                ids.iter().map(|&i| Particle::point_mass(i, 1.0, Vec3::splat(0.1))).collect();
            Box::new(CacheNode::new(
                key,
                b,
                ps.len() as u32,
                CountData { count: ps.len() as u64 },
                1,
                NodeKind::Leaf,
                ps,
            ))
        };
        let leaf_a = mk_leaf(ROOT_KEY.child(0, 3), &[10, 11]);
        let leaf_b = mk_leaf(ROOT_KEY.child(3, 3).child(7, 3), &[12]);
        let mid = Box::new(CacheNode::new(
            ROOT_KEY.child(3, 3),
            b,
            1,
            CountData { count: 1 },
            1,
            NodeKind::Internal,
            vec![],
        ));
        let root = Box::new(CacheNode::new(
            ROOT_KEY,
            b,
            3,
            CountData { count: 3 },
            1,
            NodeKind::Internal,
            vec![],
        ));
        let pa = &*leaf_a as *const _ as *mut CacheNode<CountData>;
        let pb = &*leaf_b as *const _ as *mut CacheNode<CountData>;
        let pm = &*mid as *const _ as *mut CacheNode<CountData>;
        mid.children[7].store(pb, Ordering::Relaxed);
        root.children[0].store(pa, Ordering::Relaxed);
        root.children[3].store(pm, Ordering::Relaxed);
        vec![root, mid, leaf_a, leaf_b]
    }

    #[test]
    fn roundtrip_full_depth() {
        let tree = sample_tree();
        let bytes = encode_fragment(&tree[0], 10, 7);
        let frag: Fragment<CountData> = decode_fragment(&bytes).unwrap();
        assert_eq!(frag.nodes.len(), 4);
        assert_eq!(frag.n_particles, 3);
        assert_eq!(frag.epoch, 7);
        let root = &frag.nodes[0];
        assert_eq!(root.key, ROOT_KEY);
        assert_eq!(root.kind, NodeKind::Internal);
        let leaf_a = root.child(0).unwrap();
        assert_eq!(leaf_a.kind, NodeKind::Leaf);
        assert_eq!(leaf_a.particles.len(), 2);
        assert_eq!(leaf_a.particles[0].id, 10);
        let mid = root.child(3).unwrap();
        let leaf_b = mid.child(7).unwrap();
        assert_eq!(leaf_b.particles.len(), 1);
        assert_eq!(leaf_b.particles[0].id, 12);
        // Absent slots stay null.
        assert!(root.child(1).is_none());
    }

    #[test]
    fn depth_limit_demotes_internals_to_placeholders() {
        let tree = sample_tree();
        let bytes = encode_fragment(&tree[0], 1, 0);
        let frag: Fragment<CountData> = decode_fragment(&bytes).unwrap();
        let root = &frag.nodes[0];
        // Depth-1 leaf ships fully; depth-1 internal becomes placeholder.
        assert_eq!(root.child(0).unwrap().kind, NodeKind::Leaf);
        let mid = root.child(3).unwrap();
        assert_eq!(mid.kind, NodeKind::Placeholder);
        assert_eq!(mid.n_particles, 1); // summary still travels
        assert!(mid.child(7).is_none());
    }

    #[test]
    fn depth_zero_ships_root_summary_only_for_internal() {
        let tree = sample_tree();
        let bytes = encode_fragment(&tree[0], 0, 0);
        let frag: Fragment<CountData> = decode_fragment(&bytes).unwrap();
        assert_eq!(frag.nodes.len(), 1);
        assert_eq!(frag.nodes[0].kind, NodeKind::Placeholder);
    }

    #[test]
    fn truncated_input_rejected() {
        let tree = sample_tree();
        let bytes = encode_fragment(&tree[0], 10, 0);
        for cut in [1, 9, 20, bytes.len() - 1] {
            assert_eq!(
                decode_err(decode_fragment::<CountData>(&bytes[..cut])),
                CacheError::MalformedFragment { len: cut },
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let tree = sample_tree();
        let mut bytes = encode_fragment(&tree[0], 10, 0);
        bytes.push(0);
        assert_eq!(
            decode_err(decode_fragment::<CountData>(&bytes)),
            CacheError::MalformedFragment { len: bytes.len() }
        );
    }

    #[test]
    fn bad_kind_byte_rejected() {
        let tree = sample_tree();
        let mut bytes = encode_fragment(&tree[0], 10, 0);
        bytes[HEADER_BYTES + 8] = 9; // kind byte of the root
        assert_eq!(
            decode_err(decode_fragment::<CountData>(&bytes)),
            CacheError::MalformedFragment { len: bytes.len() }
        );
    }

    #[test]
    fn legacy_headerless_payload_rejected_structurally() {
        // The pre-epoch format started straight at the root node's key;
        // stripping the header reproduces it byte-for-byte.
        let tree = sample_tree();
        let bytes = encode_fragment(&tree[0], 10, 3);
        let legacy = &bytes[HEADER_BYTES..];
        assert_eq!(
            decode_err(decode_fragment::<CountData>(legacy)),
            CacheError::LegacyFragment { len: legacy.len() }
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let tree = sample_tree();
        let mut bytes = encode_fragment(&tree[0], 10, 3);
        bytes[4] = WIRE_VERSION + 1;
        assert_eq!(
            decode_err(decode_fragment::<CountData>(&bytes)),
            CacheError::MalformedFragment { len: bytes.len() }
        );
    }
}
