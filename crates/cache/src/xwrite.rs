//! The exclusive-write cache baseline ("XWrite" in Fig. 3).
//!
//! Identical reads to [`CacheTree`], but *every* fill insertion is
//! protected by one process-wide lock, so concurrent inserting workers
//! serialise — "threads have to wait for permission to insert to the
//! shared-memory cache". The paper shows this model degrading at around
//! 1,536 cores; the discrete-event machine model reproduces that shape by
//! charging queueing delay per lock acquisition, using the contention
//! counter this wrapper maintains.

use crate::error::CacheError;
use crate::tree::{CacheTree, FillOutcome};
use paratreet_tree::Data;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`CacheTree`] whose insertions are serialised by a single lock.
pub struct XWriteCache<D: Data> {
    /// The underlying cache (reads go straight through).
    pub inner: CacheTree<D>,
    /// Times an inserter found the lock already held.
    pub lock_contended: AtomicU64,
    write_lock: Mutex<()>,
}

impl<D: Data> XWriteCache<D> {
    /// Wraps a cache in the exclusive-write discipline.
    pub fn new(inner: CacheTree<D>) -> XWriteCache<D> {
        XWriteCache { inner, lock_contended: AtomicU64::new(0), write_lock: Mutex::new(()) }
    }

    /// Inserts a fill while holding the process-wide write lock.
    /// Deserialisation happens *inside* the lock too — that is what the
    /// exclusive-write model costs.
    pub fn insert_fragment(&self, bytes: &[u8]) -> Result<FillOutcome<'_, D>, CacheError> {
        let guard = match self.write_lock.try_lock() {
            Some(g) => g,
            None => {
                self.lock_contended.fetch_add(1, Ordering::Relaxed);
                self.write_lock.lock()
            }
        };
        let result = self.inner.insert_fragment(bytes);
        drop(guard);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_tree::CountData;

    #[test]
    fn xwrite_rejects_garbage_like_inner() {
        let c: XWriteCache<CountData> = XWriteCache::new(CacheTree::new(0, 3));
        assert!(c.insert_fragment(&[1, 2, 3]).is_err());
        assert_eq!(c.lock_contended.load(Ordering::Relaxed), 0);
    }
}
