//! Offline stand-in for the `rayon` crate.
//!
//! Exposes the `par_iter` API surface the workspace uses but executes
//! sequentially. Results are identical to rayon's (the workspace only
//! uses order-insensitive reductions and independent maps); only the
//! wall-clock parallelism is sacrificed, which is acceptable for an
//! offline build.

/// A "parallel" iterator: a thin adapter over a sequential iterator.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }
}

pub mod prelude {
    use super::ParIter;

    /// `into_par_iter()` for owned collections.
    pub trait IntoParallelIterator {
        type Item;
        type SeqIter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> ParIter<Self::SeqIter>;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type SeqIter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> ParIter<Self::SeqIter> {
            ParIter(self.into_iter())
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Item = T;
        type SeqIter = std::ops::Range<T>;
        fn into_par_iter(self) -> ParIter<Self::SeqIter> {
            ParIter(self)
        }
    }

    /// `par_iter()` / `par_iter_mut()` for slices (and, via deref, Vec).
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    }

    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
            ParIter(self.iter())
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
            ParIter(self.iter_mut())
        }
    }
}

// Seen at the crate root in some call sites.
pub use prelude::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}
