//! The discrete-event distributed-machine simulator.
//!
//! [`Sim`] plays the role Charm++ plays for the reference code: it owns
//! the notion of ranks, workers, message delivery, and time. The engine
//! layered on top executes the real algorithm inside event handlers and
//! charges costs in *calibrated seconds* (measured on the Stampede2
//! Skylake baseline and scaled by the machine's clock).
//!
//! Scheduling rules:
//!
//! * a task spawned on a rank goes to that rank's **least busy worker**
//!   (the paper's fill-assignment policy) and runs for its cost,
//! * an *exclusive* task additionally serialises on a named per-rank
//!   resource — this models the XWrite cache's insertion lock and the
//!   one-message-at-a-time semantics of chares (partitions),
//! * a message occupies the sender's NIC for `bytes × byte_time`
//!   (injection serialisation), then arrives `latency` later.
//!
//! Determinism: the event queue breaks time ties by sequence number, so
//! identical inputs replay identical timelines.

use crate::ledger::Ledger;
use crate::machine::MachineSpec;
use crate::phase::Phase;
use paratreet_telemetry::{MetricSource, MetricsRegistry, Telemetry, Track};
use serde::Serialize;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};

/// Identifies one worker thread: `(rank, worker index within rank)`.
pub type WorkerId = (u32, u32);

/// A pending event.
struct Scheduled<P> {
    time: f64,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for Scheduled<P> {}
impl<P> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Scheduled<P> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reverse for a min-heap on (time, seq).
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Communication counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct CommStats {
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

impl MetricSource for CommStats {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.messages"), self.messages);
        registry.set_u64(format!("{prefix}.bytes"), self.bytes);
    }
}

/// The simulator. `P` is the engine's event payload type.
pub struct Sim<P> {
    /// The machine being simulated.
    pub machine: MachineSpec,
    now: f64,
    seq: u64,
    queue: BinaryHeap<Scheduled<P>>,
    /// `rank * workers_per_rank + worker` → busy-until time.
    worker_free: Vec<f64>,
    /// Per-rank NIC busy-until time.
    nic_free: Vec<f64>,
    /// Named exclusive resources → busy-until time.
    resource_free: HashMap<u64, f64>,
    /// Busy-interval accounting.
    pub ledger: Ledger,
    /// Communication accounting.
    pub comm: CommStats,
    /// Span sink. Every task the simulator schedules becomes one span on
    /// the `(rank, worker)` track it ran on, stamped in *virtual*
    /// microseconds — a disabled handle (the default) records nothing.
    pub telemetry: Telemetry,
    compute_scale: f64,
}

impl<P> Sim<P> {
    /// A fresh simulator for `machine` at time zero.
    pub fn new(machine: MachineSpec) -> Sim<P> {
        let workers = machine.total_workers();
        let nodes = machine.nodes;
        let compute_scale = machine.compute_scale();
        Sim {
            machine,
            now: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
            worker_free: vec![0.0; workers],
            nic_free: vec![0.0; nodes],
            resource_free: HashMap::new(),
            ledger: Ledger::new(),
            comm: CommStats::default(),
            telemetry: Telemetry::disabled(),
            compute_scale,
        }
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of ranks.
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.machine.nodes as u32
    }

    fn push(&mut self, time: f64, payload: P) {
        self.seq += 1;
        self.queue.push(Scheduled { time, seq: self.seq, payload });
    }

    /// Index of the least-busy worker on `rank`.
    fn least_busy_worker(&self, rank: u32) -> usize {
        let w = self.machine.workers_per_rank;
        let base = rank as usize * w;
        let mut best = base;
        for i in base..base + w {
            if self.worker_free[i] < self.worker_free[best] {
                best = i;
            }
        }
        best
    }

    /// Runs `cost` calibrated-seconds of `phase` work on `rank`'s least
    /// busy worker; `payload` fires when it completes.
    pub fn spawn(&mut self, rank: u32, phase: Phase, cost: f64, payload: P) {
        self.spawn_inner(rank, None, phase, cost, payload);
    }

    /// Like [`Sim::spawn`], but also serialises on exclusive resource
    /// `resource` (a caller-chosen id, e.g. a partition id or a lock id):
    /// the task cannot start until both a worker and the resource are
    /// free, and it holds the resource for its duration.
    pub fn spawn_exclusive(
        &mut self,
        rank: u32,
        resource: u64,
        phase: Phase,
        cost: f64,
        payload: P,
    ) {
        self.spawn_inner(rank, Some(resource), phase, cost, payload);
    }

    fn spawn_inner(
        &mut self,
        rank: u32,
        resource: Option<u64>,
        phase: Phase,
        cost: f64,
        payload: P,
    ) {
        debug_assert!((rank as usize) < self.machine.nodes, "rank out of range");
        debug_assert!(cost >= 0.0);
        let cost = cost * self.compute_scale;
        let w = self.least_busy_worker(rank);
        let mut start = self.now.max(self.worker_free[w]);
        if let Some(r) = resource {
            let free = self.resource_free.entry(r).or_insert(0.0);
            start = start.max(*free);
            *free = start + cost;
        }
        let end = start + cost;
        self.worker_free[w] = end;
        self.ledger.record(start, end, phase);
        let local = (w - rank as usize * self.machine.workers_per_rank) as u32;
        self.telemetry.span_at(
            Track { rank, worker: local },
            phase.label(),
            start * 1e6,
            (end - start) * 1e6,
            None,
        );
        self.push(end, payload);
    }

    /// Sends `bytes` from `from` to `to`; `payload` fires on arrival.
    /// Rank-local sends skip the NIC and latency entirely (shared
    /// memory), which is exactly the saving the node-wide cache exploits.
    pub fn send(&mut self, from: u32, to: u32, bytes: u64, payload: P) {
        self.send_delayed(from, to, bytes, 0.0, payload);
    }

    /// Like [`Sim::send`], but the message spends `extra_delay` extra
    /// seconds in flight. This is the fault layer's delay/reorder knob:
    /// a delayed message arrives after messages sent later, so handlers
    /// observe genuine reordering.
    pub fn send_delayed(&mut self, from: u32, to: u32, bytes: u64, extra_delay: f64, payload: P) {
        debug_assert!(extra_delay >= 0.0);
        self.comm.messages += 1;
        if from == to {
            self.push(self.now + extra_delay, payload);
            return;
        }
        self.comm.bytes += bytes;
        let nic = &mut self.nic_free[from as usize];
        let inject_done = self.now.max(*nic) + bytes as f64 * self.machine.byte_time_s;
        *nic = inject_done;
        let arrive = inject_done + self.machine.latency_s + extra_delay;
        self.push(arrive, payload);
    }

    /// Fires `payload` at the current time without occupying a worker
    /// (control messages, iteration barriers).
    pub fn post(&mut self, payload: P) {
        self.push(self.now, payload);
    }

    /// Fires `payload` `delay` seconds from now without occupying a
    /// worker — timers, e.g. the engine's fetch-retry timeout.
    pub fn post_after(&mut self, delay: f64, payload: P) {
        debug_assert!(delay >= 0.0);
        self.push(self.now + delay, payload);
    }

    /// Drains the event queue, advancing time and calling `handler` for
    /// every event. Returns the makespan: the later of the last event and
    /// the last worker-busy end.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Sim<P>, P)) -> f64 {
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.time >= self.now - 1e-12, "time must not run backwards");
            self.now = self.now.max(ev.time);
            handler(self, ev.payload);
        }
        self.makespan()
    }

    /// The later of "now" and every worker's busy-until.
    pub fn makespan(&self) -> f64 {
        self.worker_free.iter().copied().fold(self.now, f64::max)
    }

    /// Total worker-seconds of capacity up to the makespan.
    pub fn capacity(&self) -> f64 {
        self.makespan() * self.machine.total_workers() as f64
    }

    /// Fraction of capacity spent busy (0..=1).
    pub fn utilization(&self) -> f64 {
        let cap = self.capacity();
        if cap == 0.0 {
            0.0
        } else {
            self.ledger.total_busy() / cap
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic fault injection.
// ---------------------------------------------------------------------

/// The pipeline stage a scheduled rank crash interrupts (the crash
/// fires as the stage *begins*, so the rank's whole contribution to it
/// is lost and must be re-derived during recovery).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPhase {
    /// During decomposition (before the rank's sort finishes).
    Decomposition,
    /// During the local tree builds.
    TreeBuild,
    /// During summary/leaf sharing.
    LeafSharing,
    /// After traversal has started.
    Traversal,
}

impl CrashPhase {
    /// Stable index for metrics (`fault.crash.phase_idx`).
    pub fn index(self) -> u32 {
        match self {
            CrashPhase::Decomposition => 0,
            CrashPhase::TreeBuild => 1,
            CrashPhase::LeafSharing => 2,
            CrashPhase::Traversal => 3,
        }
    }
}

/// When the scheduled crash fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CrashTrigger {
    /// At the virtual instant a pipeline stage begins.
    AtPhase(CrashPhase),
    /// At an absolute virtual time (seconds).
    AtTime(f64),
}

/// One deterministic crash-stop failure: `rank` dies at the trigger
/// point, loses all in-memory state (cache fills, traversal progress,
/// built subtrees), and either restarts after `restart_delay_s`
/// (recovering from its checkpoint) or stays dead forever, in which
/// case the engine re-shards its subtrees and partitions across the
/// survivors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashConfig {
    /// The rank that crashes (must be a valid rank of a ≥2-rank machine).
    pub rank: u32,
    /// When it crashes.
    pub trigger: CrashTrigger,
    /// Whether the rank comes back.
    pub restart: bool,
    /// Reboot time before the restarted rank begins recovery (seconds
    /// after the crash is detected).
    pub restart_delay_s: f64,
}

impl Default for CrashConfig {
    fn default() -> CrashConfig {
        CrashConfig {
            rank: 0,
            trigger: CrashTrigger::AtPhase(CrashPhase::Traversal),
            restart: true,
            restart_delay_s: 5e-3,
        }
    }
}

/// Probabilities and magnitudes for deterministic message-fault
/// injection. All decisions derive from `seed` through a splitmix64
/// stream, so a given config replays the identical fault pattern every
/// run — faults are part of the simulated timeline, not noise.
///
/// The three probabilities partition one uniform draw per message, so
/// they must sum to at most 1. `drop_p` must stay below 1.0: a message
/// stream that loses everything can never be recovered by retries.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub duplicate_p: f64,
    /// Probability a message is delayed (and thereby reordered past
    /// messages sent after it).
    pub delay_p: f64,
    /// Mean extra in-flight time of a delayed message (seconds); the
    /// actual delay is uniform in `[0.5, 1.5] × delay_s`.
    pub delay_s: f64,
    /// How long the engine waits for a fill before re-requesting.
    pub retry_timeout_s: f64,
    /// Optional scheduled rank crash (crash-stop model).
    pub crash: Option<CrashConfig>,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0x5EED_CAFE,
            drop_p: 0.0,
            duplicate_p: 0.0,
            delay_p: 0.0,
            delay_s: 0.0,
            retry_timeout_s: 2e-3,
            crash: None,
        }
    }
}

/// Why a [`FaultConfig`] was rejected by [`FaultInjector::new`]. Every
/// variant names the offending knob and value so CLI layers can print
/// it without re-deriving the check.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultConfigError {
    /// A probability was NaN, negative, or above 1.
    InvalidProbability {
        /// Which knob (`drop_p`, `duplicate_p`, `delay_p`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The three probabilities do not partition a unit draw.
    OverfullProbabilities {
        /// Their sum (> 1).
        sum: f64,
    },
    /// `drop_p = 1` would defeat every retry.
    CertainDrop,
    /// `retry_timeout_s` was NaN or not positive (the retry/crash
    /// detection machinery needs a real timeout).
    InvalidTimeout {
        /// The rejected value.
        value: f64,
    },
    /// The crash schedule is unusable (negative time/delay, NaN).
    InvalidCrash {
        /// What is wrong with it.
        reason: &'static str,
    },
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfigError::InvalidProbability { name, value } => {
                write!(f, "fault probability {name} = {value} is not in [0, 1]")
            }
            FaultConfigError::OverfullProbabilities { sum } => {
                write!(f, "fault probabilities must sum to at most 1 (got {sum})")
            }
            FaultConfigError::CertainDrop => {
                write!(f, "drop_p = 1 would defeat every retry")
            }
            FaultConfigError::InvalidTimeout { value } => {
                write!(f, "retry_timeout_s = {value} must be positive")
            }
            FaultConfigError::InvalidCrash { reason } => {
                write!(f, "invalid crash schedule: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// What the injector decided for one message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Do not deliver at all.
    Drop,
    /// Deliver twice.
    Duplicate,
    /// Deliver with this many extra seconds in flight.
    Delay(f64),
}

/// Counts of injected faults, for reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct FaultStats {
    /// Messages dropped.
    pub dropped: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Messages delayed.
    pub delayed: u64,
}

impl MetricSource for FaultStats {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.dropped"), self.dropped);
        registry.set_u64(format!("{prefix}.duplicated"), self.duplicated);
        registry.set_u64(format!("{prefix}.delayed"), self.delayed);
    }
}

/// The seeded decision stream. One [`FaultInjector::decide`] call per
/// message, in a deterministic order, yields a deterministic fault
/// pattern.
#[derive(Debug)]
pub struct FaultInjector {
    /// The configuration in force.
    pub config: FaultConfig,
    /// Faults injected so far.
    pub stats: FaultStats,
    state: u64,
}

impl FaultInjector {
    /// A fresh injector. Rejects (rather than panics on) every config a
    /// user-facing knob could produce: NaN or out-of-range
    /// probabilities, probabilities that do not partition a unit draw,
    /// a certain drop that no retry could survive, a timeout the retry
    /// machinery cannot arm, and unusable crash schedules.
    pub fn new(config: FaultConfig) -> Result<FaultInjector, FaultConfigError> {
        for (name, value) in [
            ("drop_p", config.drop_p),
            ("duplicate_p", config.duplicate_p),
            ("delay_p", config.delay_p),
        ] {
            if !(0.0..=1.0).contains(&value) {
                // NaN fails the range test too.
                return Err(FaultConfigError::InvalidProbability { name, value });
            }
        }
        let sum = config.drop_p + config.duplicate_p + config.delay_p;
        if sum > 1.0 {
            return Err(FaultConfigError::OverfullProbabilities { sum });
        }
        if config.drop_p >= 1.0 {
            return Err(FaultConfigError::CertainDrop);
        }
        if config.retry_timeout_s.is_nan() || config.retry_timeout_s <= 0.0 {
            return Err(FaultConfigError::InvalidTimeout { value: config.retry_timeout_s });
        }
        if let Some(crash) = &config.crash {
            if let CrashTrigger::AtTime(t) = crash.trigger {
                if t.is_nan() || t < 0.0 {
                    return Err(FaultConfigError::InvalidCrash {
                        reason: "crash time must be a non-negative number of seconds",
                    });
                }
            }
            if crash.restart_delay_s.is_nan() || crash.restart_delay_s < 0.0 {
                return Err(FaultConfigError::InvalidCrash {
                    reason: "restart delay must be a non-negative number of seconds",
                });
            }
        }
        Ok(FaultInjector { config, stats: FaultStats::default(), state: config.seed })
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, seedable, and plenty for fault decisions.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides the fate of the next message.
    pub fn decide(&mut self) -> FaultAction {
        let u = self.next_unit();
        let c = &self.config;
        if u < c.drop_p {
            self.stats.dropped += 1;
            FaultAction::Drop
        } else if u < c.drop_p + c.duplicate_p {
            self.stats.duplicated += 1;
            FaultAction::Duplicate
        } else if u < c.drop_p + c.duplicate_p + c.delay_p {
            self.stats.delayed += 1;
            FaultAction::Delay(c.delay_s * (0.5 + self.next_unit()))
        } else {
            FaultAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineSpec {
        MachineSpec::test(2, 2)
    }

    #[test]
    fn tasks_run_in_time_order_deterministically() {
        let mut sim: Sim<u32> = Sim::new(machine());
        sim.spawn(0, Phase::TreeBuild, 2.0, 1);
        sim.spawn(0, Phase::TreeBuild, 1.0, 2);
        sim.spawn(1, Phase::TreeBuild, 0.5, 3);
        let mut order = Vec::new();
        sim.run(|_, p| order.push(p));
        assert_eq!(order, vec![3, 2, 1]);
    }

    #[test]
    fn least_busy_worker_balances() {
        // Two workers on rank 0: four 1s tasks finish at 1,1,2,2 not 1,2,3,4.
        let mut sim: Sim<u32> = Sim::new(machine());
        for i in 0..4 {
            sim.spawn(0, Phase::LocalTraversal, 1.0, i);
        }
        let makespan = sim.run(|_, _| {});
        assert!((makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exclusive_resource_serialises() {
        // Two workers, but both tasks hold resource 7: they serialise.
        let mut sim: Sim<u32> = Sim::new(machine());
        sim.spawn_exclusive(0, 7, Phase::CacheInsertion, 1.0, 0);
        sim.spawn_exclusive(0, 7, Phase::CacheInsertion, 1.0, 1);
        let makespan = sim.run(|_, _| {});
        assert!((makespan - 2.0).abs() < 1e-12);
        // Without the resource they would overlap.
        let mut sim2: Sim<u32> = Sim::new(machine());
        sim2.spawn(0, Phase::CacheInsertion, 1.0, 0);
        sim2.spawn(0, Phase::CacheInsertion, 1.0, 1);
        assert!((sim2.run(|_, _| {}) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn messages_pay_latency_and_bandwidth() {
        let m = machine();
        let latency = m.latency_s;
        let byte_time = m.byte_time_s;
        let mut sim: Sim<&str> = Sim::new(m);
        sim.send(0, 1, 1000, "arrived");
        let mut arrival = 0.0;
        sim.run(|s, p| {
            assert_eq!(p, "arrived");
            arrival = s.now();
        });
        let expected = 1000.0 * byte_time + latency;
        assert!((arrival - expected).abs() < 1e-15);
        assert_eq!(sim.comm.messages, 1);
        assert_eq!(sim.comm.bytes, 1000);
    }

    #[test]
    fn rank_local_sends_are_free() {
        let mut sim: Sim<&str> = Sim::new(machine());
        sim.send(1, 1, 1_000_000, "local");
        let mut arrival = f64::NAN;
        sim.run(|s, _| arrival = s.now());
        assert_eq!(arrival, 0.0);
        assert_eq!(sim.comm.bytes, 0, "local bytes do not hit the network");
    }

    #[test]
    fn nic_injection_serialises_sends() {
        let m = machine();
        let byte_time = m.byte_time_s;
        let mut sim: Sim<u32> = Sim::new(m);
        sim.send(0, 1, 1_000_000, 1);
        sim.send(0, 1, 1_000_000, 2);
        let mut times = Vec::new();
        sim.run(|s, p| times.push((p, s.now())));
        // Second message injects only after the first.
        let gap = times[1].1 - times[0].1;
        assert!((gap - 1_000_000.0 * byte_time).abs() < 1e-12);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim: Sim<u32> = Sim::new(machine());
        sim.spawn(0, Phase::LocalTraversal, 1.0, 0);
        let mut count = 0;
        sim.run(|s, p| {
            count += 1;
            if p < 3 {
                s.spawn(0, Phase::LocalTraversal, 1.0, p + 1);
            }
        });
        assert_eq!(count, 4);
        assert!((sim.makespan() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut sim: Sim<u32> = Sim::new(MachineSpec::test(1, 2));
        sim.spawn(0, Phase::LocalTraversal, 2.0, 0); // one of two workers busy
        sim.run(|_, _| {});
        assert!((sim.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn post_after_fires_at_the_requested_time() {
        let mut sim: Sim<u32> = Sim::new(machine());
        sim.post_after(2.5, 1);
        sim.post(0);
        let mut order = Vec::new();
        sim.run(|s, p| order.push((p, s.now())));
        assert_eq!(order[0].0, 0);
        assert_eq!(order[1].0, 1);
        assert!((order[1].1 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn delayed_sends_reorder_past_later_sends() {
        let m = machine();
        let mut sim: Sim<u32> = Sim::new(m);
        sim.send_delayed(0, 1, 10, 1.0, 1); // sent first, delayed
        sim.send(0, 1, 10, 2); // sent second, arrives first
        let mut order = Vec::new();
        sim.run(|_, p| order.push(p));
        assert_eq!(order, vec![2, 1]);
    }

    #[test]
    fn fault_injector_is_deterministic_and_counts() {
        let cfg = FaultConfig {
            seed: 42,
            drop_p: 0.2,
            duplicate_p: 0.2,
            delay_p: 0.2,
            delay_s: 1e-3,
            ..FaultConfig::default()
        };
        let mut a = FaultInjector::new(cfg).unwrap();
        let mut b = FaultInjector::new(cfg).unwrap();
        let seq_a: Vec<FaultAction> = (0..256).map(|_| a.decide()).collect();
        let seq_b: Vec<FaultAction> = (0..256).map(|_| b.decide()).collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same faults");
        assert_eq!(
            a.stats.dropped + a.stats.duplicated + a.stats.delayed,
            seq_a.iter().filter(|x| !matches!(x, FaultAction::Deliver)).count() as u64
        );
        // Rough sanity: each fault kind actually fires at these rates.
        assert!(a.stats.dropped > 20 && a.stats.duplicated > 20 && a.stats.delayed > 20);
        // A different seed gives a different pattern.
        let mut c = FaultInjector::new(FaultConfig { seed: 43, ..cfg }).unwrap();
        let seq_c: Vec<FaultAction> = (0..256).map(|_| c.decide()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn fault_injector_rejects_overfull_probabilities() {
        let err = FaultInjector::new(FaultConfig {
            drop_p: 0.6,
            duplicate_p: 0.6,
            ..FaultConfig::default()
        })
        .unwrap_err();
        assert_eq!(err, FaultConfigError::OverfullProbabilities { sum: 1.2 });
        assert!(err.to_string().contains("sum to at most 1"));
    }

    #[test]
    fn fault_injector_rejects_nan_and_negative_probabilities() {
        for bad in [f64::NAN, -0.1, 1.5] {
            let err =
                FaultInjector::new(FaultConfig { duplicate_p: bad, ..FaultConfig::default() })
                    .unwrap_err();
            match err {
                FaultConfigError::InvalidProbability { name, value } => {
                    assert_eq!(name, "duplicate_p");
                    assert!(value.is_nan() == bad.is_nan() && (value == bad || bad.is_nan()));
                }
                other => panic!("expected InvalidProbability, got {other:?}"),
            }
        }
    }

    #[test]
    fn fault_injector_rejects_certain_drop() {
        let err =
            FaultInjector::new(FaultConfig { drop_p: 1.0, ..FaultConfig::default() }).unwrap_err();
        assert_eq!(err, FaultConfigError::CertainDrop);
    }

    #[test]
    fn fault_injector_rejects_bad_timeouts() {
        for bad in [0.0, -1.0, f64::NAN] {
            let err =
                FaultInjector::new(FaultConfig { retry_timeout_s: bad, ..FaultConfig::default() })
                    .unwrap_err();
            match err {
                FaultConfigError::InvalidTimeout { .. } => {}
                other => panic!("expected InvalidTimeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn fault_injector_rejects_bad_crash_schedules() {
        let bad_time = FaultConfig {
            crash: Some(CrashConfig {
                trigger: CrashTrigger::AtTime(-1.0),
                ..CrashConfig::default()
            }),
            ..FaultConfig::default()
        };
        assert!(matches!(
            FaultInjector::new(bad_time).unwrap_err(),
            FaultConfigError::InvalidCrash { .. }
        ));
        let bad_delay = FaultConfig {
            crash: Some(CrashConfig { restart_delay_s: f64::NAN, ..CrashConfig::default() }),
            ..FaultConfig::default()
        };
        assert!(matches!(
            FaultInjector::new(bad_delay).unwrap_err(),
            FaultConfigError::InvalidCrash { .. }
        ));
    }

    #[test]
    fn compute_scale_applies_to_costs() {
        // Summit's 3.1 GHz clock makes a 1.0s-calibrated task faster.
        let mut sim: Sim<u32> = Sim::new(MachineSpec::summit(1));
        sim.spawn(0, Phase::LocalTraversal, 1.0, 0);
        let makespan = sim.run(|_, _| {});
        assert!((makespan - 2.1 / 3.1).abs() < 1e-12);
    }
}
