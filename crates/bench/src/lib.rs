//! Shared plumbing for the evaluation harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). They share a tiny argument
//! parser — `--particles N`, `--seed S`, and harness-specific flags —
//! and column-aligned text output so results read like the paper's
//! tables.

use paratreet_telemetry::{export, MetricsRegistry, Telemetry};
use std::collections::HashMap;

/// Parsed `--key value` command-line options.
pub struct Args {
    opts: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`. Flags must come as `--key value`.
    pub fn parse() -> Args {
        let mut opts = HashMap::new();
        let mut iter = std::env::args().skip(1);
        while let Some(k) = iter.next() {
            if let Some(name) = k.strip_prefix("--") {
                if let Some(v) = iter.next() {
                    opts.insert(name.to_string(), v);
                }
            }
        }
        Args { opts }
    }

    /// A `usize` option with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.opts.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A `u64` option with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.opts.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// An `f64` option with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.opts.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A string option with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.opts.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// A boolean option with a default; accepts `true`/`false`/`1`/`0`.
    pub fn get_bool(&self, key: &str, default: bool) -> bool {
        match self.opts.get(key).map(String::as_str) {
            Some("true") | Some("1") => true,
            Some("false") | Some("0") => false,
            _ => default,
        }
    }

    /// The raw value of an option, when present.
    pub fn get_opt(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }
}

/// The telemetry handle for a harness: an enabled recorder when
/// `--trace-out` was given (virtual clock for machine-model harnesses),
/// the free disabled handle otherwise. Sweep harnesses attach the same
/// handle to every engine and drain between runs, so the exported trace
/// holds the final configuration of the sweep.
pub fn harness_telemetry(args: &Args, virtual_clock: bool) -> Telemetry {
    if args.get_opt("trace-out").is_none() {
        return Telemetry::disabled();
    }
    if virtual_clock {
        Telemetry::virtual_time(1)
    } else {
        Telemetry::wall(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8) + 1)
    }
}

/// Honours `--trace-out` / `--metrics-out`: drains `telemetry` into a
/// Chrome trace and dumps `metrics` as JSON (or CSV for a `.csv` path).
pub fn write_telemetry_outputs(
    args: &Args,
    telemetry: &Telemetry,
    metrics: Option<&MetricsRegistry>,
) {
    if let Some(path) = args.get_opt("trace-out") {
        export::write_chrome_trace(path, &telemetry.drain()).expect("write trace");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let (Some(path), Some(metrics)) = (args.get_opt("metrics-out"), metrics) {
        export::write_metrics(path, metrics).expect("write metrics");
        eprintln!("wrote metrics to {path}");
    }
}

/// Prints a header row followed by a separator, with every column padded
/// to `width`.
pub fn print_header(columns: &[&str], width: usize) {
    let row: Vec<String> = columns.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat((width + 1) * columns.len()));
}

/// Formats one row of already-stringified cells at `width`.
pub fn print_row(cells: &[String], width: usize) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join(" "));
}

/// Human-readable seconds (µs/ms/s autoscale).
pub fn fmt_seconds(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Human-readable byte counts.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else if b < 1024 * 1024 * 1024 {
        format!("{:.1}MB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.2}GB", b as f64 / (1024.0 * 1024.0 * 1024.0))
    }
}

/// A crude ASCII bar for profile plots: `frac` in 0..=1 over `width`.
pub fn bar(frac: f64, width: usize) -> String {
    let n = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(n), ".".repeat(width - n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_options_parse() {
        let args = Args {
            opts: HashMap::from([
                ("json".to_string(), "true".to_string()),
                ("bar".to_string(), "0".to_string()),
                ("bad".to_string(), "maybe".to_string()),
            ]),
        };
        assert!(args.get_bool("json", false));
        assert!(!args.get_bool("bar", true));
        assert!(args.get_bool("bad", true), "unparsable values fall back to the default");
        assert!(!args.get_bool("absent", false));
        assert_eq!(args.get_opt("json"), Some("true"));
        assert_eq!(args.get_opt("absent"), None);
    }

    #[test]
    fn seconds_format_autoscales() {
        assert_eq!(fmt_seconds(5e-5), "50.0us");
        assert_eq!(fmt_seconds(0.0123), "12.30ms");
        assert_eq!(fmt_seconds(2.5), "2.500s");
    }

    #[test]
    fn bytes_format_autoscales() {
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
    }

    #[test]
    fn bar_is_bounded() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(7.0, 4), "####");
    }
}
