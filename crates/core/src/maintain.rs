//! Cross-iteration tree maintenance: the engine-facing half of the
//! incremental update subsystem.
//!
//! A [`TreeMaintainer`] owns one [`UpdatableTree`] per Subtree plus the
//! decomposition they were seeded from (universe, piece regions,
//! partitioner). Each iteration, [`TreeMaintainer::advance`] runs the
//! update cycle — resync, evict escapees, route them (within their
//! Subtree, to a sibling Subtree, or out of the universe), repair — and
//! hands back flattened [`BuiltTree`]s that drop into the unchanged
//! leaf-sharing / cache / traversal pipeline.
//!
//! Structural drift is bounded by three policies (§ISSUE-5):
//!
//! * a Subtree whose cumulative escapee fraction since its last build
//!   exceeds `escape_rebuild_fraction` is rebuilt alone,
//! * a Subtree whose depth grew more than `depth_skew_rebuild` levels
//!   past its as-built depth is rebuilt alone,
//! * when the max/mean particle load across Partitions exceeds
//!   `imbalance_rebuild`, the whole tree is rebuilt and re-decomposed
//!   (fresh universe, pieces, and partitioner) — as is any step where a
//!   particle leaves the universe box entirely.
//!
//! All decisions are deterministic functions of the particle state, so
//! a crash-recovery replay that restores the maintained trees and
//! re-runs the same inputs reproduces the same structure.

use crate::config::{Configuration, DecompType, SfcCurve};
use crate::decomp::{decompose_within, universe_for, Partitioner, SubtreePiece};
use paratreet_geometry::{BoundingBox, NodeKey, Vec3};
use paratreet_particles::{Particle, ParticleVec};
use paratreet_telemetry::metrics::{MetricSource, MetricsRegistry};
use paratreet_tree::{BuiltTree, Data, TreeBuilder, UpdatableTree, UpdateStats};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Cumulative `tree.update.*` counters over the life of a maintainer.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateTotals {
    /// Incremental advances performed (seeding not included).
    pub steps: u64,
    /// Particles whose position or mass changed across all advances.
    pub moved: u64,
    /// Particles patched in place (moved but stayed in their leaf).
    pub patched: u64,
    /// Particles that escaped their leaf bbox.
    pub escaped: u64,
    /// Escapees that crossed into a different Subtree.
    pub migrated: u64,
    /// Leaf splits performed by repair passes.
    pub splits: u64,
    /// Interior collapses performed by repair passes.
    pub merges: u64,
    /// Emptied regions pruned.
    pub pruned: u64,
    /// Nodes whose `Data` summary was re-accumulated.
    pub refreshed: u64,
    /// Single-Subtree rebuilds triggered by drift thresholds.
    pub subtree_rebuilds: u64,
    /// Whole-tree rebuild + re-decomposition fallbacks.
    pub full_rebuilds: u64,
    /// Max/mean partition load after the most recent advance.
    pub last_imbalance: f64,
}

impl MetricSource for UpdateTotals {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.steps"), self.steps);
        registry.set_u64(format!("{prefix}.moved"), self.moved);
        registry.set_u64(format!("{prefix}.patched"), self.patched);
        registry.set_u64(format!("{prefix}.escaped"), self.escaped);
        registry.set_u64(format!("{prefix}.migrated"), self.migrated);
        registry.set_u64(format!("{prefix}.splits"), self.splits);
        registry.set_u64(format!("{prefix}.merges"), self.merges);
        registry.set_u64(format!("{prefix}.pruned"), self.pruned);
        registry.set_u64(format!("{prefix}.refreshed"), self.refreshed);
        registry.set_u64(format!("{prefix}.subtree_rebuilds"), self.subtree_rebuilds);
        registry.set_u64(format!("{prefix}.full_rebuilds"), self.full_rebuilds);
        registry.set_f64(format!("{prefix}.last_imbalance"), self.last_imbalance);
    }
}

/// What one [`TreeMaintainer::advance`] did — consumed by the engines
/// for telemetry and (in the DES engine) virtual-time cost charging.
#[derive(Clone, Debug, Default)]
pub struct MaintainRound {
    /// Summed per-subtree update counters for this round.
    pub stats: UpdateStats,
    /// Escapees that crossed Subtree boundaries.
    pub n_migrated: u64,
    /// `(from_subtree, to_subtree, count)` migration edges, ascending.
    pub migrations: Vec<(u32, u32, u32)>,
    /// Per-subtree structural work units (evictions + insertions +
    /// splits + merges + summary refreshes) — the DES engine's update
    /// task cost driver.
    pub per_subtree_work: Vec<u64>,
    /// Subtrees rebuilt alone by drift thresholds this round.
    pub rebuilt_subtrees: Vec<u32>,
    /// The whole-tree fallback fired (universe escape or imbalance).
    pub full_rebuild: bool,
    /// Max/mean partition load measured this round.
    pub imbalance: f64,
}

/// Per-Subtree structural-drift counters.
#[derive(Clone, Copy, Debug)]
struct Drift {
    /// Escapees evicted from this Subtree since its last (re)build.
    escaped: u64,
    /// The Subtree's depth as of its last (re)build.
    built_depth: u32,
}

/// Piece metadata retained after the builds consume the decomposition.
#[derive(Clone, Copy, Debug)]
struct PieceMeta {
    key: NodeKey,
    bbox: BoundingBox,
    depth: u32,
}

/// Maintains the global tree across iterations for one engine. Seeded
/// once with a full decompose + build; advanced once per iteration with
/// the integrated particle state.
pub struct TreeMaintainer<D: Data> {
    config: Configuration,
    universe: BoundingBox,
    pieces: Vec<PieceMeta>,
    trees: Vec<UpdatableTree<D>>,
    partitioner: Partitioner,
    n_partitions: usize,
    drift: Vec<Drift>,
    totals: UpdateTotals,
    parallel: bool,
}

impl<D: Data> TreeMaintainer<D> {
    /// Full decompose + build, retaining everything needed to maintain
    /// the result. `config` must already carry any engine-raised
    /// `n_subtrees` / `n_partitions` minimums. With
    /// `incremental.universe_pad == 0` the returned trees are
    /// bit-identical to a fresh [`crate::decompose`] + build pass.
    pub fn seed(
        config: &Configuration,
        particles: Vec<Particle>,
        parallel: bool,
    ) -> (TreeMaintainer<D>, Vec<BuiltTree<D>>) {
        let mut m = TreeMaintainer {
            config: config.clone(),
            universe: BoundingBox::empty(),
            pieces: Vec::new(),
            trees: Vec::new(),
            partitioner: Partitioner::KeyRanges { splitters: Vec::new() },
            n_partitions: config.n_partitions,
            drift: Vec::new(),
            totals: UpdateTotals::default(),
            parallel,
        };
        let built = m.reseed(particles);
        (m, built)
    }

    /// The Partition assignment for the maintained decomposition.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Number of Partitions the maintained partitioner produces.
    pub fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    /// Number of Subtrees (stable between full rebuilds).
    pub fn n_subtrees(&self) -> usize {
        self.trees.len()
    }

    /// The maintained universe box.
    pub fn universe(&self) -> BoundingBox {
        self.universe
    }

    /// Cumulative `tree.update.*` counters.
    pub fn totals(&self) -> &UpdateTotals {
        &self.totals
    }

    /// Full decompose + build from scratch (seed and fallback path).
    fn reseed(&mut self, particles: Vec<Particle>) -> Vec<BuiltTree<D>> {
        let cfg = &self.config;
        let universe = universe_for(&particles, cfg, cfg.incremental.universe_pad);
        let decomp = decompose_within(particles, cfg, universe);
        self.universe = decomp.universe;
        self.partitioner = decomp.partitioner;
        self.n_partitions = decomp.n_partitions;
        self.pieces = decomp
            .subtrees
            .iter()
            .map(|p| PieceMeta { key: p.key, bbox: p.bbox, depth: p.depth })
            .collect();
        let tree_type = cfg.tree_type;
        let bucket_size = cfg.bucket_size;
        let parallel = self.parallel;
        let build_one = |piece: SubtreePiece| {
            let builder = TreeBuilder {
                tree_type,
                bucket_size,
                parallel,
                root_key: piece.key,
                root_depth: piece.depth,
            };
            let bbox = piece.bbox;
            builder.build::<D>(piece.particles, bbox)
        };
        let built: Vec<BuiltTree<D>> = if parallel {
            decomp.subtrees.into_par_iter().map(build_one).collect()
        } else {
            decomp.subtrees.into_iter().map(build_one).collect()
        };
        self.trees = built
            .iter()
            .zip(&self.pieces)
            .map(|(t, p)| UpdatableTree::from_built(t, tree_type, bucket_size, p.depth))
            .collect();
        self.drift =
            self.trees.iter().map(|t| Drift { escaped: 0, built_depth: t.max_depth() }).collect();
        built
    }

    /// One incremental iteration. `master` is the integrated particle
    /// state in the order the previous trees' buckets tiled it (i.e.
    /// the concatenation of the returned trees' particle arrays).
    /// Returns the flattened trees for this iteration plus what was
    /// done to produce them. Falls back to a transparent whole-tree
    /// rebuild when a particle leaves the universe or the partition
    /// load imbalance crosses its threshold.
    pub fn advance(&mut self, mut master: Vec<Particle>) -> (Vec<BuiltTree<D>>, MaintainRound) {
        let inc = self.config.incremental;
        self.totals.steps += 1;
        let mut round = MaintainRound::default();

        // Population change (e.g. collisional merges or accretion): the
        // maintained bucket slices no longer tile the master array, so
        // patching is meaningless — re-decompose over the new set.
        let maintained: usize = self.trees.iter().map(|t| t.n_particles() as usize).sum();
        if master.len() != maintained {
            return self.fall_back(master, round);
        }

        // Universe escape: the maintained root regions no longer cover
        // the particle set — re-decompose over a fresh (padded) box.
        if master.iter().any(|p| !self.universe.contains(p.pos)) {
            return self.fall_back(master, round);
        }

        // Refresh SFC keys in place (same keying rule as decompose) so
        // the retained partitioner and leaf sharing stay meaningful.
        if self.config.sfc == SfcCurve::Hilbert && self.config.decomp_type == DecompType::Sfc {
            for p in master.iter_mut() {
                p.key = paratreet_geometry::hilbert_key(p.pos, &self.universe);
            }
        } else {
            master.assign_keys(&self.universe);
        }

        // Resync each Subtree from its slice of the master array.
        let counts: Vec<usize> = self.trees.iter().map(|t| t.n_particles() as usize).collect();
        let mut off = 0usize;
        for (ti, t) in self.trees.iter_mut().enumerate() {
            round.stats.n_moved += t.resync(&master[off..off + counts[ti]]);
            off += counts[ti];
        }
        assert_eq!(off, master.len(), "advance: master does not match maintained population");
        drop(master);

        // Evict escapees and route each to the Subtree whose region now
        // contains it (most stay home; boundary crossers migrate).
        let n_trees = self.trees.len();
        round.per_subtree_work = vec![0u64; n_trees];
        let mut migrations: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        let mut homeless: BTreeMap<usize, Vec<Particle>> = BTreeMap::new();
        for si in 0..n_trees {
            let escaped = self.trees[si].evict_escapees();
            round.stats.n_escaped += escaped.len() as u64;
            self.drift[si].escaped += escaped.len() as u64;
            round.per_subtree_work[si] += escaped.len() as u64;
            for p in escaped {
                let (dest, covered) = self.route(p.pos, si);
                if dest != si {
                    *migrations.entry((si as u32, dest as u32)).or_default() += 1;
                    round.n_migrated += 1;
                }
                round.stats.n_inserted += 1;
                round.per_subtree_work[dest] += 1;
                if covered {
                    self.trees[dest].insert(p);
                } else {
                    homeless.entry(dest).or_default().push(p);
                }
            }
        }
        round.migrations = migrations.into_iter().map(|((f, t), n)| (f, t, n)).collect();

        // Escapees in a region no piece covers cannot be sieved (every
        // leaf box must contain its particles): the adopting Subtree
        // grows its region box over them and rebuilds.
        for (dest, extra) in homeless {
            self.rebuild_subtree(dest, extra);
            round.rebuilt_subtrees.push(dest as u32);
            self.totals.subtree_rebuilds += 1;
        }

        // Repair: split/merge/prune and re-accumulate dirty paths.
        for (si, t) in self.trees.iter_mut().enumerate() {
            let s = t.repair();
            round.per_subtree_work[si] += s.n_splits + s.n_merges + s.n_refreshed;
            round.stats += s;
        }

        // Per-Subtree drift rebuilds.
        for si in 0..n_trees {
            let n = self.trees[si].n_particles() as u64;
            let frac = self.drift[si].escaped as f64 / n.max(1) as f64;
            let skew = self.trees[si].max_depth().saturating_sub(self.drift[si].built_depth);
            if frac > inc.escape_rebuild_fraction || skew > inc.depth_skew_rebuild {
                self.rebuild_subtree(si, Vec::new());
                round.rebuilt_subtrees.push(si as u32);
                self.totals.subtree_rebuilds += 1;
            }
        }

        // Flatten for the pipeline, then check partition balance over
        // the flattened buckets.
        let flats: Vec<BuiltTree<D>> = self.trees.iter().map(|t| t.flatten()).collect();
        let mut loads = vec![0u64; self.n_partitions.max(1)];
        let mut total = 0u64;
        for f in &flats {
            for p in &f.particles {
                loads[self.partitioner.assign(p) as usize] += 1;
                total += 1;
            }
        }
        let mean = total as f64 / loads.len() as f64;
        let imbalance = if mean > 0.0 { *loads.iter().max().unwrap() as f64 / mean } else { 1.0 };
        round.imbalance = imbalance;
        self.totals.last_imbalance = imbalance;
        self.accumulate(&round);
        if imbalance > inc.imbalance_rebuild {
            let master: Vec<Particle> = flats.into_iter().flat_map(|f| f.particles).collect();
            return self.fall_back(master, round);
        }
        (flats, round)
    }

    /// Whole-tree rebuild + re-decomposition fallback, transparent to
    /// the caller (the returned trees slot into the pipeline as usual).
    fn fall_back(
        &mut self,
        particles: Vec<Particle>,
        mut round: MaintainRound,
    ) -> (Vec<BuiltTree<D>>, MaintainRound) {
        let built = self.reseed(particles);
        round.full_rebuild = true;
        round.rebuilt_subtrees.clear();
        round.per_subtree_work = vec![0u64; built.len()];
        self.totals.full_rebuilds += 1;
        (built, round)
    }

    /// Folds a round's per-step counters into the cumulative totals.
    fn accumulate(&mut self, round: &MaintainRound) {
        let s = &round.stats;
        self.totals.moved += s.n_moved;
        self.totals.patched += s.n_moved.saturating_sub(s.n_escaped);
        self.totals.escaped += s.n_escaped;
        self.totals.migrated += round.n_migrated;
        self.totals.splits += s.n_splits;
        self.totals.merges += s.n_merges;
        self.totals.pruned += s.n_pruned;
        self.totals.refreshed += s.n_refreshed;
    }

    /// The Subtree whose region contains `pos`, preferring the source
    /// Subtree on shared faces (avoids spurious boundary migrations).
    /// Pieces tile the universe, so the nearest-region fallback only
    /// guards float edge cases.
    fn route(&self, pos: Vec3, src: usize) -> (usize, bool) {
        if self.pieces[src].bbox.contains(pos) {
            return (src, true);
        }
        for (i, piece) in self.pieces.iter().enumerate() {
            if piece.bbox.contains(pos) {
                return (i, true);
            }
        }
        // The position fell into a region no piece covers (an octant
        // that held no particles at decomposition time): the nearest
        // piece adopts it, growing its region box.
        let mut best = src;
        let mut best_d = f64::INFINITY;
        for (i, piece) in self.pieces.iter().enumerate() {
            let d = piece.bbox.dist_sq_to(pos);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        (best, false)
    }

    /// Rebuilds one Subtree from its current particles (drift policy),
    /// plus `outsiders` — escapees whose positions no piece covers; the
    /// region box grows over them first so every leaf box still
    /// contains its particles.
    fn rebuild_subtree(&mut self, si: usize, outsiders: Vec<Particle>) {
        for p in &outsiders {
            self.pieces[si].bbox.grow(p.pos);
        }
        let piece = self.pieces[si];
        let mut particles = self.trees[si].all_particles();
        particles.extend(outsiders);
        let builder = TreeBuilder {
            tree_type: self.config.tree_type,
            bucket_size: self.config.bucket_size,
            parallel: self.parallel,
            root_key: piece.key,
            root_depth: piece.depth,
        };
        let built = builder.build::<D>(particles, piece.bbox);
        self.trees[si] = UpdatableTree::from_built(
            &built,
            self.config.tree_type,
            self.config.bucket_size,
            piece.depth,
        );
        self.drift[si] = Drift { escaped: 0, built_depth: self.trees[si].max_depth() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IncrementalConfig;
    use paratreet_particles::gen;
    use paratreet_tree::CountData;

    fn config() -> Configuration {
        Configuration {
            n_subtrees: 6,
            n_partitions: 4,
            bucket_size: 8,
            incremental: IncrementalConfig { enabled: true, ..Default::default() },
            ..Default::default()
        }
    }

    fn masters(trees: &[BuiltTree<CountData>]) -> Vec<Particle> {
        trees.iter().flat_map(|t| t.particles.iter().copied()).collect()
    }

    #[test]
    fn seed_then_zero_motion_advance_is_identical() {
        let mut cfg = config();
        cfg.incremental.universe_pad = 0.0;
        let ps = gen::uniform_cube(800, 5, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let master = masters(&seeded);
        let (trees, round) = m.advance(master.clone());
        assert!(!round.full_rebuild);
        assert_eq!(round.stats.n_moved, 0);
        assert_eq!(round.stats.n_escaped, 0);
        assert_eq!(trees.len(), seeded.len());
        for (a, b) in trees.iter().zip(&seeded) {
            assert_eq!(a.nodes.len(), b.nodes.len());
            for (x, y) in a.nodes.iter().zip(&b.nodes) {
                assert_eq!(x.key, y.key);
                assert_eq!(x.shape, y.shape);
                assert_eq!(x.data, y.data);
            }
            assert_eq!(a.particles, b.particles);
        }
    }

    #[test]
    fn motion_advance_conserves_and_validates() {
        let cfg = config();
        let ps = gen::clustered(1500, 3, 11, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let mut master = masters(&seeded);
        let n0 = master.len();
        let mut rounds_with_migration = 0;
        for step in 0..4 {
            // Drift everything along +x: particles cross leaf and
            // Subtree boundaries; the universe pad absorbs the first
            // steps, then the full-rebuild fallback re-decomposes.
            let extent = m.universe().hi.x - m.universe().lo.x;
            for p in master.iter_mut() {
                p.pos.x += 0.015 * extent;
            }
            let (trees, round) = m.advance(master);
            assert_eq!(
                trees.iter().map(|t| t.particles.len()).sum::<usize>(),
                n0,
                "step {step} lost particles"
            );
            for t in &trees {
                t.validate(cfg.bucket_size).unwrap();
            }
            if round.n_migrated > 0 {
                rounds_with_migration += 1;
            }
            master = masters(&trees);
        }
        assert!(rounds_with_migration > 0, "contraction should migrate particles");
        assert_eq!(m.totals().steps, 4);
        assert!(m.totals().moved > 0);
    }

    #[test]
    fn universe_escape_falls_back_to_full_rebuild() {
        let mut cfg = config();
        cfg.incremental.universe_pad = 0.0;
        let ps = gen::uniform_cube(400, 7, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let mut master = masters(&seeded);
        // Fling one particle far outside the box.
        master[0].pos = master[0].pos + Vec3::splat(50.0);
        let (trees, round) = m.advance(master);
        assert!(round.full_rebuild);
        assert_eq!(m.totals().full_rebuilds, 1);
        assert_eq!(trees.iter().map(|t| t.particles.len()).sum::<usize>(), 400);
        for t in &trees {
            t.validate(cfg.bucket_size).unwrap();
        }
    }

    #[test]
    fn heavy_churn_triggers_subtree_rebuilds() {
        let mut cfg = config();
        cfg.incremental.escape_rebuild_fraction = 0.05;
        let ps = gen::uniform_cube(1000, 13, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let mut master = masters(&seeded);
        let mut rng_phase = 1.0f64;
        for _ in 0..3 {
            let c = m.universe().center();
            for p in master.iter_mut() {
                // Strong swirl: lots of leaf escapes, few universe exits.
                let r = p.pos - c;
                p.pos = c + Vec3::new(-r.y, r.x, r.z * 0.9) * (0.8 + 0.05 * rng_phase);
            }
            rng_phase = -rng_phase;
            let (trees, _round) = m.advance(master);
            master = masters(&trees);
        }
        assert!(
            m.totals().subtree_rebuilds > 0 || m.totals().full_rebuilds > 0,
            "heavy churn must trigger a rebuild policy: {:?}",
            m.totals()
        );
    }
}
