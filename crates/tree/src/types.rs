//! Built-in tree types.
//!
//! A tree type is "the strategy used to subdivide the spatial regions"
//! (paper §I). ParaTreeT ships an octree, a k-d tree, and — from the
//! planetary-disk case study — a longest-dimension tree; users can add
//! their own by choosing a branch factor and a split rule (§IV-B exposes
//! `findChildsLastParticle`; here the equivalent hook is
//! the builder's split rule).

use paratreet_geometry::Axis;

/// The built-in spatial tree types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TreeType {
    /// Split each node at its centre into 8 equal-volume octants.
    /// Bounding boxes keep aspect ratios near one — preferred by
    /// Barnes-Hut opening criteria — but the tree can become deep and
    /// imbalanced for non-uniform distributions.
    Octree,
    /// Binary splits at the particle median, cycling the split axis with
    /// depth (x, y, z, x, ...). Guaranteed balanced; node aspect ratios
    /// are unconstrained.
    KdTree,
    /// Binary splits at the particle median, always along the longest
    /// axis of the current subspace — the custom type built for
    /// mostly-2D planetesimal disks in the paper's case study, where
    /// splitting all three dimensions equally "makes for useless tree
    /// branching and poor decomposition".
    LongestDim,
    /// Binary splits at the *spatial midpoint*, cycling axes with depth
    /// — an octree unrolled one dimension at a time (reference
    /// ParaTreeT's "binary oct" type). Space-driven like the octree
    /// (children can be empty, depth follows density), but with branch
    /// factor 2: finer-grained subtree pieces and cheaper node state.
    BinaryOct,
}

impl TreeType {
    /// Number of children per internal node.
    #[inline]
    pub fn branch_factor(self) -> usize {
        match self {
            TreeType::Octree => 8,
            TreeType::KdTree | TreeType::LongestDim | TreeType::BinaryOct => 2,
        }
    }

    /// Bits per [`paratreet_geometry::NodeKey`] digit.
    #[inline]
    pub fn bits_per_level(self) -> u32 {
        match self {
            TreeType::Octree => 3,
            TreeType::KdTree | TreeType::LongestDim | TreeType::BinaryOct => 1,
        }
    }

    /// The split axis used at `depth` for axis-cycling types; `None` for
    /// types that pick the axis from geometry (octree splits all three,
    /// longest-dim inspects the box).
    #[inline]
    pub fn cycling_axis(self, depth: u32) -> Option<Axis> {
        match self {
            TreeType::KdTree | TreeType::BinaryOct => Some(Axis::from_index(depth as usize % 3)),
            _ => None,
        }
    }

    /// Whether internal nodes split at the *particle median* (frozen at
    /// build time) rather than at a position-determined plane. Only
    /// median-split trees can drift out of balance as particles move —
    /// octree/binary-oct structure is a pure function of positions, so
    /// a rebuild reproduces the maintained shape exactly.
    #[inline]
    pub fn is_median_split(self) -> bool {
        matches!(self, TreeType::KdTree | TreeType::LongestDim)
    }

    /// Human-readable name used by harness output.
    pub fn name(self) -> &'static str {
        match self {
            TreeType::Octree => "oct",
            TreeType::KdTree => "kd",
            TreeType::LongestDim => "longest-dim",
            TreeType::BinaryOct => "binary-oct",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_factors_match_bits() {
        for t in [TreeType::Octree, TreeType::KdTree, TreeType::LongestDim, TreeType::BinaryOct] {
            assert_eq!(t.branch_factor(), 1 << t.bits_per_level());
        }
    }

    #[test]
    fn kd_axes_cycle() {
        assert_eq!(TreeType::KdTree.cycling_axis(0), Some(Axis::X));
        assert_eq!(TreeType::KdTree.cycling_axis(1), Some(Axis::Y));
        assert_eq!(TreeType::KdTree.cycling_axis(2), Some(Axis::Z));
        assert_eq!(TreeType::KdTree.cycling_axis(3), Some(Axis::X));
        assert_eq!(TreeType::Octree.cycling_axis(5), None);
        assert_eq!(TreeType::LongestDim.cycling_axis(5), None);
    }
}
