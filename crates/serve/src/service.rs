//! The query service: a single writer advancing the live tree, a
//! reader pool answering query batches against pinned snapshots.
//!
//! Wiring (ISSUE 6 tentpole):
//!
//! ```text
//!  clients --submit--> BoundedQueue --pop--> worker pool
//!     |                    |                    |  pin()
//!     |  Overloaded        |                 SnapshotRing <--publish-- writer
//!     +<- (Shed policy)    +- blocks (Defer)     |                (TreeMaintainer)
//! ```
//!
//! Latency is measured from `Request::submitted_at` to completion, so
//! queue wait is charged to the service — the histograms' p99/p999 are
//! end-to-end numbers, which is what admission control protects.

use crate::error::ServeError;
use crate::load::checksum_fold;
use crate::queue::{BoundedQueue, PushError};
use crate::request::{execute_batch, execute_batch_observed, QueryClass, Request, Response};
use crate::snapshot::{PinnedSnapshot, SnapshotRing};
use crossbeam::channel::Sender;
use paratreet_core::TreeMaintainer;
use paratreet_geometry::BoundingBox;
use paratreet_particles::Particle;
use paratreet_telemetry::{FlightRecorder, Histogram, MetricsRegistry, SpanLink, Telemetry, Track};
use paratreet_tree::{BuiltTree, Data, QueryScratch};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens when the work queue is full at submission time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject the batch with [`ServeError::Overloaded`] (load shedding).
    Shed,
    /// Block the submitter until space frees (backpressure).
    Defer,
}

/// Service sizing and policy.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Reader (worker) threads. Zero is allowed — nothing drains the
    /// queue, which the overload tests use to exercise shedding
    /// deterministically.
    pub workers: usize,
    /// Work queue capacity, in batches.
    pub queue_capacity: usize,
    /// Snapshot ring capacity — the snapshot-lag budget granted to the
    /// slowest reader before the writer stalls.
    pub ring_capacity: usize,
    /// Full-queue behaviour.
    pub admission: AdmissionPolicy,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            ring_capacity: 8,
            admission: AdmissionPolicy::Shed,
        }
    }
}

/// How a spawned writer paces tree advances.
#[derive(Clone, Copy, Debug)]
pub struct WriterConfig {
    /// Advances to run before the writer retires (the service keeps
    /// answering against the last snapshot afterwards).
    pub iterations: u64,
    /// Optional sleep between advances (throttles publication churn).
    pub pace: Option<Duration>,
}

/// The writer's motion model: integrates `particles` between advances
/// (`iteration` counts from 1).
pub type MotionModel = Box<dyn FnMut(&mut [Particle], u64) + Send>;

/// One queued unit of work: a batch of requests and where to send the
/// answers. `reply: None` is fire-and-forget (metrics only).
struct WorkItem {
    requests: Vec<Request>,
    reply: Option<Sender<Vec<Response>>>,
    /// When the batch entered [`QueryService::submit`] — the boundary
    /// between client-side batch formation and queue wait.
    submitted_to_queue: Instant,
}

/// The per-class latency histograms: the end-to-end total plus its
/// stage components, all nanoseconds. `total` keeps exemplars so
/// `serve.latency.<class>.p999` links to a concrete traced request.
struct LatencySet {
    /// Submit → accounted (the number admission control protects).
    total: Histogram,
    /// Submit → popped by a worker (batch formation + queue wait;
    /// under [`AdmissionPolicy::Defer`] this includes the backpressure
    /// block).
    queue_wait: Histogram,
    /// Popped → snapshot pinned (snapshot contention).
    pin_wait: Histogram,
    /// Pinned → batch executed (service time, whole batch).
    exec: Histogram,
}

impl LatencySet {
    fn new() -> LatencySet {
        LatencySet {
            total: Histogram::with_exemplars(),
            queue_wait: Histogram::new(),
            pin_wait: Histogram::new(),
            exec: Histogram::new(),
        }
    }
}

/// State shared by submitters, workers, and the writer.
struct Shared<D: Data> {
    ring: Arc<SnapshotRing<D>>,
    queue: BoundedQueue<WorkItem>,
    /// Per-class latency (indexed by [`QueryClass::index`]).
    latency: [LatencySet; 4],
    /// Request tracing sink: disabled by default, attached via
    /// [`QueryService::with_telemetry`]. When enabled, workers emit a
    /// linked span chain (request → admitted/queued/pinned/executed/
    /// responded) for every request.
    telemetry: Telemetry,
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    /// Order-independent XOR fold of every completed result checksum —
    /// lets end-to-end tests compare runs without collecting replies.
    result_fold: AtomicU64,
}

/// The concurrent spatial query service (ISSUE 6 tentpole). Owns the
/// worker pool and (optionally) the writer thread; dropping it shuts
/// both down.
pub struct QueryService<D: Data> {
    shared: Arc<Shared<D>>,
    admission: AdmissionPolicy,
    workers: Vec<JoinHandle<()>>,
    writer: Option<JoinHandle<u64>>,
    stop_writer: Arc<AtomicBool>,
    sampler: Option<JoinHandle<()>>,
    stop_sampler: Arc<AtomicBool>,
}

/// The columns [`QueryService::spawn_flight_sampler`] records, in row
/// order. `qps` is the completed-query rate over the last interval.
pub const FLIGHT_SERIES: &[&str] = &[
    "queue_depth",
    "qps",
    "completed",
    "shed",
    "epochs_published",
    "pin_retries",
    "writer_stalls",
];

impl<D: Data> QueryService<D> {
    /// Starts the worker pool. No snapshot exists yet: publish one (or
    /// spawn a writer) before submitting.
    pub fn new(config: ServeConfig) -> QueryService<D> {
        QueryService::with_telemetry(config, Telemetry::disabled())
    }

    /// [`QueryService::new`] with request tracing attached: when
    /// `telemetry` is enabled, every completed request leaves a causal
    /// span chain (root `request` span + admitted/queued/pinned/
    /// executed/responded children) on its worker's track, and latency
    /// exemplars carry the root span id.
    pub fn with_telemetry(config: ServeConfig, telemetry: Telemetry) -> QueryService<D> {
        let shared = Arc::new(Shared {
            ring: SnapshotRing::new(config.ring_capacity),
            queue: BoundedQueue::new(config.queue_capacity),
            latency: [LatencySet::new(), LatencySet::new(), LatencySet::new(), LatencySet::new()],
            telemetry,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            result_fold: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        QueryService {
            shared,
            admission: config.admission,
            workers,
            writer: None,
            stop_writer: Arc::new(AtomicBool::new(false)),
            sampler: None,
            stop_sampler: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Spawns the flight-recorder sampler: every `interval` it pushes
    /// one [`FLIGHT_SERIES`] row (queue depth, q/s, completed, shed,
    /// epochs published, pin retries, writer stalls) into `recorder`,
    /// plus a final row at shutdown. No-op wiring when the recorder is
    /// disabled — the thread still runs but samples vanish.
    ///
    /// # Panics
    /// If a sampler was already spawned.
    pub fn spawn_flight_sampler(&mut self, recorder: FlightRecorder, interval: Duration) {
        assert!(self.sampler.is_none(), "flight sampler already spawned");
        let shared = Arc::clone(&self.shared);
        let stop = Arc::clone(&self.stop_sampler);
        self.sampler = Some(std::thread::spawn(move || {
            let mut last = Instant::now();
            let mut last_completed = shared.completed.load(Relaxed);
            loop {
                let stopping = stop.load(Relaxed);
                let completed = shared.completed.load(Relaxed);
                let dt = last.elapsed().as_secs_f64();
                let qps = if dt > 0.0 { (completed - last_completed) as f64 / dt } else { 0.0 };
                last = Instant::now();
                last_completed = completed;
                let ring = shared.ring.stats();
                recorder.sample(&[
                    shared.queue.len() as f64,
                    qps,
                    completed as f64,
                    shared.shed.load(Relaxed) as f64,
                    ring.published as f64,
                    ring.pin_retries as f64,
                    ring.writer_stalls as f64,
                ]);
                if stopping {
                    return;
                }
                std::thread::sleep(interval);
            }
        }));
    }

    /// The snapshot ring (for direct pinning, e.g. replay audits).
    pub fn ring(&self) -> &Arc<SnapshotRing<D>> {
        &self.shared.ring
    }

    /// Publishes a snapshot directly (no writer thread); returns its
    /// epoch. This is also how an embedding simulation feeds the
    /// service from a `Framework` snapshot hook.
    pub fn publish(&self, trees: Vec<BuiltTree<D>>, universe: BoundingBox) -> u64 {
        self.shared.ring.publish(trees, universe)
    }

    /// The epoch queries are currently answered against.
    pub fn current_epoch(&self) -> Option<u64> {
        self.shared.ring.head_epoch()
    }

    /// Pins the current snapshot (replay audits, ad-hoc queries).
    pub fn pin(&self) -> Option<PinnedSnapshot<D>> {
        self.shared.ring.pin()
    }

    /// Submits a batch. Answers arrive on `reply` (or nowhere, for
    /// fire-and-forget). Fails fast with [`ServeError::NotReady`]
    /// before the first snapshot, [`ServeError::Overloaded`] when the
    /// queue is full under `Shed`, and [`ServeError::ShuttingDown`]
    /// after shutdown.
    pub fn submit(
        &self,
        requests: Vec<Request>,
        reply: Option<Sender<Vec<Response>>>,
    ) -> Result<(), ServeError> {
        if self.shared.ring.head_epoch().is_none() {
            return Err(ServeError::NotReady);
        }
        let n = requests.len() as u64;
        let item = WorkItem { requests, reply, submitted_to_queue: Instant::now() };
        let outcome = match self.admission {
            AdmissionPolicy::Shed => self.shared.queue.try_push(item),
            AdmissionPolicy::Defer => self.shared.queue.push_wait(item),
        };
        match outcome {
            Ok(()) => {
                self.shared.submitted.fetch_add(n, Relaxed);
                Ok(())
            }
            Err(PushError::Full(_)) => {
                self.shared.shed.fetch_add(n, Relaxed);
                Err(ServeError::Overloaded {
                    depth: self.shared.queue.len(),
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Spawns the single writer: seeds a master particle array from
    /// `seed_trees`, publishes them as the first snapshot, then runs
    /// `config.iterations` advances — `motion(particles, iteration)`
    /// integrates between advances — publishing each result. Returns
    /// immediately; the writer's final epoch comes back from
    /// [`QueryService::shutdown`].
    ///
    /// # Panics
    /// If a writer was already spawned.
    pub fn spawn_writer(
        &mut self,
        mut maintainer: TreeMaintainer<D>,
        seed_trees: Vec<BuiltTree<D>>,
        mut motion: MotionModel,
        config: WriterConfig,
    ) {
        assert!(self.writer.is_none(), "writer already spawned");
        let ring = Arc::clone(&self.shared.ring);
        let stop = Arc::clone(&self.stop_writer);
        // Publish the seed synchronously so `submit` is ready the
        // moment this returns.
        let mut master: Vec<Particle> =
            seed_trees.iter().flat_map(|t| t.particles.iter().copied()).collect();
        ring.publish(seed_trees, maintainer.universe());
        self.writer = Some(std::thread::spawn(move || {
            let mut last_epoch = 0u64;
            for iteration in 1..=config.iterations {
                if stop.load(Relaxed) {
                    break;
                }
                motion(&mut master, iteration);
                let (trees, _round) = maintainer.advance(std::mem::take(&mut master));
                master = trees.iter().flat_map(|t| t.particles.iter().copied()).collect();
                last_epoch = ring.publish(trees, maintainer.universe());
                if let Some(pace) = config.pace {
                    std::thread::sleep(pace);
                }
            }
            last_epoch
        }));
    }

    /// True while the writer thread is still advancing.
    pub fn writer_running(&self) -> bool {
        self.writer.as_ref().is_some_and(|w| !w.is_finished())
    }

    /// Current service metrics under `serve.*` names: queue and
    /// snapshot counters plus per-class latency summaries
    /// (`serve.latency.<class>.{count,mean,p50,p99,p999,max}`, ns) with
    /// their stage components
    /// (`serve.latency.<class>.{queue_wait,pin_wait,exec}.*`) and p999
    /// exemplars (`serve.latency.<class>.p999_exemplar.*`). Every key is
    /// present on every run — classes with no traffic export zero-count
    /// snapshots, so the schema is stable for downstream tooling.
    pub fn metrics(&self) -> MetricsRegistry {
        let s = &self.shared;
        let mut m = MetricsRegistry::new();
        m.set_u64("serve.queries.submitted", s.submitted.load(Relaxed));
        m.set_u64("serve.queries.completed", s.completed.load(Relaxed));
        m.set_u64("serve.queries.shed", s.shed.load(Relaxed));
        m.set_u64("serve.batches", s.batches.load(Relaxed));
        m.set_u64("serve.queue.depth", s.queue.len() as u64);
        m.set_u64("serve.queue.capacity", s.queue.capacity() as u64);
        m.set_u64("serve.epoch", s.ring.head_epoch().unwrap_or(0));
        m.absorb("serve.snapshots", &s.ring.stats());
        for class in QueryClass::ALL {
            let lat = &s.latency[class.index()];
            let prefix = format!("serve.latency.{}", class.label());
            m.absorb(&prefix, &lat.total.snapshot());
            m.absorb(&format!("{prefix}.queue_wait"), &lat.queue_wait.snapshot());
            m.absorb(&format!("{prefix}.pin_wait"), &lat.pin_wait.snapshot());
            m.absorb(&format!("{prefix}.exec"), &lat.exec.snapshot());
        }
        m
    }

    /// The running XOR fold of completed result checksums.
    pub fn result_fold(&self) -> u64 {
        self.shared.result_fold.load(SeqCst)
    }

    /// Stops the writer (if any), drains and closes the queue, joins
    /// the workers. Returns the writer's last published epoch.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) -> Option<u64> {
        self.stop_writer.store(true, Relaxed);
        let last = self.writer.take().map(|w| w.join().expect("writer panicked"));
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            w.join().expect("worker panicked");
        }
        // Stop the sampler last so its final row reflects the drained
        // end state.
        self.stop_sampler.store(true, Relaxed);
        if let Some(s) = self.sampler.take() {
            s.join().expect("flight sampler panicked");
        }
        last
    }
}

impl<D: Data> Drop for QueryService<D> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A worker: pop a batch, pin the freshest snapshot, answer, account.
/// With tracing enabled, every stage is timestamped and every request
/// leaves a linked span chain on this worker's track.
fn worker_loop<D: Data>(shared: Arc<Shared<D>>) {
    let mut scratch = QueryScratch::default();
    let tel = shared.telemetry.clone();
    let traced = tel.is_enabled();
    // Per-request `(entry subtree, exec start, exec end)` slots, filled
    // by the execution observer when tracing.
    let mut exec_obs: Vec<Option<(usize, Instant, Instant)>> = Vec::new();
    while let Some(item) = shared.queue.pop() {
        let popped = Instant::now();
        // `submit` refuses work before the first publish, so a pin is
        // always available here.
        let Some(pin) = shared.ring.pin() else { continue };
        let pinned = Instant::now();
        let responses = if traced {
            exec_obs.clear();
            exec_obs.resize(item.requests.len(), None);
            let mut observe = |i: usize, subtree: usize, t0: Instant, t1: Instant| {
                exec_obs[i] = Some((subtree, t0, t1))
            };
            execute_batch_observed(&pin, &item.requests, &mut scratch, Some(&mut observe))
        } else {
            execute_batch(&pin, &item.requests, &mut scratch)
        };
        drop(pin); // release the slot before reply/accounting

        let executed = Instant::now();
        let now = Instant::now();
        let track = Track { rank: 0, worker: tel.thread_slot() };
        for (i, req) in item.requests.iter().enumerate() {
            let total = now.saturating_duration_since(req.submitted_at);
            let queue_wait = popped.saturating_duration_since(req.submitted_at);
            let pin_wait = pinned.saturating_duration_since(popped);
            let exec = executed.saturating_duration_since(pinned);
            let lat = &shared.latency[req.query.class().index()];
            let rid = req.id();
            let mut root_span = 0u64;
            if traced {
                // Root span plus one child per stage, all linked by id —
                // the queued→admitted→pinned→executed→responded chain
                // `paratreet-analyze` rebuilds per request.
                root_span = tel.next_span_id();
                let submitted = tel.us_of(req.submitted_at);
                let entered = tel.us_of(item.submitted_to_queue);
                let popped_us = tel.us_of(popped);
                let pinned_us = tel.us_of(pinned);
                let executed_us = tel.us_of(executed);
                let now_us = tel.us_of(now);
                let root = SpanLink { id: Some(root_span), parent: None, request: Some(rid) };
                let child = |id: u64| SpanLink {
                    id: Some(id),
                    parent: Some(root_span),
                    request: Some(rid),
                };
                tel.span_linked(track, "request", submitted, now_us - submitted, None, root);
                tel.span_linked(
                    track,
                    "admitted",
                    submitted,
                    entered - submitted,
                    None,
                    child(tel.next_span_id()),
                );
                tel.span_linked(
                    track,
                    "queued",
                    entered,
                    popped_us - entered,
                    None,
                    child(tel.next_span_id()),
                );
                tel.span_linked(
                    track,
                    "pinned",
                    popped_us,
                    pinned_us - popped_us,
                    None,
                    child(tel.next_span_id()),
                );
                if let Some((subtree, t0, t1)) = exec_obs[i] {
                    tel.span_linked(
                        track,
                        "executed",
                        tel.us_of(t0),
                        tel.us_of(t1) - tel.us_of(t0),
                        Some(subtree as u64),
                        child(tel.next_span_id()),
                    );
                }
                tel.span_linked(
                    track,
                    "responded",
                    executed_us,
                    now_us - executed_us,
                    None,
                    child(tel.next_span_id()),
                );
            }
            lat.total.record_traced(total.as_nanos() as u64, rid, root_span);
            lat.queue_wait.record(queue_wait.as_nanos() as u64);
            lat.pin_wait.record(pin_wait.as_nanos() as u64);
            lat.exec.record(exec.as_nanos() as u64);
        }
        let mut fold = 0u64;
        for resp in &responses {
            fold ^= checksum_fold(resp);
        }
        shared.result_fold.fetch_xor(fold, SeqCst);
        shared.batches.fetch_add(1, Relaxed);
        shared.completed.fetch_add(item.requests.len() as u64, Relaxed);
        if let Some(reply) = item.reply {
            // The client may have gone away (load generator finished);
            // that is not the worker's problem.
            let _ = reply.send(responses);
        }
    }
}
