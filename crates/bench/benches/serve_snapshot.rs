//! Criterion microbenchmarks for the snapshot ring on the serving hot
//! paths: uncontended pin/unpin (every worker batch pays this),
//! publication (the writer's per-advance overhead beyond the tree
//! work itself), and pin acquisition while a publisher storms the ring
//! (the RCU retry path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paratreet_geometry::BoundingBox;
use paratreet_particles::gen;
use paratreet_serve::SnapshotRing;
use paratreet_tree::{CountData, TreeBuilder, TreeType};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

fn built_forest(n: usize) -> (Vec<paratreet_tree::BuiltTree<CountData>>, BoundingBox) {
    let ps = gen::clustered(n, 4, 11, 1.0, 1.0);
    let universe = BoundingBox::around(ps.iter().map(|p| p.pos));
    let tree = TreeBuilder::new(TreeType::Octree).bucket_size(16).build(ps, universe);
    (vec![tree], universe)
}

fn bench_serve_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_snapshot");

    // Reader fast path: pin + deref + unpin against a quiet ring.
    let ring: Arc<SnapshotRing<CountData>> = SnapshotRing::new(8);
    let (trees, universe) = built_forest(10_000);
    ring.publish(trees, universe);
    group.bench_function("pin_unpin_uncontended", |b| {
        b.iter(|| {
            let pin = ring.pin().unwrap();
            black_box((pin.epoch(), pin.n_particles()))
        })
    });

    // Writer overhead: one publication of an already-built forest
    // (clone outside the ring, swap + retire inside).
    for n in [1_000usize, 10_000] {
        let (trees, universe) = built_forest(n);
        let ring: Arc<SnapshotRing<CountData>> = SnapshotRing::new(8);
        group.bench_with_input(BenchmarkId::new("publish", n), &n, |b, _| {
            b.iter(|| black_box(ring.publish(trees.clone(), universe)))
        });
    }

    // Reader under churn: pins taken while another thread publishes as
    // fast as it can — exercises the epoch-validate/retry loop.
    let ring: Arc<SnapshotRing<CountData>> = SnapshotRing::new(4);
    let (trees, universe) = built_forest(1_000);
    ring.publish(trees.clone(), universe);
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Relaxed) {
                ring.publish(trees.clone(), universe);
            }
        })
    };
    group.bench_function("pin_under_publish_storm", |b| {
        b.iter(|| {
            let pin = ring.pin().unwrap();
            black_box(pin.epoch())
        })
    });
    stop.store(true, Relaxed);
    publisher.join().unwrap();

    group.finish();
}

criterion_group!(benches, bench_serve_snapshot);
criterion_main!(benches);
