//! The query service: a single writer advancing the live tree, a
//! reader pool answering query batches against pinned snapshots.
//!
//! Wiring (ISSUE 6 tentpole):
//!
//! ```text
//!  clients --submit--> BoundedQueue --pop--> worker pool
//!     |                    |                    |  pin()
//!     |  Overloaded        |                 SnapshotRing <--publish-- writer
//!     +<- (Shed policy)    +- blocks (Defer)     |                (TreeMaintainer)
//! ```
//!
//! Latency is measured from `Request::submitted_at` to completion, so
//! queue wait is charged to the service — the histograms' p99/p999 are
//! end-to-end numbers, which is what admission control protects.

use crate::error::ServeError;
use crate::load::checksum_fold;
use crate::queue::{BoundedQueue, PushError};
use crate::request::{execute_batch, QueryClass, Request, Response};
use crate::snapshot::{PinnedSnapshot, SnapshotRing};
use crossbeam::channel::Sender;
use paratreet_core::TreeMaintainer;
use paratreet_geometry::BoundingBox;
use paratreet_particles::Particle;
use paratreet_telemetry::{Histogram, MetricsRegistry};
use paratreet_tree::{BuiltTree, Data, QueryScratch};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens when the work queue is full at submission time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject the batch with [`ServeError::Overloaded`] (load shedding).
    Shed,
    /// Block the submitter until space frees (backpressure).
    Defer,
}

/// Service sizing and policy.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Reader (worker) threads. Zero is allowed — nothing drains the
    /// queue, which the overload tests use to exercise shedding
    /// deterministically.
    pub workers: usize,
    /// Work queue capacity, in batches.
    pub queue_capacity: usize,
    /// Snapshot ring capacity — the snapshot-lag budget granted to the
    /// slowest reader before the writer stalls.
    pub ring_capacity: usize,
    /// Full-queue behaviour.
    pub admission: AdmissionPolicy,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            ring_capacity: 8,
            admission: AdmissionPolicy::Shed,
        }
    }
}

/// How a spawned writer paces tree advances.
#[derive(Clone, Copy, Debug)]
pub struct WriterConfig {
    /// Advances to run before the writer retires (the service keeps
    /// answering against the last snapshot afterwards).
    pub iterations: u64,
    /// Optional sleep between advances (throttles publication churn).
    pub pace: Option<Duration>,
}

/// The writer's motion model: integrates `particles` between advances
/// (`iteration` counts from 1).
pub type MotionModel = Box<dyn FnMut(&mut [Particle], u64) + Send>;

/// One queued unit of work: a batch of requests and where to send the
/// answers. `reply: None` is fire-and-forget (metrics only).
struct WorkItem {
    requests: Vec<Request>,
    reply: Option<Sender<Vec<Response>>>,
}

/// State shared by submitters, workers, and the writer.
struct Shared<D: Data> {
    ring: Arc<SnapshotRing<D>>,
    queue: BoundedQueue<WorkItem>,
    /// Per-class end-to-end latency, nanoseconds
    /// (indexed by [`QueryClass::index`]).
    latency: [Histogram; 4],
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    /// Order-independent XOR fold of every completed result checksum —
    /// lets end-to-end tests compare runs without collecting replies.
    result_fold: AtomicU64,
}

/// The concurrent spatial query service (ISSUE 6 tentpole). Owns the
/// worker pool and (optionally) the writer thread; dropping it shuts
/// both down.
pub struct QueryService<D: Data> {
    shared: Arc<Shared<D>>,
    admission: AdmissionPolicy,
    workers: Vec<JoinHandle<()>>,
    writer: Option<JoinHandle<u64>>,
    stop_writer: Arc<AtomicBool>,
}

impl<D: Data> QueryService<D> {
    /// Starts the worker pool. No snapshot exists yet: publish one (or
    /// spawn a writer) before submitting.
    pub fn new(config: ServeConfig) -> QueryService<D> {
        let shared = Arc::new(Shared {
            ring: SnapshotRing::new(config.ring_capacity),
            queue: BoundedQueue::new(config.queue_capacity),
            latency: [Histogram::new(), Histogram::new(), Histogram::new(), Histogram::new()],
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            result_fold: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        QueryService {
            shared,
            admission: config.admission,
            workers,
            writer: None,
            stop_writer: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The snapshot ring (for direct pinning, e.g. replay audits).
    pub fn ring(&self) -> &Arc<SnapshotRing<D>> {
        &self.shared.ring
    }

    /// Publishes a snapshot directly (no writer thread); returns its
    /// epoch. This is also how an embedding simulation feeds the
    /// service from a `Framework` snapshot hook.
    pub fn publish(&self, trees: Vec<BuiltTree<D>>, universe: BoundingBox) -> u64 {
        self.shared.ring.publish(trees, universe)
    }

    /// The epoch queries are currently answered against.
    pub fn current_epoch(&self) -> Option<u64> {
        self.shared.ring.head_epoch()
    }

    /// Pins the current snapshot (replay audits, ad-hoc queries).
    pub fn pin(&self) -> Option<PinnedSnapshot<D>> {
        self.shared.ring.pin()
    }

    /// Submits a batch. Answers arrive on `reply` (or nowhere, for
    /// fire-and-forget). Fails fast with [`ServeError::NotReady`]
    /// before the first snapshot, [`ServeError::Overloaded`] when the
    /// queue is full under `Shed`, and [`ServeError::ShuttingDown`]
    /// after shutdown.
    pub fn submit(
        &self,
        requests: Vec<Request>,
        reply: Option<Sender<Vec<Response>>>,
    ) -> Result<(), ServeError> {
        if self.shared.ring.head_epoch().is_none() {
            return Err(ServeError::NotReady);
        }
        let n = requests.len() as u64;
        let item = WorkItem { requests, reply };
        let outcome = match self.admission {
            AdmissionPolicy::Shed => self.shared.queue.try_push(item),
            AdmissionPolicy::Defer => self.shared.queue.push_wait(item),
        };
        match outcome {
            Ok(()) => {
                self.shared.submitted.fetch_add(n, Relaxed);
                Ok(())
            }
            Err(PushError::Full(_)) => {
                self.shared.shed.fetch_add(n, Relaxed);
                Err(ServeError::Overloaded {
                    depth: self.shared.queue.len(),
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Spawns the single writer: seeds a master particle array from
    /// `seed_trees`, publishes them as the first snapshot, then runs
    /// `config.iterations` advances — `motion(particles, iteration)`
    /// integrates between advances — publishing each result. Returns
    /// immediately; the writer's final epoch comes back from
    /// [`QueryService::shutdown`].
    ///
    /// # Panics
    /// If a writer was already spawned.
    pub fn spawn_writer(
        &mut self,
        mut maintainer: TreeMaintainer<D>,
        seed_trees: Vec<BuiltTree<D>>,
        mut motion: MotionModel,
        config: WriterConfig,
    ) {
        assert!(self.writer.is_none(), "writer already spawned");
        let ring = Arc::clone(&self.shared.ring);
        let stop = Arc::clone(&self.stop_writer);
        // Publish the seed synchronously so `submit` is ready the
        // moment this returns.
        let mut master: Vec<Particle> =
            seed_trees.iter().flat_map(|t| t.particles.iter().copied()).collect();
        ring.publish(seed_trees, maintainer.universe());
        self.writer = Some(std::thread::spawn(move || {
            let mut last_epoch = 0u64;
            for iteration in 1..=config.iterations {
                if stop.load(Relaxed) {
                    break;
                }
                motion(&mut master, iteration);
                let (trees, _round) = maintainer.advance(std::mem::take(&mut master));
                master = trees.iter().flat_map(|t| t.particles.iter().copied()).collect();
                last_epoch = ring.publish(trees, maintainer.universe());
                if let Some(pace) = config.pace {
                    std::thread::sleep(pace);
                }
            }
            last_epoch
        }));
    }

    /// True while the writer thread is still advancing.
    pub fn writer_running(&self) -> bool {
        self.writer.as_ref().is_some_and(|w| !w.is_finished())
    }

    /// Current service metrics under `serve.*` names: queue and
    /// snapshot counters plus per-class latency summaries
    /// (`serve.latency.<class>.{count,mean,p50,p99,p999,max}`, ns).
    pub fn metrics(&self) -> MetricsRegistry {
        let s = &self.shared;
        let mut m = MetricsRegistry::new();
        m.set_u64("serve.queries.submitted", s.submitted.load(Relaxed));
        m.set_u64("serve.queries.completed", s.completed.load(Relaxed));
        m.set_u64("serve.queries.shed", s.shed.load(Relaxed));
        m.set_u64("serve.batches", s.batches.load(Relaxed));
        m.set_u64("serve.queue.depth", s.queue.len() as u64);
        m.set_u64("serve.queue.capacity", s.queue.capacity() as u64);
        m.set_u64("serve.epoch", s.ring.head_epoch().unwrap_or(0));
        m.absorb("serve.snapshots", &s.ring.stats());
        for class in QueryClass::ALL {
            let snap = s.latency[class.index()].snapshot();
            m.absorb(&format!("serve.latency.{}", class.label()), &snap);
        }
        m
    }

    /// The running XOR fold of completed result checksums.
    pub fn result_fold(&self) -> u64 {
        self.shared.result_fold.load(SeqCst)
    }

    /// Stops the writer (if any), drains and closes the queue, joins
    /// the workers. Returns the writer's last published epoch.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) -> Option<u64> {
        self.stop_writer.store(true, Relaxed);
        let last = self.writer.take().map(|w| w.join().expect("writer panicked"));
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            w.join().expect("worker panicked");
        }
        last
    }
}

impl<D: Data> Drop for QueryService<D> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A worker: pop a batch, pin the freshest snapshot, answer, account.
fn worker_loop<D: Data>(shared: Arc<Shared<D>>) {
    let mut scratch = QueryScratch::default();
    while let Some(item) = shared.queue.pop() {
        // `submit` refuses work before the first publish, so a pin is
        // always available here.
        let Some(pin) = shared.ring.pin() else { continue };
        let responses = execute_batch(&pin, &item.requests, &mut scratch);
        drop(pin); // release the slot before reply/accounting

        let now = Instant::now();
        for req in &item.requests {
            let ns = now.saturating_duration_since(req.submitted_at).as_nanos() as u64;
            shared.latency[req.query.class().index()].record(ns);
        }
        let mut fold = 0u64;
        for resp in &responses {
            fold ^= checksum_fold(resp);
        }
        shared.result_fold.fetch_xor(fold, SeqCst);
        shared.batches.fetch_add(1, Relaxed);
        shared.completed.fetch_add(item.requests.len() as u64, Relaxed);
        if let Some(reply) = item.reply {
            // The client may have gone away (load generator finished);
            // that is not the worker's problem.
            let _ = reply.send(responses);
        }
    }
}
