//! Axis-aligned bounding boxes.
//!
//! Boxes are the spatial footprint of every tree node. An *empty* box (one
//! that has absorbed no points) is represented with inverted bounds so that
//! `grow` works without a separate "initialised" flag.

use crate::{Axis, Sphere, Vec3};
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box, possibly empty.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum corner.
    pub lo: Vec3,
    /// Maximum corner.
    pub hi: Vec3,
}

impl Default for BoundingBox {
    fn default() -> Self {
        BoundingBox::empty()
    }
}

impl BoundingBox {
    /// The empty box: `lo = +inf`, `hi = -inf`, absorbs any point on `grow`.
    #[inline]
    pub fn empty() -> BoundingBox {
        BoundingBox { lo: Vec3::splat(f64::INFINITY), hi: Vec3::splat(f64::NEG_INFINITY) }
    }

    /// A box from explicit corners. Corners are sorted component-wise so
    /// callers cannot construct an inverted (accidentally-empty) box.
    #[inline]
    pub fn new(a: Vec3, b: Vec3) -> BoundingBox {
        BoundingBox { lo: a.min(b), hi: a.max(b) }
    }

    /// A cube centred at `c` with half-width `h`.
    #[inline]
    pub fn cube(c: Vec3, h: f64) -> BoundingBox {
        BoundingBox { lo: c - Vec3::splat(h), hi: c + Vec3::splat(h) }
    }

    /// The tight box around a set of points; empty for an empty slice.
    pub fn around(points: impl IntoIterator<Item = Vec3>) -> BoundingBox {
        let mut b = BoundingBox::empty();
        for p in points {
            b.grow(p);
        }
        b
    }

    /// True when the box has absorbed no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y || self.lo.z > self.hi.z
    }

    /// Expands the box to contain point `p`.
    #[inline]
    pub fn grow(&mut self, p: Vec3) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Expands the box to contain another box.
    #[inline]
    pub fn merge(&mut self, o: &BoundingBox) {
        if !o.is_empty() {
            self.lo = self.lo.min(o.lo);
            self.hi = self.hi.max(o.hi);
        }
    }

    /// The union of two boxes.
    #[inline]
    pub fn union(&self, o: &BoundingBox) -> BoundingBox {
        let mut b = *self;
        b.merge(o);
        b
    }

    /// Geometric centre. Meaningless for an empty box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    /// Edge lengths (zero vector for an empty box).
    #[inline]
    pub fn size(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.hi - self.lo
        }
    }

    /// Volume; zero for empty or degenerate boxes.
    #[inline]
    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// The axis along which the box is longest.
    #[inline]
    pub fn longest_axis(&self) -> Axis {
        Axis::from_index(self.size().argmax())
    }

    /// Half of the squared diagonal — the square of the radius of the
    /// smallest sphere centred at `center()` containing the box.
    #[inline]
    pub fn radius_sq(&self) -> f64 {
        (self.size() * 0.5).norm_sq()
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.lo.x
            && p.x <= self.hi.x
            && p.y >= self.lo.y
            && p.y <= self.hi.y
            && p.z >= self.lo.z
            && p.z <= self.hi.z
    }

    /// True when the other box is fully inside this one.
    #[inline]
    pub fn contains_box(&self, o: &BoundingBox) -> bool {
        o.is_empty() || (self.contains(o.lo) && self.contains(o.hi))
    }

    /// True when the boxes overlap (closed-interval semantics).
    #[inline]
    pub fn intersects(&self, o: &BoundingBox) -> bool {
        !self.is_empty()
            && !o.is_empty()
            && self.lo.x <= o.hi.x
            && o.lo.x <= self.hi.x
            && self.lo.y <= o.hi.y
            && o.lo.y <= self.hi.y
            && self.lo.z <= o.hi.z
            && o.lo.z <= self.hi.z
    }

    /// Squared distance from `p` to the nearest point of the box
    /// (zero when `p` is inside).
    #[inline]
    pub fn dist_sq_to(&self, p: Vec3) -> f64 {
        let mut d = 0.0;
        for i in 0..3 {
            let v = p.component(i);
            let lo = self.lo.component(i);
            let hi = self.hi.component(i);
            if v < lo {
                d += (lo - v) * (lo - v);
            } else if v > hi {
                d += (v - hi) * (v - hi);
            }
        }
        d
    }

    /// Squared distance between the closest points of two boxes (zero
    /// when they overlap). Used by k-NN pruning.
    #[inline]
    pub fn dist_sq_to_box(&self, o: &BoundingBox) -> f64 {
        let mut d = 0.0;
        for i in 0..3 {
            let gap = (o.lo.component(i) - self.hi.component(i))
                .max(self.lo.component(i) - o.hi.component(i))
                .max(0.0);
            d += gap * gap;
        }
        d
    }

    /// Squared distance from `p` to the farthest point of the box.
    #[inline]
    pub fn max_dist_sq_to(&self, p: Vec3) -> f64 {
        let mut d = 0.0;
        for i in 0..3 {
            let v = p.component(i);
            let lo = self.lo.component(i);
            let hi = self.hi.component(i);
            let far = (v - lo).abs().max((v - hi).abs());
            d += far * far;
        }
        d
    }

    /// True when the box intersects sphere `s` — the test used by the
    /// Barnes-Hut opening criterion in the paper's `GravityVisitor`.
    #[inline]
    pub fn intersects_sphere(&self, s: &Sphere) -> bool {
        !self.is_empty() && self.dist_sq_to(s.center) <= s.radius_sq()
    }

    /// Splits the box into two halves at `plane` along `axis`.
    /// `plane` must lie within the box's extent on that axis.
    #[inline]
    pub fn split_at(&self, axis: Axis, plane: f64) -> (BoundingBox, BoundingBox) {
        let mut left = *self;
        let mut right = *self;
        left.hi.set_component(axis.index(), plane);
        right.lo.set_component(axis.index(), plane);
        (left, right)
    }

    /// The `i`-th (0..8) octant of the box, ordered by Morton child index:
    /// bit 2 = x-high, bit 1 = y-high, bit 0 = z-high.
    #[inline]
    pub fn octant(&self, i: usize) -> BoundingBox {
        debug_assert!(i < 8);
        let c = self.center();
        let mut lo = self.lo;
        let mut hi = c;
        if i & 4 != 0 {
            lo.x = c.x;
            hi.x = self.hi.x;
        }
        if i & 2 != 0 {
            lo.y = c.y;
            hi.y = self.hi.y;
        }
        if i & 1 != 0 {
            lo.z = c.z;
            hi.z = self.hi.z;
        }
        BoundingBox { lo, hi }
    }

    /// Which octant (0..8) of this box point `p` falls in, using the same
    /// bit layout as [`BoundingBox::octant`]. Points exactly on the centre
    /// plane go to the high side.
    #[inline]
    pub fn octant_of(&self, p: Vec3) -> usize {
        let c = self.center();
        ((p.x >= c.x) as usize) << 2 | ((p.y >= c.y) as usize) << 1 | (p.z >= c.z) as usize
    }

    /// The smallest cube containing this box, centred at the box centre.
    /// Octree builds start from a cube so octants stay cubical.
    #[inline]
    pub fn bounding_cube(&self) -> BoundingBox {
        let h = self.size().max_component() * 0.5;
        BoundingBox::cube(self.center(), h)
    }

    /// Pads the box by a relative `eps` of its size on every side, so
    /// particles on the boundary stay strictly inside after rounding.
    #[inline]
    pub fn padded(&self, eps: f64) -> BoundingBox {
        let pad = self.size() * eps + Vec3::splat(f64::MIN_POSITIVE);
        BoundingBox { lo: self.lo - pad, hi: self.hi + pad }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BoundingBox {
        BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn empty_box_properties() {
        let b = BoundingBox::empty();
        assert!(b.is_empty());
        assert_eq!(b.size(), Vec3::ZERO);
        assert_eq!(b.volume(), 0.0);
        assert!(!b.intersects(&unit()));
        assert!(!unit().intersects(&b));
    }

    #[test]
    fn grow_absorbs_points() {
        let mut b = BoundingBox::empty();
        b.grow(Vec3::new(1.0, -2.0, 3.0));
        assert!(!b.is_empty());
        assert!(b.contains(Vec3::new(1.0, -2.0, 3.0)));
        b.grow(Vec3::new(-1.0, 2.0, 0.0));
        assert_eq!(b.lo, Vec3::new(-1.0, -2.0, 0.0));
        assert_eq!(b.hi, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn new_sorts_corners() {
        let b = BoundingBox::new(Vec3::splat(1.0), Vec3::ZERO);
        assert_eq!(b.lo, Vec3::ZERO);
        assert_eq!(b.hi, Vec3::splat(1.0));
    }

    #[test]
    fn containment_and_intersection() {
        let b = unit();
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(b.contains(Vec3::ZERO)); // boundary is inside
        assert!(!b.contains(Vec3::splat(1.5)));
        let shifted = BoundingBox::new(Vec3::splat(0.5), Vec3::splat(2.0));
        assert!(b.intersects(&shifted));
        assert!(shifted.intersects(&b));
        let disjoint = BoundingBox::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!(!b.intersects(&disjoint));
        assert!(b.contains_box(&BoundingBox::new(Vec3::splat(0.25), Vec3::splat(0.75))));
        assert!(!b.contains_box(&shifted));
    }

    #[test]
    fn octants_partition_the_box() {
        let b = unit();
        let total: f64 = (0..8).map(|i| b.octant(i).volume()).sum();
        assert!((total - b.volume()).abs() < 1e-12);
        for i in 0..8 {
            let o = b.octant(i);
            assert!(b.contains_box(&o));
            assert_eq!(b.octant_of(o.center()), i);
        }
    }

    #[test]
    fn octant_of_boundary_goes_high() {
        let b = unit();
        assert_eq!(b.octant_of(Vec3::splat(0.5)), 7);
        assert_eq!(b.octant_of(Vec3::ZERO), 0);
    }

    #[test]
    fn split_covers_box() {
        let b = unit();
        let (l, r) = b.split_at(Axis::X, 0.25);
        assert_eq!(l.hi.x, 0.25);
        assert_eq!(r.lo.x, 0.25);
        assert!((l.volume() + r.volume() - b.volume()).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        let b = unit();
        assert_eq!(b.dist_sq_to(Vec3::splat(0.5)), 0.0);
        assert_eq!(b.dist_sq_to(Vec3::new(2.0, 0.5, 0.5)), 1.0);
        assert_eq!(b.max_dist_sq_to(Vec3::ZERO), 3.0);
    }

    #[test]
    fn box_box_distance() {
        let a = unit();
        let b = BoundingBox::new(Vec3::new(2.0, 0.0, 0.0), Vec3::new(3.0, 1.0, 1.0));
        assert_eq!(a.dist_sq_to_box(&b), 1.0);
        assert_eq!(b.dist_sq_to_box(&a), 1.0);
        let overlapping = BoundingBox::new(Vec3::splat(0.5), Vec3::splat(2.0));
        assert_eq!(a.dist_sq_to_box(&overlapping), 0.0);
        let diag = BoundingBox::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert_eq!(a.dist_sq_to_box(&diag), 3.0);
    }

    #[test]
    fn sphere_intersection() {
        let b = unit();
        assert!(b.intersects_sphere(&Sphere::new(Vec3::splat(0.5), 0.1)));
        assert!(b.intersects_sphere(&Sphere::new(Vec3::new(2.0, 0.5, 0.5), 1.0)));
        assert!(!b.intersects_sphere(&Sphere::new(Vec3::new(2.0, 0.5, 0.5), 0.5)));
    }

    #[test]
    fn longest_axis_and_cube() {
        let b = BoundingBox::new(Vec3::ZERO, Vec3::new(1.0, 4.0, 2.0));
        assert_eq!(b.longest_axis(), Axis::Y);
        let c = b.bounding_cube();
        assert!(c.contains_box(&b));
        let s = c.size();
        assert_eq!(s.x, s.y);
        assert_eq!(s.y, s.z);
    }

    #[test]
    fn merge_ignores_empty() {
        let mut b = unit();
        let before = b;
        b.merge(&BoundingBox::empty());
        assert_eq!(b, before);
        let mut e = BoundingBox::empty();
        e.merge(&unit());
        assert_eq!(e, unit());
    }

    #[test]
    fn padded_strictly_contains() {
        let b = unit();
        let p = b.padded(1e-9);
        assert!(p.contains_box(&b));
        assert!(p.lo.x < 0.0 && p.hi.x > 1.0);
    }
}
