//! Periodic (wrapped) domains and minimum-image distances.
//!
//! Tiled cosmology boxes identify opposite faces of the simulation
//! volume: a particle leaving through `x = L` re-enters at `x = 0`, and
//! the distance between two particles is measured to the nearest
//! periodic *image*. [`PeriodicBox`] carries the per-axis period lengths
//! (zero on an axis disables wrapping there, so slab and open domains
//! use the same type) and implements the minimum-image convention the
//! forest decomposition and the friends-of-friends linker rely on.

use crate::vec3::Vec3;

/// A (possibly partially) periodic domain: per-axis period lengths.
/// An axis with period `0.0` is open (no wrapping on that axis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodicBox {
    /// Period length per axis; `0.0` disables wrapping on an axis.
    pub period: Vec3,
}

impl PeriodicBox {
    /// A fully open (non-periodic) domain.
    pub const OPEN: PeriodicBox = PeriodicBox { period: Vec3::ZERO };

    /// A cubic periodic domain of side `l`.
    pub fn cubic(l: f64) -> PeriodicBox {
        PeriodicBox { period: Vec3::splat(l) }
    }

    /// True when at least one axis wraps.
    #[inline]
    pub fn is_periodic(&self) -> bool {
        self.period.x > 0.0 || self.period.y > 0.0 || self.period.z > 0.0
    }

    /// Wraps one component into `[0, period)`; identity when the axis is
    /// open. `rem_euclid` keeps the result non-negative for any input.
    #[inline]
    fn wrap_component(v: f64, period: f64) -> f64 {
        if period > 0.0 {
            v.rem_euclid(period)
        } else {
            v
        }
    }

    /// Wraps `pos - origin` into the primary cell `[0, period)` per
    /// periodic axis, then restores the origin offset.
    pub fn wrap(&self, pos: Vec3, origin: Vec3) -> Vec3 {
        Vec3::new(
            origin.x + Self::wrap_component(pos.x - origin.x, self.period.x),
            origin.y + Self::wrap_component(pos.y - origin.y, self.period.y),
            origin.z + Self::wrap_component(pos.z - origin.z, self.period.z),
        )
    }

    /// Wraps one separation component into `[-period/2, period/2]`.
    #[inline]
    fn min_image_component(d: f64, period: f64) -> f64 {
        if period > 0.0 {
            d - period * (d / period).round()
        } else {
            d
        }
    }

    /// The minimum-image separation `b - a`: each component is shifted
    /// by a whole number of periods so it lies in `[-L/2, L/2]`.
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let d = b - a;
        Vec3::new(
            Self::min_image_component(d.x, self.period.x),
            Self::min_image_component(d.y, self.period.y),
            Self::min_image_component(d.z, self.period.z),
        )
    }

    /// Squared minimum-image distance between `a` and `b`.
    #[inline]
    pub fn dist_sq(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm_sq()
    }

    /// Minimum-image distance between `a` and `b`.
    #[inline]
    pub fn dist(&self, a: Vec3, b: Vec3) -> f64 {
        self.dist_sq(a, b).sqrt()
    }

    /// All whole-period shift vectors a domain neighbour can differ by:
    /// `{-L, 0, +L}` per periodic axis, `{0}` per open axis, excluding
    /// the zero shift when `include_zero` is false. Ascending
    /// lexicographic order, so callers iterating images are
    /// deterministic.
    pub fn image_shifts(&self, include_zero: bool) -> Vec<Vec3> {
        let axis = |l: f64| if l > 0.0 { vec![-l, 0.0, l] } else { vec![0.0] };
        let mut out = Vec::new();
        for &sx in &axis(self.period.x) {
            for &sy in &axis(self.period.y) {
                for &sz in &axis(self.period.z) {
                    let s = Vec3::new(sx, sy, sz);
                    if include_zero || s != Vec3::ZERO {
                        out.push(s);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_box_is_plain_euclidean() {
        let b = PeriodicBox::OPEN;
        assert!(!b.is_periodic());
        let a = Vec3::new(0.1, 0.2, 0.3);
        let c = Vec3::new(9.0, -4.0, 2.0);
        assert_eq!(b.dist_sq(a, c), a.dist_sq(c));
        assert_eq!(b.wrap(c, Vec3::ZERO), c);
        assert_eq!(b.image_shifts(true), vec![Vec3::ZERO]);
        assert!(b.image_shifts(false).is_empty());
    }

    #[test]
    fn min_image_wraps_across_the_seam() {
        let b = PeriodicBox::cubic(1.0);
        // Points hugging opposite faces are close through the seam.
        let a = Vec3::new(0.02, 0.5, 0.5);
        let c = Vec3::new(0.98, 0.5, 0.5);
        assert!((b.dist(a, c) - 0.04).abs() < 1e-12);
        // The image separation points the "short way" (negative x).
        assert!((b.min_image(a, c).x + 0.04).abs() < 1e-12);
    }

    #[test]
    fn min_image_is_symmetric_and_bounded() {
        let b = PeriodicBox { period: Vec3::new(1.0, 2.0, 0.0) };
        let a = Vec3::new(0.9, 1.9, 5.0);
        let c = Vec3::new(0.1, 0.1, -3.0);
        assert!((b.dist(a, c) - b.dist(c, a)).abs() < 1e-12);
        let d = b.min_image(a, c);
        assert!(d.x.abs() <= 0.5 + 1e-12);
        assert!(d.y.abs() <= 1.0 + 1e-12);
        // Open z axis keeps the full separation.
        assert_eq!(d.z, -8.0);
    }

    #[test]
    fn wrap_restores_the_primary_cell() {
        let b = PeriodicBox::cubic(2.0);
        let origin = Vec3::new(-1.0, -1.0, -1.0);
        let p = Vec3::new(1.5, -3.7, 0.2); // x and y outside [-1, 1)
        let w = b.wrap(p, origin);
        for i in 0..3 {
            assert!(w.component(i) >= -1.0 - 1e-12 && w.component(i) < 1.0 + 1e-12);
        }
        // Wrapping is idempotent and preserves already-interior points.
        assert_eq!(b.wrap(w, origin), w);
        assert_eq!(b.wrap(Vec3::new(0.25, 0.5, -0.75), origin), Vec3::new(0.25, 0.5, -0.75));
    }

    #[test]
    fn image_shifts_enumerate_neighbours() {
        let cube = PeriodicBox::cubic(1.0);
        assert_eq!(cube.image_shifts(true).len(), 27);
        assert_eq!(cube.image_shifts(false).len(), 26);
        let slab = PeriodicBox { period: Vec3::new(1.0, 0.0, 0.0) };
        assert_eq!(slab.image_shifts(true).len(), 3);
        // Shifts are whole periods: wrapping a shifted point is identity.
        for s in cube.image_shifts(false) {
            let p = Vec3::new(0.25, 0.5, 0.75);
            let w = cube.wrap(p + s, Vec3::ZERO);
            assert!(w.dist_sq(p) < 1e-24, "shift {s:?} must be a lattice vector");
        }
    }
}
