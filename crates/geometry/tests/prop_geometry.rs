//! Property-based invariants for the geometry primitives.

use paratreet_geometry::{morton, BoundingBox, NodeKey, Sphere, Vec3, ROOT_KEY};
use proptest::prelude::*;

fn vec3() -> impl Strategy<Value = Vec3> {
    (-1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_vec3() -> impl Strategy<Value = Vec3> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn box_around_contains_all_points(pts in prop::collection::vec(vec3(), 1..64)) {
        let b = BoundingBox::around(pts.iter().copied());
        for p in &pts {
            prop_assert!(b.contains(*p));
        }
    }

    #[test]
    fn union_contains_both(a in vec3(), b in vec3(), c in vec3(), d in vec3()) {
        let b1 = BoundingBox::new(a, b);
        let b2 = BoundingBox::new(c, d);
        let u = b1.union(&b2);
        prop_assert!(u.contains_box(&b1));
        prop_assert!(u.contains_box(&b2));
    }

    #[test]
    fn octants_tile_without_overlap_interior(p in unit_vec3()) {
        let b = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        // Each point maps to exactly one octant, which contains it.
        let i = b.octant_of(p);
        prop_assert!(b.octant(i).contains(p));
    }

    #[test]
    fn dist_sq_lower_bounds_point_distances(p in vec3(), a in vec3(), b in vec3()) {
        let bx = BoundingBox::new(a, b);
        let d = bx.dist_sq_to(p);
        // distance to any corner is at least the box distance
        prop_assert!(p.dist_sq(bx.lo) + 1e-9 >= d);
        prop_assert!(p.dist_sq(bx.hi) + 1e-9 >= d);
        prop_assert!(bx.max_dist_sq_to(p) + 1e-9 >= d);
    }

    #[test]
    fn sphere_box_agrees_with_point_sampling(p in unit_vec3(), r in 0.01f64..2.0) {
        let b = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let s = Sphere::new(p * 3.0, r);
        if b.intersects_sphere(&s) {
            prop_assert!(b.dist_sq_to(s.center) <= s.radius_sq() + 1e-9);
        } else {
            prop_assert!(b.dist_sq_to(s.center) > s.radius_sq());
        }
    }

    #[test]
    fn morton_roundtrip(x in 0u64..(1<<21), y in 0u64..(1<<21), z in 0u64..(1<<21)) {
        let k = morton::interleave(x, y, z);
        prop_assert_eq!(morton::deinterleave(k), (x, y, z));
    }

    #[test]
    fn morton_key_is_monotone_under_octant_refinement(p in unit_vec3()) {
        // The first octree digit of the particle key matches the octant
        // that the universe box assigns the point to.
        let u = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let k = morton::morton_key(p, &u);
        prop_assert_eq!(morton::octree_digit(k, 0), u.octant_of(p));
    }

    #[test]
    fn node_key_child_parent(path in prop::collection::vec(0usize..8, 0..20)) {
        let mut k = ROOT_KEY;
        for &d in &path {
            let c = k.child(d, 3);
            prop_assert_eq!(c.parent(3), k);
            prop_assert_eq!(c.child_index(3), d);
            k = c;
        }
        prop_assert_eq!(k.level(3), path.len() as u32);
        if !path.is_empty() {
            prop_assert!(ROOT_KEY.is_ancestor_of(k, 3));
        }
    }

    #[test]
    fn node_morton_range_nests(path in prop::collection::vec(0usize..8, 1..21)) {
        let mut k = ROOT_KEY;
        let mut prev = k.morton_range(21);
        for &d in &path {
            k = k.child(d, 3);
            let (lo, hi) = k.morton_range(21);
            prop_assert!(lo >= prev.0 && hi <= prev.1, "child range must nest");
            prev = (lo, hi);
        }
    }

    #[test]
    fn morton_preserves_octree_locality(a in unit_vec3(), b in unit_vec3()) {
        // If two points share the same first octree digit, their keys lie
        // in the same eighth of the key space.
        let u = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let ka = morton::morton_key(a, &u);
        let kb = morton::morton_key(b, &u);
        if u.octant_of(a) == u.octant_of(b) {
            prop_assert_eq!(ka >> 60, kb >> 60);
        }
    }

    #[test]
    fn node_key_total_order_matches_dfs(d1 in 0usize..8, d2 in 0usize..8) {
        // Among siblings, key order is child-index order.
        let a = ROOT_KEY.child(d1, 3);
        let b = ROOT_KEY.child(d2, 3);
        prop_assert_eq!(a.cmp(&b), d1.cmp(&d2));
        let _ = NodeKey::root();
    }
}
