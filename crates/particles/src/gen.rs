//! Deterministic synthetic initial-condition generators.
//!
//! Each generator stands in for one of the paper's datasets (see the
//! substitution table in DESIGN.md). All of them take an explicit seed and
//! use `StdRng`, so every experiment in the repo is reproducible bit-for-bit.

use crate::Particle;
use paratreet_geometry::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gravitational constant in simulation units (G = 1 everywhere).
pub const G: f64 = 1.0;

/// Draws a unit vector isotropically distributed on the sphere.
fn random_unit_vector(rng: &mut StdRng) -> Vec3 {
    // Marsaglia's method: uniform on the sphere without trig.
    loop {
        let x: f64 = rng.random_range(-1.0..1.0);
        let y: f64 = rng.random_range(-1.0..1.0);
        let s = x * x + y * y;
        if s < 1.0 {
            let f = 2.0 * (1.0 - s).sqrt();
            return Vec3::new(x * f, y * f, 1.0 - 2.0 * s);
        }
    }
}

/// A standard-normal sample via Box–Muller (rand_distr is outside the
/// allowed dependency set).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Uniform random positions in a cube of half-width `half` centred at the
/// origin; equal masses summing to `total_mass`; zero velocities.
///
/// Stand-in for the paper's "80 million particles in a uniform particle
/// distribution representing a volume of the present-day Universe".
pub fn uniform_cube(n: usize, seed: u64, half: f64, total_mass: f64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = total_mass / n.max(1) as f64;
    // Softening comparable to the mean interparticle spacing over 50.
    let soft = 2.0 * half / (n.max(1) as f64).cbrt() / 50.0;
    (0..n)
        .map(|i| {
            let pos = Vec3::new(
                rng.random_range(-half..half),
                rng.random_range(-half..half),
                rng.random_range(-half..half),
            );
            Particle { id: i as u64, mass: m, pos, softening: soft, ..Particle::default() }
        })
        .collect()
}

/// A Plummer sphere of scale radius `a` in virial equilibrium
/// (Aarseth, Henon & Wielen 1974 sampling), total mass `total_mass`.
pub fn plummer(n: usize, seed: u64, a: f64, total_mass: f64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = total_mass / n.max(1) as f64;
    let soft = a / (n.max(1) as f64).cbrt() / 10.0;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // Radius from the inverse cumulative mass profile.
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let r = a / (u.powf(-2.0 / 3.0) - 1.0).sqrt();
        let pos = random_unit_vector(&mut rng) * r;
        // Velocity magnitude by von Neumann rejection on q²(1-q²)^(7/2).
        let q = loop {
            let q: f64 = rng.random_range(0.0..1.0);
            let g: f64 = rng.random_range(0.0..0.1);
            if g < q * q * (1.0 - q * q).powf(3.5) {
                break q;
            }
        };
        let v_esc = (2.0 * G * total_mass).sqrt() * (r * r + a * a).powf(-0.25);
        let vel = random_unit_vector(&mut rng) * (q * v_esc);
        out.push(Particle {
            id: i as u64,
            mass: m,
            pos,
            vel,
            softening: soft,
            ..Particle::default()
        });
    }
    out
}

/// A clustered volume: `clusters` Plummer spheres with centres uniform in
/// a cube of half-width `half`. Stand-in for the paper's "clustered
/// dataset of 80 million particles" used in the cache-model comparison
/// (Fig. 3). Clustering is what stresses tree imbalance and the cache.
pub fn clustered(
    n: usize,
    clusters: usize,
    seed: u64,
    half: f64,
    total_mass: f64,
) -> Vec<Particle> {
    let clusters = clusters.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec3> = (0..clusters)
        .map(|_| {
            Vec3::new(
                rng.random_range(-half..half),
                rng.random_range(-half..half),
                rng.random_range(-half..half),
            )
        })
        .collect();
    let a = half / clusters as f64 / 2.0;
    let mut out = Vec::with_capacity(n);
    for (c, center) in centers.iter().enumerate() {
        let n_c = n / clusters + usize::from(c < n % clusters);
        let sub_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(c as u64);
        let mut cluster = plummer(n_c, sub_seed, a, total_mass / clusters as f64);
        for p in &mut cluster {
            p.pos += *center;
            p.id = out.len() as u64;
            out.push(*p);
        }
    }
    out
}

/// A tiled multi-Plummer volume: a `tiles[0] × tiles[1] × tiles[2]`
/// grid of cubic tiles of side `tile`, the grid's low corner at the
/// origin, with one Plummer sphere centred in every tile. Positions are
/// wrapped into the grid volume with the periodic minimum-image
/// convention, so Plummer tails spill across tile seams (and through
/// the outer faces, re-entering on the opposite side) — exactly the
/// halos-straddling-box-boundaries workload the forest decomposition's
/// ghost exchange exists for.
///
/// Ids are unique and sequential across the whole volume; masses sum to
/// `total_mass`. Deterministic for a fixed `(n, tiles, seed)`.
pub fn tiled_plummer(
    n: usize,
    tiles: [usize; 3],
    seed: u64,
    tile: f64,
    total_mass: f64,
) -> Vec<Particle> {
    let dims = [tiles[0].max(1), tiles[1].max(1), tiles[2].max(1)];
    let n_tiles = dims[0] * dims[1] * dims[2];
    let period = Vec3::new(dims[0] as f64 * tile, dims[1] as f64 * tile, dims[2] as f64 * tile);
    let wrap = paratreet_geometry::PeriodicBox { period };
    // Scale radius well under the tile so each clump reads as one halo,
    // with tails long enough to cross seams.
    let a = tile / 12.0;
    let mut out = Vec::with_capacity(n);
    let mut t = 0usize;
    for ix in 0..dims[0] {
        for iy in 0..dims[1] {
            for iz in 0..dims[2] {
                let n_t = n / n_tiles + usize::from(t < n % n_tiles);
                let sub_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(t as u64);
                let center = Vec3::new(
                    (ix as f64 + 0.5) * tile,
                    (iy as f64 + 0.5) * tile,
                    (iz as f64 + 0.5) * tile,
                );
                let mut clump = plummer(n_t, sub_seed, a, total_mass / n_tiles as f64);
                for p in &mut clump {
                    p.pos = wrap.wrap(p.pos + center, Vec3::ZERO);
                    p.id = out.len() as u64;
                    out.push(*p);
                }
                t += 1;
            }
        }
    }
    out
}

/// Parameters for [`keplerian_disk`].
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Mass of the central star (placed at the origin as particle 0).
    pub star_mass: f64,
    /// Mass of the embedded giant planet.
    pub planet_mass: f64,
    /// Circular orbit radius of the planet.
    pub planet_radius: f64,
    /// Inner edge of the planetesimal disk.
    pub r_in: f64,
    /// Outer edge of the planetesimal disk.
    pub r_out: f64,
    /// Total mass of the planetesimal disk.
    pub disk_mass: f64,
    /// Physical (collision) radius of each planetesimal.
    pub body_radius: f64,
    /// RMS eccentricity excitation of the planetesimals.
    pub rms_ecc: f64,
    /// Disk aspect ratio h/r (vertical thickness).
    pub aspect: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        // Loosely mirrors the paper's case study: star + Jupiter-mass
        // planet, disk spanning the 3:1 .. 5:3 resonances around the
        // planet at 5.2 AU (units: AU, solar masses, G=1).
        DiskParams {
            star_mass: 1.0,
            planet_mass: 1.0e-3,
            planet_radius: 5.2,
            r_in: 2.0,
            r_out: 4.4,
            disk_mass: 1.0e-5,
            body_radius: 3.3e-7, // ~50 km in AU
            rms_ecc: 0.02,
            aspect: 0.01,
        }
    }
}

/// A planetesimal disk on near-circular Keplerian orbits around a central
/// star, with an embedded giant planet. Particle 0 is the star, particle 1
/// the planet, and particles 2.. the planetesimals with surface density
/// Σ ∝ 1/r. Stand-in for the Fig. 12–13 protoplanetary-disk dataset.
pub fn keplerian_disk(n: usize, seed: u64, params: DiskParams) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n + 2);
    out.push(Particle { id: 0, mass: params.star_mass, softening: 1e-3, ..Particle::default() });
    let v_planet = (G * params.star_mass / params.planet_radius).sqrt();
    out.push(Particle {
        id: 1,
        mass: params.planet_mass,
        pos: Vec3::new(params.planet_radius, 0.0, 0.0),
        vel: Vec3::new(0.0, v_planet, 0.0),
        softening: 1e-3,
        ..Particle::default()
    });
    let m = params.disk_mass / n.max(1) as f64;
    for i in 0..n {
        // Σ ∝ 1/r means the cumulative mass is linear in r: sample radius
        // uniformly between the edges.
        let r: f64 = rng.random_range(params.r_in..params.r_out);
        let phi: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let z = standard_normal(&mut rng) * params.aspect * r;
        let pos = Vec3::new(r * phi.cos(), r * phi.sin(), z);
        // Near-circular orbit with small epicyclic excitation.
        let v_circ = (G * params.star_mass / r).sqrt();
        let e_r = standard_normal(&mut rng) * params.rms_ecc * v_circ;
        let e_t = standard_normal(&mut rng) * params.rms_ecc * v_circ * 0.5;
        let tangent = Vec3::new(-phi.sin(), phi.cos(), 0.0);
        let radial = Vec3::new(phi.cos(), phi.sin(), 0.0);
        let vel = tangent * (v_circ + e_t) + radial * e_r;
        out.push(Particle {
            id: (i + 2) as u64,
            mass: m,
            pos,
            vel,
            radius: params.body_radius,
            softening: params.body_radius,
            ..Particle::default()
        });
    }
    out
}

/// A perturbed cubic lattice of gas particles: grid positions displaced by
/// Gaussian noise of relative amplitude `amplitude`. Stand-in for the
/// "cosmological volume of 33 million particles" gas snapshot used in the
/// SPH comparison (Fig. 11). Particles carry uniform internal energy.
pub fn perturbed_lattice(n: usize, seed: u64, half: f64, amplitude: f64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (n as f64).cbrt().ceil() as usize;
    let spacing = 2.0 * half / side.max(1) as f64;
    let m = 1.0 / n.max(1) as f64;
    let mut out = Vec::with_capacity(n);
    'fill: for ix in 0..side {
        for iy in 0..side {
            for iz in 0..side {
                if out.len() == n {
                    break 'fill;
                }
                let base = Vec3::new(
                    -half + (ix as f64 + 0.5) * spacing,
                    -half + (iy as f64 + 0.5) * spacing,
                    -half + (iz as f64 + 0.5) * spacing,
                );
                let jitter = Vec3::new(
                    standard_normal(&mut rng),
                    standard_normal(&mut rng),
                    standard_normal(&mut rng),
                ) * (amplitude * spacing);
                out.push(Particle {
                    id: out.len() as u64,
                    mass: m,
                    pos: base + jitter,
                    smoothing: spacing,
                    internal_energy: 1.0,
                    softening: spacing / 20.0,
                    ..Particle::default()
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParticleVec;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_cube(100, 7, 1.0, 1.0), uniform_cube(100, 7, 1.0, 1.0));
        assert_eq!(plummer(50, 7, 1.0, 1.0), plummer(50, 7, 1.0, 1.0));
        assert_ne!(uniform_cube(100, 7, 1.0, 1.0), uniform_cube(100, 8, 1.0, 1.0));
    }

    #[test]
    fn uniform_cube_bounds_and_mass() {
        let ps = uniform_cube(1000, 1, 2.0, 5.0);
        assert_eq!(ps.len(), 1000);
        for p in &ps {
            assert!(p.pos.x.abs() <= 2.0 && p.pos.y.abs() <= 2.0 && p.pos.z.abs() <= 2.0);
        }
        assert!((ps.total_mass() - 5.0).abs() < 1e-9);
        // ids are unique and sequential
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
    }

    #[test]
    fn plummer_has_half_mass_radius_near_theory() {
        // Plummer half-mass radius = a / sqrt(2^(2/3) - 1) ≈ 1.305 a.
        let a = 1.0;
        let ps = plummer(20_000, 3, a, 1.0);
        let mut radii: Vec<f64> = ps.iter().map(|p| p.pos.norm()).collect();
        radii.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let rh = radii[radii.len() / 2];
        assert!((rh - 1.305 * a).abs() < 0.1 * a, "half-mass radius {rh}");
    }

    #[test]
    fn plummer_velocities_are_bound() {
        let ps = plummer(2000, 9, 1.0, 1.0);
        for p in &ps {
            let v_esc = (2.0 * G * 1.0).sqrt() * (p.pos.norm_sq() + 1.0).powf(-0.25);
            assert!(p.vel.norm() <= v_esc + 1e-12);
        }
    }

    #[test]
    fn clustered_splits_mass_evenly() {
        let ps = clustered(999, 4, 5, 10.0, 4.0);
        assert_eq!(ps.len(), 999);
        assert!((ps.total_mass() - 4.0).abs() < 1e-9);
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
    }

    #[test]
    fn clustered_is_actually_clustered() {
        // Density contrast: a clustered set has much smaller median
        // nearest-pair distance than a uniform set of the same count and
        // volume (median, not mean — Plummer tails are heavy).
        let c = clustered(500, 4, 11, 1.0, 1.0);
        let u = uniform_cube(500, 11, 1.0, 1.0);
        let median_min = |ps: &[Particle]| {
            let mut d: Vec<f64> = ps
                .iter()
                .map(|a| {
                    ps.iter()
                        .filter(|b| b.id != a.id)
                        .map(|b| a.pos.dist_sq(b.pos))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            d.sort_by(|x, y| x.partial_cmp(y).unwrap());
            d[d.len() / 2]
        };
        assert!(median_min(&c) < median_min(&u));
    }

    #[test]
    fn tiled_plummer_fills_the_grid() {
        let ps = tiled_plummer(999, [2, 2, 1], 7, 1.0, 4.0);
        assert_eq!(ps.len(), 999);
        assert!((ps.total_mass() - 4.0).abs() < 1e-9);
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(p.id, i as u64);
            // Wrapped into the grid volume [0, dims*tile).
            assert!((0.0..2.0).contains(&p.pos.x), "x {}", p.pos.x);
            assert!((0.0..2.0).contains(&p.pos.y), "y {}", p.pos.y);
            assert!((0.0..1.0).contains(&p.pos.z), "z {}", p.pos.z);
        }
        // Every tile hosts a clump: each tile holds at least its core.
        for (ix, iy) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let lo = Vec3::new(ix as f64, iy as f64, 0.0);
            let in_tile = ps
                .iter()
                .filter(|p| {
                    p.pos.x >= lo.x
                        && p.pos.x < lo.x + 1.0
                        && p.pos.y >= lo.y
                        && p.pos.y < lo.y + 1.0
                })
                .count();
            assert!(in_tile > 100, "tile ({ix},{iy}) holds {in_tile} particles");
        }
        assert_eq!(ps, tiled_plummer(999, [2, 2, 1], 7, 1.0, 4.0));
        assert_ne!(ps, tiled_plummer(999, [2, 2, 1], 8, 1.0, 4.0));
    }

    #[test]
    fn disk_particles_orbit_the_star() {
        let ps = keplerian_disk(500, 2, DiskParams::default());
        assert_eq!(ps.len(), 502);
        assert_eq!(ps[0].mass, 1.0); // star
        assert_eq!(ps[1].mass, 1.0e-3); // planet
        for p in &ps[2..] {
            let r = (p.pos.x * p.pos.x + p.pos.y * p.pos.y).sqrt();
            assert!((2.0..=4.4).contains(&r), "radius {r} outside disk");
            assert!(p.pos.z.abs() < 1.0, "disk should be thin");
            // Specific angular momentum points along +z (prograde).
            assert!(p.pos.cross(p.vel).z > 0.0);
            assert!(p.radius > 0.0);
        }
    }

    #[test]
    fn disk_is_mostly_two_dimensional() {
        let ps = keplerian_disk(2000, 4, DiskParams::default());
        let b = ps[2..].to_vec().bounding_box();
        let s = b.size();
        assert!(s.z < s.x / 10.0, "z extent {} vs x {}", s.z, s.x);
    }

    #[test]
    fn lattice_fills_exact_count() {
        for n in [1, 7, 8, 27, 100] {
            let ps = perturbed_lattice(n, 1, 1.0, 0.05);
            assert_eq!(ps.len(), n);
        }
        let ps = perturbed_lattice(64, 1, 1.0, 0.0);
        // Unperturbed lattice is a regular grid: distinct positions.
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert!(ps[i].pos.dist_sq(ps[j].pos) > 1e-12);
            }
        }
    }

    #[test]
    fn lattice_gas_has_sph_fields() {
        let ps = perturbed_lattice(27, 1, 1.0, 0.01);
        for p in &ps {
            assert!(p.smoothing > 0.0);
            assert!(p.internal_energy > 0.0);
        }
    }
}
