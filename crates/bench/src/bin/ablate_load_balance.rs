//! Ablation: measured-load SFC re-balancing (§III-A / §V).
//!
//! "At this scale of 1536 cores, ParaTreeT's built-in load re-balancers
//! can reduce this simulation's total runtime by 26%, either by mapping
//! measured load to the space-filling curve and redistributing it in
//! chunks, or by aggregating load and assigning it recursively in 3D
//! space. ... Thus load re-balancing is turned off in our experiments."
//!
//! This harness turns it back on: iteration 1 runs with the default
//! SFC-block placement and measures each partition's traversal cost;
//! iteration 2 re-cuts the SFC into chunks of equal *measured* load
//! (ChaNGa's scheme, which the paper adopts) and runs again. The disk
//! under an octree decomposition is the imbalanced workload where this
//! matters most.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin ablate_load_balance -- \
//!     --particles 20000 --procs 16
//! ```

use paratreet_apps::gravity::GravityVisitor;
use paratreet_bench::{fmt_seconds, harness_telemetry, write_telemetry_outputs, Args};
use paratreet_core::{
    sfc_balanced_assignment, CacheModel, Configuration, DecompType, DistributedEngine,
    TraversalKind,
};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;
use paratreet_tree::TreeType;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 20_000);
    let seed = args.get_u64("seed", 31);
    let procs = args.get_usize("procs", 16);

    // A clustered volume: SFC partitions are uniform in particle count
    // but not in *interaction* cost — cluster cores cost far more per
    // particle, which is exactly what measured-load balancing fixes.
    let particles = gen::clustered(n, 3, seed, 1.0, 1.0);
    let visitor = GravityVisitor::default();
    let config = Configuration {
        tree_type: TreeType::Octree,
        decomp_type: DecompType::Sfc,
        bucket_size: 16,
        ..Default::default()
    };
    // A narrow machine (few workers per rank) makes the traversal
    // compute-bound, which is when rank-level load balance governs the
    // makespan — the regime of the paper's 26% figure.
    let workers = args.get_usize("workers", 8);
    let mut machine = MachineSpec::stampede2(procs);
    machine.workers_per_rank = workers;
    let telemetry = harness_telemetry(&args, true);
    let engine = DistributedEngine::new(
        machine,
        config,
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    )
    .with_telemetry(telemetry.clone());

    println!("Ablation: measured-load SFC re-balancing, {n} clustered particles");
    println!(
        "(SFC decomposition on {} cores; clusters skew per-partition cost)\n",
        procs * workers
    );

    // Iteration 1: default placement, measure loads.
    let first = engine.run_iteration(particles.clone());
    let costs = &first.partition_costs;
    let imbalance = |assignment: &dyn Fn(usize) -> u32| -> f64 {
        let mut per_rank = vec![0.0f64; procs];
        for (p, &c) in costs.iter().enumerate() {
            per_rank[assignment(p) as usize] += c;
        }
        let max = per_rank.iter().copied().fold(0.0, f64::max);
        let avg: f64 = per_rank.iter().sum::<f64>() / procs as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    };
    let n_parts = costs.len();
    let default_imb = imbalance(&|p| (p * procs / n_parts) as u32);

    // Iteration 2: re-cut the curve by measured load.
    let assignment = sfc_balanced_assignment(costs, procs);
    let _ = telemetry.drain(); // export the re-balanced iteration's trace
    let second = engine.run_iteration_with_assignment(particles, Some(&assignment));
    let balanced_imb = imbalance(&|p| assignment[p]);

    println!("{:>22} {:>12} {:>12}", "", "iteration 1", "iteration 2");
    println!("{:>22} {:>12} {:>12}", "placement", "SFC blocks", "load-cut SFC");
    println!(
        "{:>22} {:>12} {:>12}",
        "makespan",
        fmt_seconds(first.makespan),
        fmt_seconds(second.makespan)
    );
    println!(
        "{:>22} {:>12} {:>12}",
        "traversal",
        fmt_seconds(first.makespan - first.traversal_start),
        fmt_seconds(second.makespan - second.traversal_start)
    );
    println!("{:>22} {:>12.2} {:>12.2}", "load imbalance (max/avg)", default_imb, balanced_imb);
    println!(
        "{:>22} {:>11.1}% {:>11.1}%",
        "utilization",
        first.utilization * 100.0,
        second.utilization * 100.0
    );
    let gain = (first.makespan - second.makespan) / first.makespan * 100.0;
    println!("\nre-balancing changed the makespan by {gain:.1}% (paper: 26% at 1536 cores)");
    write_telemetry_outputs(&args, &telemetry, Some(&second.metrics));
}
