//! Forest decomposition: ghost-exchange cost and FoF end-to-end time
//! as the domain splits into more boxes.
//!
//! Sweeps tilings of the same tiled-Plummer workload (one sphere per
//! tile, fixed total particle count), timing each pipeline stage —
//! decompose, per-box tree builds, 2:1 seam balance, ghost exchange,
//! dual-tree FoF linking — on the shared-memory path, plus the DES
//! machine-model price of the exchange (NIC bytes, virtual makespan).
//! The halo catalog is checked for invariance across tilings: cutting
//! the same periodic domain into more boxes must not change the
//! physics. Writes `BENCH_forest.json`.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin bench_forest -- \
//!     --particles 40000 --ranks 4
//! ```

use paratreet_apps::fof::{link_forest, FofParams};
use paratreet_bench::{fmt_bytes, fmt_seconds, print_header, print_row, Args};
use paratreet_core::{
    decompose_forest, des_ghost_exchange, enforce_seam_balance, exchange_ghosts, Configuration,
    DomainSpec,
};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;
use paratreet_telemetry::{Json, Telemetry};
use paratreet_tree::CountData;

/// Measured cost of one tiling of the sweep.
struct TileCost {
    boxes: usize,
    routes: usize,
    seam_splits: u64,
    decompose_s: f64,
    build_s: f64,
    exchange_s: f64,
    link_s: f64,
    ghost_particles: u64,
    ghost_bytes: u64,
    des_comm_bytes: u64,
    des_makespan_s: f64,
    halos: usize,
    largest: usize,
    n_links: u64,
}

fn run_tiling(
    dims: [usize; 3],
    tile: f64,
    n: usize,
    seed: u64,
    link: f64,
    ranks: usize,
) -> TileCost {
    let config =
        Configuration { bucket_size: 16, n_subtrees: 16, n_partitions: 32, ..Default::default() };
    let n_tiles = dims[0] * dims[1] * dims[2];
    // The workload is fixed in space (one Plummer sphere per unit cell of
    // the finest tiling), so coarser tilings see the same particle field.
    let particles = gen::tiled_plummer(n, [2, 2, 2], seed, 1.0, 1.0);
    let spec = DomainSpec::tiled(dims, tile, true);

    let t0 = std::time::Instant::now();
    let forest = decompose_forest(particles, &config, &spec);
    let decompose_s = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let mut trees = forest.build_trees::<CountData>(&config, true);
    let build_s = t0.elapsed().as_secs_f64();

    let seam_splits = enforce_seam_balance(
        &mut trees,
        &forest.boxes,
        &forest.routes,
        config.tree_type,
        config.bucket_size,
    );

    let t0 = std::time::Instant::now();
    let layer = exchange_ghosts(&forest, &trees, link, &Telemetry::disabled());
    let exchange_s = t0.elapsed().as_secs_f64();

    let des = des_ghost_exchange(&layer, MachineSpec::test(ranks, 2), Telemetry::virtual_time(1));

    let params = FofParams { link, min_members: 8 };
    let t0 = std::time::Instant::now();
    let cat = link_forest(&forest, &trees, &layer, &params, config.tree_type, config.bucket_size);
    let link_s = t0.elapsed().as_secs_f64();

    TileCost {
        boxes: n_tiles,
        routes: forest.routes.len(),
        seam_splits,
        decompose_s,
        build_s,
        exchange_s,
        link_s,
        ghost_particles: layer.stats.particles,
        ghost_bytes: layer.stats.bytes,
        des_comm_bytes: des.comm.bytes,
        des_makespan_s: des.makespan,
        halos: cat.halos.len(),
        largest: cat.halos.first().map(|h| h.members.len()).unwrap_or(0),
        n_links: cat.n_links,
    }
}

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 40_000);
    let seed = args.get_u64("seed", 17);
    let ranks = args.get_usize("ranks", 4);
    let out = args.get_str("out", "BENCH_forest.json");
    // Mean interparticle separation sets the linking length, as in the
    // CLI's fof app: b = 0.2 (V/N)^(1/3) over the 2×2×2 periodic domain.
    let link = args.get_f64("link", 0.2 * (8.0 / n as f64).cbrt());

    // Every tiling covers the same [0,2]³ periodic domain (cubic tiles of
    // edge 2/k), so the sweep varies box count without moving a seam out
    // from under the particle field.
    let tilings: [[usize; 3]; 4] = [[1, 1, 1], [2, 2, 2], [3, 3, 3], [4, 4, 4]];

    let mut doc = Json::obj();
    doc.push("bench", Json::Str("forest".to_string()));
    doc.push("particles", Json::U64(n as u64));
    doc.push("seed", Json::U64(seed));
    doc.push("ranks", Json::U64(ranks as u64));
    doc.push("link", Json::F64(link));
    let mut rows = Vec::new();

    println!("forest ghost exchange + FoF, {n} particles, link {link:.4}, {ranks} DES ranks\n");
    print_header(
        &[
            "tiling",
            "boxes",
            "routes",
            "ghosts",
            "gh.bytes",
            "des.bytes",
            "des.mksp",
            "exchange",
            "link",
            "halos",
        ],
        10,
    );

    let mut reference: Option<(usize, u64)> = None;
    for dims in tilings {
        let tile = 2.0 / dims[0] as f64;
        let c = run_tiling(dims, tile, n, seed, link, ranks);
        print_row(
            &[
                format!("{}x{}x{}", dims[0], dims[1], dims[2]),
                c.boxes.to_string(),
                c.routes.to_string(),
                c.ghost_particles.to_string(),
                fmt_bytes(c.ghost_bytes),
                fmt_bytes(c.des_comm_bytes),
                fmt_seconds(c.des_makespan_s),
                fmt_seconds(c.exchange_s),
                fmt_seconds(c.link_s),
                c.halos.to_string(),
            ],
            10,
        );
        // Physics invariance: every tiling of the same periodic field
        // must produce the same catalog.
        match reference {
            None => reference = Some((c.halos, c.n_links)),
            Some((halos, links)) => {
                assert_eq!((c.halos, c.n_links), (halos, links), "catalog changed with tiling");
            }
        }
        let mut row = Json::obj();
        row.push("tiling", Json::Str(format!("{}x{}x{}", dims[0], dims[1], dims[2])));
        row.push("boxes", Json::U64(c.boxes as u64));
        row.push("routes", Json::U64(c.routes as u64));
        row.push("seam_splits", Json::U64(c.seam_splits));
        row.push("decompose_s", Json::F64(c.decompose_s));
        row.push("build_s", Json::F64(c.build_s));
        row.push("exchange_s", Json::F64(c.exchange_s));
        row.push("link_s", Json::F64(c.link_s));
        row.push("ghost_particles", Json::U64(c.ghost_particles));
        row.push("ghost_bytes", Json::U64(c.ghost_bytes));
        row.push("des_comm_bytes", Json::U64(c.des_comm_bytes));
        row.push("des_makespan_s", Json::F64(c.des_makespan_s));
        row.push("halos", Json::U64(c.halos as u64));
        row.push("largest", Json::U64(c.largest as u64));
        row.push("n_links", Json::U64(c.n_links));
        rows.push(row);
    }

    doc.push("tilings", Json::Arr(rows));
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH json");
    println!("\nwrote {out}");
}
