//! Smoothed-particle hydrodynamics (paper §III-B).
//!
//! "Each iteration of SPH starts with a k-nearest neighbors traversal
//! for each particle to find its principal contributors of density. Each
//! neighbor's mass and distance is summed and weighted with a smoothing
//! kernel to determine the density of the target. This neighbor list is
//! then used to model the pressure field surrounding each particle."
//!
//! ParaTreeT's SPH gets its speedup over Gadget-2 by *fetching a fixed
//! number of neighbours once* with kNN instead of iterating fixed-ball
//! searches to converge a smoothing length (the baseline in
//! `paratreet-baselines` implements that slower scheme for Fig. 11).

use crate::knn::{KnnData, KnnVisitor, Neighbor};
use paratreet_core::{Configuration, Framework, StepReport, TraversalKind};
use paratreet_geometry::Vec3;
use paratreet_particles::Particle;
use std::collections::HashMap;

/// Cubic-spline (M4) kernel value `W(r, h)` with compact support `2h`
/// (Monaghan & Lattanzio 1985). Normalised so ∫W dV = 1.
#[inline]
pub fn kernel_w(r: f64, h: f64) -> f64 {
    if h <= 0.0 {
        return 0.0;
    }
    let q = r / h;
    let sigma = 1.0 / (std::f64::consts::PI * h * h * h);
    if q < 1.0 {
        sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q)
    } else if q < 2.0 {
        let t = 2.0 - q;
        sigma * 0.25 * t * t * t
    } else {
        0.0
    }
}

/// Magnitude factor of ∇W: returns `dW/dr` (negative within the
/// support). The vector gradient is `(dW/dr) · r̂`.
#[inline]
pub fn kernel_dw_dr(r: f64, h: f64) -> f64 {
    if h <= 0.0 {
        return 0.0;
    }
    let q = r / h;
    let sigma = 1.0 / (std::f64::consts::PI * h * h * h);
    if q < 1.0 {
        sigma / h * (-3.0 * q + 2.25 * q * q)
    } else if q < 2.0 {
        let t = 2.0 - q;
        sigma / h * (-0.75 * t * t)
    } else {
        0.0
    }
}

/// Per-particle SPH quantities computed from a neighbour list.
#[derive(Clone, Debug, Default)]
pub struct SphQuantities {
    /// Smoothing length (half the k-th neighbour distance).
    pub smoothing: f64,
    /// Mass density.
    pub density: f64,
    /// Pressure from the ideal-gas equation of state.
    pub pressure: f64,
    /// Hydrodynamic acceleration.
    pub acc: Vec3,
}

/// Density estimate from a fixed-k neighbour list: `h = r_k / 2` so the
/// kernel support exactly encloses the k neighbours, then
/// `ρ = Σⱼ mⱼ W(rᵢⱼ, h) + mᵢ W(0, h)` (self-contribution included).
pub fn density_from_neighbors(
    mass: f64,
    neighbors: &[Neighbor],
    h_override: Option<f64>,
) -> (f64, f64) {
    let h = h_override
        .unwrap_or_else(|| neighbors.last().map(|n| n.dist_sq.sqrt() * 0.5).unwrap_or(0.0));
    if h <= 0.0 {
        return (0.0, 0.0);
    }
    let mut rho = mass * kernel_w(0.0, h);
    for n in neighbors {
        rho += n.mass * kernel_w(n.dist_sq.sqrt(), h);
    }
    (h, rho)
}

/// The SPH application driver: kNN density pass plus a pressure-force
/// pass over the stored neighbour lists.
pub struct SphSimulation {
    /// Neighbours per particle (the paper's SPH uses a fixed count).
    pub k: usize,
    /// Adiabatic index of the ideal-gas equation of state.
    pub gamma: f64,
    /// Traversal schedule for the kNN pass.
    pub kind: TraversalKind,
}

impl Default for SphSimulation {
    fn default() -> SphSimulation {
        SphSimulation { k: 32, gamma: 5.0 / 3.0, kind: TraversalKind::UpAndDown }
    }
}

/// Outcome of one SPH step.
#[derive(Clone, Debug, Default)]
pub struct SphStepStats {
    /// Framework step report (tree build + traversal measurements).
    pub step: StepReport,
    /// Total neighbour-list entries gathered.
    pub neighbor_entries: u64,
    /// Mean density over all particles.
    pub mean_density: f64,
}

impl SphSimulation {
    /// Runs one density + pressure-force step, writing `smoothing`,
    /// `density`, `pressure`, and hydrodynamic `acc` into the particles.
    pub fn step(&self, fw: &mut Framework<KnnData>) -> SphStepStats {
        let visitor = KnnVisitor { k: self.k };
        let kind = self.kind;
        let ((states, ids), report) = fw.step(|step| {
            let (states, _) = step.traverse(&visitor, kind);
            (states, step.bucket_particle_ids())
        });

        // Gather neighbour lists per particle id.
        let mut lists: HashMap<u64, Vec<Neighbor>> = HashMap::new();
        let mut neighbor_entries = 0u64;
        for (state, bucket_ids) in states.into_iter().zip(ids) {
            for (heap, id) in state.heaps.into_iter().zip(bucket_ids) {
                let sorted = heap.into_sorted();
                neighbor_entries += sorted.len() as u64;
                lists.insert(id, sorted);
            }
        }

        // Pass 1: density and pressure per particle.
        let particles = fw.particles_mut();
        let mut rho_of: HashMap<u64, (f64, f64)> = HashMap::new(); // id -> (rho, P)
        for p in particles.iter_mut() {
            let empty = Vec::new();
            let nbrs = lists.get(&p.id).unwrap_or(&empty);
            let (h, rho) = density_from_neighbors(p.mass, nbrs, None);
            p.smoothing = h;
            p.density = rho;
            p.pressure = (self.gamma - 1.0) * rho * p.internal_energy;
            rho_of.insert(p.id, (rho, p.pressure));
        }

        // Pass 2: pressure force from the stored neighbour lists
        // (gather formulation with the target's own h):
        // aᵢ = −Σⱼ mⱼ (Pᵢ/ρᵢ² + Pⱼ/ρⱼ²) ∇W(rᵢⱼ, hᵢ).
        let mut mean_density = 0.0;
        for p in particles.iter_mut() {
            mean_density += p.density;
            let empty = Vec::new();
            let nbrs = lists.get(&p.id).unwrap_or(&empty);
            if p.density <= 0.0 {
                continue;
            }
            let pi_term = p.pressure / (p.density * p.density);
            let mut acc = Vec3::ZERO;
            for n in nbrs {
                let (rho_j, p_j) = match rho_of.get(&n.id) {
                    Some(&v) if v.0 > 0.0 => v,
                    _ => continue,
                };
                let dr = p.pos - n.pos;
                let r = dr.norm();
                if r == 0.0 {
                    continue;
                }
                let dw = kernel_dw_dr(r, p.smoothing);
                let pj_term = p_j / (rho_j * rho_j);
                acc -= dr * (n.mass * (pi_term + pj_term) * dw / r);
            }
            p.acc += acc;
        }
        let n = fw.particles().len().max(1);
        SphStepStats { step: report, neighbor_entries, mean_density: mean_density / n as f64 }
    }
}

/// Builds an SPH-ready framework over gas particles.
pub fn sph_framework(config: Configuration, particles: Vec<Particle>) -> Framework<KnnData> {
    Framework::new(config, particles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_particles::gen;
    use paratreet_tree::TreeType;

    #[test]
    fn kernel_normalises() {
        // ∫ W dV over the support ≈ 1 (midpoint rule on a radial grid).
        let h = 0.7;
        let steps = 4000;
        let dr = 2.0 * h / steps as f64;
        let mut integral = 0.0;
        for i in 0..steps {
            let r = (i as f64 + 0.5) * dr;
            integral += kernel_w(r, h) * 4.0 * std::f64::consts::PI * r * r * dr;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn kernel_gradient_matches_finite_difference() {
        let h = 0.5;
        for r in [0.1, 0.3, 0.6, 0.9] {
            let eps = 1e-7;
            let fd = (kernel_w(r + eps, h) - kernel_w(r - eps, h)) / (2.0 * eps);
            let an = kernel_dw_dr(r, h);
            assert!((fd - an).abs() < 1e-5, "r={r}: fd {fd} vs {an}");
        }
    }

    #[test]
    fn kernel_has_compact_support() {
        assert_eq!(kernel_w(2.1 * 0.5, 0.5), 0.0);
        assert_eq!(kernel_dw_dr(1.1, 0.5), 0.0);
        assert!(kernel_w(0.0, 0.5) > 0.0);
        assert_eq!(kernel_w(1.0, 0.0), 0.0);
    }

    #[test]
    fn uniform_lattice_density_is_near_uniform() {
        // A near-uniform gas: SPH density should match mass/volume within
        // kernel noise and be nearly equal everywhere.
        let n = 512;
        let half = 0.5;
        let ps = gen::perturbed_lattice(n, 5, half, 0.01);
        let config = Configuration {
            tree_type: TreeType::Octree,
            bucket_size: 16,
            n_subtrees: 4,
            n_partitions: 4,
            ..Default::default()
        };
        let mut fw = sph_framework(config, ps);
        let sph = SphSimulation { k: 32, ..Default::default() };
        let stats = sph.step(&mut fw);
        let volume = 2.0 * half;
        let expected = 1.0 / (volume * volume * volume); // total mass 1
                                                         // Interior particles (away from the free boundary) carry the
                                                         // expected density.
        let interior: Vec<f64> = fw
            .particles()
            .iter()
            .filter(|p| p.pos.x.abs() < 0.25 && p.pos.y.abs() < 0.25 && p.pos.z.abs() < 0.25)
            .map(|p| p.density)
            .collect();
        assert!(!interior.is_empty());
        let mean: f64 = interior.iter().sum::<f64>() / interior.len() as f64;
        assert!(
            (mean - expected).abs() / expected < 0.2,
            "mean interior density {mean} vs expected {expected}"
        );
        assert!(stats.neighbor_entries >= (n * 32) as u64 * 9 / 10);
    }

    #[test]
    fn pressure_gradient_pushes_outward_from_overdensity() {
        // Compress the central region: pressure forces must point away
        // from the centre for particles near the blob edge.
        let mut ps = gen::perturbed_lattice(729, 7, 0.5, 0.0);
        for p in &mut ps {
            // Pull everything toward the origin to create an overdensity.
            p.pos = p.pos * (0.4 + 0.6 * p.pos.norm());
        }
        let config =
            Configuration { bucket_size: 16, n_subtrees: 4, n_partitions: 4, ..Default::default() };
        let mut fw = sph_framework(config, ps);
        let sph = SphSimulation { k: 24, ..Default::default() };
        sph.step(&mut fw);
        // Density must peak centrally.
        let inner_rho: f64 =
            fw.particles().iter().filter(|p| p.pos.norm() < 0.15).map(|p| p.density).sum::<f64>();
        let outer_rho: f64 =
            fw.particles().iter().filter(|p| p.pos.norm() > 0.35).map(|p| p.density).sum::<f64>();
        assert!(inner_rho > 0.0 && outer_rho > 0.0);
        // Mean radial acceleration of mid-shell particles points outward.
        let mid: Vec<&Particle> =
            fw.particles().iter().filter(|p| (0.15..0.3).contains(&p.pos.norm())).collect();
        assert!(!mid.is_empty());
        let radial: f64 =
            mid.iter().map(|p| p.acc.dot(p.pos.normalized())).sum::<f64>() / mid.len() as f64;
        assert!(radial > 0.0, "mean radial acceleration {radial} should point outward");
    }

    #[test]
    fn density_from_neighbors_handles_empty() {
        assert_eq!(density_from_neighbors(1.0, &[], None), (0.0, 0.0));
    }
}
