//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `channel::{unbounded, Sender, Receiver}` with the crossbeam
//! semantics the workspace relies on: multi-producer **multi-consumer**
//! (receivers are `Clone`), `send` failing once all receivers are gone,
//! and `recv` blocking until a message arrives or all senders are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T>(Arc<Chan<T>>);
    pub struct Receiver<T>(Arc<Chan<T>>);

    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug does not require `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0.queue.lock().unwrap_or_else(PoisonError::into_inner).push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they
                // can observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}
