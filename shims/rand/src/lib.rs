//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! `StdRng` is a SplitMix64 generator — deterministic, seedable, and
//! statistically adequate for test-data generation (NOT cryptographic).
//! Only `seed_from_u64` + `random_range` are provided, which is the
//! entire surface this workspace uses.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level generator interface.
pub trait Rng: RngCore {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let wide: f64 = (self.start as f64..self.end as f64).sample_from(rng);
        wide as f32
    }
}

/// Deterministic SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

pub mod rngs {
    pub use crate::StdRng;
}
