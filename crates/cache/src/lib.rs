//! The shared-memory software cache for distributed tree traversal
//! (paper §II-B).
//!
//! Distributed spatial traversals fetch large numbers of remote tree
//! nodes every iteration; caching them cuts communication volume, but the
//! cache is written *during* the traversal by whichever worker handles a
//! fill message, so its structure must tolerate parallel readers and
//! writers. Prior codes used hash tables of node data; this crate
//! implements the paper's alternative: **the cache is a single tree per
//! process**, where
//!
//! * placeholder nodes stand in for remote data and carry an atomic
//!   "requested" flag,
//! * a received fragment is materialised by any worker, wired up
//!   privately, and then published by a single atomic swap of the parent's
//!   child pointer (Steps 2–4 of Fig. 2),
//! * a process-level hash table maps node keys to materialised nodes; it
//!   takes a short lock only on insertion, never during traversal reads,
//! * paused traversals are parked per-key and handed back to the caller
//!   when the fill that unblocks them is spliced in (Step 5).
//!
//! The paper publishes with relaxed atomics; in Rust that would be a data
//! race on the freshly built subtree, so [`CacheTree`] publishes with
//! `Release` and reads with `Acquire` — on x86 both compile to plain MOVs,
//! so the substitution costs nothing on the evaluated architectures.
//!
//! The two baseline models of Fig. 3 are built from the same type: the
//! *per-thread* model ("Sequential") instantiates one `CacheTree` per
//! worker so fetches duplicate, and the *exclusive-write* model
//! ("XWrite") routes every insertion through one [`parking_lot::Mutex`]
//! (see [`xwrite::XWriteCache`]).
//!
//! # Error model
//!
//! Anything a *message* can get wrong is a recoverable [`CacheError`]:
//! [`serialize_fragment`](CacheTree::serialize_fragment) and
//! [`insert_fragment`](CacheTree::insert_fragment) return `Result`, and a
//! rejected fill (garbage bytes, an orphan whose splice point has not
//! arrived yet, an unknown key) must leave the cache unchanged — the
//! executors log the error and rely on retry, they never abort.
//! Programming errors — violated engine invariants — stay debug
//! assertions. [`insert_fragment`](CacheTree::insert_fragment) returns a
//! [`FillOutcome`]: the canonical root, one `(key, waiter)` pair per
//! parked traversal unblocked by *any* key the fragment materialised, and
//! a `duplicate` flag for idempotently absorbed re-deliveries.
//! [`CacheTree::audit`] checks the full structural invariant set and is
//! run at phase boundaries by the DES engine in debug builds.

pub mod error;
pub mod node;
pub mod stats;
pub mod tree;
pub mod wire;
pub mod xwrite;

pub use error::CacheError;
pub use node::{CacheNode, NodeHandle, NodeKind};
pub use stats::CacheStats;
pub use tree::{CacheTree, FillOutcome, RequestOutcome, SubtreeSummary};
pub use wire::Fragment;
pub use xwrite::XWriteCache;
