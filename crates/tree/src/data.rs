//! The `Data` abstraction (paper §II-A-1).
//!
//! `Data` is the application-specific state that adorns every tree node,
//! "summarizing the set of particles contained within that subtree in
//! some fashion" with constant space. The library calls
//! [`Data::from_leaf`] when particles are assigned to leaves, constructs
//! parent state with [`Default::default`], and folds children upward with
//! [`Data::merge`] — the Rust spelling of the paper's
//! `Data(Particle*, int)`, `Data()`, and `operator+=`.
//!
//! Because node state crosses simulated process boundaries (the software
//! cache ships subtree fragments between ranks), `Data` also carries a
//! fixed wire encoding via [`Data::encode`] / [`Data::decode`].

use paratreet_geometry::BoundingBox;
use paratreet_particles::Particle;

/// Per-node application state, accumulated from the leaves to the root.
///
/// Implementations must satisfy, up to floating-point rounding:
///
/// * **identity** — merging a `Default` value changes nothing,
/// * **associativity of merge over subtree unions** — accumulating a
///   parent from its children equals extracting from the concatenated
///   particle set (this is what makes bottom-up accumulation correct),
/// * **encode/decode round-trip** — `decode(encode(d)) == d`.
pub trait Data: Clone + Default + Send + Sync + 'static {
    /// Extracts leaf state from a bucket of particles. `bbox` is the
    /// leaf's spatial footprint (the tight box around its particles).
    fn from_leaf(particles: &[Particle], bbox: &BoundingBox) -> Self;

    /// Accumulates a child's state into this (parent) state.
    fn merge(&mut self, child: &Self);

    /// Appends the wire encoding of this state to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes state from the front of `input`, returning the value and
    /// the number of bytes consumed, or `None` if `input` is malformed.
    fn decode(input: &[u8]) -> Option<(Self, usize)>;
}

/// The trivial `Data`: just a particle count. Used by tests and by
/// traversals that only need tree structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountData {
    /// Number of particles beneath this node.
    pub count: u64,
}

impl Data for CountData {
    fn from_leaf(particles: &[Particle], _bbox: &BoundingBox) -> Self {
        CountData { count: particles.len() as u64 }
    }

    fn merge(&mut self, child: &Self) {
        self.count += child.count;
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
    }

    fn decode(input: &[u8]) -> Option<(Self, usize)> {
        let bytes: [u8; 8] = input.get(..8)?.try_into().ok()?;
        Some((CountData { count: u64::from_le_bytes(bytes) }, 8))
    }
}

/// Encoding helpers shared by `Data` implementations.
pub mod wire {
    use paratreet_geometry::Vec3;

    /// Appends an `f64` little-endian.
    #[inline]
    pub fn put_f64(out: &mut Vec<u8>, v: f64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `Vec3` as three little-endian `f64`s.
    #[inline]
    pub fn put_vec3(out: &mut Vec<u8>, v: Vec3) {
        put_f64(out, v.x);
        put_f64(out, v.y);
        put_f64(out, v.z);
    }

    /// Reads an `f64` from `input` at `*off`, advancing the offset.
    #[inline]
    pub fn get_f64(input: &[u8], off: &mut usize) -> Option<f64> {
        let bytes: [u8; 8] = input.get(*off..*off + 8)?.try_into().ok()?;
        *off += 8;
        Some(f64::from_le_bytes(bytes))
    }

    /// Reads a `Vec3` from `input` at `*off`, advancing the offset.
    #[inline]
    pub fn get_vec3(input: &[u8], off: &mut usize) -> Option<Vec3> {
        Some(Vec3::new(get_f64(input, off)?, get_f64(input, off)?, get_f64(input, off)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_geometry::Vec3;

    fn bucket(n: usize) -> Vec<Particle> {
        (0..n).map(|i| Particle::point_mass(i as u64, 1.0, Vec3::splat(i as f64))).collect()
    }

    #[test]
    fn count_data_accumulates() {
        let b = BoundingBox::empty();
        let a = CountData::from_leaf(&bucket(3), &b);
        let c = CountData::from_leaf(&bucket(5), &b);
        let mut parent = CountData::default();
        parent.merge(&a);
        parent.merge(&c);
        assert_eq!(parent.count, 8);
        // identity
        let mut d = a;
        d.merge(&CountData::default());
        assert_eq!(d, a);
    }

    #[test]
    fn count_data_wire_roundtrip() {
        let d = CountData { count: 123_456_789 };
        let mut buf = Vec::new();
        d.encode(&mut buf);
        let (back, used) = CountData::decode(&buf).unwrap();
        assert_eq!(back, d);
        assert_eq!(used, buf.len());
        assert!(CountData::decode(&buf[..4]).is_none());
    }

    #[test]
    fn wire_helpers_roundtrip() {
        let mut buf = Vec::new();
        wire::put_f64(&mut buf, 1.5);
        wire::put_vec3(&mut buf, Vec3::new(1.0, -2.0, 3.0));
        let mut off = 0;
        assert_eq!(wire::get_f64(&buf, &mut off), Some(1.5));
        assert_eq!(wire::get_vec3(&buf, &mut off), Some(Vec3::new(1.0, -2.0, 3.0)));
        assert_eq!(off, buf.len());
        assert_eq!(wire::get_f64(&buf, &mut off), None);
    }
}
