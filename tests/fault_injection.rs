//! Fault-injection acceptance for the DES engine: with seeded drops,
//! duplicates, and delays (reorders) on every fetch and fill message,
//! the gravity traversal must still complete — via idempotent duplicate
//! handling and retry-on-timeout — and produce results identical to the
//! fault-free run. In debug builds the cache audit also runs at every
//! phase boundary inside `run_iteration`, so these tests double as
//! audit coverage under adversarial delivery.

use paratreet_apps::gravity::GravityVisitor;
use paratreet_baselines::direct::rms_acc_error;
use paratreet_core::{CacheModel, Configuration, DistributedEngine, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::{FaultConfig, MachineSpec};

fn config() -> Configuration {
    Configuration { bucket_size: 8, n_subtrees: 16, n_partitions: 32, ..Default::default() }
}

fn faults(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        drop_p: 0.15,
        duplicate_p: 0.15,
        delay_p: 0.20,
        delay_s: 2e-3,
        retry_timeout_s: 5e-3,
    }
}

fn run(
    ps: &[paratreet_particles::Particle],
    f: Option<FaultConfig>,
) -> paratreet_core::des_engine::IterationReport {
    let visitor = GravityVisitor::default();
    let mut engine = DistributedEngine::new(
        MachineSpec::test(4, 2),
        config(),
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    );
    if let Some(f) = f {
        engine = engine.with_faults(f);
    }
    engine.run_iteration(ps.to_vec())
}

#[test]
fn faulty_network_reaches_identical_results() {
    let ps = gen::clustered(1000, 4, 23, 1.0, 1.0);
    let clean = run(&ps, None);
    let faulty = run(&ps, Some(faults(7)));

    // The fault layer actually fired all three kinds on this seed...
    assert!(faulty.faults.dropped > 0, "no drops injected: {:?}", faulty.faults);
    assert!(faulty.faults.duplicated > 0, "no duplicates injected: {:?}", faulty.faults);
    assert!(faulty.faults.delayed > 0, "no delays injected: {:?}", faulty.faults);
    // ...dropped messages forced timeout retries...
    assert!(faulty.fetch_retries > 0, "drops must trigger re-requests");
    // ...and redundant fills were absorbed idempotently, never rejected.
    assert!(faulty.cache.fills_duplicate > 0, "duplicate fills must be detected");
    assert_eq!(faulty.fill_errors, 0, "faults reorder/duplicate but never corrupt");

    // Same pruning decisions, same exact work.
    assert_eq!(faulty.counts.leaf_interactions, clean.counts.leaf_interactions);
    assert_eq!(faulty.counts.node_interactions, clean.counts.node_interactions);
    // Same physics (forces differ only by FP summation order).
    let err = rms_acc_error(&faulty.particles, &clean.particles);
    assert!(err < 1e-9, "force mismatch under faults: {err}");

    // A perfect network injects nothing and never retries.
    assert_eq!(clean.faults.dropped + clean.faults.duplicated + clean.faults.delayed, 0);
    assert_eq!(clean.fetch_retries, 0);
    assert_eq!(clean.fill_errors, 0);
}

#[test]
fn faulty_runs_replay_deterministically() {
    let ps = gen::uniform_cube(600, 37, 1.0, 1.0);
    let a = run(&ps, Some(faults(11)));
    let b = run(&ps, Some(faults(11)));
    assert_eq!(a.makespan, b.makespan, "same seed must replay the same timeline");
    assert_eq!(a.comm.messages, b.comm.messages);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.fetch_retries, b.fetch_retries);
    assert_eq!(a.counts, b.counts);
}

#[test]
fn faults_cost_time_but_not_correctness_across_cache_models() {
    let ps = gen::clustered(800, 4, 31, 1.0, 1.0);
    for model in [CacheModel::WaitFree, CacheModel::XWrite] {
        let visitor = GravityVisitor::default();
        let clean = DistributedEngine::new(
            MachineSpec::test(3, 2),
            config(),
            model,
            TraversalKind::TopDown,
            &visitor,
        )
        .run_iteration(ps.clone());
        let faulty = DistributedEngine::new(
            MachineSpec::test(3, 2),
            config(),
            model,
            TraversalKind::TopDown,
            &visitor,
        )
        .with_faults(faults(3))
        .run_iteration(ps.clone());
        assert_eq!(faulty.counts, clean.counts, "{model:?}");
        let err = rms_acc_error(&faulty.particles, &clean.particles);
        assert!(err < 1e-9, "{model:?}: force mismatch under faults: {err}");
        // Lost and delayed messages can only stretch the timeline.
        assert!(faulty.makespan >= clean.makespan * 0.999, "{model:?}");
    }
}
