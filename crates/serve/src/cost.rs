//! The admission cost model: a lock-light EWMA of per-query service
//! time, keyed by query class × entry-subtree population bucket.
//!
//! Workers feed it the same per-request execution durations that go
//! into the `serve.latency.<class>.exec` component histograms; `submit`
//! reads it to predict how long the queued backlog plus a candidate
//! batch will take, and sheds when that prediction cannot fit the
//! batch's deadline (or the configured backlog bound). Every cell is a
//! single `AtomicU64` holding `f64` bits — observation is a relaxed
//! load/blend/store with no locks; a racing pair of observers can lose
//! one blend, which moves the estimate by at most one EWMA step and is
//! irrelevant to an admission decision.
//!
//! Population buckets are `log2(entry-subtree particle count)`: query
//! cost for all four kernels grows with the population of the Subtree
//! the descent enters (deeper arenas, more buckets touched), so the
//! bucket index is a cheap, monotone cost feature that both the
//! observer (which knows the executed subtree) and the predictor
//! (which resolves `entry_subtree` against the pinned head snapshot)
//! can compute identically.

use crate::request::QueryClass;
use paratreet_telemetry::metrics::{MetricSource, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Population buckets: `log2(population)` clamped to this many cells
/// (2^23 ≈ 8M particles per Subtree saturates the top bucket).
pub const POP_BUCKETS: usize = 24;

/// EWMA blend factor per observation.
const ALPHA: f64 = 0.2;

/// The prior estimate used before any observation lands: a few µs per
/// query, the right order of magnitude for every kernel on warm
/// arenas. Predictions fall back class-wide, then to this.
pub const DEFAULT_COST_NS: f64 = 4_000.0;

/// The population bucket for an entry subtree holding `population`
/// particles.
#[inline]
pub fn pop_bucket(population: usize) -> usize {
    ((usize::BITS - population.leading_zeros()) as usize).min(POP_BUCKETS - 1)
}

/// One EWMA cell: `f64` bits in an atomic, 0.0 = never observed.
fn blend(cell: &AtomicU64, ns: f64) {
    let prev = f64::from_bits(cell.load(Relaxed));
    let next = if prev == 0.0 { ns } else { prev + ALPHA * (ns - prev) };
    cell.store(next.to_bits(), Relaxed);
}

fn read(cell: &AtomicU64) -> f64 {
    f64::from_bits(cell.load(Relaxed))
}

/// Per-(class × population bucket) EWMA service-time model.
#[derive(Debug, Default)]
pub struct CostModel {
    /// `cells[class][bucket]`, f64 ns bits; 0 = no observation yet.
    cells: [[AtomicU64; POP_BUCKETS]; 4],
    /// Class-wide fallback EWMA, fed by every observation.
    class_wide: [AtomicU64; 4],
    /// Observations absorbed (all cells).
    observations: AtomicU64,
}

impl CostModel {
    /// An empty model (predicts [`DEFAULT_COST_NS`] everywhere).
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// Absorbs one observed per-query execution time.
    pub fn observe(&self, class: QueryClass, population: usize, ns: u64) {
        let ns = ns as f64;
        blend(&self.cells[class.index()][pop_bucket(population)], ns);
        blend(&self.class_wide[class.index()], ns);
        self.observations.fetch_add(1, Relaxed);
    }

    /// Predicted per-query service time in nanoseconds: the cell
    /// estimate, falling back to the class-wide estimate, falling back
    /// to [`DEFAULT_COST_NS`].
    pub fn predict(&self, class: QueryClass, population: usize) -> f64 {
        let cell = read(&self.cells[class.index()][pop_bucket(population)]);
        if cell > 0.0 {
            return cell;
        }
        let wide = read(&self.class_wide[class.index()]);
        if wide > 0.0 {
            return wide;
        }
        DEFAULT_COST_NS
    }

    /// Observations absorbed so far.
    pub fn observations(&self) -> u64 {
        self.observations.load(Relaxed)
    }
}

impl MetricSource for CostModel {
    /// Registers `{prefix}.observations` and the class-wide estimates
    /// `{prefix}.<class>.est_ns` (0 before the first observation) —
    /// schema-stable: every key is present on every run.
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.observations"), self.observations());
        for class in QueryClass::ALL {
            registry.set_f64(
                format!("{prefix}.{}.est_ns", class.label()),
                read(&self.class_wide[class.index()]),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_bucket_is_monotone_and_clamped() {
        let mut prev = 0;
        for pop in [0usize, 1, 2, 3, 7, 8, 100, 1 << 10, 1 << 20, usize::MAX] {
            let b = pop_bucket(pop);
            assert!(b >= prev, "bucket not monotone at population {pop}");
            assert!(b < POP_BUCKETS);
            prev = b;
        }
        assert_eq!(pop_bucket(0), 0);
        assert_ne!(pop_bucket(100), pop_bucket(1 << 20));
        assert_eq!(pop_bucket(usize::MAX), POP_BUCKETS - 1);
    }

    #[test]
    fn predict_falls_back_cell_to_class_to_default() {
        let m = CostModel::new();
        assert_eq!(m.predict(QueryClass::Knn, 100), DEFAULT_COST_NS);
        // One observation in a different bucket: class-wide fallback.
        m.observe(QueryClass::Knn, 1 << 20, 10_000);
        assert_eq!(m.predict(QueryClass::Knn, 100), 10_000.0);
        // The observed bucket answers exactly.
        assert_eq!(m.predict(QueryClass::Knn, 1 << 20), 10_000.0);
        // Other classes are untouched.
        assert_eq!(m.predict(QueryClass::Ray, 1 << 20), DEFAULT_COST_NS);
    }

    #[test]
    fn ewma_converges_toward_recent_observations() {
        let m = CostModel::new();
        for _ in 0..50 {
            m.observe(QueryClass::Ball, 500, 2_000);
        }
        let settled = m.predict(QueryClass::Ball, 500);
        assert!((settled - 2_000.0).abs() < 1.0, "settled at {settled}");
        // A burst of slower queries pulls the estimate up but not all
        // the way in one step.
        m.observe(QueryClass::Ball, 500, 20_000);
        let moved = m.predict(QueryClass::Ball, 500);
        assert!(moved > settled && moved < 20_000.0, "one EWMA step: {moved}");
        assert_eq!(m.observations(), 51);
    }

    #[test]
    fn metric_source_is_schema_stable() {
        let m = CostModel::new();
        let mut r = MetricsRegistry::new();
        r.absorb("serve.cost", &m);
        for class in ["knn", "ball", "range", "ray"] {
            assert!(r.contains(&format!("serve.cost.{class}.est_ns")));
        }
        assert_eq!(r.get_u64("serve.cost.observations"), 0);
        m.observe(QueryClass::Knn, 64, 5_000);
        let mut r = MetricsRegistry::new();
        r.absorb("serve.cost", &m);
        assert_eq!(r.get_f64("serve.cost.knn.est_ns"), 5_000.0);
        assert_eq!(r.get_u64("serve.cost.observations"), 1);
    }
}
