//! The ChaNGa-like gravity comparator (Figs. 10 and 13).
//!
//! ChaNGa computes the same forces as ParaTreeT ("ParaTreeT and ChaNGa
//! return identical solutions and share the same computational work",
//! §III-A), so the baseline differs only in the *mechanisms* the paper
//! credits for ParaTreeT's advantage:
//!
//! 1. **Per-bucket DFS walks** — no loop transposition
//!    ([`paratreet_core::TraversalKind::BasicDfs`]): many more node
//!    visits and `open()` tests for the same interactions.
//! 2. **Per-thread software caches** — "ChaNGa often makes the same
//!    remote fetch for multiple worker threads within the same process"
//!    ([`paratreet_core::CacheModel::PerThread`]).
//! 3. **Lower sequential throughput** — the larger working set per node
//!    and bucket-at-a-time walks cost cache efficiency. Table II
//!    measures the single-CPU ratio at 16 s / 9.2 s ≈ 1.7×; the cache
//!    simulator (`paratreet-cachesim`) reproduces the mechanism, and the
//!    machine model imports it as a per-interaction multiplier.
//! 4. **Tree-bound decomposition** — without Partitions–Subtrees, an SFC
//!    decomposition of an octree duplicates every split leaf's path to
//!    the root across ranks and merges those branch nodes during the
//!    build ([`ChangaModel::build_merge_factor`] charges that
//!    synchronisation).

use paratreet_apps::gravity::GravityVisitor;
use paratreet_core::des_engine::{CostModel, IterationReport};
use paratreet_core::{CacheModel, Configuration, DistributedEngine, TraversalKind};
use paratreet_particles::Particle;
use paratreet_runtime::MachineSpec;

/// Tunable knobs of the ChaNGa model.
#[derive(Clone, Copy, Debug)]
pub struct ChangaModel {
    /// Sequential-throughput penalty on interaction kernels (Table II's
    /// measured 1-CPU runtime ratio).
    pub interaction_slowdown: f64,
    /// Multiplier on tree-build cost modelling the branch-node merge an
    /// SFC-decomposed octree build performs without Partitions–Subtrees.
    pub build_merge_factor: f64,
    /// Extra bytes per shipped node (ChaNGa's larger per-node state).
    pub node_state_inflation: f64,
}

impl Default for ChangaModel {
    fn default() -> ChangaModel {
        ChangaModel {
            interaction_slowdown: 1.7,
            build_merge_factor: 2.0,
            node_state_inflation: 1.6,
        }
    }
}

impl ChangaModel {
    /// The cost model this baseline runs the machine simulation with.
    pub fn costs(&self) -> CostModel {
        let base = CostModel::default();
        CostModel {
            pp: base.pp * self.interaction_slowdown,
            pn: base.pn * self.interaction_slowdown,
            open: base.open * self.interaction_slowdown,
            visit: base.visit * self.interaction_slowdown,
            build_per_particle_log: base.build_per_particle_log * self.build_merge_factor,
            serialize_per_byte: base.serialize_per_byte * self.node_state_inflation,
            insert_per_byte: base.insert_per_byte * self.node_state_inflation,
            ..base
        }
    }

    /// Runs one ChaNGa-style gravity iteration on the machine model:
    /// per-bucket DFS, per-thread caches, merged tree build.
    pub fn run_gravity_iteration(
        &self,
        machine: MachineSpec,
        config: Configuration,
        theta: f64,
        particles: Vec<Particle>,
    ) -> IterationReport {
        let visitor = GravityVisitor { theta, g: 1.0 };
        let mut engine = DistributedEngine::new(
            machine,
            config,
            CacheModel::PerThread,
            TraversalKind::BasicDfs,
            &visitor,
        );
        engine.costs = self.costs();
        engine.run_iteration(particles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_core::Framework;
    use paratreet_particles::gen;

    #[test]
    fn changa_computes_identical_interactions_to_paratreet() {
        // "ParaTreeT and ChaNGa return identical solutions": the baseline
        // shares kernels and opening criterion, so particle-particle and
        // particle-node interaction totals must match exactly between
        // BasicDfs (ChaNGa-style) and TopDown (ParaTreeT-style).
        let ps = gen::uniform_cube(500, 3, 1.0, 1.0);
        let config = Configuration { bucket_size: 8, ..Default::default() };
        let v = GravityVisitor::default();
        let mut fw1: Framework<paratreet_apps::gravity::CentroidData> =
            Framework::new(config.clone(), ps.clone());
        let (_, rep_topdown) = fw1.step(|s| {
            s.traverse(&v, TraversalKind::TopDown);
        });
        let mut fw2: Framework<paratreet_apps::gravity::CentroidData> = Framework::new(config, ps);
        let (_, rep_dfs) = fw2.step(|s| {
            s.traverse(&v, TraversalKind::BasicDfs);
        });
        assert_eq!(rep_topdown.counts.leaf_interactions, rep_dfs.counts.leaf_interactions);
        assert_eq!(rep_topdown.counts.node_interactions, rep_dfs.counts.node_interactions);
        // ...but the DFS walk visits far more nodes for the same work —
        // the cache-efficiency mechanism of §III-A.
        assert!(rep_dfs.counts.nodes_visited > 4 * rep_topdown.counts.nodes_visited);
    }

    #[test]
    fn changa_cost_model_is_slower_sequentially() {
        let m = ChangaModel::default();
        let c = m.costs();
        let base = CostModel::default();
        assert!(c.pp > base.pp);
        assert!(c.build_per_particle_log > base.build_per_particle_log);
    }
}
