//! The distributed (machine-model) engine must agree with the
//! shared-memory engine on *physics* and *interaction counts*, and its
//! virtual-time behaviour must respond to the mechanisms the paper
//! describes: cache models change communication volume, more ranks
//! change the local/remote work split, and all partitions always finish.

use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_baselines::direct::rms_acc_error;
use paratreet_core::{CacheModel, Configuration, DistributedEngine, Framework, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;

/// Subtree/partition counts high enough that `DistributedEngine::new`
/// does not raise them for ≤4 ranks — identical decomposition (and so
/// identical opening decisions) across engines and rank counts.
fn config() -> Configuration {
    Configuration { bucket_size: 8, n_subtrees: 16, n_partitions: 32, ..Default::default() }
}

#[test]
fn distributed_matches_shared_memory_forces() {
    let ps = gen::clustered(1000, 3, 19, 1.0, 1.0);
    let visitor = GravityVisitor::default();

    let mut fw: Framework<CentroidData> = Framework::new(config(), ps.clone());
    let (_, report) = fw.step(|step| {
        step.traverse(&visitor, TraversalKind::TopDown);
    });
    let reference = fw.particles().to_vec();

    for ranks in [1usize, 2, 4] {
        let engine = DistributedEngine::new(
            MachineSpec::test(ranks, 4),
            config(),
            CacheModel::WaitFree,
            TraversalKind::TopDown,
            &visitor,
        );
        let rep = engine.run_iteration(ps.clone());
        let err = rms_acc_error(&rep.particles, &reference);
        assert!(err < 1e-9, "{ranks} ranks: force mismatch {err}");
        // Exact interaction counts match (same pruning decisions).
        assert_eq!(rep.counts.leaf_interactions, report.counts.leaf_interactions, "{ranks} ranks");
        assert_eq!(rep.counts.node_interactions, report.counts.node_interactions, "{ranks} ranks");
    }
}

#[test]
fn single_rank_sends_no_network_traffic() {
    let ps = gen::uniform_cube(400, 3, 1.0, 1.0);
    let visitor = GravityVisitor::default();
    let engine = DistributedEngine::new(
        MachineSpec::test(1, 4),
        config(),
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    );
    let rep = engine.run_iteration(ps);
    assert_eq!(rep.comm.bytes, 0, "one rank has nothing to fetch remotely");
    assert_eq!(rep.cache.requests_sent, 0);
}

#[test]
fn multi_rank_fetches_remote_data_and_all_partitions_finish() {
    let ps = gen::clustered(1200, 4, 23, 1.0, 1.0);
    let visitor = GravityVisitor::default();
    let engine = DistributedEngine::new(
        MachineSpec::test(4, 2),
        config(),
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    );
    let rep = engine.run_iteration(ps);
    assert!(rep.cache.requests_sent > 0, "remote subtrees must be fetched");
    assert!(rep.comm.bytes > 0);
    assert!(rep.cache.fills_inserted > 0);
    assert_eq!(rep.cache.waiters_parked, rep.cache.waiters_resumed);
    assert!(rep.makespan > rep.traversal_start);
    // The phase ledger saw both local traversal and cache activity.
    use paratreet_runtime::Phase;
    assert!(rep.phase_busy[Phase::LocalTraversal.index()] > 0.0);
    assert!(rep.phase_busy[Phase::CacheInsertion.index()] > 0.0);
    assert!(rep.phase_busy[Phase::TreeBuild.index()] > 0.0);
}

#[test]
fn per_thread_cache_duplicates_fetches() {
    let ps = gen::clustered(1200, 4, 29, 1.0, 1.0);
    let visitor = GravityVisitor::default();
    let run = |model: CacheModel| {
        DistributedEngine::new(
            MachineSpec::test(4, 4),
            config(),
            model,
            TraversalKind::TopDown,
            &visitor,
        )
        .run_iteration(ps.clone())
    };
    let shared = run(CacheModel::WaitFree);
    let per_thread = run(CacheModel::PerThread);
    assert!(
        per_thread.cache.requests_sent > shared.cache.requests_sent,
        "per-thread caches must duplicate fetches: {} vs {}",
        per_thread.cache.requests_sent,
        shared.cache.requests_sent
    );
    assert!(per_thread.comm.bytes > shared.comm.bytes);
    // Physics is unaffected by the cache model.
    let err = rms_acc_error(&per_thread.particles, &shared.particles);
    assert!(err < 1e-9);
}

#[test]
fn xwrite_serialises_insertions_but_keeps_physics() {
    let ps = gen::clustered(1000, 4, 31, 1.0, 1.0);
    let visitor = GravityVisitor::default();
    let run = |model: CacheModel| {
        DistributedEngine::new(
            MachineSpec::test(4, 4),
            config(),
            model,
            TraversalKind::TopDown,
            &visitor,
        )
        .run_iteration(ps.clone())
    };
    let wait_free = run(CacheModel::WaitFree);
    let xwrite = run(CacheModel::XWrite);
    // Same fetches (both share per-rank caches)...
    assert_eq!(xwrite.cache.requests_sent, wait_free.cache.requests_sent);
    // ...but serialised insertion can only make the makespan worse or equal.
    assert!(xwrite.makespan >= wait_free.makespan * 0.999);
    let err = rms_acc_error(&xwrite.particles, &wait_free.particles);
    assert!(err < 1e-9);
}

#[test]
fn deterministic_replay() {
    let ps = gen::uniform_cube(500, 37, 1.0, 1.0);
    let visitor = GravityVisitor::default();
    let run = || {
        DistributedEngine::new(
            MachineSpec::test(3, 2),
            config(),
            CacheModel::WaitFree,
            TraversalKind::TopDown,
            &visitor,
        )
        .run_iteration(ps.clone())
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.comm.messages, b.comm.messages);
    assert_eq!(a.counts, b.counts);
}

#[test]
fn knn_works_distributed() {
    use paratreet_apps::knn::{KnnData, KnnVisitor};
    let ps = gen::uniform_cube(400, 41, 1.0, 1.0);
    let visitor = KnnVisitor { k: 8 };

    // Shared-memory reference neighbour distance sums per particle.
    let mut fw: Framework<KnnData> = Framework::new(config(), ps.clone());
    let ((ref_states, ref_ids), _) = fw.step(|step| {
        let (s, _) = step.traverse(&visitor, TraversalKind::TopDown);
        (s, step.bucket_particle_ids())
    });
    let mut reference: std::collections::HashMap<u64, Vec<u64>> = Default::default();
    for (state, ids) in ref_states.into_iter().zip(ref_ids) {
        for (heap, id) in state.heaps.into_iter().zip(ids) {
            reference.insert(id, heap.into_sorted().into_iter().map(|n| n.id).collect());
        }
    }

    let engine = DistributedEngine::new(
        MachineSpec::test(3, 2),
        config(),
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    );
    let rep = engine.run_iteration(ps);
    assert!(rep.cache.requests_sent > 0);
    // The distributed run cannot return neighbour lists through particles
    // (state lives in buckets), but its interaction counts must indicate
    // the same amount of exact work up to placeholder re-visits.
    assert!(rep.counts.leaf_interactions > 0);
    assert!(!reference.is_empty());
}
