//! Criterion microbenchmarks: traversal styles — the loop-transposition
//! ablation (`TopDown` vs `BasicDfs`, §III-A) and up-and-down kNN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_apps::knn::{KnnData, KnnVisitor};
use paratreet_core::{Configuration, Framework, TraversalKind};
use paratreet_particles::gen;
use std::hint::black_box;

fn bench_gravity_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_transpose");
    group.sample_size(10);
    let ps = gen::uniform_cube(20_000, 5, 1.0, 1.0);
    let config =
        Configuration { bucket_size: 16, n_subtrees: 8, n_partitions: 8, ..Default::default() };
    let visitor = GravityVisitor::default();
    for kind in [TraversalKind::TopDown, TraversalKind::BasicDfs] {
        group.bench_with_input(
            BenchmarkId::new("gravity_20k", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut fw: Framework<CentroidData> =
                        Framework::new(config.clone(), ps.clone());
                    let (_, report) = fw.step(|s| {
                        s.traverse(&visitor, kind);
                    });
                    black_box(report.counts.leaf_interactions)
                })
            },
        );
    }
    group.finish();
}

fn bench_knn_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_traversal");
    group.sample_size(10);
    let ps = gen::clustered(10_000, 4, 5, 1.0, 1.0);
    let config =
        Configuration { bucket_size: 16, n_subtrees: 8, n_partitions: 8, ..Default::default() };
    let visitor = KnnVisitor { k: 16 };
    for kind in [TraversalKind::UpAndDown, TraversalKind::TopDown] {
        group.bench_with_input(
            BenchmarkId::new("knn_10k_k16", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut fw: Framework<KnnData> = Framework::new(config.clone(), ps.clone());
                    let (_, report) = fw.step(|s| {
                        s.traverse(&visitor, kind);
                    });
                    black_box(report.counts.leaf_interactions)
                })
            },
        );
    }
    group.finish();
}

fn bench_theta(c: &mut Criterion) {
    let mut group = c.benchmark_group("gravity_theta");
    group.sample_size(10);
    let ps = gen::plummer(20_000, 11, 1.0, 1.0);
    let config = Configuration { bucket_size: 16, ..Default::default() };
    for theta in [0.3, 0.7, 1.0] {
        let visitor = GravityVisitor { theta, g: 1.0 };
        group.bench_with_input(
            BenchmarkId::new("plummer_20k", format!("theta{theta}")),
            &theta,
            |b, _| {
                b.iter(|| {
                    let mut fw: Framework<CentroidData> =
                        Framework::new(config.clone(), ps.clone());
                    let (_, report) = fw.step(|s| {
                        s.traverse(&visitor, TraversalKind::TopDown);
                    });
                    black_box(report.counts.leaf_interactions)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gravity_styles, bench_knn_styles, bench_theta);
criterion_main!(benches);
