//! Scratch reproduction for review — delete after use.

use paratreet_apps::fof::{brute_force_fof, link_forest, FofParams};
use paratreet_core::{
    decompose_forest, enforce_seam_balance, exchange_ghosts, Configuration, DomainSpec,
};
use paratreet_geometry::Vec3;
use paratreet_particles::Particle;
use paratreet_telemetry::Telemetry;
use paratreet_tree::{CountData, TreeType};

#[test]
fn straggler_pair_across_seam_matches_brute_force() {
    // Open 2x1x1 grid of unit tiles covering [0,2]x[0,1]x[0,1].
    // Two particles straddle x=1 but sit at y=1.8, far OUTSIDE the grid;
    // assignment clamps them into boxes 0 and 1 respectively.
    let ps = vec![
        Particle::point_mass(0, 1.0, Vec3::new(0.98, 1.8, 0.5)),
        Particle::point_mass(1, 1.0, Vec3::new(1.02, 1.8, 0.5)),
        Particle::point_mass(2, 1.0, Vec3::new(0.5, 0.5, 0.5)),
    ];
    let spec = DomainSpec::tiled([2, 1, 1], 1.0, false);
    let params = FofParams { link: 0.1, min_members: 2 };
    let config = Configuration {
        tree_type: TreeType::Octree,
        bucket_size: 8,
        n_subtrees: 8,
        n_partitions: 8,
        ..Default::default()
    };
    let forest = decompose_forest(ps.clone(), &config, &spec);
    let mut trees = forest.build_trees::<CountData>(&config, false);
    enforce_seam_balance(&mut trees, &forest.boxes, &forest.routes, config.tree_type, config.bucket_size);
    let layer = exchange_ghosts(&forest, &trees, params.link, &Telemetry::disabled());
    let cat = link_forest(&forest, &trees, &layer, &params, config.tree_type, config.bucket_size);
    let truth = brute_force_fof(&ps, &spec.period(), &params);
    assert_eq!(cat.n_links, truth.n_links, "forest missed links brute force found");
    assert_eq!(cat.halos.len(), truth.halos.len());
}
