//! Criterion microbenchmarks for the incremental maintenance subsystem:
//! one maintained `advance` under small drift vs. the decompose + build
//! it replaces, on a clustered (multi-Plummer) distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paratreet_apps::gravity::CentroidData;
use paratreet_core::{Configuration, TreeMaintainer};
use paratreet_particles::{gen, Particle};
use std::hint::black_box;

fn bench_config() -> Configuration {
    let mut config =
        Configuration { bucket_size: 16, n_subtrees: 16, n_partitions: 32, ..Default::default() };
    config.incremental.enabled = true;
    config
}

/// Particles drifted by one small deterministic step (id-hashed
/// direction, magnitude `eps`), as between two simulation iterations.
fn drifted(particles: &[Particle], eps: f64) -> Vec<Particle> {
    particles
        .iter()
        .map(|p| {
            let mut p = *p;
            let h = p.id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            p.pos.x += ((h & 0xFF) as f64 / 255.0 - 0.5) * eps;
            p.pos.y += ((h >> 8 & 0xFF) as f64 / 255.0 - 0.5) * eps;
            p.pos.z += ((h >> 16 & 0xFF) as f64 / 255.0 - 0.5) * eps;
            p
        })
        .collect()
}

fn bench_tree_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_update");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        let config = bench_config();
        let particles = gen::clustered(n, 4, 7, 1.0, 1.0);
        let moved = drifted(&particles, 2e-3);

        group.bench_with_input(BenchmarkId::new("full_rebuild", n), &n, |b, _| {
            b.iter(|| {
                let (m, trees) = TreeMaintainer::<CentroidData>::seed(
                    &config,
                    black_box(particles.clone()),
                    false,
                );
                black_box((m.n_subtrees(), trees.len()))
            })
        });

        group.bench_with_input(BenchmarkId::new("incremental_advance", n), &n, |b, _| {
            let (mut m, _) =
                TreeMaintainer::<CentroidData>::seed(&config, particles.clone(), false);
            let mut flip = false;
            b.iter(|| {
                // Alternate between the two snapshots so every advance
                // sees genuine motion instead of a warm no-op.
                flip = !flip;
                let ps = if flip { moved.clone() } else { particles.clone() };
                let (trees, round) = m.advance(black_box(ps));
                black_box((trees.len(), round.n_migrated))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_update);
criterion_main!(benches);
