//! File exporters behind the `--trace-out` / `--metrics-out` flags.

use crate::chrome::chrome_trace_json;
use crate::metrics::MetricsRegistry;
use crate::span::Trace;
use crate::timeseries::TimeSeries;
use std::io;
use std::path::Path;

/// Writes a trace as Chrome trace-event JSON (open in Perfetto or
/// chrome://tracing).
pub fn write_chrome_trace(path: impl AsRef<Path>, trace: &Trace) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(trace))
}

/// Writes a metrics dump; `.csv` paths get `metric,value` rows, every
/// other extension a flat JSON object.
pub fn write_metrics(path: impl AsRef<Path>, metrics: &MetricsRegistry) -> io::Result<()> {
    let path = path.as_ref();
    let csv = path.extension().is_some_and(|e| e.eq_ignore_ascii_case("csv"));
    let body = if csv { metrics.to_csv() } else { format!("{}\n", metrics.to_json()) };
    std::fs::write(path, body)
}

/// Writes a flight-recorder window; `.csv` paths get a header plus one
/// row per sample, every other extension the deterministic JSON form.
pub fn write_timeseries(path: impl AsRef<Path>, series: &TimeSeries) -> io::Result<()> {
    let path = path.as_ref();
    let csv = path.extension().is_some_and(|e| e.eq_ignore_ascii_case("csv"));
    let body = if csv { series.to_csv() } else { format!("{}\n", series.to_json()) };
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::validate_chrome_trace;

    #[test]
    fn writes_both_formats() {
        let dir = std::env::temp_dir().join(format!("ptt-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut m = MetricsRegistry::new();
        m.set_u64("n", 3);

        let json_path = dir.join("m.json");
        write_metrics(&json_path, &m).unwrap();
        assert_eq!(std::fs::read_to_string(&json_path).unwrap(), "{\"n\":3}\n");

        let csv_path = dir.join("m.csv");
        write_metrics(&csv_path, &m).unwrap();
        assert!(std::fs::read_to_string(&csv_path).unwrap().contains("n,3"));

        let trace_path = dir.join("t.json");
        write_chrome_trace(&trace_path, &Trace::default()).unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(validate_chrome_trace(&text).is_ok());

        let ts = TimeSeries {
            clock: crate::span::ClockDomain::Wall,
            names: vec!["x"],
            rows: vec![(1.0, vec![2.0])],
        };
        let ts_json = dir.join("ts.json");
        write_timeseries(&ts_json, &ts).unwrap();
        assert_eq!(
            std::fs::read_to_string(&ts_json).unwrap(),
            "{\"clock\":\"wall\",\"series\":[\"x\"],\"samples\":[[1,2]]}\n"
        );
        let ts_csv = dir.join("ts.csv");
        write_timeseries(&ts_csv, &ts).unwrap();
        assert_eq!(std::fs::read_to_string(&ts_csv).unwrap(), "t_us,x\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
