//! Time-series flight recorder: a lock-free ring of periodic samples.
//!
//! A [`FlightRecorder`] holds the last `capacity` rows of a fixed set of
//! named series (queue depth, q/s, epochs published, pin retries, phase
//! busy fraction, …). Producers call [`FlightRecorder::sample`] (wall
//! clock) or [`FlightRecorder::sample_at`] (virtual clock — the DES
//! stamps simulated time, so same seed ⇒ byte-identical series) from any
//! thread; the ring overwrites the oldest rows, so after a long run the
//! newest window is always retained — the "flight recorder" discipline.
//!
//! Concurrency: a producer claims a slot with one `fetch_add`, marks it
//! dirty (odd tag), writes the row as relaxed per-word atomics, then
//! marks it clean (even tag carrying the claim number). A snapshot
//! validates each slot's tag before and after copying; a torn row (two
//! producers lapping each other onto the same slot mid-write) is simply
//! skipped. With capacity ≥ rows written, sampling is loss-free.
//!
//! Like [`crate::Telemetry`], the handle is cheap to clone and is a
//! zero-sized no-op without the `recorder` cargo feature.

use crate::json::Json;
use crate::span::ClockDomain;
#[cfg(feature = "recorder")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "recorder")]
use std::sync::Arc;
#[cfg(feature = "recorder")]
use std::time::Instant;

/// One drained window of samples: the series names plus `(t_us, values)`
/// rows in recording order (oldest retained row first).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    /// The clock the timestamps were taken on.
    pub clock: ClockDomain,
    /// Column names, one per value in each row.
    pub names: Vec<&'static str>,
    /// `(t_us, values)` rows; `values.len() == names.len()`.
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl TimeSeries {
    /// Deterministic JSON: `{clock, series, samples}` where each sample
    /// is `[t_us, v0, v1, …]`. Floats use shortest round-trip formatting
    /// via [`Json`], so identical rows always serialise identically.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.push("clock", Json::Str(self.clock.label().to_string()));
        obj.push(
            "series",
            Json::Arr(self.names.iter().map(|n| Json::Str(n.to_string())).collect()),
        );
        let mut samples = Vec::with_capacity(self.rows.len());
        for (t, values) in &self.rows {
            let mut row = Vec::with_capacity(values.len() + 1);
            row.push(Json::F64(*t));
            row.extend(values.iter().map(|v| Json::F64(*v)));
            samples.push(Json::Arr(row));
        }
        obj.push("samples", Json::Arr(samples));
        obj
    }

    /// Deterministic CSV: a `t_us,<name>,…` header then one row per
    /// sample (shortest round-trip float formatting).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_us");
        for name in &self.names {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for (t, values) in &self.rows {
            out.push_str(&Json::F64(*t).to_string());
            for v in values {
                out.push(',');
                out.push_str(&Json::F64(*v).to_string());
            }
            out.push('\n');
        }
        out
    }
}

/// One ring slot: a seqlock-style tag (`0` empty, odd = being written,
/// even = complete, `tag / 2 - 1` = claim number) plus the row stored as
/// per-word atomics (`words[0]` = `t_us` bits, the rest = value bits).
#[cfg(feature = "recorder")]
#[derive(Debug)]
struct Slot {
    tag: AtomicU64,
    words: Box<[AtomicU64]>,
}

#[cfg(feature = "recorder")]
#[derive(Debug)]
struct RingSampler {
    names: Vec<&'static str>,
    clock: ClockDomain,
    epoch: Instant,
    /// Claims issued so far; claim `n` (1-based) lands in slot
    /// `(n - 1) % capacity`.
    head: AtomicU64,
    slots: Vec<Slot>,
}

#[cfg(feature = "recorder")]
impl RingSampler {
    fn new(names: &[&'static str], capacity: usize, clock: ClockDomain) -> RingSampler {
        let width = names.len() + 1;
        RingSampler {
            names: names.to_vec(),
            clock,
            epoch: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    tag: AtomicU64::new(0),
                    words: (0..width).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
        }
    }

    fn push(&self, t_us: f64, values: &[f64]) {
        let claim = self.head.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &self.slots[((claim - 1) % self.slots.len() as u64) as usize];
        slot.tag.store(claim * 2 + 1, Ordering::Release);
        slot.words[0].store(t_us.to_bits(), Ordering::Relaxed);
        for (i, w) in slot.words[1..].iter().enumerate() {
            // Missing trailing values sample as 0 so every row is full width.
            w.store(values.get(i).copied().unwrap_or(0.0).to_bits(), Ordering::Relaxed);
        }
        slot.tag.store(claim * 2 + 2, Ordering::Release);
    }

    fn snapshot(&self) -> TimeSeries {
        let mut rows: Vec<(u64, f64, Vec<f64>)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let before = slot.tag.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // empty, or a producer is mid-write
            }
            let t = f64::from_bits(slot.words[0].load(Ordering::Relaxed));
            let values: Vec<f64> =
                slot.words[1..].iter().map(|w| f64::from_bits(w.load(Ordering::Relaxed))).collect();
            if slot.tag.load(Ordering::Acquire) != before {
                continue; // lapped mid-copy: torn row, skip it
            }
            rows.push((before / 2 - 1, t, values));
        }
        rows.sort_by_key(|(claim, _, _)| *claim);
        TimeSeries {
            clock: self.clock,
            names: self.names.clone(),
            rows: rows.into_iter().map(|(_, t, v)| (t, v)).collect(),
        }
    }
}

/// The cloneable sampler handle engines carry. Disabled (or with the
/// `recorder` feature off), every call is a no-op and
/// [`FlightRecorder::snapshot`] returns an empty series.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    #[cfg(feature = "recorder")]
    inner: Option<Arc<RingSampler>>,
}

impl FlightRecorder {
    /// A disabled handle: samples nothing, costs (almost) nothing.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// An enabled recorder whose producers stamp wall-clock time via
    /// [`FlightRecorder::sample`].
    #[cfg(feature = "recorder")]
    pub fn wall(names: &[&'static str], capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Some(Arc::new(RingSampler::new(names, capacity, ClockDomain::Wall))),
        }
    }

    /// See the enabled variant; without the `recorder` feature this
    /// returns a disabled handle.
    #[cfg(not(feature = "recorder"))]
    pub fn wall(_names: &[&'static str], _capacity: usize) -> FlightRecorder {
        FlightRecorder::default()
    }

    /// An enabled recorder whose producers stamp virtual time via
    /// [`FlightRecorder::sample_at`] — the DES path; same seed produces
    /// a byte-identical series.
    #[cfg(feature = "recorder")]
    pub fn virtual_time(names: &[&'static str], capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Some(Arc::new(RingSampler::new(names, capacity, ClockDomain::Virtual))),
        }
    }

    /// See the enabled variant; without the `recorder` feature this
    /// returns a disabled handle.
    #[cfg(not(feature = "recorder"))]
    pub fn virtual_time(_names: &[&'static str], _capacity: usize) -> FlightRecorder {
        FlightRecorder::default()
    }

    /// Whether samples are actually being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "recorder")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "recorder"))]
        {
            false
        }
    }

    /// Records one row at an explicit timestamp (microseconds in the
    /// recorder's clock domain — the DES passes virtual time).
    #[inline]
    pub fn sample_at(&self, t_us: f64, values: &[f64]) {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            r.push(t_us, values);
        }
        #[cfg(not(feature = "recorder"))]
        {
            let _ = (t_us, values);
        }
    }

    /// Records one row stamped with wall-clock microseconds since the
    /// recorder was created.
    #[inline]
    pub fn sample(&self, values: &[f64]) {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            r.push(r.epoch.elapsed().as_secs_f64() * 1e6, values);
        }
        #[cfg(not(feature = "recorder"))]
        {
            let _ = values;
        }
    }

    /// The retained window, oldest retained row first. Empty on a
    /// disabled handle. Non-destructive: sampling may continue.
    pub fn snapshot(&self) -> TimeSeries {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            return r.snapshot();
        }
        TimeSeries::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let fr = FlightRecorder::disabled();
        assert!(!fr.is_enabled());
        fr.sample(&[1.0]);
        fr.sample_at(5.0, &[2.0]);
        assert_eq!(fr.snapshot(), TimeSeries::default());
    }

    #[cfg(feature = "recorder")]
    #[test]
    fn records_rows_in_order() {
        let fr = FlightRecorder::virtual_time(&["depth", "qps"], 16);
        assert!(fr.is_enabled());
        fr.sample_at(1.0, &[3.0, 100.0]);
        fr.sample_at(2.0, &[4.0, 200.0]);
        let ts = fr.snapshot();
        assert_eq!(ts.clock, ClockDomain::Virtual);
        assert_eq!(ts.names, vec!["depth", "qps"]);
        assert_eq!(ts.rows, vec![(1.0, vec![3.0, 100.0]), (2.0, vec![4.0, 200.0])]);
        // Short rows pad with zeros; long rows truncate.
        fr.sample_at(3.0, &[9.0]);
        fr.sample_at(4.0, &[1.0, 2.0, 3.0]);
        let ts = fr.snapshot();
        assert_eq!(ts.rows[2], (3.0, vec![9.0, 0.0]));
        assert_eq!(ts.rows[3], (4.0, vec![1.0, 2.0]));
    }

    #[cfg(feature = "recorder")]
    #[test]
    fn wraparound_keeps_newest_window() {
        let fr = FlightRecorder::virtual_time(&["v"], 8);
        for i in 0..100u64 {
            fr.sample_at(i as f64, &[i as f64 * 10.0]);
        }
        let ts = fr.snapshot();
        assert_eq!(ts.rows.len(), 8);
        let ts_col: Vec<f64> = ts.rows.iter().map(|(t, _)| *t).collect();
        assert_eq!(ts_col, (92..100).map(|i| i as f64).collect::<Vec<_>>());
        for (t, v) in &ts.rows {
            assert_eq!(v[0], t * 10.0);
        }
    }

    #[cfg(feature = "recorder")]
    #[test]
    fn concurrent_sampling_is_loss_free() {
        let threads = 8usize;
        let per_thread = 2_000u64;
        let fr = FlightRecorder::wall(&["tid", "i"], threads * per_thread as usize);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let fr = fr.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        fr.sample(&[t as f64, i as f64]);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let ts = fr.snapshot();
        assert_eq!(ts.rows.len(), threads * per_thread as usize, "no sample lost");
        // Every (thread, i) pair present exactly once.
        let mut seen = vec![0u32; threads * per_thread as usize];
        for (_, v) in &ts.rows {
            let (t, i) = (v[0] as usize, v[1] as u64);
            seen[t * per_thread as usize + i as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[cfg(feature = "recorder")]
    #[test]
    fn export_is_deterministic() {
        let fr = FlightRecorder::virtual_time(&["a", "b"], 4);
        fr.sample_at(0.5, &[1.0, 2.25]);
        fr.sample_at(1.5, &[3.0, 4.0]);
        let ts = fr.snapshot();
        let json = ts.to_json().to_string();
        assert_eq!(json, fr.snapshot().to_json().to_string());
        assert_eq!(
            json,
            r#"{"clock":"virtual","series":["a","b"],"samples":[[0.5,1,2.25],[1.5,3,4]]}"#
        );
        assert_eq!(ts.to_csv(), "t_us,a,b\n0.5,1,2.25\n1.5,3,4\n");
    }
}
