//! Concurrency tests: parallel readers and writers on one cache.
//!
//! The wait-free claim is that traversal threads keep reading the tree
//! while fills are spliced in by other threads, and the tree is valid at
//! every instant — readers see either the placeholder (with a correct
//! summary) or the fully wired fragment, never anything in between.

use paratreet_cache::{CacheTree, NodeKind, SubtreeSummary};
use paratreet_geometry::NodeKey;
use paratreet_particles::{gen, ParticleVec};
use paratreet_tree::{CountData, TreeBuilder, TreeType};
use std::sync::atomic::{AtomicBool, Ordering};

/// Builds a "home" cache owning everything and a "away" cache where all
/// eight root octants are placeholders, plus per-octant fills.
fn make_fills(n: usize) -> (CacheTree<CountData>, Vec<(NodeKey, Vec<u8>)>) {
    let mut ps = gen::clustered(n, 4, 99, 1.0, 1.0);
    let universe = ps.bounding_box().padded(1e-9).bounding_cube();
    ps.assign_keys(&universe);
    ps.sort_by_sfc_key();

    let home: CacheTree<CountData> = CacheTree::new(1, 3);
    let mut summaries = Vec::new();
    let mut trees = Vec::new();
    for oct in 0..8 {
        let part: Vec<_> =
            ps.iter().copied().filter(|p| universe.octant_of(p.pos) == oct).collect();
        if part.is_empty() {
            continue;
        }
        let builder = TreeBuilder {
            root_key: NodeKey::root().child(oct, 3),
            root_depth: 1,
            parallel: false,
            ..TreeBuilder::new(TreeType::Octree)
        };
        let tree = builder.bucket_size(4).build::<CountData>(part, universe.octant(oct));
        summaries.push(SubtreeSummary {
            key: tree.root().key,
            bbox: tree.root().bbox,
            n_particles: tree.root().n_particles,
            data: tree.root().data,
            home_rank: 1,
        });
        trees.push(tree);
    }
    home.init(&summaries, trees);

    let fills: Vec<(NodeKey, Vec<u8>)> =
        summaries.iter().map(|s| (s.key, home.serialize_fragment(s.key, 64).unwrap())).collect();

    // Away cache: same summaries, no local trees, all placeholders.
    let away: CacheTree<CountData> = CacheTree::new(0, 3);
    away.init(&summaries, vec![]);
    (away, fills)
}

/// Walks the tree and checks the invariant that every reachable node's
/// `n_particles` equals the sum over its children (or its bucket size),
/// treating placeholders as trusted summaries.
fn check_consistent(cache: &CacheTree<CountData>) -> u64 {
    fn walk(n: &paratreet_cache::CacheNode<CountData>) -> u64 {
        match n.kind {
            NodeKind::Placeholder => n.n_particles as u64,
            NodeKind::Empty => 0,
            NodeKind::Leaf => {
                assert_eq!(n.particles.len() as u32, n.n_particles);
                n.n_particles as u64
            }
            NodeKind::Internal => {
                let sum: u64 = n.children_iter(8).map(walk).sum();
                assert_eq!(sum, n.n_particles as u64, "internal node count mismatch");
                sum
            }
        }
    }
    walk(cache.root().expect("root"))
}

#[test]
fn parallel_writers_single_reader() {
    let n = 2000;
    let (away, fills) = make_fills(n);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Reader: hammer the tree with consistency checks while fills land.
        let away_ref = &away;
        let done_ref = &done;
        let reader = s.spawn(move || {
            let mut checks = 0u64;
            while !done_ref.load(Ordering::Acquire) {
                assert_eq!(check_consistent(away_ref), n as u64);
                checks += 1;
            }
            // One final check after all fills are in.
            assert_eq!(check_consistent(away_ref), n as u64);
            checks
        });

        // Writers: each inserts a subset of fills concurrently.
        let mut writers = Vec::new();
        for chunk in fills.chunks(2) {
            let away_ref = &away;
            writers.push(s.spawn(move || {
                for (_, fill) in chunk {
                    away_ref.insert_fragment(fill).unwrap();
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let checks = reader.join().unwrap();
        assert!(checks > 0, "reader must have observed intermediate states");
    });

    // After all fills: no placeholders remain reachable.
    let mut stack = vec![away.root().unwrap()];
    let mut leaf_particles = 0;
    while let Some(nd) = stack.pop() {
        assert_ne!(nd.kind, NodeKind::Placeholder);
        if nd.is_leaf() {
            leaf_particles += nd.particles.len();
        }
        for c in nd.children_iter(8) {
            stack.push(c);
        }
    }
    assert_eq!(leaf_particles, n);
}

#[test]
fn concurrent_requests_send_exactly_one_fetch_per_key() {
    let (away, fills) = make_fills(500);
    let key = fills[0].0;
    let ph = away.lookup(key).unwrap();
    let sends = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let away_ref = &away;
            let sends_ref = &sends;
            s.spawn(move || {
                if let paratreet_cache::RequestOutcome::SendFetch { .. } = away_ref.request(ph, t) {
                    sends_ref.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(sends.load(Ordering::Relaxed), 1, "requested flag must dedup");
    let snap = away.stats.snapshot();
    assert_eq!(snap.requests_sent, 1);
    assert_eq!(snap.requests_deduped, 7);
    assert_eq!(snap.waiters_parked, 8);

    // The fill resumes all eight waiters.
    let outcome = away.insert_fragment(&fills[0].1).unwrap();
    let mut resumed: Vec<u64> = outcome
        .resumed
        .iter()
        .map(|&(k, w)| {
            assert_eq!(k, key);
            w
        })
        .collect();
    resumed.sort_unstable();
    assert_eq!(resumed, (0..8).collect::<Vec<_>>());
}

#[test]
fn racing_requests_and_fills_account_for_every_waiter() {
    // `request` and `insert_fragment` race on the same key from many
    // threads: every waiter must end up either served immediately
    // (Ready) or resumed by exactly one fill — never parked forever,
    // never resumed twice — and exactly one of the two racing inserts
    // is the canonical one.
    for round in 0..10u64 {
        let (away, fills) = make_fills(600);
        let key = fills[0].0;
        let fill = &fills[0].1;
        let ph = away.lookup(key).unwrap();
        let ready = std::sync::atomic::AtomicU64::new(0);
        let resumed = std::sync::Mutex::new(Vec::new());
        let duplicates = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let away_ref = &away;
                let ready_ref = &ready;
                s.spawn(move || {
                    // Non-Ready means parked; a fill must hand it back.
                    if let paratreet_cache::RequestOutcome::Ready(n) =
                        away_ref.request(ph, round * 100 + t)
                    {
                        assert!(!n.is_placeholder());
                        ready_ref.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..2 {
                let away_ref = &away;
                let resumed_ref = &resumed;
                let duplicates_ref = &duplicates;
                s.spawn(move || {
                    let out = away_ref.insert_fragment(fill).unwrap();
                    if out.duplicate {
                        duplicates_ref.fetch_add(1, Ordering::Relaxed);
                    }
                    resumed_ref.lock().unwrap().extend(out.resumed);
                });
            }
        });
        let resumed = resumed.into_inner().unwrap();
        let mut waiters: Vec<u64> = resumed
            .iter()
            .map(|&(k, w)| {
                assert_eq!(k, key);
                w
            })
            .collect();
        waiters.sort_unstable();
        waiters.dedup();
        assert_eq!(waiters.len(), resumed.len(), "round {round}: waiter resumed twice");
        assert_eq!(
            ready.load(Ordering::Relaxed) + resumed.len() as u64,
            8,
            "round {round}: every waiter is served exactly once"
        );
        assert_eq!(duplicates.load(Ordering::Relaxed), 1, "round {round}");
        away.audit().unwrap_or_else(|e| panic!("round {round}: audit failed: {e}"));
    }
}

#[test]
fn no_delete_cache_keeps_superseded_placeholders() {
    let (away, fills) = make_fills(300);
    let before = away.n_allocated();
    for (_, f) in &fills {
        away.insert_fragment(f).unwrap();
    }
    // Allocation count grows (fragments added) and is at least the
    // original skeleton size — nothing was freed.
    assert!(away.n_allocated() > before);
}

#[test]
fn readers_never_block_on_inserts() {
    // Smoke test for wait-freedom: reads complete while a writer holds
    // the book-keeping lock mid-insert. We simulate "mid-insert" by just
    // hammering inserts and timing reads — reads go through atomics only,
    // so even under continuous writes a read of the full tree terminates.
    let (away, fills) = make_fills(3000);
    std::thread::scope(|s| {
        let away_ref = &away;
        let w = s.spawn(move || {
            for (_, f) in &fills {
                away_ref.insert_fragment(f).unwrap();
            }
        });
        for _ in 0..50 {
            let total = check_consistent(&away);
            assert_eq!(total, 3000);
        }
        w.join().unwrap();
    });
}
