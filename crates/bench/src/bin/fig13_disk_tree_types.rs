//! Figure 13: tree/decomposition types on the protoplanetary disk.
//!
//! "Comparison of average iteration time for longest-dimension tree and
//! decomposition against that of ParaTreeT and ChaNGa's octree
//! implementations in simulating evolution of a protoplanetary disk...
//! With octree decomposition, load imbalance towards nodes around the
//! disk is significant enough to cancel the benefits of scaling for
//! unfortunate configurations, like at 192 cores. The longest-dimension
//! tree has better load balance and can achieve greater performance,
//! especially at scale."
//!
//! Each series runs gravity + collision-sweep traversals on the machine
//! model over a mostly-2D disk:
//!
//! * `LongDim` — ParaTreeT with the case study's longest-dimension tree
//!   *and* decomposition (median splits, always in-plane),
//! * `PTT-Oct` — ParaTreeT with octree + octree decomposition (the
//!   imbalanced configuration),
//! * `ChaNGa` — the ChaNGa model (octree, per-bucket walks, per-thread
//!   caches).
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin fig13_disk_tree_types -- \
//!     --particles 30000 --max-nodes 16
//! ```

use paratreet_apps::collision::DiskGravityVisitor;
use paratreet_baselines::changa::ChangaModel;
use paratreet_bench::{fmt_seconds, harness_telemetry, write_telemetry_outputs, Args};
use paratreet_core::{CacheModel, Configuration, DecompType, DistributedEngine, TraversalKind};
use paratreet_particles::gen::{self, DiskParams};
use paratreet_runtime::MachineSpec;
use paratreet_tree::TreeType;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 20_000);
    let seed = args.get_u64("seed", 13);
    let max_nodes = args.get_usize("max-nodes", 16);

    let particles = gen::keplerian_disk(n, seed, DiskParams::default());
    let visitor = DiskGravityVisitor { theta: 0.7 };
    let changa = ChangaModel::default();

    println!("Figure 13: average iteration time on a {n}-planetesimal disk");
    println!("(Stampede2 machine model, 48 workers/node)\n");
    println!("{:>7} {:>7} {:>12} {:>12} {:>12}", "nodes", "cores", "LongDim", "PTT-Oct", "ChaNGa");
    println!("{}", "-".repeat(56));

    let telemetry = harness_telemetry(&args, true);
    let mut last_metrics = None;
    let mut nodes = 1;
    while nodes <= max_nodes {
        let machine = MachineSpec::stampede2(nodes);

        let longdim_cfg = Configuration {
            tree_type: TreeType::LongestDim,
            decomp_type: DecompType::LongestDim,
            bucket_size: 16,
            ..Default::default()
        };
        let _ = telemetry.drain(); // keep only the final LongDim run
        let ld = DistributedEngine::new(
            machine.clone(),
            longdim_cfg,
            CacheModel::WaitFree,
            TraversalKind::TopDown,
            &visitor,
        )
        .with_telemetry(telemetry.clone())
        .run_iteration(particles.clone());

        let oct_cfg = Configuration {
            tree_type: TreeType::Octree,
            decomp_type: DecompType::Oct,
            bucket_size: 16,
            ..Default::default()
        };
        let oct = DistributedEngine::new(
            machine.clone(),
            oct_cfg.clone(),
            CacheModel::WaitFree,
            TraversalKind::TopDown,
            &visitor,
        )
        .run_iteration(particles.clone());

        let ch = {
            let mut engine = DistributedEngine::new(
                machine,
                oct_cfg,
                CacheModel::PerThread,
                TraversalKind::BasicDfs,
                &visitor,
            );
            engine.costs = changa.costs();
            engine.run_iteration(particles.clone())
        };

        println!(
            "{:>7} {:>7} {:>12} {:>12} {:>12}",
            nodes,
            nodes * 48,
            fmt_seconds(ld.makespan),
            fmt_seconds(oct.makespan),
            fmt_seconds(ch.makespan)
        );
        last_metrics = Some(ld.metrics);
        nodes *= 2;
    }
    write_telemetry_outputs(&args, &telemetry, last_metrics.as_ref());
    println!();
    println!("paper shape: longest-dimension tree+decomposition beats both octree");
    println!("configurations on the disk, increasingly so at scale; octree");
    println!("decomposition suffers load imbalance on the mostly-2D geometry.");
}
