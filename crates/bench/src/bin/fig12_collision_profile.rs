//! Figure 12: the planetesimal collision profile (§IV-A case study).
//!
//! "For a planetesimal disk consisting of 10 million particles evolved
//! with ParaTreeT, the number of planetesimal collisions detected as a
//! function of distance from the star... Vertical dashed lines indicate
//! the location of resonances with the planet [3:1, 2:1, 5:3]. In total,
//! 258 collisions were recorded, most of which are associated with high
//! eccentricity particles near the 2:1 resonance at 3.27 AU."
//!
//! Scaled-down disk, same construction: star + Jupiter-mass planet at
//! 5.2 AU, disk spanning the resonances, evolved with gravity +
//! swept-sphere collision detection each step. Body radii are inflated
//! relative to the paper's 50 km so a laptop-scale N still collides.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin fig12_collision_profile -- \
//!     --particles 4000 --steps 300
//! ```

use paratreet_apps::collision::{orbital_period, resonance_radius, DiskSimulation};
use paratreet_bench::{bar, harness_telemetry, write_telemetry_outputs, Args};
use paratreet_core::{Configuration, DecompType};
use paratreet_particles::gen::{self, DiskParams};
use paratreet_tree::TreeType;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 3000);
    let seed = args.get_u64("seed", 12);
    let steps = args.get_usize("steps", 200);
    let burn_in = args.get_usize("burn-in", 20);
    let radius_scale = args.get_f64("radius-scale", 4e4);

    let mut params = DiskParams::default();
    // Inflate collision cross-sections so a small-N disk still collides
    // (the paper's 10M bodies at 50km have comparable total cross-section).
    params.body_radius *= radius_scale;
    params.rms_ecc = 0.06;
    let particles = gen::keplerian_disk(n, seed, params);

    let config = Configuration {
        tree_type: TreeType::LongestDim,
        decomp_type: DecompType::LongestDim,
        bucket_size: 16,
        ..Default::default()
    };
    let dt = orbital_period(params.r_in, params.star_mass) / 40.0;
    let telemetry = harness_telemetry(&args, false);
    let mut sim = DiskSimulation::new(config, particles, dt);
    sim.framework.telemetry = telemetry.clone();

    println!("Figure 12: planetesimal collisions vs distance from the star");
    println!(
        "({n} planetesimals + star + Jupiter at {} AU, {steps} steps of {:.4} yr-ish)\n",
        params.planet_radius,
        dt / std::f64::consts::TAU
    );

    // Burn-in: random initial conditions overlap; the paper's disk also
    // needs time before dynamics dominate ("no collisions were recorded
    // for the first 1,200 years"). Discard the burn-in's events.
    for _ in 0..burn_in {
        sim.step();
    }
    sim.events.clear();
    for step in 0..steps {
        let events = sim.step();
        if !events.is_empty() && step % 10 == 0 {
            println!("  step {step}: {} collisions (total {})", events.len(), sim.events.len());
        }
    }

    let prof = sim.profile(params.r_in * 0.9, params.r_out * 1.1, 24);
    let max_bin = prof.bins.iter().copied().max().unwrap_or(1).max(1);
    let r31 = resonance_radius(3, 1, params.planet_radius);
    let r21 = resonance_radius(2, 1, params.planet_radius);
    let r53 = resonance_radius(5, 3, params.planet_radius);

    println!("\n{:>8} {:>6}  profile", "r (AU)", "count");
    for (c, &count) in prof.bin_centers().iter().zip(&prof.bins) {
        let mark = if (c - r31).abs() < 0.06 {
            "  <- 3:1 resonance"
        } else if (c - r21).abs() < 0.06 {
            "  <- 2:1 resonance (paper: collision peak at 3.27 AU)"
        } else if (c - r53).abs() < 0.06 {
            "  <- 5:3 resonance"
        } else {
            ""
        };
        println!("{:>8.2} {:>6}  {}{}", c, count, bar(count as f64 / max_bin as f64, 30), mark);
    }

    // Collisions vs orbital period (the paper's dotted curve).
    println!("\ncollisions vs orbital period (years at impact radius):");
    let mut period_bins = [0u64; 12];
    let p_lo = orbital_period(params.r_in * 0.9, params.star_mass);
    let p_hi = orbital_period(params.r_out * 1.1, params.star_mass);
    for ev in &sim.events {
        let p = orbital_period(ev.radius, params.star_mass);
        if p >= p_lo && p < p_hi {
            let t = (p - p_lo) / (p_hi - p_lo);
            let idx = ((t * period_bins.len() as f64) as usize).min(period_bins.len() - 1);
            period_bins[idx] += 1;
        }
    }
    let pmax = period_bins.iter().copied().max().unwrap_or(1).max(1);
    for (i, &count) in period_bins.iter().enumerate() {
        let p = (p_lo + (i as f64 + 0.5) * (p_hi - p_lo) / period_bins.len() as f64)
            / std::f64::consts::TAU;
        println!("{:>8.2} {:>6}  {}", p, count, bar(count as f64 / pmax as f64, 30));
    }

    println!("\ntotal collisions recorded: {} (paper: 258 over 2,000 years at N=10M)", prof.total);
    println!("paper shape: collisions concentrate near the 2:1 resonance once the");
    println!("planet's perturbations pump eccentricities mid-disk.");

    let mut metrics = paratreet_telemetry::MetricsRegistry::new();
    metrics.set_u64("disk.collisions", sim.events.len() as u64);
    metrics.set_u64("disk.steps", steps as u64);
    metrics.set_u64("disk.bodies_remaining", sim.framework.particles().len() as u64);
    write_telemetry_outputs(&args, &telemetry, Some(&metrics));
}
