//! `paratreet-serve` — a concurrent spatial query service over live
//! maintained trees (ISSUE 6; ROADMAP north-star item 3).
//!
//! The paper's framework builds a tree, traverses it, and moves on.
//! This crate keeps the tree *alive*: a single writer thread advances
//! it with the incremental maintenance subsystem
//! ([`paratreet_core::TreeMaintainer`], PR 5) while a pool of reader
//! threads answers kNN / ball / range / raycast query streams from
//! simulated clients. The pieces:
//!
//! * [`snapshot`] — epoch-stamped RCU-style publication: the writer
//!   swaps freshly flattened arenas into a fixed [`SnapshotRing`];
//!   readers pin an epoch on entry and never observe a torn or freed
//!   snapshot (pins gate slot reuse, `Arc`s gate memory lifetime).
//! * [`request`] — the query/response vocabulary and the pure
//!   [`execute_batch`] kernel, batched by entry subtree so queries
//!   descending the same Subtree run back-to-back.
//! * [`queue`] + [`error`] — bounded admission with a structured
//!   [`ServeError::Overloaded`] (shed) or blocking backpressure
//!   (defer).
//! * [`service`] — [`QueryService`]: worker pool, writer thread,
//!   per-class latency histograms (p50/p99/p999 through the telemetry
//!   [`paratreet_telemetry::Histogram`]).
//! * [`load`] — seeded open-loop load generation ([`run_load`]):
//!   thousands of simulated clients over a few driver threads.
//!
//! Determinism: query *results* are a pure function of (snapshot,
//! query) — replaying a request stream against a pinned epoch is
//! bit-identical across runs. Under a live writer only the epoch each
//! query lands on varies.
//!
//! Overload resilience (ISSUE 9): requests carry optional deadlines
//! ([`Request::with_deadline`]) that are enforced at pop time; a
//! lock-light EWMA [`cost`] model drives
//! [`AdmissionPolicy::CostAware`] shedding; sustained pressure steps a
//! [`degrade`] ladder (clamped `k`, shrunk radii, truncated range
//! answers with resume cursors) with every degraded answer marked;
//! workers and the writer run under `catch_unwind` with supervisor
//! respawn, stale-serving mode, and a [`health`] surface
//! ([`QueryService::health`], structured [`ShutdownReport`]s).

pub mod cost;
pub mod degrade;
pub mod error;
pub mod health;
pub mod load;
pub mod queue;
pub mod request;
pub mod service;
pub mod snapshot;

pub use cost::CostModel;
pub use degrade::{DegradeConfig, PressureTracker};
pub use error::ServeError;
pub use health::{JoinOutcome, ServiceHealth, ShutdownReport, WorkerJoinStats, WriterState};
pub use load::{run_load, LoadConfig, LoadReport};
pub use request::{
    execute, execute_batch, execute_batch_degraded, Query, QueryClass, QueryResult, Request,
    Response,
};
pub use service::{
    AdmissionPolicy, FailPoints, MotionModel, QueryService, ServeConfig, WriterConfig,
};
pub use snapshot::{PinnedSnapshot, RingStats, SnapshotData, SnapshotRing};
