//! The real-threads engine must reproduce the deterministic engines'
//! physics under genuine concurrency: multiple rank thread-groups,
//! real channels, concurrent cache reads and fill insertions. This is
//! the strongest exercise of the wait-free cache design.

use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_apps::knn::{KnnData, KnnVisitor};
use paratreet_core::{Configuration, Framework, ThreadedEngine, TraversalKind};
use paratreet_particles::gen;

fn config() -> Configuration {
    Configuration { bucket_size: 8, n_subtrees: 16, n_partitions: 32, ..Default::default() }
}

/// Reference forces from the shared-memory engine.
fn reference(particles: &[paratreet_particles::Particle]) -> Vec<paratreet_particles::Particle> {
    let mut fw: Framework<CentroidData> = Framework::new(config(), particles.to_vec());
    let visitor = GravityVisitor::default();
    fw.step(|s| {
        s.traverse(&visitor, TraversalKind::TopDown);
    });
    let mut out = fw.particles().to_vec();
    out.sort_by_key(|p| p.id);
    out
}

fn assert_forces_match(
    got: &[paratreet_particles::Particle],
    want: &[paratreet_particles::Particle],
) {
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(want) {
        assert_eq!(a.id, b.id);
        let denom = b.acc.norm().max(1e-30);
        // Summation order differs across threads: allow rounding noise.
        assert!(
            (a.acc - b.acc).norm() / denom < 1e-9,
            "particle {} differs: {:?} vs {:?}",
            a.id,
            a.acc,
            b.acc
        );
    }
}

#[test]
fn threaded_matches_shared_memory_single_rank() {
    let ps = gen::uniform_cube(600, 7, 1.0, 1.0);
    let want = reference(&ps);
    let visitor = GravityVisitor::default();
    let engine = ThreadedEngine::new(config(), 1, 3, &visitor);
    let rep = engine.run_iteration(ps, TraversalKind::TopDown);
    assert_eq!(rep.cache.requests_sent, 0, "single rank fetches nothing");
    let mut got = rep.particles;
    got.sort_by_key(|p| p.id);
    assert_forces_match(&got, &want);
    assert_eq!(want.len(), got.len());
}

#[test]
fn threaded_matches_shared_memory_multi_rank() {
    let ps = gen::clustered(900, 3, 11, 1.0, 1.0);
    let want = reference(&ps);
    let visitor = GravityVisitor::default();
    for (ranks, workers) in [(2usize, 2usize), (4, 1), (3, 2)] {
        let engine = ThreadedEngine::new(config(), ranks, workers, &visitor);
        let rep = engine.run_iteration(ps.clone(), TraversalKind::TopDown);
        assert!(rep.cache.requests_sent > 0, "{ranks} ranks must fetch remote data");
        assert!(rep.remote_fills > 0);
        assert_eq!(
            rep.cache.waiters_parked, rep.cache.waiters_resumed,
            "every parked traversal must resume"
        );
        let mut got = rep.particles;
        got.sort_by_key(|p| p.id);
        assert_forces_match(&got, &want);
        // Interaction totals are exact algorithmic quantities.
        let mut fw: Framework<CentroidData> = Framework::new(config(), ps.clone());
        let v = GravityVisitor::default();
        let (_, r) = fw.step(|s| {
            s.traverse(&v, TraversalKind::TopDown);
        });
        assert_eq!(rep.counts.leaf_interactions, r.counts.leaf_interactions, "{ranks} ranks");
        assert_eq!(rep.counts.node_interactions, r.counts.node_interactions, "{ranks} ranks");
    }
}

#[test]
fn threaded_is_repeatable_up_to_fp_order() {
    // Thread scheduling varies between runs, but the result set must not.
    let ps = gen::clustered(500, 2, 13, 1.0, 1.0);
    let visitor = GravityVisitor::default();
    let run = || {
        let engine = ThreadedEngine::new(config(), 3, 2, &visitor);
        let mut got = engine.run_iteration(ps.clone(), TraversalKind::TopDown).particles;
        got.sort_by_key(|p| p.id);
        got
    };
    let a = run();
    let b = run();
    assert_forces_match(&a, &b);
}

#[test]
fn threaded_knn_up_and_down_completes() {
    // kNN on the threaded engine: ordered pauses across real channels.
    let ps = gen::uniform_cube(400, 5, 1.0, 1.0);
    let visitor = KnnVisitor { k: 8 };
    let engine: ThreadedEngine<KnnVisitor> = ThreadedEngine::new(config(), 2, 2, &visitor);
    let rep = engine.run_iteration(ps.clone(), TraversalKind::UpAndDown);
    assert_eq!(rep.particles.len(), ps.len());
    // kNN pruning bounds are dynamic, so the exact work count is
    // schedule-dependent (pauses reorder processing and therefore when
    // bounds tighten). What must hold: the traversal completes, offers
    // at least enough candidates to fill every heap, and never does
    // less exact work than the tightest (sequential) schedule.
    let mut fw: Framework<KnnData> = Framework::new(config(), ps.clone());
    let (_, r) = fw.step(|s| {
        s.traverse(&visitor, TraversalKind::UpAndDown);
    });
    assert!(rep.counts.leaf_interactions >= r.counts.leaf_interactions);
    assert!(rep.counts.leaf_interactions >= (ps.len() * 8) as u64);
}

#[test]
fn threaded_handles_tiny_inputs() {
    let visitor = GravityVisitor::default();
    for n in [1usize, 2, 5] {
        let ps = gen::uniform_cube(n, 1, 1.0, 1.0);
        let engine = ThreadedEngine::new(config(), 2, 2, &visitor);
        let rep = engine.run_iteration(ps, TraversalKind::TopDown);
        assert_eq!(rep.particles.len(), n);
    }
}
