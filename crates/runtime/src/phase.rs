//! Activity phases — the categories of the Fig. 9 utilisation profile.

/// What a worker is doing during a busy interval. The variants mirror
/// the labels of the paper's *Projections* timeline for a traversal
/// iteration, plus the pre-traversal steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Finding splitters and flushing particles to their owners.
    Decomposition = 0,
    /// Building local Subtrees and accumulating `Data`.
    TreeBuild = 1,
    /// Subtrees handing leaf buckets to Partitions.
    LeafSharing = 2,
    /// Distributing the global root and top levels to every process.
    ShareTopLevels = 3,
    /// Traversal over node-local subtrees.
    LocalTraversal = 4,
    /// Issuing remote fetches at cache misses.
    CacheRequest = 5,
    /// Serving a fetch at the home rank (serialisation).
    FillServe = 6,
    /// Materialising received fills into the cache.
    CacheInsertion = 7,
    /// Waking paused traversals and fetching their metadata.
    TraversalResumption = 8,
    /// The resumed traversal work over remote data.
    RemoteTraversal = 9,
    /// Everything else (post-traversal user work, integration, ...).
    Other = 10,
    /// Writing per-rank particle/partition checkpoints to stable
    /// storage at iteration start (fault tolerance).
    Checkpoint = 11,
    /// Crash recovery: reading checkpoints, rebuilding the dead rank's
    /// subtrees, re-initialising its cache.
    Recovery = 12,
    /// Incremental tree maintenance: classifying moved particles,
    /// patching buckets, re-sieving escapees, and re-accumulating
    /// `Data` along dirty paths instead of a full rebuild.
    TreeUpdate = 13,
}

/// Number of phase categories.
pub const N_PHASES: usize = 14;

impl Phase {
    /// All phases in index order.
    pub const ALL: [Phase; N_PHASES] = [
        Phase::Decomposition,
        Phase::TreeBuild,
        Phase::LeafSharing,
        Phase::ShareTopLevels,
        Phase::LocalTraversal,
        Phase::CacheRequest,
        Phase::FillServe,
        Phase::CacheInsertion,
        Phase::TraversalResumption,
        Phase::RemoteTraversal,
        Phase::Other,
        Phase::Checkpoint,
        Phase::Recovery,
        Phase::TreeUpdate,
    ];

    /// Stable index (0..[`N_PHASES`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The label used by Fig. 9-style output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Decomposition => "decomposition",
            Phase::TreeBuild => "tree build",
            Phase::LeafSharing => "leaf sharing",
            Phase::ShareTopLevels => "share top levels",
            Phase::LocalTraversal => "local traversal",
            Phase::CacheRequest => "cache request",
            Phase::FillServe => "fill serve",
            Phase::CacheInsertion => "cache insertion",
            Phase::TraversalResumption => "traversal resumption",
            Phase::RemoteTraversal => "remote traversal",
            Phase::Other => "other",
            Phase::Checkpoint => "checkpoint",
            Phase::Recovery => "recovery",
            Phase::TreeUpdate => "incremental update",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let mut labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), N_PHASES);
    }
}
