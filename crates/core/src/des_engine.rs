//! The distributed execution engine on the discrete-event machine model.
//!
//! This engine runs the *same* pipeline as [`crate::Framework`] — real
//! decomposition, real trees, real cache fills, identical interaction
//! counts — but places Subtrees and Partitions on the ranks of a
//! [`MachineSpec`] and charges virtual time for every task and message.
//! It is the stand-in for ParaTreeT's Charm++ execution, and the engine
//! behind the paper's scaling figures (3, 9, 10, 11, 13).
//!
//! Charm++ semantics are preserved where they matter:
//!
//! * a Partition is a chare — its traversal work items are processed by
//!   run-to-completion tasks serialised per partition (an exclusive
//!   resource), overlapping freely with other partitions on the rank;
//! * fill messages go to "the currently least busy worker thread on the
//!   process" (the simulator's scheduling rule);
//! * the three cache models of Fig. 3 differ only in how fills are
//!   handled: any-worker insertion (WaitFree), one-lock-per-rank
//!   insertion (XWrite), or per-thread caches with duplicated fetches
//!   (PerThread/"Sequential").
//!
//! # Fault tolerance
//!
//! With a [`CrashConfig`] in the fault configuration the engine also
//! models rank crash-stop failures. At iteration start every rank
//! checkpoints its owned subtree particles and partition assignments to
//! stable storage (a [`Phase::Checkpoint`] task whose bytes are charged
//! as communication). A crash kills one rank at a chosen phase or
//! virtual time: its in-flight messages are invalidated by a per-rank
//! epoch stamp, its partitions lose all volatile state, and after the
//! retry timeout the survivors detect the failure, bump the global cache
//! epoch (stale fills are rejected at insertion), and either wait for
//! the rank to restart from its checkpoint or re-shard its subtrees and
//! partitions onto the survivors. Only the crashed rank's subtrees are
//! rebuilt; survivors' trees, caches, and traversal progress are kept.
//!
//! Physics stays exactly-once: traversals whose `open()` ignores bucket
//! state (TopDown, BasicDfs) run *dry* inside the simulation — same
//! opens, same fetches, same virtual time, no visitor side effects —
//! and the visitor is applied once per partition after the simulated
//! timeline completes, over the fully-materialised cache, in canonical
//! depth-first order. The result is bit-identical whether or not a
//! crash occurred. Stateful traversals (UpAndDown) apply during the
//! simulation and reset a crashed partition's bucket state and
//! particles to their pre-iteration values before re-running.

use crate::config::{Configuration, TraversalKind};
use crate::decomp::{decompose, Partitioner};
use crate::maintain::{MaintainRound, TreeMaintainer};
use crate::traversal::{
    process_item, process_item_dry, seed_items, traverse_local, CacheModel, PendingFetch,
    WorkCounts, WorkItem,
};
use crate::visitor::{TargetBucket, Visitor};
use paratreet_cache::stats::CacheStatsSnapshot;
use paratreet_cache::{CacheError, CacheTree, NodeHandle, RequestOutcome, SubtreeSummary};
use paratreet_geometry::{BoundingBox, NodeKey};
use paratreet_particles::io::PARTICLE_WIRE_BYTES;
use paratreet_particles::Particle;
use paratreet_runtime::sim::CommStats;
use paratreet_runtime::{
    CrashConfig, CrashPhase, CrashTrigger, FaultAction, FaultConfig, FaultInjector, FaultStats,
    Ledger, MachineSpec, Phase, Sim,
};
use paratreet_telemetry::{FlightRecorder, MetricSource, MetricsRegistry, Telemetry, Track};
use paratreet_tree::{BuiltTree, TreeBuilder};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

pub use paratreet_cache::stats::CacheStatsSnapshot as CacheSnapshot;

/// Fixed envelope per migration batch message (counts, subtree ids,
/// epoch stamp). Escapees bound for the same destination rank share
/// one such envelope instead of paying per-particle message overhead.
const MIGRATION_BATCH_HEADER_BYTES: u64 = 32;

/// Calibrated per-unit costs (seconds on the Stampede2 Skylake baseline).
/// The absolute values set the scale; the *shapes* of the scaling curves
/// come from the algorithmic counts they multiply.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// One particle–particle exact interaction.
    pub pp: f64,
    /// One particle–node approximation.
    pub pn: f64,
    /// One `open()` test.
    pub open: f64,
    /// Fixed overhead per work item processed.
    pub visit: f64,
    /// Decomposition cost per particle per log2(n) (key + sort).
    pub sort_per_particle_log: f64,
    /// Tree build cost per particle per log2 level.
    pub build_per_particle_log: f64,
    /// Fill serialisation per byte (home side).
    pub serialize_per_byte: f64,
    /// Fill insertion per byte (requesting side).
    pub insert_per_byte: f64,
    /// Fixed cost per fill insertion.
    pub insert_fixed: f64,
    /// Fixed cost to resume one paused traversal (metadata fetch).
    pub resume: f64,
    /// Wire size of one fetch request.
    pub request_bytes: u64,
    /// Wire size of one subtree summary in the share step.
    pub summary_bytes: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            pp: 1.1e-8,
            pn: 1.6e-8,
            open: 6.0e-9,
            visit: 2.5e-8,
            sort_per_particle_log: 8.0e-9,
            build_per_particle_log: 4.0e-8,
            serialize_per_byte: 2.5e-10,
            insert_per_byte: 6.0e-10,
            insert_fixed: 1.5e-6,
            resume: 1.2e-6,
            request_bytes: 64,
            summary_bytes: 96,
        }
    }
}

impl CostModel {
    /// Cost of a batch of traversal work.
    fn work(&self, c: &WorkCounts) -> f64 {
        c.leaf_interactions as f64 * self.pp
            + c.node_interactions as f64 * self.pn
            + c.opens as f64 * self.open
            + c.nodes_visited as f64 * self.visit
    }
}

/// What one crash-recovery episode did (all zero when no crash was
/// configured or the crash never fired). `completed_s` marks the virtual
/// time when the recovery protocol finished re-injecting every piece of
/// owed work; re-executed tasks themselves are charged to
/// [`Phase::Recovery`]/[`Phase::TreeBuild`] in the ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct RecoveryStats {
    /// Crashes that fired (0 or 1).
    pub count: u64,
    /// Virtual time of the crash.
    pub crash_time_s: f64,
    /// Virtual time the survivors detected it (crash + retry timeout).
    pub detected_s: f64,
    /// Virtual time recovery finished orchestrating.
    pub completed_s: f64,
    /// Pipeline phase at the crash: 0 decomposition, 1 tree build,
    /// 2 sharing, 3 traversal.
    pub phase_idx: u64,
    /// 1 when the rank restarted from its checkpoint, 0 on re-shard.
    pub restarted: u64,
    /// Subtrees reassigned to survivors (re-shard mode).
    pub resharded_subtrees: u64,
    /// Partitions moved to survivors (re-shard mode).
    pub moved_partitions: u64,
    /// Fills rejected because they were serialised before the crash
    /// (cache-epoch mismatch).
    pub stale_fills: u64,
    /// Fetch requests dropped at a dead or not-yet-recovered home rank.
    pub dead_requests: u64,
    /// Events discarded by the per-rank/per-partition epoch stamps.
    pub discarded_events: u64,
    /// Placeholder keys re-armed against the dead owner.
    pub rearmed_keys: u64,
    /// Bytes written to stable storage at checkpoint time.
    pub checkpoint_bytes: u64,
    /// Bytes read back from stable storage during recovery.
    pub restored_bytes: u64,
}

impl MetricSource for RecoveryStats {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.count"), self.count);
        registry.set_f64(format!("{prefix}.crash_time_s"), self.crash_time_s);
        registry.set_f64(format!("{prefix}.detected_s"), self.detected_s);
        registry.set_f64(format!("{prefix}.completed_s"), self.completed_s);
        registry.set_u64(format!("{prefix}.phase_idx"), self.phase_idx);
        registry.set_u64(format!("{prefix}.restarted"), self.restarted);
        registry.set_u64(format!("{prefix}.resharded_subtrees"), self.resharded_subtrees);
        registry.set_u64(format!("{prefix}.moved_partitions"), self.moved_partitions);
        registry.set_u64(format!("{prefix}.stale_fills"), self.stale_fills);
        registry.set_u64(format!("{prefix}.dead_requests"), self.dead_requests);
        registry.set_u64(format!("{prefix}.discarded_events"), self.discarded_events);
        registry.set_u64(format!("{prefix}.rearmed_keys"), self.rearmed_keys);
        registry.set_u64(format!("{prefix}.checkpoint_bytes"), self.checkpoint_bytes);
        registry.set_u64(format!("{prefix}.restored_bytes"), self.restored_bytes);
    }
}

/// What one simulated iteration measured. The named fields remain for
/// direct access; they are assembled from [`IterationReport::metrics`],
/// which carries every statistic under a stable dotted name (e.g.
/// `cache.requests_sent`, `phase_busy_s.local_traversal`).
#[derive(Clone, Debug, Serialize)]
pub struct IterationReport {
    /// Virtual end-to-end time of the iteration (seconds).
    pub makespan: f64,
    /// Virtual time when setup (decompose+build+share) finished and
    /// traversal began.
    pub traversal_start: f64,
    /// Busy seconds per phase.
    pub phase_busy: [f64; paratreet_runtime::phase::N_PHASES],
    /// Network traffic.
    pub comm: CommStats,
    /// Exact interaction counts (engine-independent).
    pub counts: WorkCounts,
    /// Cache traffic aggregated over all cache instances.
    pub cache: CacheStatsSnapshot,
    /// Worker utilisation over the iteration (0..=1).
    pub utilization: f64,
    /// The per-phase ledger (for Fig. 9 profiles).
    pub ledger: Ledger,
    /// Buckets that crossed rank boundaries during leaf sharing.
    pub n_shared_buckets: usize,
    /// Measured traversal cost per partition (calibrated seconds) — the
    /// load measurement the SFC re-balancer consumes.
    pub partition_costs: Vec<f64>,
    /// Final particle state (for physics validation against the
    /// shared-memory engine).
    pub particles: Vec<Particle>,
    /// Faults injected into fetch/fill messages this iteration (all
    /// zero unless the engine was configured with
    /// [`DistributedEngine::with_faults`]).
    pub faults: FaultStats,
    /// Fetches re-sent after a retry timeout expired.
    pub fetch_retries: u64,
    /// Fills the cache rejected ([`paratreet_cache::CacheError`]); each
    /// was logged and degraded to a re-request instead of aborting.
    /// Stale-epoch rejections after a crash are counted separately in
    /// [`RecoveryStats::stale_fills`].
    pub fill_errors: u64,
    /// What the crash-recovery protocol did (all zero without a crash).
    pub recovery: RecoveryStats,
    /// Every statistic above under a stable dotted name, plus derived
    /// timings — query with [`MetricsRegistry::get_u64`] /
    /// [`MetricsRegistry::get_f64`], or dump via `--metrics-out`.
    pub metrics: MetricsRegistry,
}

/// Event payloads of the engine's simulation. `Clone` because the fault
/// layer may deliver a message twice. Barrier events carry the rank they
/// count toward plus that rank's epoch at send time (`re`); a crash
/// bumps the epoch, so the dead rank's in-flight events are discarded at
/// delivery and recovery re-posts them under the new epoch. Partition
/// events carry the partition epoch (`pe`) the same way.
#[derive(Clone)]
enum Ev {
    /// A rank finished writing its checkpoint (no barrier: checkpoints
    /// overlap decomposition).
    CheckpointDone,
    DecompDone {
        rank: u32,
        re: u32,
    },
    /// One subtree build finished on `rank`. `si` is `u32::MAX` unless
    /// the subtree was re-sharded and must be grafted into its new
    /// owner's caches on completion.
    BuildDone {
        rank: u32,
        re: u32,
        si: u32,
    },
    ShareArrive {
        to: u32,
        re: u32,
    },
    /// `skel` distinguishes the per-rank skeleton-build task from a
    /// leaf-share message (they share one barrier but different pending
    /// counters).
    LeafShareArrive {
        to: u32,
        re: u32,
        skel: bool,
    },
    /// The configured rank dies now.
    Crash,
    /// The retry timeout elapsed since the crash: survivors react.
    CrashDetected,
    /// Restart-mode recovery chain; stages run in order 0..=3.
    RecoverStep {
        stage: u8,
    },
    /// A re-sharded subtree's checkpoint finished reading at its new
    /// owner (re-shard mode).
    SubtreeRestored {
        si: u32,
    },
    /// A crashed rank's subtree finished rebuilding.
    SubtreeRebuilt {
        si: u32,
    },
    /// (Re)process a partition's work list.
    PartRun {
        part: u32,
        pe: u32,
    },
    /// A partition's processing batch finished; release its effects.
    PartWorkDone {
        part: u32,
        pe: u32,
        fetches: Vec<(NodeKey, Vec<u32>)>,
    },
    /// A fetch request arrived at the home rank.
    RequestArrive {
        key: NodeKey,
        home_rank: u32,
        to_cache: u32,
        requester_rank: u32,
    },
    /// The home rank finished serialising a fill.
    FillServeDone {
        home_rank: u32,
        to_cache: u32,
        requester_rank: u32,
        bytes: Vec<u8>,
    },
    /// A fill arrived at the requesting rank.
    FillArrive {
        to_cache: u32,
        bytes: Vec<u8>,
    },
    /// An insertion task completed: splice and resume.
    InsertDone {
        to_cache: u32,
        bytes: Vec<u8>,
    },
    /// A paused partition's resumption task completed.
    Resumed {
        part: u32,
        pe: u32,
        key: NodeKey,
    },
    /// A fetch's retry timer expired; re-request if the fill never came.
    /// Only scheduled when fault injection is on.
    FetchTimeout {
        key: NodeKey,
        home_rank: u32,
        to_cache: u32,
        requester_rank: u32,
        attempt: u32,
    },
}

/// Routes one engine message through the fault layer: deliver, drop,
/// duplicate, or delay it per the injector's seeded decision stream.
/// With no injector this is exactly [`Sim::send`].
fn send_faulty(
    sim: &mut Sim<Ev>,
    injector: &mut Option<FaultInjector>,
    from: u32,
    to: u32,
    bytes: u64,
    ev: Ev,
) {
    match injector.as_mut().map(FaultInjector::decide) {
        None | Some(FaultAction::Deliver) => sim.send(from, to, bytes, ev),
        Some(FaultAction::Drop) => {}
        Some(FaultAction::Duplicate) => {
            sim.send(from, to, bytes, ev.clone());
            sim.send(from, to, bytes, ev);
        }
        Some(FaultAction::Delay(extra)) => sim.send_delayed(from, to, bytes, extra, ev),
    }
}

/// The crashed rank's owed barrier deliveries, snapshotted once at
/// detection. Epoch discards freeze the pending counters between crash
/// and detection (no barrier can release while the dead rank owes it),
/// so this snapshot equals the state at the instant of the crash.
#[derive(Clone, Copy, Default)]
struct Stuck {
    decomp: usize,
    build: usize,
    share: usize,
    skel: usize,
    leaf: usize,
}

/// Resolves the *current* owner of `key`: walk ancestors up to the
/// enclosing subtree root and read the (possibly re-sharded) owner
/// table. Falls back to the cache's baked-in home rank for keys above
/// every subtree root (the shared top levels).
fn owner_of(
    index: &HashMap<NodeKey, usize>,
    owner: &[u32],
    bits: u32,
    key: NodeKey,
    fallback: u32,
) -> u32 {
    let mut k = key;
    loop {
        if let Some(&si) = index.get(&k) {
            return owner[si];
        }
        let p = k.parent(bits);
        if p == k {
            return fallback;
        }
        k = p;
    }
}

/// Per-partition chare state.
struct PartState<V: Visitor> {
    rank: u32,
    cache_idx: u32,
    buckets: Vec<TargetBucket<V::State>>,
    /// Master indices per bucket (for write-back).
    bucket_indices: Vec<Vec<u32>>,
    stack: Vec<WorkItem<V::Data>>,
    paused: HashMap<NodeKey, Vec<WorkItem<V::Data>>>,
    outstanding: usize,
    /// Work batches spawned whose `PartWorkDone` has not fired yet.
    in_flight: usize,
    /// Accumulated traversal cost (the chare's measured load).
    cost: f64,
    /// Interaction counts this partition has accumulated; discarded on
    /// crash reset so re-executed work is never double-counted.
    counts: WorkCounts,
    seeded: bool,
    resumed_once: bool,
    finished: bool,
}

/// Wipes a partition's volatile traversal state after its rank crashed:
/// bump the epoch (in-flight events become stale), clear the stack and
/// parked fetches, restore bucket state *and particles* to their
/// pre-iteration values so re-running applies every effect exactly once.
fn reset_part<V: Visitor>(
    ps: &mut PartState<V>,
    pe: &mut u32,
    parts_done: &mut usize,
    master: &[Particle],
) {
    *pe += 1;
    ps.stack.clear();
    ps.paused.clear();
    ps.outstanding = 0;
    ps.in_flight = 0;
    ps.counts = WorkCounts::default();
    ps.seeded = false;
    ps.resumed_once = false;
    if ps.finished {
        ps.finished = false;
        *parts_done -= 1;
    }
    for (indices, b) in ps.bucket_indices.iter().zip(&mut ps.buckets) {
        b.state = V::State::default();
        for (slot, &mi) in indices.iter().enumerate() {
            b.particles[slot] = master[mi as usize];
        }
    }
}

/// Grafts a rebuilt subtree into every cache instance of its (new) home
/// rank and resumes any traversals parked on its root placeholder.
#[allow(clippy::too_many_arguments)]
fn graft_subtree<V: Visitor>(
    sim: &mut Sim<Ev>,
    tree: BuiltTree<V::Data>,
    home: u32,
    caches_per_rank: u32,
    caches: &[CacheTree<V::Data>],
    parts: &[PartState<V>],
    part_epoch: &[u32],
    resume_cost: f64,
    fill_errors: &mut u64,
) {
    let mut tree = Some(tree);
    for i in 0..caches_per_rank {
        let ci = (home * caches_per_rank + i) as usize;
        let t = if i + 1 == caches_per_rank {
            tree.take().expect("graft tree consumed once")
        } else {
            tree.as_ref().expect("graft tree alive").clone()
        };
        match caches[ci].insert_subtree(t, home) {
            Ok(outcome) => {
                for (key, waiter) in outcome.resumed {
                    let part = waiter as u32;
                    let rank = parts[part as usize].rank;
                    sim.spawn(
                        rank,
                        Phase::TraversalResumption,
                        resume_cost,
                        Ev::Resumed { part, pe: part_epoch[part as usize], key },
                    );
                }
            }
            Err(_) => *fill_errors += 1,
        }
    }
}

/// Columns the distributed engine's flight recorder samples at each
/// phase boundary (one row at traversal start, one at iteration end).
/// `stage` is 0 for setup complete (decompose + build + sharing) and 1
/// for the finished iteration; timestamps are virtual microseconds, so
/// a given workload and seed produce a byte-identical series.
pub const DES_FLIGHT_SERIES: &[&str] = &[
    "stage",
    "busy_s",
    "busy_frac",
    "comm_messages",
    "comm_bytes",
    "fetch_retries",
    "update_migrated",
];

/// The distributed engine. See module docs.
pub struct DistributedEngine<'v, V: Visitor> {
    /// Machine to simulate.
    pub machine: MachineSpec,
    /// Framework configuration.
    pub config: Configuration,
    /// Cache model under test.
    pub cache_model: CacheModel,
    /// Cost calibration.
    pub costs: CostModel,
    /// Traversal schedule.
    pub kind: TraversalKind,
    /// Optional deterministic fault injection on fetch/fill messages.
    /// Enables the retry-timeout path; `None` means a perfect network.
    /// A [`CrashConfig`] inside additionally arms checkpointing and the
    /// rank crash-stop recovery protocol (module docs).
    pub faults: Option<FaultConfig>,
    /// Span/counter sink. Attach an enabled virtual-time handle (see
    /// [`Telemetry::virtual_time`]) to get one span per simulated task on
    /// its `(rank, worker)` track; the default disabled handle records
    /// nothing.
    pub telemetry: Telemetry,
    /// Flight-recorder sink sampled at phase boundaries
    /// ([`DES_FLIGHT_SERIES`] rows, virtual time); disabled by default.
    pub flight: FlightRecorder,
    visitor: &'v V,
}

impl<'v, V: Visitor> DistributedEngine<'v, V> {
    /// A new engine; `config.n_subtrees`/`n_partitions` are raised to at
    /// least the machine's rank count so every rank has work.
    pub fn new(
        machine: MachineSpec,
        config: Configuration,
        cache_model: CacheModel,
        kind: TraversalKind,
        visitor: &'v V,
    ) -> DistributedEngine<'v, V> {
        DistributedEngine {
            machine,
            config,
            cache_model,
            costs: CostModel::default(),
            kind,
            faults: None,
            telemetry: Telemetry::disabled(),
            flight: FlightRecorder::disabled(),
            visitor,
        }
    }

    /// Injects seeded message faults (drops, duplicates, delays) into
    /// the fetch/fill traffic and arms the retry timeout.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches a telemetry handle; spans are stamped in virtual time,
    /// so a given workload and seed produce a byte-identical trace.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a flight recorder; rows are stamped in virtual time (use
    /// [`FlightRecorder::virtual_time`]), so a given workload and seed
    /// produce a byte-identical series.
    pub fn with_flight_recorder(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self
    }

    /// Runs one full iteration over `particles` and reports.
    pub fn run_iteration(&self, particles: Vec<Particle>) -> IterationReport {
        self.run_inner(particles, None, None).0
    }

    /// Like [`DistributedEngine::run_iteration`], but also returns every
    /// bucket's final visitor state in `(partition, bucket)` order —
    /// the per-leaf results of state-carrying traversals (SPH densities,
    /// collision partners, kNN sets), for validation.
    pub fn run_iteration_states(
        &self,
        particles: Vec<Particle>,
    ) -> (IterationReport, Vec<(NodeKey, V::State)>) {
        self.run_inner(particles, None, None)
    }

    /// Like [`DistributedEngine::run_iteration`], but with an explicit
    /// partition → rank assignment (same length as the effective
    /// partition count of an identical previous run). This is the hook
    /// the measured-load SFC re-balancer uses: run once, feed the
    /// measured [`IterationReport::partition_costs`] through
    /// [`sfc_balanced_assignment`], run again.
    pub fn run_iteration_with_assignment(
        &self,
        particles: Vec<Particle>,
        assignment: Option<&[u32]>,
    ) -> IterationReport {
        self.run_inner(particles, assignment, None).0
    }

    /// Like [`DistributedEngine::run_iteration`], but against a tree
    /// maintained across calls: the first call seeds the
    /// [`TreeMaintainer`] into `slot` and charges a normal
    /// decomposition + build; every later call patches the maintained
    /// tree and charges [`Phase::TreeUpdate`] tasks instead — a linear
    /// classify/re-sieve sweep per rank, a per-Subtree patch task sized
    /// by the structural work actually done, full
    /// [`Phase::TreeBuild`] cost only for Subtrees the drift thresholds
    /// rebuilt, and wire bytes for particles that migrated across rank
    /// boundaries. The whole-tree fallback (and the seed) charge the
    /// full pipeline. Composes with crash recovery: the checkpoint
    /// captures the maintained trees, so a crashed rank's subtrees are
    /// restored bit-identical to the maintained state and the update
    /// sequence replays deterministically. Pass the same `slot` every
    /// iteration; cumulative counters land under `tree.update.*`.
    pub fn run_maintained(
        &self,
        slot: &mut Option<TreeMaintainer<V::Data>>,
        particles: Vec<Particle>,
    ) -> IterationReport {
        self.run_inner(particles, None, Some(slot)).0
    }

    /// [`DistributedEngine::run_maintained`] plus every bucket's final
    /// visitor state, for validation against the full-rebuild engines.
    pub fn run_maintained_states(
        &self,
        slot: &mut Option<TreeMaintainer<V::Data>>,
        particles: Vec<Particle>,
    ) -> (IterationReport, Vec<(NodeKey, V::State)>) {
        self.run_inner(particles, None, Some(slot))
    }

    fn run_inner(
        &self,
        particles: Vec<Particle>,
        assignment: Option<&[u32]>,
        mut maintained: Option<&mut Option<TreeMaintainer<V::Data>>>,
    ) -> (IterationReport, Vec<(NodeKey, V::State)>) {
        let n_total = particles.len().max(2);
        let log_n = (n_total as f64).log2();
        let ranks = self.machine.nodes as u32;
        let workers = self.machine.workers_per_rank as u32;

        // Fault layer (None ⇒ perfect network, no timers). Constructed
        // first so an invalid configuration fails before any work.
        let mut injector =
            self.faults.map(|f| FaultInjector::new(f).expect("invalid fault configuration"));
        let retry_timeout = self.faults.map(|f| f.retry_timeout_s).unwrap_or(0.0);
        let crash: Option<CrashConfig> = self.faults.and_then(|f| f.crash);
        if let Some(c) = crash {
            assert!(ranks >= 2, "rank crash-stop recovery needs at least two ranks");
            assert!(c.rank < ranks, "crash rank {} out of range for {} ranks", c.rank, ranks);
        }

        // Overdecomposition: the configured counts are minimums. Every
        // rank needs several Subtrees, and enough Partitions to keep its
        // workers busy across fetch stalls (Charm++'s "more partitions
        // than processors") — bounded by bucket granularity so
        // partitions keep enough buckets for the loop transposition.
        let mut config = self.config.clone();
        config.n_subtrees = config.n_subtrees.max(self.machine.nodes * 4);
        let by_granularity = (n_total / (config.bucket_size * 4)).max(1);
        let by_machine = self.machine.nodes * self.machine.workers_per_rank * 2;
        config.n_partitions =
            config.n_partitions.max(by_machine.min(by_granularity).max(self.machine.nodes * 2));

        // ---- Decomposition or incremental update (centrally executed,
        // per-rank charged) ----
        // Both paths end in the same shape: built Subtrees plus the
        // partitioner that assigns particles to Partitions. `round` is
        // `Some` only on an incremental advance (not the seed), and
        // drives the Phase::TreeUpdate cost accounting below.
        let (flat, partitioner, eff_n_partitions, round): (
            Vec<BuiltTree<V::Data>>,
            Partitioner,
            usize,
            Option<MaintainRound>,
        ) = match maintained.as_deref_mut() {
            None => {
                let decomp = decompose(particles, &config);
                let flat: Vec<BuiltTree<V::Data>> = decomp
                    .subtrees
                    .into_iter()
                    .map(|piece| {
                        let builder = TreeBuilder {
                            root_key: piece.key,
                            root_depth: piece.depth,
                            parallel: false,
                            ..TreeBuilder::new(config.tree_type)
                        }
                        .bucket_size(config.bucket_size);
                        builder.build::<V::Data>(piece.particles, piece.bbox)
                    })
                    .collect();
                (flat, decomp.partitioner, decomp.n_partitions, None)
            }
            Some(slot) => {
                let (flat, round) = match slot.as_mut() {
                    None => {
                        let (m, flat) = TreeMaintainer::seed(&config, particles, false);
                        *slot = Some(m);
                        (flat, None)
                    }
                    Some(m) => {
                        let (flat, r) = m.advance(particles);
                        (flat, Some(r))
                    }
                };
                let m = slot.as_ref().expect("seeded above");
                (flat, m.partitioner().clone(), m.n_partitions(), round)
            }
        };
        let n_subtrees = flat.len();

        // Subtrees to ranks: contiguous blocks in piece (SFC) order.
        let subtree_rank =
            |si: usize| -> u32 { (si as u64 * ranks as u64 / n_subtrees as u64) as u32 };
        // Partitions to ranks: contiguous id blocks by default (the SFC
        // placement), or the caller's measured-load assignment.
        let n_partitions = eff_n_partitions.max(1);
        if let Some(a) = assignment {
            assert_eq!(a.len(), n_partitions, "assignment must cover every partition");
        }
        let partition_rank = |pi: usize| -> u32 {
            match assignment {
                Some(a) => a[pi],
                None => (pi as u64 * ranks as u64 / n_partitions as u64) as u32,
            }
        };

        let trees: Vec<(u32, BuiltTree<V::Data>)> =
            flat.into_iter().enumerate().map(|(si, t)| (subtree_rank(si), t)).collect();

        // Checkpoint: clone the built trees — the engine's stable
        // storage. Recovery restores a dead rank's subtrees from exactly
        // these bytes; builds are deterministic, so this is
        // bit-identical to rebuilding from the decomposition pieces, and
        // in maintained mode it captures the incrementally patched tree
        // so restart replays the update sequence deterministically.
        let checkpoint: Option<Vec<BuiltTree<V::Data>>> = if crash.is_some() {
            Some(trees.iter().map(|(_, t)| t.clone()).collect())
        } else {
            None
        };

        let summaries: Vec<SubtreeSummary<V::Data>> = trees
            .iter()
            .map(|(rank, t)| SubtreeSummary {
                key: t.root().key,
                bbox: t.root().bbox,
                n_particles: t.root().n_particles,
                data: t.root().data.clone(),
                home_rank: *rank,
            })
            .collect();

        // The live owner table: starts at the SFC placement and is
        // rewritten when a crash re-shards the dead rank's subtrees.
        let mut owner: Vec<u32> = (0..n_subtrees).map(subtree_rank).collect();
        let subtree_index: HashMap<NodeKey, usize> =
            summaries.iter().enumerate().map(|(si, s)| (s.key, si)).collect();

        // Restores one subtree from the checkpoint (bit-identical to the
        // tree that was built — or maintained — this iteration).
        let rebuild = |si: usize| -> BuiltTree<V::Data> {
            checkpoint.as_ref().expect("checkpoint exists when a crash is configured")[si].clone()
        };

        // ---- Master array + leaf sharing (bucket construction) ----
        let mut master: Vec<Particle> = Vec::new();
        struct BucketSeed {
            leaf_key: NodeKey,
            partition: u32,
            subtree: u32,
            indices: Vec<u32>,
        }
        let mut bucket_seeds: Vec<BucketSeed> = Vec::new();
        for (si, (_rank, tree)) in trees.iter().enumerate() {
            let offset = master.len() as u32;
            for li in tree.leaf_indices() {
                let node = tree.node(li);
                let range = node.bucket_range().expect("leaf");
                let mut per_part: Vec<(u32, Vec<u32>)> = Vec::new();
                for i in range {
                    let part = partitioner.assign(&tree.particles[i]);
                    match per_part.iter_mut().find(|(p, _)| *p == part) {
                        Some((_, v)) => v.push(offset + i as u32),
                        None => per_part.push((part, vec![offset + i as u32])),
                    }
                }
                for (partition, indices) in per_part {
                    bucket_seeds.push(BucketSeed {
                        leaf_key: node.key,
                        partition,
                        subtree: si as u32,
                        indices,
                    });
                }
            }
            master.extend_from_slice(&tree.particles);
        }

        // ---- Cache instances ----
        // WaitFree/XWrite: one per rank. PerThread: one per worker; a
        // partition binds to cache (rank, local_part % workers).
        let bits = config.tree_type.bits_per_level();
        let caches_per_rank: u32 =
            if self.cache_model == CacheModel::PerThread { workers } else { 1 };
        let n_caches = ranks * caches_per_rank;
        let caches: Vec<CacheTree<V::Data>> =
            (0..n_caches).map(|ci| CacheTree::new(ci / caches_per_rank, bits)).collect();
        // Graft local trees into every cache instance of their home rank.
        let mut per_rank_trees: Vec<Vec<BuiltTree<V::Data>>> =
            (0..ranks).map(|_| Vec::new()).collect();
        for (rank, tree) in trees {
            per_rank_trees[rank as usize].push(tree);
        }
        for ci in 0..n_caches {
            let rank = (ci / caches_per_rank) as usize;
            // Each cache instance needs its own grafted copy.
            let local: Vec<_> = if ci % caches_per_rank == caches_per_rank - 1 {
                std::mem::take(&mut per_rank_trees[rank])
            } else {
                per_rank_trees[rank].clone()
            };
            caches[ci as usize].init(&summaries, local);
        }

        // Debug builds sweep every cache's structural invariants at
        // phase boundaries; release builds skip the O(cache) walk. In
        // maintained mode the extended audit also validates what a
        // fresh build would guarantee by construction (bucket bounds,
        // summary sums, orphan placeholders).
        #[cfg(debug_assertions)]
        let is_maintained = maintained.is_some();
        #[cfg(debug_assertions)]
        let audit_all = |caches: &[CacheTree<V::Data>], when: &str| {
            for (ci, c) in caches.iter().enumerate() {
                let res =
                    if is_maintained { c.audit_patched(config.bucket_size) } else { c.audit() };
                if let Err(e) = res {
                    panic!("cache {ci} audit failed {when}: {e}");
                }
            }
        };
        #[cfg(debug_assertions)]
        audit_all(&caches, "after init");

        // XWrite lock resource ids (one per rank), partition resources.
        const LOCK_BASE: u64 = 1 << 48;
        let part_resource = |p: u32| -> u64 { p as u64 + 1 };

        // ---- Partition states ----
        let mut parts: Vec<PartState<V>> = (0..n_partitions as u32)
            .map(|p| {
                let rank = partition_rank(p as usize);
                let local_idx = p as u64 % caches_per_rank as u64;
                let cache_idx = rank * caches_per_rank + local_idx as u32;
                PartState {
                    rank,
                    cache_idx,
                    buckets: Vec::new(),
                    bucket_indices: Vec::new(),
                    stack: Vec::new(),
                    paused: HashMap::new(),
                    outstanding: 0,
                    in_flight: 0,
                    cost: 0.0,
                    counts: WorkCounts::default(),
                    seeded: false,
                    resumed_once: false,
                    finished: false,
                }
            })
            .collect();
        let mut n_shared_buckets = 0usize;
        // Every (subtree, partition) leaf-share pair with its wire size;
        // sender and receiver are resolved at send time from the live
        // owner table and partition placement, so recovery can replay
        // exactly the messages a re-shard redirects.
        let mut leaf_pairs: Vec<(u32, u32, u64)> = Vec::new();
        for seed in &bucket_seeds {
            let part = &mut parts[seed.partition as usize];
            let particles: Vec<Particle> =
                seed.indices.iter().map(|&i| master[i as usize]).collect();
            let bbox = BoundingBox::around(particles.iter().map(|p| p.pos));
            let bytes = (particles.len() * PARTICLE_WIRE_BYTES) as u64;
            if owner[seed.subtree as usize] != part.rank {
                n_shared_buckets += 1;
            }
            leaf_pairs.push((seed.subtree, seed.partition, bytes));
            part.buckets.push(TargetBucket {
                leaf_key: seed.leaf_key,
                particles,
                bbox,
                state: V::State::default(),
            });
            part.bucket_indices.push(seed.indices.clone());
        }

        // Checkpoint sizes: per-subtree particle payloads plus a small
        // header, and one partition-assignment record per partition.
        let (ckpt_subtree_bytes, ckpt_rank_bytes) = match &checkpoint {
            Some(trees) => {
                let sb: Vec<u64> = trees
                    .iter()
                    .map(|t| (t.particles.len() * PARTICLE_WIRE_BYTES + 32) as u64)
                    .collect();
                let mut rb = vec![0u64; ranks as usize];
                for (si, b) in sb.iter().enumerate() {
                    rb[owner[si] as usize] += b;
                }
                for p in 0..n_partitions {
                    rb[partition_rank(p) as usize] += 8;
                }
                (sb, rb)
            }
            None => (Vec::new(), Vec::new()),
        };

        // ---- Simulate ----
        let mut sim: Sim<Ev> = Sim::new(self.machine.clone());
        sim.telemetry = self.telemetry.clone();
        let costs = self.costs;
        let fetch_depth = config.fetch_depth;
        let cache_model = self.cache_model;
        let visitor = self.visitor;
        let kind = self.kind;
        // Geometry-only traversals run dry in the simulation and apply
        // the visitor once post-sim in canonical order (module docs), so
        // their physics is independent of message timing and crashes.
        let dry = matches!(kind, TraversalKind::TopDown | TraversalKind::BasicDfs);

        let mut rec = RecoveryStats::default();

        // Phase 0 (crash runs only): every rank checkpoints its owned
        // particles and partition table to stable storage, overlapping
        // the decomposition sort.
        if crash.is_some() {
            for r in 0..ranks {
                let bytes = ckpt_rank_bytes[r as usize];
                sim.comm.messages += 1;
                sim.comm.bytes += bytes;
                rec.checkpoint_bytes += bytes;
                sim.spawn(
                    r,
                    Phase::Checkpoint,
                    costs.serialize_per_byte * bytes as f64 + costs.insert_fixed,
                    Ev::CheckpointDone,
                );
            }
        }

        // Incremental advance: particles that crossed Subtree boundaries
        // moved between the owning ranks. The maintainer hands them over
        // as per-destination batches, so the comm model charges one
        // message per (source rank, destination rank) pair — all
        // escapees travelling that edge share a single batch envelope —
        // rather than one per subtree migration edge.
        let incremental_update = round.as_ref().is_some_and(|r| !r.full_rebuild);
        if let Some(r) = round.as_ref().filter(|r| !r.full_rebuild) {
            let mut rank_batches: BTreeMap<(u32, u32), u64> = BTreeMap::new();
            for &(from_si, to_si, n) in &r.migrations {
                let from = owner[from_si as usize];
                let to = owner[to_si as usize];
                if from == to {
                    continue;
                }
                *rank_batches.entry((from, to)).or_default() += n as u64;
            }
            for ((from, _to), n) in rank_batches {
                let bytes = n * PARTICLE_WIRE_BYTES as u64 + MIGRATION_BATCH_HEADER_BYTES;
                sim.comm.messages += 1;
                sim.comm.bytes += bytes;
                sim.spawn(
                    from,
                    Phase::TreeUpdate,
                    costs.serialize_per_byte * bytes as f64 + costs.insert_fixed,
                    Ev::CheckpointDone,
                );
            }
        }

        // Phase 1: decomposition tasks — the per-rank sort parallelises
        // over the rank's workers (rayon in the real engine). On an
        // incremental advance the sort is replaced by the maintainer's
        // classify/resync sweep: linear in the rank's particles, charged
        // to the incremental-update phase.
        let per_rank_particles = (n_total as f64 / ranks as f64).max(1.0);
        let decomp_tasks_per_rank = workers.min(8);
        let front_phase = if incremental_update { Phase::TreeUpdate } else { Phase::Decomposition };
        let decomp_task_cost = if incremental_update {
            costs.sort_per_particle_log * per_rank_particles / decomp_tasks_per_rank as f64
        } else {
            costs.sort_per_particle_log * per_rank_particles * log_n / decomp_tasks_per_rank as f64
        };
        let mut pending_decomp = vec![0usize; ranks as usize];
        for r in 0..ranks {
            for _ in 0..decomp_tasks_per_rank {
                pending_decomp[r as usize] += 1;
                sim.spawn(r, front_phase, decomp_task_cost, Ev::DecompDone { rank: r, re: 0 });
            }
        }

        // Arm the crash trigger. Phase triggers other than decomposition
        // fire inside the matching barrier-release arm below.
        let phase_trigger = crash.and_then(|c| match c.trigger {
            CrashTrigger::AtPhase(p) => Some(p),
            CrashTrigger::AtTime(_) => None,
        });
        if let Some(c) = crash {
            match c.trigger {
                CrashTrigger::AtPhase(CrashPhase::Decomposition) => sim.post(Ev::Crash),
                CrashTrigger::AtTime(t) => sim.post_after(t, Ev::Crash),
                CrashTrigger::AtPhase(_) => {}
            }
        }

        // Counters used by the barrier logic inside the handler.
        let mut decomp_left = (ranks * decomp_tasks_per_rank) as usize;
        let mut build_left = 0usize;
        let mut share_left = 0usize;
        let mut leaf_share_left = 0usize;
        let mut traversal_start = 0.0f64;
        let mut traversal_begun = false;
        let mut parts_done = 0usize;
        let mut fetch_retries = 0u64;
        let mut fill_errors = 0u64;

        // Crash-recovery state: epochs, liveness, per-rank owed-delivery
        // counters (incremented at spawn/send, decremented at valid
        // delivery — so a crash leaves the dead rank's counters frozen
        // at exactly what recovery must re-inject).
        let mut rank_epoch = vec![0u32; ranks as usize];
        let mut part_epoch = vec![0u32; n_partitions];
        let mut down = vec![false; ranks as usize];
        let mut pending_build = vec![0usize; ranks as usize];
        let mut pending_share_in = vec![0usize; ranks as usize];
        let mut pending_skel = vec![0usize; ranks as usize];
        let mut pending_leaf_in = vec![0usize; ranks as usize];
        let mut needs_graft = vec![false; n_subtrees];
        let mut recovered_trees: Vec<Option<BuiltTree<V::Data>>> =
            (0..n_subtrees).map(|_| None).collect();
        let mut stuck = Stuck::default();
        let mut crash_fired = false;
        let mut cache_epoch_now = 0u32;
        let mut owed_build = 0usize;
        let mut rec_left = 0usize;
        let mut graft_left = 0usize;

        // Per-subtree build costs: Subtrees build independently, in
        // parallel across each rank's workers (the model's
        // synchronisation-free build).
        let subtree_build_cost: Vec<f64> = summaries
            .iter()
            .map(|s| {
                let n_i = s.n_particles.max(1) as f64;
                costs.build_per_particle_log * n_i * (n_i.log2().max(1.0))
            })
            .collect();

        // What each Subtree's *this-iteration* task costs. A full build
        // (seed, fallback, and rebalanced Subtrees) keeps the
        // Phase::TreeBuild cost above — which recovery also charges when
        // it restores from checkpoint. An incremental patch applies one
        // sorted batch per Subtree, so the sieve work amortises: b
        // touched particles share prefix paths, costing b·log(n/b)
        // rather than b·log n, plus a linear term for the dirty-path
        // summary re-accumulation.
        let subtree_task: Vec<(Phase, f64)> = (0..n_subtrees)
            .map(|si| match round.as_ref() {
                Some(r) if !r.full_rebuild && !r.rebuilt_subtrees.contains(&(si as u32)) => {
                    let n_i = summaries[si].n_particles.max(1) as f64;
                    let touched = r.per_subtree_work.get(si).copied().unwrap_or(0) as f64;
                    let amortized = (n_i / touched.max(1.0)).max(2.0).log2();
                    let cost = costs.build_per_particle_log * (touched * amortized + 0.25 * n_i);
                    (Phase::TreeUpdate, cost.max(1e-9))
                }
                _ => (Phase::TreeBuild, subtree_build_cost[si]),
            })
            .collect();

        let flight = self.flight.clone();
        sim.run(|sim, ev| match ev {
            Ev::CheckpointDone => {}
            Ev::DecompDone { rank, re } => {
                if re != rank_epoch[rank as usize] {
                    rec.discarded_events += 1;
                    return;
                }
                pending_decomp[rank as usize] -= 1;
                decomp_left -= 1;
                if decomp_left == 0 {
                    if phase_trigger == Some(CrashPhase::TreeBuild) && !crash_fired {
                        sim.post(Ev::Crash);
                    }
                    // Phase 2: tree builds — or incremental patches —
                    // one task per Subtree, on the subtree's current
                    // owner.
                    for (si, &(phase, cost)) in subtree_task.iter().enumerate() {
                        let r = owner[si];
                        let stamp = if needs_graft[si] { si as u32 } else { u32::MAX };
                        build_left += 1;
                        pending_build[r as usize] += 1;
                        sim.spawn(
                            r,
                            phase,
                            cost,
                            Ev::BuildDone { rank: r, re: rank_epoch[r as usize], si: stamp },
                        );
                    }
                }
            }
            Ev::BuildDone { rank, re, si } => {
                if re != rank_epoch[rank as usize] {
                    rec.discarded_events += 1;
                    return;
                }
                pending_build[rank as usize] -= 1;
                build_left -= 1;
                if si != u32::MAX && needs_graft[si as usize] {
                    // A re-sharded subtree finished building at its new
                    // owner: graft it so fetches can be served there.
                    let tree = rebuild(si as usize);
                    graft_subtree::<V>(
                        sim,
                        tree,
                        owner[si as usize],
                        caches_per_rank,
                        &caches,
                        &parts,
                        &part_epoch,
                        costs.resume,
                        &mut fill_errors,
                    );
                    needs_graft[si as usize] = false;
                }
                if build_left == 0 {
                    // Phase 3: share summaries all-to-all among the
                    // living. With one rank left (or one rank total) the
                    // barrier is satisfied by a single local event.
                    let payload = summaries.len() as u64 * costs.summary_bytes;
                    let mut sent = 0usize;
                    for from in 0..ranks {
                        if down[from as usize] {
                            continue;
                        }
                        for to in 0..ranks {
                            if to == from || down[to as usize] {
                                continue;
                            }
                            share_left += 1;
                            pending_share_in[to as usize] += 1;
                            sent += 1;
                            sim.send(
                                from,
                                to,
                                payload / ranks as u64,
                                Ev::ShareArrive { to, re: rank_epoch[to as usize] },
                            );
                        }
                    }
                    if sent == 0 {
                        let to = (0..ranks).find(|&r| !down[r as usize]).unwrap_or(0);
                        share_left += 1;
                        pending_share_in[to as usize] += 1;
                        sim.post(Ev::ShareArrive { to, re: rank_epoch[to as usize] });
                    }
                }
            }
            Ev::ShareArrive { to, re } => {
                if re != rank_epoch[to as usize] {
                    rec.discarded_events += 1;
                    return;
                }
                pending_share_in[to as usize] -= 1;
                share_left -= 1;
                if share_left == 0 {
                    if phase_trigger == Some(CrashPhase::LeafSharing) && !crash_fired {
                        sim.post(Ev::Crash);
                    }
                    // Small skeleton-build task per living rank, then
                    // leaf buckets flow from each subtree's current
                    // owner to its partition's current rank.
                    for r in 0..ranks {
                        if down[r as usize] {
                            continue;
                        }
                        leaf_share_left += 1;
                        pending_skel[r as usize] += 1;
                        sim.spawn(
                            r,
                            Phase::ShareTopLevels,
                            costs.insert_fixed + summaries.len() as f64 * 1e-7,
                            Ev::LeafShareArrive { to: r, re: rank_epoch[r as usize], skel: true },
                        );
                    }
                    for &(si, part, bytes) in leaf_pairs.iter() {
                        let from = owner[si as usize];
                        let to2 = parts[part as usize].rank;
                        if from == to2 {
                            continue;
                        }
                        leaf_share_left += 1;
                        pending_leaf_in[to2 as usize] += 1;
                        sim.send(
                            from,
                            to2,
                            bytes,
                            Ev::LeafShareArrive {
                                to: to2,
                                re: rank_epoch[to2 as usize],
                                skel: false,
                            },
                        );
                    }
                }
            }
            Ev::LeafShareArrive { to, re, skel } => {
                if re != rank_epoch[to as usize] {
                    rec.discarded_events += 1;
                    return;
                }
                if skel {
                    pending_skel[to as usize] -= 1;
                } else {
                    pending_leaf_in[to as usize] -= 1;
                }
                leaf_share_left -= 1;
                if leaf_share_left == 0 {
                    #[cfg(debug_assertions)]
                    audit_all(&caches, "at traversal start");
                    traversal_start = sim.now();
                    traversal_begun = true;
                    if flight.is_enabled() {
                        // Stage-0 row: setup (decompose + build + both
                        // sharing rounds) is complete. Virtual time and
                        // deterministic sim state only, so the series
                        // stays byte-identical for a given seed.
                        flight.sample_at(
                            sim.now() * 1e6,
                            &[
                                0.0,
                                sim.ledger.total_busy(),
                                sim.utilization(),
                                sim.comm.messages as f64,
                                sim.comm.bytes as f64,
                                fetch_retries as f64,
                                0.0,
                            ],
                        );
                    }
                    if phase_trigger == Some(CrashPhase::Traversal) && !crash_fired {
                        sim.post(Ev::Crash);
                    }
                    // Seed every partition's traversal.
                    for p in 0..parts.len() as u32 {
                        sim.post(Ev::PartRun { part: p, pe: part_epoch[p as usize] });
                    }
                }
            }
            Ev::Crash => {
                if crash_fired {
                    return;
                }
                crash_fired = true;
                let c = crash.expect("crash event only posted when configured");
                let cr = c.rank as usize;
                rec.count += 1;
                rec.crash_time_s = sim.now();
                rec.phase_idx = if decomp_left > 0 {
                    0
                } else if build_left > 0 {
                    1
                } else if !traversal_begun {
                    2
                } else {
                    3
                };
                down[cr] = true;
                // Everything in flight to or from this rank is now void.
                rank_epoch[cr] += 1;
                for p in 0..parts.len() {
                    if parts[p].rank == c.rank {
                        reset_part::<V>(
                            &mut parts[p],
                            &mut part_epoch[p],
                            &mut parts_done,
                            &master,
                        );
                    }
                }
                sim.telemetry.count("fault.crash", 1);
                // Survivors notice when the rank stops answering — the
                // same timeout that drives fetch retries.
                sim.post_after(retry_timeout, Ev::CrashDetected);
            }
            Ev::CrashDetected => {
                let c = crash.expect("detection follows a configured crash");
                let cr = c.rank as usize;
                rec.detected_s = sim.now();
                // The dead rank's owed deliveries, frozen since the
                // crash (epoch discards stop the counters moving).
                stuck = Stuck {
                    decomp: pending_decomp[cr],
                    build: pending_build[cr],
                    share: pending_share_in[cr],
                    skel: pending_skel[cr],
                    leaf: pending_leaf_in[cr],
                };
                // Globally invalidate fills serialised before the crash.
                cache_epoch_now += 1;
                for cache in caches.iter() {
                    cache.set_epoch(cache_epoch_now);
                }
                // Re-arm placeholders whose fetches died with the rank.
                for cache in caches.iter() {
                    rec.rearmed_keys += cache.on_owner_crash(c.rank) as u64;
                }
                if c.restart {
                    sim.post_after(c.restart_delay_s, Ev::RecoverStep { stage: 0 });
                } else {
                    // ---- Re-shard onto the survivors ----
                    let alive: Vec<u32> = (0..ranks).filter(|&r| !down[r as usize]).collect();
                    let mut rr = 0usize;
                    let mut resharded: Vec<usize> = Vec::new();
                    for si in 0..n_subtrees {
                        if owner[si] == c.rank {
                            owner[si] = alive[rr % alive.len()];
                            rr += 1;
                            needs_graft[si] = true;
                            resharded.push(si);
                        }
                    }
                    rec.resharded_subtrees = resharded.len() as u64;
                    for i in 0..caches_per_rank {
                        caches[(c.rank * caches_per_rank + i) as usize].mark_dead();
                    }
                    // Adopt the dead rank's partitions (already reset at
                    // the crash); their buckets re-load from the
                    // checkpointed particles.
                    let mut moved = 0usize;
                    for p in 0..parts.len() {
                        if parts[p].rank == c.rank {
                            let new_rank = alive[moved % alive.len()];
                            moved += 1;
                            parts[p].rank = new_rank;
                            parts[p].cache_idx =
                                new_rank * caches_per_rank + (p as u32 % caches_per_rank);
                            let bytes: u64 = parts[p]
                                .buckets
                                .iter()
                                .map(|b| (b.particles.len() * PARTICLE_WIRE_BYTES) as u64)
                                .sum::<u64>()
                                + 8;
                            sim.comm.messages += 1;
                            sim.comm.bytes += bytes;
                            rec.restored_bytes += bytes;
                            if traversal_begun {
                                sim.post(Ev::PartRun { part: p as u32, pe: part_epoch[p] });
                            }
                        }
                    }
                    rec.moved_partitions = moved as u64;
                    if stuck.decomp > 0 {
                        // Survivors redo the dead rank's share of the
                        // sort; the build barrier then spawns on the new
                        // owners and grafts ride the normal path.
                        for i in 0..stuck.decomp {
                            let r = alive[i % alive.len()];
                            sim.spawn(
                                r,
                                Phase::Decomposition,
                                decomp_task_cost,
                                Ev::DecompDone { rank: c.rank, re: rank_epoch[cr] },
                            );
                        }
                        rec.completed_s = sim.now();
                    } else {
                        // Read each lost subtree's checkpoint at its new
                        // owner, rebuild, graft; owed build-barrier
                        // deliveries are re-posted as rebuilds land.
                        owed_build = stuck.build;
                        graft_left = resharded.len();
                        for &si in &resharded {
                            let bytes = ckpt_subtree_bytes[si];
                            sim.comm.messages += 1;
                            sim.comm.bytes += bytes;
                            rec.restored_bytes += bytes;
                            sim.spawn(
                                owner[si],
                                Phase::Recovery,
                                costs.serialize_per_byte * bytes as f64 + costs.insert_fixed,
                                Ev::SubtreeRestored { si: si as u32 },
                            );
                        }
                        if graft_left == 0 {
                            rec.completed_s = sim.now();
                        }
                    }
                    // Absorb the dead rank's stuck barrier shares so the
                    // pipeline can release without it.
                    for _ in 0..stuck.share {
                        sim.post(Ev::ShareArrive { to: c.rank, re: rank_epoch[cr] });
                    }
                    for _ in 0..stuck.skel {
                        sim.post(Ev::LeafShareArrive {
                            to: c.rank,
                            re: rank_epoch[cr],
                            skel: true,
                        });
                    }
                    for _ in 0..stuck.leaf {
                        sim.post(Ev::LeafShareArrive {
                            to: c.rank,
                            re: rank_epoch[cr],
                            skel: false,
                        });
                    }
                }
            }
            Ev::RecoverStep { stage } => {
                let c = crash.expect("recovery follows a configured crash");
                let cr = c.rank as usize;
                match stage {
                    0 => {
                        // The rank is back: read its checkpoint.
                        rec.restarted = 1;
                        let bytes = ckpt_rank_bytes[cr];
                        sim.comm.messages += 1;
                        sim.comm.bytes += bytes;
                        rec.restored_bytes += bytes;
                        sim.spawn(
                            c.rank,
                            Phase::Recovery,
                            costs.serialize_per_byte * bytes as f64 + costs.insert_fixed,
                            Ev::RecoverStep { stage: 1 },
                        );
                    }
                    1 => {
                        if stuck.decomp > 0 {
                            // Crash hit the sort: redo the owed share
                            // locally; the rest of the pipeline follows
                            // from the barriers.
                            down[cr] = false;
                            for _ in 0..stuck.decomp {
                                sim.spawn(
                                    c.rank,
                                    Phase::Decomposition,
                                    decomp_task_cost,
                                    Ev::DecompDone { rank: c.rank, re: rank_epoch[cr] },
                                );
                            }
                            rec.completed_s = sim.now();
                        } else {
                            // All of this rank's subtrees rebuild from
                            // the checkpoint (its memory is gone, even
                            // for builds that had finished).
                            if rec.phase_idx < 3 {
                                down[cr] = false;
                            }
                            owed_build = stuck.build;
                            let owned: Vec<usize> =
                                (0..n_subtrees).filter(|&si| owner[si] == c.rank).collect();
                            rec_left = owned.len();
                            if rec_left == 0 {
                                sim.post(Ev::RecoverStep { stage: 2 });
                            } else {
                                for si in owned {
                                    sim.spawn(
                                        c.rank,
                                        Phase::TreeBuild,
                                        subtree_build_cost[si],
                                        Ev::SubtreeRebuilt { si: si as u32 },
                                    );
                                }
                            }
                        }
                    }
                    2 => {
                        if stuck.share > 0 {
                            // Survivors re-send the summaries the rank
                            // lost; the share barrier then releases with
                            // everyone alive.
                            let payload =
                                summaries.len() as u64 * costs.summary_bytes / ranks as u64;
                            let alive: Vec<u32> =
                                (0..ranks).filter(|&r| r != c.rank && !down[r as usize]).collect();
                            for i in 0..stuck.share {
                                let from = alive[i % alive.len()];
                                sim.send(
                                    from,
                                    c.rank,
                                    payload,
                                    Ev::ShareArrive { to: c.rank, re: rank_epoch[cr] },
                                );
                            }
                            rec.completed_s = sim.now();
                        } else if stuck.skel + stuck.leaf > 0 || rec.phase_idx == 3 {
                            // Redo the skeleton build before rejoining
                            // the leaf-share barrier or traversal.
                            sim.spawn(
                                c.rank,
                                Phase::ShareTopLevels,
                                costs.insert_fixed + summaries.len() as f64 * 1e-7,
                                Ev::RecoverStep { stage: 3 },
                            );
                        } else {
                            // Crash hit decomposition or build: the
                            // barriers already carry the redone work.
                            rec.completed_s = sim.now();
                        }
                    }
                    _ => {
                        if stuck.skel + stuck.leaf > 0 {
                            // Crash hit leaf sharing: absorb the redone
                            // skeleton and re-send the lost leaf buckets
                            // from their current owners.
                            for _ in 0..stuck.skel {
                                sim.post(Ev::LeafShareArrive {
                                    to: c.rank,
                                    re: rank_epoch[cr],
                                    skel: true,
                                });
                            }
                            let mut need = stuck.leaf;
                            for &(si, part, bytes) in leaf_pairs.iter() {
                                if need == 0 {
                                    break;
                                }
                                let from = owner[si as usize];
                                if parts[part as usize].rank == c.rank && from != c.rank {
                                    need -= 1;
                                    sim.send(
                                        from,
                                        c.rank,
                                        bytes,
                                        Ev::LeafShareArrive {
                                            to: c.rank,
                                            re: rank_epoch[cr],
                                            skel: false,
                                        },
                                    );
                                }
                            }
                            for _ in 0..need {
                                sim.post(Ev::LeafShareArrive {
                                    to: c.rank,
                                    re: rank_epoch[cr],
                                    skel: false,
                                });
                            }
                            rec.completed_s = sim.now();
                        } else {
                            // Traversal-phase restart: re-initialise the
                            // rank's caches from the rebuilt subtrees
                            // (remote fills are gone; placeholders
                            // re-fetch on demand) and relaunch its
                            // partitions from their reset state.
                            let owned: Vec<usize> =
                                (0..n_subtrees).filter(|&si| owner[si] == c.rank).collect();
                            for i in 0..caches_per_rank {
                                let ci = (c.rank * caches_per_rank + i) as usize;
                                let local: Vec<BuiltTree<V::Data>> = if i + 1 == caches_per_rank {
                                    owned
                                        .iter()
                                        .map(|&si| {
                                            recovered_trees[si].take().expect("subtree rebuilt")
                                        })
                                        .collect()
                                } else {
                                    owned
                                        .iter()
                                        .map(|&si| {
                                            recovered_trees[si].clone().expect("subtree rebuilt")
                                        })
                                        .collect()
                                };
                                caches[ci].reinit(&summaries, local);
                            }
                            down[cr] = false;
                            for p in 0..parts.len() {
                                if parts[p].rank == c.rank {
                                    sim.post(Ev::PartRun { part: p as u32, pe: part_epoch[p] });
                                }
                            }
                            rec.completed_s = sim.now();
                        }
                    }
                }
            }
            Ev::SubtreeRestored { si } => {
                // Checkpoint read done at the new owner: rebuild there.
                let s = si as usize;
                sim.spawn(
                    owner[s],
                    Phase::TreeBuild,
                    subtree_build_cost[s],
                    Ev::SubtreeRebuilt { si },
                );
            }
            Ev::SubtreeRebuilt { si } => {
                let s = si as usize;
                let c = crash.expect("rebuild follows a configured crash");
                if c.restart {
                    // Keep the tree for the cache re-init (only needed
                    // when remote state was lost mid-traversal); satisfy
                    // one owed build-barrier delivery per rebuild.
                    if rec.phase_idx == 3 {
                        recovered_trees[s] = Some(rebuild(s));
                    }
                    if owed_build > 0 {
                        owed_build -= 1;
                        sim.post(Ev::BuildDone {
                            rank: c.rank,
                            re: rank_epoch[c.rank as usize],
                            si: u32::MAX,
                        });
                    }
                    rec_left -= 1;
                    if rec_left == 0 {
                        sim.post(Ev::RecoverStep { stage: 2 });
                    }
                } else {
                    let tree = rebuild(s);
                    graft_subtree::<V>(
                        sim,
                        tree,
                        owner[s],
                        caches_per_rank,
                        &caches,
                        &parts,
                        &part_epoch,
                        costs.resume,
                        &mut fill_errors,
                    );
                    needs_graft[s] = false;
                    if owed_build > 0 {
                        owed_build -= 1;
                        sim.post(Ev::BuildDone {
                            rank: c.rank,
                            re: rank_epoch[c.rank as usize],
                            si: u32::MAX,
                        });
                    }
                    graft_left -= 1;
                    if graft_left == 0 {
                        rec.completed_s = sim.now();
                    }
                }
            }
            Ev::PartRun { part, pe } => {
                if pe != part_epoch[part as usize] {
                    rec.discarded_events += 1;
                    return;
                }
                let ps = &mut parts[part as usize];
                if down[ps.rank as usize] {
                    return;
                }
                let cache = &caches[ps.cache_idx as usize];
                if !ps.seeded {
                    ps.seeded = true;
                    ps.stack = seed_items::<V>(cache, kind, &ps.buckets);
                }
                // Run-to-completion: drain the stack, surrendering
                // placeholder hits. Up-and-down traversals stop at the
                // *first* pending fetch instead: their pruning bounds
                // tighten as items complete in order, so racing ahead
                // with untightened bounds would fetch (and evaluate) far
                // more remote data than the sequential schedule — the
                // partition waits, while other partitions on the rank
                // keep the workers busy.
                let ordered = kind == TraversalKind::UpAndDown;
                let mut batch = WorkCounts::default();
                let mut fetches: Vec<PendingFetch<V::Data>> = Vec::new();
                while let Some(item) = ps.stack.pop() {
                    if dry {
                        process_item_dry(
                            cache,
                            visitor,
                            &mut ps.buckets,
                            item,
                            &mut ps.stack,
                            &mut fetches,
                            &mut batch,
                        );
                    } else {
                        process_item(
                            cache,
                            visitor,
                            &mut ps.buckets,
                            item,
                            &mut ps.stack,
                            &mut fetches,
                            &mut batch,
                        );
                    }
                    if ordered && !fetches.is_empty() {
                        break;
                    }
                }
                ps.counts += batch;
                let phase =
                    if ps.resumed_once { Phase::RemoteTraversal } else { Phase::LocalTraversal };
                let fetch_list: Vec<(NodeKey, Vec<u32>)> =
                    fetches.into_iter().map(|f| (f.key, f.buckets)).collect();
                ps.in_flight += 1;
                let batch_cost = costs.work(&batch).max(1e-9);
                ps.cost += batch_cost;
                sim.spawn_exclusive(
                    ps.rank,
                    part_resource(part),
                    phase,
                    batch_cost,
                    Ev::PartWorkDone { part, pe, fetches: fetch_list },
                );
            }
            Ev::PartWorkDone { part, pe, fetches } => {
                if pe != part_epoch[part as usize] {
                    rec.discarded_events += 1;
                    return;
                }
                let ps = &mut parts[part as usize];
                let cache = &caches[ps.cache_idx as usize];
                ps.in_flight -= 1;
                let mut rerun = false;
                for (key, buckets) in fetches {
                    // Re-find the placeholder (it may have been swapped).
                    // The skeleton guarantees the key exists; a miss is
                    // an engine bug, not a recoverable message fault.
                    let Some(node) = cache.find(key) else {
                        debug_assert!(false, "fetch target {key} missing from skeleton");
                        fill_errors += 1;
                        sim.telemetry.count("des.fill_errors", 1);
                        continue;
                    };
                    if !node.is_placeholder() {
                        // Fill landed while we were busy: traverse on.
                        ps.stack.push(WorkItem { node: NodeHandle::new(node), buckets });
                        rerun = true;
                        continue;
                    }
                    match cache.request(node, part as u64) {
                        RequestOutcome::Ready(n) => {
                            ps.stack.push(WorkItem { node: NodeHandle::new(n), buckets });
                            rerun = true;
                        }
                        RequestOutcome::SendFetch { home_rank } => {
                            // After a re-shard the cached home rank may
                            // be stale: route to the current owner.
                            let home = if crash.is_some() {
                                owner_of(&subtree_index, &owner, bits, key, home_rank)
                            } else {
                                home_rank
                            };
                            ps.paused
                                .entry(key)
                                .or_default()
                                .push(WorkItem { node: NodeHandle::new(node), buckets });
                            ps.outstanding += 1;
                            // Small CPU cost to issue the request.
                            sim.ledger.record(sim.now(), sim.now(), Phase::CacheRequest);
                            sim.telemetry.span_at(
                                Track { rank: ps.rank, worker: 0 },
                                "cache request",
                                sim.now() * 1e6,
                                0.0,
                                Some(key.raw()),
                            );
                            if !down[home as usize] {
                                send_faulty(
                                    sim,
                                    &mut injector,
                                    ps.rank,
                                    home,
                                    costs.request_bytes,
                                    Ev::RequestArrive {
                                        key,
                                        home_rank: home,
                                        to_cache: ps.cache_idx,
                                        requester_rank: ps.rank,
                                    },
                                );
                            }
                            if injector.is_some() {
                                sim.post_after(
                                    retry_timeout,
                                    Ev::FetchTimeout {
                                        key,
                                        home_rank: home,
                                        to_cache: ps.cache_idx,
                                        requester_rank: ps.rank,
                                        attempt: 1,
                                    },
                                );
                            }
                        }
                        RequestOutcome::InFlight => {
                            ps.paused
                                .entry(key)
                                .or_default()
                                .push(WorkItem { node: NodeHandle::new(node), buckets });
                            ps.outstanding += 1;
                        }
                    }
                }
                if rerun {
                    sim.post(Ev::PartRun { part, pe });
                } else if ps.stack.is_empty()
                    && ps.outstanding == 0
                    && ps.in_flight == 0
                    && !ps.finished
                {
                    ps.finished = true;
                    parts_done += 1;
                }
            }
            Ev::RequestArrive { key, home_rank: home, to_cache, requester_rank } => {
                // Serve at the home rank: the authoritative copy lives in
                // every cache instance of that rank (with PerThread they
                // all graft the local trees), so its first cache serves.
                if down[home as usize] {
                    rec.dead_requests += 1;
                    return;
                }
                let home_cache = (home * caches_per_rank) as usize;
                if caches[home_cache].is_dead() {
                    rec.dead_requests += 1;
                    return;
                }
                if crash.is_some() {
                    // A re-sharded subtree may not be grafted at its new
                    // owner yet; drop and let the retry timer re-ask.
                    match caches[home_cache].find(key) {
                        Some(n) if !n.is_placeholder() => {}
                        _ => {
                            rec.dead_requests += 1;
                            return;
                        }
                    }
                }
                match caches[home_cache].serialize_fragment(key, fetch_depth) {
                    Ok(bytes) => {
                        let cost = costs.serialize_per_byte * bytes.len() as f64
                            + costs.insert_fixed / 2.0;
                        sim.spawn(
                            home,
                            Phase::FillServe,
                            cost,
                            Ev::FillServeDone { home_rank: home, to_cache, requester_rank, bytes },
                        );
                    }
                    Err(e) => {
                        // The home rank cannot serve this key. Drop the
                        // request; the requester's retry timer re-issues
                        // it rather than aborting the simulation.
                        fill_errors += 1;
                        sim.telemetry.count("des.fill_errors", 1);
                        eprintln!("des: fetch for {key} failed at home rank {home}: {e}");
                    }
                }
            }
            Ev::FillServeDone { home_rank, to_cache, requester_rank, bytes } => {
                if down[requester_rank as usize] {
                    rec.discarded_events += 1;
                    return;
                }
                let nbytes = bytes.len() as u64;
                send_faulty(
                    sim,
                    &mut injector,
                    home_rank,
                    requester_rank,
                    nbytes,
                    Ev::FillArrive { to_cache, bytes },
                );
            }
            Ev::FillArrive { to_cache, bytes } => {
                let rank = caches[to_cache as usize].rank;
                if down[rank as usize] || caches[to_cache as usize].is_dead() {
                    rec.discarded_events += 1;
                    return;
                }
                let cost = costs.insert_fixed + costs.insert_per_byte * bytes.len() as f64;
                match cache_model {
                    CacheModel::XWrite => sim.spawn_exclusive(
                        rank,
                        LOCK_BASE + rank as u64,
                        Phase::CacheInsertion,
                        cost,
                        Ev::InsertDone { to_cache, bytes },
                    ),
                    _ => sim.spawn(
                        rank,
                        Phase::CacheInsertion,
                        cost,
                        Ev::InsertDone { to_cache, bytes },
                    ),
                }
            }
            Ev::InsertDone { to_cache, bytes } => {
                let cache = &caches[to_cache as usize];
                if down[cache.rank as usize] || cache.is_dead() {
                    rec.discarded_events += 1;
                    return;
                }
                match cache.insert_fragment(&bytes) {
                    Ok(outcome) => {
                        // A fill may materialise several keys at once (a
                        // deep fragment covering earlier shallow waits);
                        // every (key, waiter) pair resumes independently.
                        for (key, waiter) in outcome.resumed {
                            let part = waiter as u32;
                            let rank = parts[part as usize].rank;
                            sim.spawn(
                                rank,
                                Phase::TraversalResumption,
                                costs.resume,
                                Ev::Resumed { part, pe: part_epoch[part as usize], key },
                            );
                        }
                    }
                    Err(CacheError::StaleEpoch { .. }) => {
                        // A fill serialised before the crash: reject it
                        // silently — the retry machinery re-fetches
                        // under the new epoch.
                        rec.stale_fills += 1;
                    }
                    Err(e) => {
                        // A bad fill degrades to a logged drop; the
                        // placeholder stays pending and the retry timer
                        // re-requests it.
                        fill_errors += 1;
                        sim.telemetry.count("des.fill_errors", 1);
                        eprintln!("des: fill rejected by cache {to_cache}: {e}");
                    }
                }
            }
            Ev::Resumed { part, pe, key } => {
                if pe != part_epoch[part as usize] {
                    rec.discarded_events += 1;
                    return;
                }
                let ps = &mut parts[part as usize];
                let cache = &caches[ps.cache_idx as usize];
                if let Some(items) = ps.paused.remove(&key) {
                    let Some(node) = cache.find(key) else {
                        // Resumption implies the key was just spliced;
                        // losing it again is an engine bug.
                        debug_assert!(false, "resumed key {key} missing from cache");
                        ps.paused.insert(key, items);
                        return;
                    };
                    for item in items {
                        ps.outstanding -= 1;
                        ps.stack
                            .push(WorkItem { node: NodeHandle::new(node), buckets: item.buckets });
                    }
                    ps.resumed_once = true;
                    sim.post(Ev::PartRun { part, pe });
                }
            }
            Ev::FetchTimeout { key, home_rank, to_cache, requester_rank, attempt } => {
                // Re-request only if the fill never landed (the fetch or
                // the fill was dropped, or both are still delayed — a
                // duplicate fill is idempotent, so over-asking is safe).
                if down[requester_rank as usize] || caches[to_cache as usize].is_dead() {
                    return;
                }
                let still_pending =
                    caches[to_cache as usize].find(key).is_some_and(|n| n.is_placeholder());
                if !still_pending || injector.is_none() {
                    return;
                }
                let home = if crash.is_some() {
                    owner_of(&subtree_index, &owner, bits, key, home_rank)
                } else {
                    home_rank
                };
                if down[home as usize] {
                    // The owner is down (crashed, not yet restarted or
                    // re-sharded): keep the timer alive and try again.
                    sim.post_after(
                        retry_timeout,
                        Ev::FetchTimeout {
                            key,
                            home_rank: home,
                            to_cache,
                            requester_rank,
                            attempt: attempt + 1,
                        },
                    );
                    return;
                }
                fetch_retries += 1;
                sim.telemetry.count("des.fetch_retries", 1);
                send_faulty(
                    sim,
                    &mut injector,
                    requester_rank,
                    home,
                    costs.request_bytes,
                    Ev::RequestArrive { key, home_rank: home, to_cache, requester_rank },
                );
                sim.post_after(
                    retry_timeout,
                    Ev::FetchTimeout {
                        key,
                        home_rank: home,
                        to_cache,
                        requester_rank,
                        attempt: attempt + 1,
                    },
                );
            }
        });

        assert_eq!(parts_done, parts.len(), "all partitions must finish");
        #[cfg(debug_assertions)]
        audit_all(&caches, "after traversal");

        // ---- Canonical visitor application (dry traversals) ----
        // The simulation established timing, communication, and a fully
        // materialised cache per partition; the physics is applied once,
        // in depth-first order, so the result is bit-identical with or
        // without crashes and message faults.
        if dry {
            for ps in &mut parts {
                let cache = &caches[ps.cache_idx as usize];
                let _ = traverse_local(cache, visitor, kind, &mut ps.buckets);
            }
        }

        if rec.count > 0 {
            let c = crash.expect("recovery stats only accumulate with a crash");
            self.telemetry.span_at(
                Track { rank: c.rank, worker: 0 },
                "recovery",
                rec.detected_s * 1e6,
                (rec.completed_s - rec.detected_s).max(0.0) * 1e6,
                None,
            );
        }

        // ---- Write-back and reporting ----
        for ps in &parts {
            for (indices, bucket) in ps.bucket_indices.iter().zip(&ps.buckets) {
                for (&mi, p) in indices.iter().zip(&bucket.particles) {
                    master[mi as usize] = *p;
                }
            }
        }
        let states: Vec<(NodeKey, V::State)> = parts
            .iter()
            .flat_map(|ps| ps.buckets.iter().map(|b| (b.leaf_key, b.state.clone())))
            .collect();
        let mut cache_stats = CacheStatsSnapshot::default();
        for c in &caches {
            cache_stats.merge(&c.stats.snapshot());
        }
        let partition_costs: Vec<f64> = parts.iter().map(|p| p.cost).collect();
        let mut counts_total = WorkCounts::default();
        for ps in &parts {
            counts_total += ps.counts;
        }
        let fault_stats = injector.map(|f| f.stats).unwrap_or_default();

        if self.flight.is_enabled() {
            // Stage-1 row: the iteration is over. Stamped at the
            // (virtual) makespan from deterministic sim state.
            self.flight.sample_at(
                sim.makespan() * 1e6,
                &[
                    1.0,
                    sim.ledger.total_busy(),
                    sim.utilization(),
                    sim.comm.messages as f64,
                    sim.comm.bytes as f64,
                    fetch_retries as f64,
                    round.as_ref().map_or(0, |r| r.n_migrated) as f64,
                ],
            );
        }

        // Assemble the registry first; the report's named fields read
        // back from it, so the two can never disagree.
        let mut metrics = MetricsRegistry::new();
        metrics.absorb("comm", &sim.comm);
        metrics.absorb("cache", &cache_stats);
        metrics.absorb("counts", &counts_total);
        metrics.absorb("faults", &fault_stats);
        // The same counters again under the stable `fault.*` prefix,
        // alongside the engine-level fault handling totals.
        metrics.absorb("fault", &fault_stats);
        metrics.set_u64("fault.fetch_retries", fetch_retries);
        metrics.set_u64("fault.fill_errors", fill_errors);
        metrics.absorb("phase_busy_s", &sim.ledger);
        metrics.set_f64("time.makespan_s", sim.makespan());
        metrics.set_f64("time.traversal_start_s", traversal_start);
        metrics.set_f64("time.traversal_s", sim.makespan() - traversal_start);
        metrics.set_f64("util.workers", sim.utilization());
        metrics.set_u64("des.fetch_retries", fetch_retries);
        metrics.set_u64("des.fill_errors", fill_errors);
        metrics.set_u64("des.n_shared_buckets", n_shared_buckets as u64);
        metrics.set_u64("des.n_partitions", partition_costs.len() as u64);
        if let Some(m) = maintained.as_deref().and_then(|slot| slot.as_ref()) {
            metrics.absorb("tree.update", m.totals());
            metrics
                .set_u64("tree.update.round_migrated", round.as_ref().map_or(0, |r| r.n_migrated));
            metrics.set_u64("tree.update.round_batches", round.as_ref().map_or(0, |r| r.n_batches));
        }
        if let Some(c) = crash {
            metrics.absorb("recovery", &rec);
            metrics.set_u64("fault.crash.count", rec.count);
            metrics.set_u64("fault.crash.rank", c.rank as u64);
            metrics.set_f64("fault.crash.time_s", rec.crash_time_s);
            metrics.set_u64("fault.crash.phase_idx", rec.phase_idx);
            metrics.set_u64("fault.crash.restarted", rec.restarted);
        }
        let report = IterationReport {
            makespan: metrics.get_f64("time.makespan_s"),
            traversal_start: metrics.get_f64("time.traversal_start_s"),
            phase_busy: sim.ledger.busy_per_phase(),
            comm: sim.comm,
            counts: counts_total,
            cache: cache_stats,
            utilization: metrics.get_f64("util.workers"),
            ledger: sim.ledger.clone(),
            n_shared_buckets,
            partition_costs,
            particles: master,
            faults: fault_stats,
            fetch_retries: metrics.get_u64("des.fetch_retries"),
            fill_errors: metrics.get_u64("des.fill_errors"),
            recovery: rec,
            metrics,
        };
        (report, states)
    }
}

/// The measured-load SFC re-balancing the paper adopts from ChaNGa:
/// partitions keep their space-filling-curve order but rank boundaries
/// move so each rank receives (approximately) equal measured load.
/// "Weighted sections of this curve can be used to remap processor
/// assignments to achieve better load balance" (§V).
pub fn sfc_balanced_assignment(costs: &[f64], ranks: usize) -> Vec<u32> {
    let ranks = ranks.max(1);
    let total: f64 = costs.iter().sum();
    if total <= 0.0 {
        return (0..costs.len()).map(|i| (i * ranks / costs.len().max(1)) as u32).collect();
    }
    let per_rank = total / ranks as f64;
    let mut out = Vec::with_capacity(costs.len());
    let mut acc = 0.0;
    let mut rank = 0u32;
    for &c in costs {
        // Close the chunk when adding this partition would overshoot the
        // target more than leaving it out undershoots.
        if rank as usize + 1 < ranks && acc + c / 2.0 > per_rank * (rank as f64 + 1.0) {
            rank += 1;
        }
        acc += c;
        out.push(rank);
    }
    out
}
