//! Property: `find` (hash lookup + digit walk from the nearest hashed
//! ancestor) locates every node of a grafted tree, and wherever the
//! process-level hash table has an entry, `find` and `lookup` agree on
//! the exact node. Randomised over particle counts and distributions.

use paratreet_cache::{CacheNode, CacheTree, SubtreeSummary};
use paratreet_geometry::NodeKey;
use paratreet_particles::{gen, ParticleVec};
use paratreet_tree::{CountData, TreeBuilder, TreeType};
use proptest::prelude::*;

/// A single-rank cache with all eight octants grafted locally.
fn grafted_cache(n: usize, seed: u64, clusters: usize) -> CacheTree<CountData> {
    let mut ps = if clusters == 0 {
        gen::uniform_cube(n.max(16), seed, 1.0, 1.0)
    } else {
        gen::clustered(n.max(16), clusters, seed, 1.0, 1.0)
    };
    let universe = ps.bounding_box().padded(1e-9).bounding_cube();
    ps.assign_keys(&universe);
    ps.sort_by_sfc_key();

    let cache: CacheTree<CountData> = CacheTree::new(0, 3);
    let mut summaries = Vec::new();
    let mut trees = Vec::new();
    for oct in 0..8 {
        let part: Vec<_> =
            ps.iter().copied().filter(|p| universe.octant_of(p.pos) == oct).collect();
        if part.is_empty() {
            continue;
        }
        let builder = TreeBuilder {
            root_key: NodeKey::root().child(oct, 3),
            root_depth: 1,
            parallel: false,
            ..TreeBuilder::new(TreeType::Octree)
        };
        let tree = builder.bucket_size(4).build::<CountData>(part, universe.octant(oct));
        summaries.push(SubtreeSummary {
            key: tree.root().key,
            bbox: tree.root().bbox,
            n_particles: tree.root().n_particles,
            data: tree.root().data,
            home_rank: 0,
        });
        trees.push(tree);
    }
    cache.init(&summaries, trees);
    cache
}

/// DFS of the published tree: every reachable (key, node) pair.
fn all_nodes(cache: &CacheTree<CountData>) -> Vec<(NodeKey, &CacheNode<CountData>)> {
    let mut out = Vec::new();
    let mut stack = vec![cache.root().expect("initialised")];
    while let Some(n) = stack.pop() {
        out.push((n.key, n));
        for c in n.children_iter(8) {
            stack.push(c);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn find_locates_every_grafted_node(n in 32usize..600, seed in 0u64..1000, clusters in 0usize..5) {
        let cache = grafted_cache(n, seed, clusters);
        for (key, node) in all_nodes(&cache) {
            let found = cache.find(key);
            prop_assert!(found.is_some(), "find({key}) missed a reachable node");
            prop_assert!(
                std::ptr::eq(found.unwrap(), node),
                "find({key}) returned a different node than the tree walk"
            );
            // Wherever the hash table answers, it answers identically.
            if let Some(hashed) = cache.lookup(key) {
                prop_assert!(
                    std::ptr::eq(hashed, found.unwrap()),
                    "lookup({key}) and find({key}) disagree"
                );
            }
        }
        prop_assert!(cache.audit().is_ok());
    }

    #[test]
    fn find_rejects_keys_outside_the_tree(seed in 0u64..1000) {
        let cache = grafted_cache(200, seed, 2);
        // A key far deeper than any built tree can reach.
        let mut deep = NodeKey::root();
        for digit in [0usize, 7, 3, 5, 1, 6, 2, 4, 0, 7, 3, 5] {
            deep = deep.child(digit, 3);
        }
        prop_assert!(cache.find(deep).is_none());
        prop_assert!(cache.lookup(deep).is_none());
    }
}
