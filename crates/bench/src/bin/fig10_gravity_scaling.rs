//! Figure 10: ParaTreeT vs BasicTrav vs ChaNGa, Barnes-Hut gravity.
//!
//! "Comparison of ChaNGa's and ParaTreeT's average iteration times for
//! monopole Barnes-Hut gravity with SFC decompositions and octrees...
//! ParaTreeT was also modified to use the standard DFS traversal style,
//! here plotted as 'BasicTrav'. This was executed on Summit's POWER9
//! nodes for 80 million particles [uniform distribution]."
//!
//! Paper shape: ParaTreeT 2–3× faster than ChaNGa from 1 to 256 nodes;
//! BasicTrav sits between them (cache-efficiency gap); strong scaling
//! flattens at the largest node counts.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin fig10_gravity_scaling -- \
//!     --particles 100000 --max-nodes 64
//! ```

use paratreet_apps::gravity::GravityVisitor;
use paratreet_baselines::changa::ChangaModel;
use paratreet_bench::{fmt_seconds, harness_telemetry, write_telemetry_outputs, Args};
use paratreet_core::{CacheModel, Configuration, DistributedEngine, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 60_000);
    let seed = args.get_u64("seed", 10);
    let theta = args.get_f64("theta", 0.7);
    let max_nodes = args.get_usize("max-nodes", 64);

    let particles = gen::uniform_cube(n, seed, 1.0, 1.0);
    let visitor = GravityVisitor { theta, g: 1.0 };
    let changa = ChangaModel::default();

    println!("Figure 10: average iteration time, Barnes-Hut gravity, uniform {n} particles");
    println!("(Summit machine model, 84 workers/node, SFC decomposition + octree)\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>8}",
        "nodes", "ParaTreeT", "BasicTrav", "ChaNGa", "speedup"
    );
    println!("{}", "-".repeat(56));

    let telemetry = harness_telemetry(&args, true);
    let mut last_metrics = None;
    let mut nodes = 1;
    while nodes <= max_nodes {
        let config = Configuration { bucket_size: 16, ..Default::default() };
        let machine = MachineSpec::summit(nodes);

        let _ = telemetry.drain(); // keep only the final ParaTreeT run
        let ptt = DistributedEngine::new(
            machine.clone(),
            config.clone(),
            CacheModel::WaitFree,
            TraversalKind::TopDown,
            &visitor,
        )
        .with_telemetry(telemetry.clone())
        .run_iteration(particles.clone());

        let basic = DistributedEngine::new(
            machine.clone(),
            config.clone(),
            CacheModel::WaitFree,
            TraversalKind::BasicDfs,
            &visitor,
        )
        .run_iteration(particles.clone());

        let ch = changa.run_gravity_iteration(machine, config, theta, particles.clone());

        println!(
            "{:>7} {:>12} {:>12} {:>12} {:>7.2}x",
            nodes,
            fmt_seconds(ptt.makespan),
            fmt_seconds(basic.makespan),
            fmt_seconds(ch.makespan),
            ch.makespan / ptt.makespan
        );
        last_metrics = Some(ptt.metrics);
        nodes *= 2;
    }
    write_telemetry_outputs(&args, &telemetry, last_metrics.as_ref());
    println!();
    println!("paper shape: ParaTreeT 2-3x faster than ChaNGa across the sweep,");
    println!("BasicTrav between them; strong scaling flattens at the largest sizes.");
}
