//! Heavy-traffic query serving against a live maintained tree.
//!
//! Seeds a `TreeMaintainer` forest, spawns the single writer thread
//! (drifting particles and publishing a new snapshot every advance),
//! and drives ≥1000 simulated clients issuing a mixed kNN / ball /
//! range / raycast stream — ≥1M queries total by default — through the
//! `QueryService` reader pool. Reports sustained throughput plus
//! end-to-end p50/p99/p999 latency per query class and writes
//! `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin bench_serve -- \
//!     --particles 20000 --clients 1000 --queries 1000 --threads 8
//! ```

use paratreet_bench::{fmt_seconds, print_header, print_row, Args};
use paratreet_core::{Configuration, TreeMaintainer};
use paratreet_particles::gen;
use paratreet_particles::Particle;
use paratreet_serve::{
    run_load, AdmissionPolicy, DegradeConfig, LoadConfig, QueryClass, QueryService, ServeConfig,
    WriterConfig,
};
use paratreet_telemetry::{export, FlightRecorder, Json, MetricsRegistry, Telemetry};
use paratreet_tree::CountData;
use std::time::Duration;

/// Deterministic small drift: id-hashed direction, fixed magnitude —
/// enough churn that the maintainer patches buckets every advance, not
/// enough to blow particles out of the padded universe.
fn drift(particles: &mut [Particle], iteration: u64) {
    for p in particles.iter_mut() {
        let h = p.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ iteration;
        p.pos.x += ((h & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
        p.pos.y += ((h >> 8 & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
        p.pos.z += ((h >> 16 & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
    }
}

/// The per-class latency summary pulled back out of the service
/// metrics, nanoseconds.
fn class_json(metrics: &MetricsRegistry, class: QueryClass, generated: u64) -> Json {
    let key = |stat: &str| format!("serve.latency.{}.{stat}", class.label());
    let mut o = Json::obj();
    o.push("generated", Json::U64(generated));
    o.push("completed", Json::U64(metrics.get_u64(&key("count"))));
    o.push("p50_ns", Json::U64(metrics.get_u64(&key("p50"))));
    o.push("p99_ns", Json::U64(metrics.get_u64(&key("p99"))));
    o.push("p999_ns", Json::U64(metrics.get_u64(&key("p999"))));
    o.push("mean_ns", Json::U64(metrics.get_u64(&key("mean"))));
    o.push("max_ns", Json::U64(metrics.get_u64(&key("max"))));
    // Component breakdown: where the end-to-end time went.
    o.push("queue_wait_mean_ns", Json::U64(metrics.get_u64(&key("queue_wait.mean"))));
    o.push("pin_wait_mean_ns", Json::U64(metrics.get_u64(&key("pin_wait.mean"))));
    o.push("exec_mean_ns", Json::U64(metrics.get_u64(&key("exec.mean"))));
    // The p999 exemplar: the concrete request id + span a profiler can
    // resolve in the matching `--trace-out` trace.
    o.push("p999_exemplar_request", Json::U64(metrics.get_u64(&key("p999_exemplar.request"))));
    o.push("p999_exemplar_span", Json::U64(metrics.get_u64(&key("p999_exemplar.span"))));
    o
}

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 20_000);
    let clients = args.get_usize("clients", 1000);
    let queries = args.get_usize("queries", 1000);
    let threads = args.get_usize("threads", 8);
    let batch = args.get_usize("batch", 64);
    let k = args.get_usize("k", 8);
    let seed = args.get_u64("seed", 42);
    let workers = args.get_usize(
        "workers",
        (std::thread::available_parallelism().map(|p| p.get()).unwrap_or(8))
            .saturating_sub(2)
            .max(2),
    );
    let queue = args.get_usize("queue", 512);
    let ring = args.get_usize("ring", 8);
    let shed = args.get_bool("shed", false);
    // `--admission defer|shed|cost` supersedes the legacy `--shed` flag.
    let admission_label =
        args.get_str("admission", if shed { "shed" } else { "defer" }).to_lowercase();
    let admission = match admission_label.as_str() {
        "shed" => AdmissionPolicy::Shed,
        "cost" => AdmissionPolicy::CostAware,
        _ => AdmissionPolicy::Defer,
    };
    // 0 = no per-request deadline / no backlog bound.
    let deadline_ms = args.get_u64("deadline-ms", 0);
    let max_backlog_ms = args.get_u64("max-backlog-ms", 0);
    let retries = args.get_u64("retries", 3) as u32;
    let degrade_on = args.get_bool("degrade", false);
    // Inter-batch pacing per driver thread, µs (0 = blast).
    let pace_us = args.get_u64("pace-us", 0);
    // 0 = keep advancing until the load finishes (shutdown stops it).
    let iterations = args.get_u64("iterations", 0);
    let pace_ms = args.get_u64("writer-pace-ms", 0);
    let out = args.get_str("out", "BENCH_serve.json");

    let mut config = Configuration {
        bucket_size: 16,
        n_subtrees: 16,
        n_partitions: 32,
        seed,
        ..Default::default()
    };
    config.incremental.enabled = true;

    println!(
        "serve: {n} particles, {clients} clients x {queries} queries \
         ({} total), {workers} workers, {threads} drivers, batch {batch}\n",
        clients * queries
    );

    let particles = gen::clustered(n, 4, seed, 1.0, 1.0);
    let (maintainer, seed_trees) = TreeMaintainer::<CountData>::seed(&config, particles, true);
    let universe = maintainer.universe();

    // Observability taps, attached before the service spawns so the
    // workers trace requests while they run: `--trace-out` arms span
    // recording (and with it the p999 exemplars), `--timeseries-out`
    // arms the flight-recorder sampler thread.
    let trace_out = args.get_opt("trace-out").map(str::to_string);
    let series_out = args.get_opt("timeseries-out").map(str::to_string);
    let telemetry = if trace_out.is_some() {
        Telemetry::wall(workers + threads + 4)
    } else {
        Telemetry::disabled()
    };
    let flight = if series_out.is_some() {
        FlightRecorder::wall(paratreet_serve::service::FLIGHT_SERIES, 65_536)
    } else {
        FlightRecorder::disabled()
    };

    let mut service: QueryService<CountData> = QueryService::with_telemetry(
        ServeConfig {
            workers,
            queue_capacity: queue,
            ring_capacity: ring,
            admission,
            max_backlog: (max_backlog_ms > 0).then(|| Duration::from_millis(max_backlog_ms)),
            degrade: if degrade_on { DegradeConfig::default() } else { DegradeConfig::disabled() },
            ..ServeConfig::default()
        },
        telemetry.clone(),
    );
    if flight.is_enabled() {
        let interval = Duration::from_millis(args.get_u64("sample-ms", 5));
        service.spawn_flight_sampler(flight.clone(), interval);
    }
    service.spawn_writer(
        maintainer,
        seed_trees,
        Box::new(drift),
        WriterConfig {
            iterations: if iterations == 0 { u64::MAX } else { iterations },
            pace: (pace_ms > 0).then(|| Duration::from_millis(pace_ms)),
        },
    );

    let load = LoadConfig {
        clients,
        queries_per_client: queries,
        threads,
        batch,
        k,
        seed,
        deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        max_retries: retries,
        pace: (pace_us > 0).then(|| Duration::from_micros(pace_us)),
        ..LoadConfig::default()
    };
    let report = run_load(&service, universe, &load);
    let health = service.health();
    let shutdown = service.shutdown();
    let last_epoch = shutdown.last_epoch.unwrap_or(0);
    let metrics = service.metrics();

    print_header(&["class", "queries", "p50", "p99", "p999", "mean"], 12);
    for class in QueryClass::ALL {
        let key = |stat: &str| format!("serve.latency.{}.{stat}", class.label());
        print_row(
            &[
                class.label().to_string(),
                metrics.get_u64(&key("count")).to_string(),
                fmt_seconds(metrics.get_u64(&key("p50")) as f64 * 1e-9),
                fmt_seconds(metrics.get_u64(&key("p99")) as f64 * 1e-9),
                fmt_seconds(metrics.get_u64(&key("p999")) as f64 * 1e-9),
                fmt_seconds(metrics.get_u64(&key("mean")) as f64 * 1e-9),
            ],
            12,
        );
    }
    let issued = (clients * queries) as u64;
    let in_deadline = metrics.get_u64("serve.queries.completed_in_deadline");
    println!(
        "\n{} completed / {} submitted / {} shed in {} — {:.0} queries/s",
        report.completed,
        report.submitted,
        report.shed,
        fmt_seconds(report.elapsed_s),
        report.throughput
    );
    if report.deadline_exceeded + report.retries + report.degraded + report.partial + report.failed
        > 0
    {
        println!(
            "overload: {} expired in queue, {} submit retries ({} abandoned), \
             {} degraded, {} partial, {} failed",
            report.deadline_exceeded,
            report.retries,
            report.abandoned,
            report.degraded,
            report.partial,
            report.failed,
        );
    }
    if deadline_ms > 0 {
        println!(
            "deadline {}ms [{}]: {}/{} in deadline — completion fraction {:.4}",
            deadline_ms,
            admission_label,
            in_deadline,
            issued,
            in_deadline as f64 / issued.max(1) as f64,
        );
    }
    if health.worker_panics + health.worker_respawns > 0 || health.stale_serving {
        println!(
            "health: writer {}, {}/{} workers alive, {} panics, {} respawns{}",
            health.writer.label(),
            health.workers_alive,
            health.workers_configured,
            health.worker_panics,
            health.worker_respawns,
            if health.stale_serving { " — STALE-SERVING" } else { "" },
        );
    }
    println!(
        "snapshots: epochs {}..{} answered queries; writer published {} \
         (reclaimed {}, pin retries {}, writer stalls {}), last epoch {last_epoch}",
        report.min_epoch,
        report.max_epoch,
        metrics.get_u64("serve.snapshots.published"),
        metrics.get_u64("serve.snapshots.reclaimed"),
        metrics.get_u64("serve.snapshots.pin_retries"),
        metrics.get_u64("serve.snapshots.writer_stalls"),
    );

    let mut doc = Json::obj();
    doc.push("bench", Json::Str("serve".to_string()));
    doc.push("particles", Json::U64(n as u64));
    doc.push("clients", Json::U64(clients as u64));
    doc.push("queries_per_client", Json::U64(queries as u64));
    doc.push("workers", Json::U64(workers as u64));
    doc.push("driver_threads", Json::U64(threads as u64));
    doc.push("batch", Json::U64(batch as u64));
    doc.push("queue_capacity", Json::U64(queue as u64));
    doc.push("ring_capacity", Json::U64(ring as u64));
    doc.push("admission", Json::Str(admission_label.clone()));
    doc.push("deadline_ms", Json::U64(deadline_ms));
    doc.push("seed", Json::U64(seed));
    let mut totals = Json::obj();
    totals.push("submitted", Json::U64(report.submitted));
    totals.push("completed", Json::U64(report.completed));
    totals.push("shed", Json::U64(report.shed));
    totals.push("retries", Json::U64(report.retries));
    totals.push("abandoned", Json::U64(report.abandoned));
    totals.push("deadline_exceeded", Json::U64(report.deadline_exceeded));
    totals.push("failed", Json::U64(report.failed));
    totals.push("degraded", Json::U64(report.degraded));
    totals.push("partial", Json::U64(report.partial));
    totals.push("completed_in_deadline", Json::U64(in_deadline));
    totals.push("in_deadline_fraction", Json::F64(in_deadline as f64 / issued.max(1) as f64));
    totals.push("elapsed_s", Json::F64(report.elapsed_s));
    totals.push("throughput_qps", Json::F64(report.throughput));
    totals.push("checksum", Json::U64(report.checksum));
    doc.push("totals", totals);
    let mut health_json = Json::obj();
    health_json.push("writer", Json::Str(health.writer.label().to_string()));
    health_json.push("workers_alive", Json::U64(health.workers_alive as u64));
    health_json.push("worker_panics", Json::U64(health.worker_panics));
    health_json.push("worker_respawns", Json::U64(health.worker_respawns));
    health_json.push("stale_serving", Json::U64(health.stale_serving as u64));
    doc.push("health", health_json);
    let mut classes = Json::obj();
    for class in QueryClass::ALL {
        classes.push(class.label(), class_json(&metrics, class, report.per_class[class.index()]));
    }
    doc.push("latency", classes);
    let mut snaps = Json::obj();
    snaps.push("min_epoch_answered", Json::U64(report.min_epoch));
    snaps.push("max_epoch_answered", Json::U64(report.max_epoch));
    snaps.push("last_epoch", Json::U64(last_epoch));
    snaps.push("published", Json::U64(metrics.get_u64("serve.snapshots.published")));
    snaps.push("reclaimed", Json::U64(metrics.get_u64("serve.snapshots.reclaimed")));
    snaps.push("pin_retries", Json::U64(metrics.get_u64("serve.snapshots.pin_retries")));
    snaps.push("writer_stalls", Json::U64(metrics.get_u64("serve.snapshots.writer_stalls")));
    doc.push("snapshots", snaps);
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH json");
    println!("wrote {out}");

    if let Some(path) = args.get_opt("metrics-out") {
        export::write_metrics(path, &metrics).expect("write metrics");
        eprintln!("wrote metrics to {path}");
    }
    if let Some(path) = &trace_out {
        export::write_chrome_trace(path, &telemetry.drain()).expect("write trace");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &series_out {
        export::write_timeseries(path, &flight.snapshot()).expect("write timeseries");
        eprintln!("wrote flight-recorder series to {path}");
    }
}
