//! Snapshot IO: a compact little-endian binary format plus CSV export.
//!
//! The reference ParaTreeT reads Tipsy/NChilada snapshots; those formats
//! carry cosmology metadata we do not need, so this crate defines a
//! minimal self-describing binary container (magic, version, count, then
//! fixed-width records) that round-trips every [`Particle`] field exactly.

use crate::Particle;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use paratreet_geometry::Vec3;
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic: "PTRT".
const MAGIC: u32 = 0x5054_5254;
/// Current format version.
const VERSION: u32 = 1;
/// Bytes per particle record (u64 id + 17 f64 fields + u64 key).
const RECORD_BYTES: usize = 8 + 17 * 8 + 8;

fn put_vec3(buf: &mut BytesMut, v: Vec3) {
    buf.put_f64_le(v.x);
    buf.put_f64_le(v.y);
    buf.put_f64_le(v.z);
}

fn get_vec3(buf: &mut Bytes) -> Vec3 {
    Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le())
}

/// Serialises a particle slice to the binary snapshot format.
pub fn to_bytes(particles: &[Particle]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + particles.len() * RECORD_BYTES);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(particles.len() as u64);
    for p in particles {
        buf.put_u64_le(p.id);
        buf.put_f64_le(p.mass);
        put_vec3(&mut buf, p.pos);
        put_vec3(&mut buf, p.vel);
        put_vec3(&mut buf, p.acc);
        buf.put_f64_le(p.potential);
        buf.put_f64_le(p.softening);
        buf.put_f64_le(p.radius);
        buf.put_f64_le(p.smoothing);
        buf.put_f64_le(p.density);
        buf.put_f64_le(p.pressure);
        buf.put_f64_le(p.internal_energy);
        buf.put_u64_le(p.key);
    }
    buf.freeze()
}

/// Parses a binary snapshot produced by [`to_bytes`].
pub fn from_bytes(mut data: Bytes) -> io::Result<Vec<Particle>> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if data.remaining() < 16 {
        return Err(err("snapshot truncated before header"));
    }
    if data.get_u32_le() != MAGIC {
        return Err(err("bad snapshot magic"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(err(&format!("unsupported snapshot version {version}")));
    }
    let n = data.get_u64_le() as usize;
    if data.remaining() != n * RECORD_BYTES {
        return Err(err("snapshot length does not match particle count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Particle {
            id: data.get_u64_le(),
            mass: data.get_f64_le(),
            pos: get_vec3(&mut data),
            vel: get_vec3(&mut data),
            acc: get_vec3(&mut data),
            potential: data.get_f64_le(),
            softening: data.get_f64_le(),
            radius: data.get_f64_le(),
            smoothing: data.get_f64_le(),
            density: data.get_f64_le(),
            pressure: data.get_f64_le(),
            internal_energy: data.get_f64_le(),
            key: data.get_u64_le(),
        });
    }
    Ok(out)
}

/// Writes a binary snapshot to `path`.
pub fn write_snapshot(path: impl AsRef<Path>, particles: &[Particle]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&to_bytes(particles))
}

/// Reads a binary snapshot from `path`.
pub fn read_snapshot(path: impl AsRef<Path>) -> io::Result<Vec<Particle>> {
    let mut f = std::fs::File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    from_bytes(Bytes::from(data))
}

/// Appends the fixed-width wire encoding of one particle to `out`.
/// Used by the software cache to ship leaf buckets between ranks.
pub fn put_particle(out: &mut Vec<u8>, p: &Particle) {
    let mut buf = BytesMut::with_capacity(RECORD_BYTES);
    buf.put_u64_le(p.id);
    buf.put_f64_le(p.mass);
    put_vec3(&mut buf, p.pos);
    put_vec3(&mut buf, p.vel);
    put_vec3(&mut buf, p.acc);
    buf.put_f64_le(p.potential);
    buf.put_f64_le(p.softening);
    buf.put_f64_le(p.radius);
    buf.put_f64_le(p.smoothing);
    buf.put_f64_le(p.density);
    buf.put_f64_le(p.pressure);
    buf.put_f64_le(p.internal_energy);
    buf.put_u64_le(p.key);
    out.extend_from_slice(&buf);
}

/// Reads one particle from `input` at `*off`, advancing the offset.
/// Returns `None` if fewer than a full record remains.
pub fn get_particle(input: &[u8], off: &mut usize) -> Option<Particle> {
    if input.len() < *off + RECORD_BYTES {
        return None;
    }
    let mut data = Bytes::copy_from_slice(&input[*off..*off + RECORD_BYTES]);
    *off += RECORD_BYTES;
    Some(Particle {
        id: data.get_u64_le(),
        mass: data.get_f64_le(),
        pos: get_vec3(&mut data),
        vel: get_vec3(&mut data),
        acc: get_vec3(&mut data),
        potential: data.get_f64_le(),
        softening: data.get_f64_le(),
        radius: data.get_f64_le(),
        smoothing: data.get_f64_le(),
        density: data.get_f64_le(),
        pressure: data.get_f64_le(),
        internal_energy: data.get_f64_le(),
        key: data.get_u64_le(),
    })
}

/// Bytes one particle occupies on the wire.
pub const PARTICLE_WIRE_BYTES: usize = RECORD_BYTES;

/// Writes positions, velocities, and accelerations as CSV, for plotting.
pub fn write_csv(w: &mut impl Write, particles: &[Particle]) -> io::Result<()> {
    writeln!(w, "id,mass,x,y,z,vx,vy,vz,ax,ay,az,density")?;
    for p in particles {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            p.id,
            p.mass,
            p.pos.x,
            p.pos.y,
            p.pos.z,
            p.vel.x,
            p.vel.y,
            p.vel.z,
            p.acc.x,
            p.acc.y,
            p.acc.z,
            p.density
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_preserves_every_field() {
        let mut ps = gen::plummer(64, 5, 1.0, 2.0);
        ps[3].acc = Vec3::splat(1.5);
        ps[3].potential = -0.25;
        ps[3].radius = 0.01;
        ps[3].density = 9.0;
        ps[3].key = 42;
        let back = from_bytes(to_bytes(&ps)).unwrap();
        assert_eq!(ps, back);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let back = from_bytes(to_bytes(&[])).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut data = to_bytes(&gen::uniform_cube(4, 1, 1.0, 1.0)).to_vec();
        data[0] ^= 0xff;
        assert!(from_bytes(Bytes::from(data)).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        let data = to_bytes(&gen::uniform_cube(4, 1, 1.0, 1.0));
        let cut = data.slice(0..data.len() - 8);
        assert!(from_bytes(cut).is_err());
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(from_bytes(Bytes::from_static(&[1, 2, 3])).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("paratreet_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.ptrt");
        let ps = gen::uniform_cube(32, 9, 1.0, 1.0);
        write_snapshot(&path, &ps).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), ps);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn single_particle_wire_roundtrip() {
        let mut p = gen::plummer(1, 3, 1.0, 1.0)[0];
        p.density = 4.5;
        p.key = 77;
        let mut buf = vec![0xAA]; // leading garbage the offset skips
        let mut off = 1;
        put_particle(&mut buf, &p);
        assert_eq!(buf.len(), 1 + PARTICLE_WIRE_BYTES);
        assert_eq!(get_particle(&buf, &mut off), Some(p));
        assert_eq!(off, buf.len());
        assert_eq!(get_particle(&buf, &mut off), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let ps = gen::uniform_cube(3, 1, 1.0, 1.0);
        let mut out = Vec::new();
        write_csv(&mut out, &ps).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.starts_with("id,mass,"));
    }
}
