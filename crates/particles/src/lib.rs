//! Particle types, deterministic workload generators, and snapshot IO.
//!
//! The paper evaluates ParaTreeT on cosmology datasets (uniform and
//! clustered volumes of up to 80 M particles) and a planetesimal disk of
//! 10–50 M bodies. Those initial-condition files are not available, so
//! this crate provides synthetic generators with the same *distribution
//! shapes* — which is what drives tree depth, imbalance, and decomposition
//! behaviour:
//!
//! * [`gen::uniform_cube`] — the "volume of the present-day Universe"
//!   uniform distribution of Fig. 10,
//! * [`gen::plummer`] — a single collapsed halo,
//! * [`gen::clustered`] — a multi-Plummer clustered volume (Fig. 3),
//! * [`gen::keplerian_disk`] — the mostly-2D protoplanetary disk with an
//!   embedded giant planet (Figs. 12–13),
//! * [`gen::perturbed_lattice`] — a cosmological-volume gas proxy for the
//!   SPH experiments (Fig. 11).
//!
//! All generators are seeded and deterministic.

pub mod gen;
pub mod io;
pub mod particle;

pub use particle::{Particle, ParticleVec};
