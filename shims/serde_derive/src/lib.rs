//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain-old-data
//! structs but never actually serialises through serde (wire formats are
//! hand-rolled in `particles::io` and `cache::wire`). The derives here
//! therefore expand to nothing, which keeps `#[derive(Serialize,
//! Deserialize)]` attributes compiling without a network dependency.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
