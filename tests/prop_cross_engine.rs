//! Cross-engine property: for any workload, rank count, and cache
//! model, the distributed machine-model engine computes the same
//! physics (exact particle forces) as the shared-memory engine, and its
//! simulation is deterministic.

use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_core::{CacheModel, Configuration, DistributedEngine, Framework, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engines_agree_for_any_configuration(
        n in 50usize..400,
        seed in 0u64..100,
        ranks in 1usize..4,
        workers in 1usize..4,
        model_idx in 0usize..3,
        clustered in any::<bool>(),
    ) {
        let model = [CacheModel::WaitFree, CacheModel::XWrite, CacheModel::PerThread][model_idx];
        let particles = if clustered {
            gen::clustered(n, 3, seed, 1.0, 1.0)
        } else {
            gen::uniform_cube(n, seed, 1.0, 1.0)
        };
        // Pin counts so the engines share the exact decomposition.
        let config = Configuration {
            bucket_size: 8,
            n_subtrees: 16,
            n_partitions: 32,
            ..Default::default()
        };
        let visitor = GravityVisitor::default();

        let mut fw: Framework<CentroidData> = Framework::new(config.clone(), particles.clone());
        let (_, report) = fw.step(|s| {
            s.traverse(&visitor, TraversalKind::TopDown);
        });
        let mut reference: Vec<_> = fw.particles().to_vec();
        reference.sort_by_key(|p| p.id);

        let engine = DistributedEngine::new(
            MachineSpec::test(ranks, workers),
            config,
            model,
            TraversalKind::TopDown,
            &visitor,
        );
        let rep = engine.run_iteration(particles);
        let mut got = rep.particles.clone();
        got.sort_by_key(|p| p.id);

        prop_assert_eq!(rep.counts.leaf_interactions, report.counts.leaf_interactions);
        prop_assert_eq!(rep.counts.node_interactions, report.counts.node_interactions);
        for (a, b) in got.iter().zip(&reference) {
            prop_assert_eq!(a.id, b.id);
            let denom = b.acc.norm().max(1e-30);
            prop_assert!(
                (a.acc - b.acc).norm() / denom < 1e-9,
                "particle {} force differs ({:?} ranks={} model={:?})",
                a.id, a.acc, ranks, model
            );
        }
        prop_assert!(rep.makespan > 0.0);
        prop_assert!(rep.cache.waiters_parked == rep.cache.waiters_resumed);
    }

    #[test]
    fn machine_model_is_deterministic(
        n in 50usize..300,
        seed in 0u64..100,
        ranks in 1usize..4,
    ) {
        let particles = gen::clustered(n, 2, seed, 1.0, 1.0);
        let config = Configuration { bucket_size: 8, ..Default::default() };
        let visitor = GravityVisitor::default();
        let run = || {
            DistributedEngine::new(
                MachineSpec::test(ranks, 2),
                config.clone(),
                CacheModel::WaitFree,
                TraversalKind::TopDown,
                &visitor,
            )
            .run_iteration(particles.clone())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.comm.messages, b.comm.messages);
        prop_assert_eq!(a.comm.bytes, b.comm.bytes);
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(a.partition_costs, b.partition_costs);
    }
}
