//! End-to-end: run the discrete-event engine with telemetry and a
//! flight recorder, feed the artifacts through the analyzer, and check
//! that (a) the analysis passes the CI invariants and reproduces the
//! Fig. 9 views, and (b) two same-seed runs analyze to byte-identical
//! JSON — the determinism story carried all the way to the report.

use paratreet_analyze::{analyze, critical_path, parse_trace, utilization};
use paratreet_core::{
    CacheModel, Configuration, DistributedEngine, SpatialNodeView, TargetBucket, TraversalKind,
    Visitor, DES_FLIGHT_SERIES,
};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;
use paratreet_telemetry::{chrome_trace_json, json, FlightRecorder, Telemetry};
use paratreet_tree::CountData;

struct CountVisitor;

impl Visitor for CountVisitor {
    type Data = CountData;
    type State = u64;
    fn open(&self, s: &SpatialNodeView<'_, CountData>, _t: &TargetBucket<u64>) -> bool {
        s.n_particles > 8
    }
    fn node(&self, s: &SpatialNodeView<'_, CountData>, t: &mut TargetBucket<u64>) {
        t.state += s.data.count;
    }
    fn leaf(&self, s: &SpatialNodeView<'_, CountData>, t: &mut TargetBucket<u64>) {
        t.state += s.particles.len() as u64 * s.data.count;
    }
}

const RANKS: usize = 2;
const WORKERS: usize = 2;

/// Runs one DES iteration and returns (chrome trace json, metrics
/// json, flight series json).
fn record_artifacts() -> (String, String, String) {
    let particles = gen::uniform_cube(2_000, 11, 1.0, 1.0);
    let visitor = CountVisitor;
    let engine = DistributedEngine::new(
        MachineSpec::test(RANKS, WORKERS),
        Configuration { bucket_size: 8, ..Default::default() },
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    )
    .with_telemetry(Telemetry::virtual_time(1))
    .with_flight_recorder(FlightRecorder::virtual_time(DES_FLIGHT_SERIES, 64));
    let telemetry = engine.telemetry.clone();
    let flight = engine.flight.clone();
    let report = engine.run_iteration(particles);
    (
        chrome_trace_json(&telemetry.drain()),
        format!("{}", report.metrics.to_json()),
        flight.snapshot().to_json().to_string(),
    )
}

fn analysis_json(artifacts: &(String, String, String)) -> String {
    let trace = parse_trace(&artifacts.0).expect("engine trace parses");
    let metrics = json::parse(&artifacts.1).expect("metrics parse");
    let series = json::parse(&artifacts.2).expect("series parse");
    let analysis = analyze(Some(trace), Some(&metrics), Some(&series), 16).expect("analyze");
    analysis.check().expect("DES artifacts pass the CI invariants");
    format!("{}\n", analysis.to_json())
}

#[test]
fn des_artifacts_analyze_deterministically() {
    let a = record_artifacts();
    let b = record_artifacts();
    let ja = analysis_json(&a);
    let jb = analysis_json(&b);
    assert_eq!(ja, jb, "same-seed DES runs must analyze to byte-identical JSON");
    // The report carries each of the headline views.
    for section in ["\"utilization\"", "\"critical_path\"", "\"grains\"", "\"timeseries\""] {
        assert!(ja.contains(section), "missing {section} in {ja}");
    }
}

#[test]
fn des_critical_path_and_profile_are_nontrivial() {
    let artifacts = record_artifacts();
    let trace = parse_trace(&artifacts.0).unwrap();

    // Utilization: every simulated worker track gets a busy row — the
    // Fig. 9 analog has one lane per worker per rank.
    let util = utilization(&trace, 16);
    assert_eq!(util.tracks.len(), RANKS * WORKERS);
    for tp in &util.tracks {
        assert!(tp.busy_us > 0.0, "rank {} worker {} never busy", tp.rank, tp.worker);
        assert!(tp.busy_frac <= 1.0 + 1e-9);
        assert_eq!(tp.bins.len(), 16);
    }

    // Critical path: reaches back from the makespan through the phase
    // pipeline; traversal dominates, and the path covers most of the
    // extent (gaps only where the sim genuinely waited).
    let cp = critical_path(&trace);
    assert!(cp.steps.len() > 2, "path should chain through phases: {:?}", cp.by_name);
    assert!(cp.work_us > 0.0);
    let names: Vec<&str> = cp.by_name.iter().map(|(n, _)| n.as_str()).collect();
    assert!(
        names.iter().any(|n| n.contains("traversal")),
        "critical path misses traversal: {names:?}"
    );
    let (t0, t1) = trace.extent_us().unwrap();
    assert!(cp.extent_us > 0.5 * (t1 - t0), "path spans the bulk of the iteration");
}
