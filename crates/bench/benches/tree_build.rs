//! Criterion microbenchmarks: tree construction for every tree type,
//! sequential vs rayon-parallel, and the decomposition phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paratreet_apps::gravity::CentroidData;
use paratreet_core::{decompose, Configuration, DecompType};
use paratreet_particles::{gen, ParticleVec};
use paratreet_tree::{TreeBuilder, TreeType};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    group.sample_size(10);
    for tree_type in [TreeType::Octree, TreeType::KdTree, TreeType::LongestDim] {
        for n in [10_000usize, 50_000] {
            let ps = gen::clustered(n, 4, 7, 1.0, 1.0);
            let bbox = ps.bounding_box().padded(1e-9);
            let bbox = if tree_type == TreeType::Octree { bbox.bounding_cube() } else { bbox };
            group.bench_with_input(BenchmarkId::new(tree_type.name(), n), &n, |b, _| {
                b.iter(|| {
                    let t = TreeBuilder::new(tree_type)
                        .bucket_size(16)
                        .build::<CentroidData>(black_box(ps.clone()), bbox);
                    black_box(t.nodes.len())
                })
            });
        }
    }
    group.finish();
}

fn bench_build_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build_parallel");
    group.sample_size(10);
    let ps = gen::uniform_cube(100_000, 3, 1.0, 1.0);
    let bbox = ps.bounding_box().padded(1e-9).bounding_cube();
    for parallel in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("oct_100k", if parallel { "rayon" } else { "seq" }),
            &parallel,
            |b, &parallel| {
                b.iter(|| {
                    let t = TreeBuilder::new(TreeType::Octree)
                        .parallel(parallel)
                        .build::<CentroidData>(black_box(ps.clone()), bbox);
                    black_box(t.nodes.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    group.sample_size(10);
    let ps = gen::clustered(50_000, 4, 9, 1.0, 1.0);
    for decomp in [DecompType::Sfc, DecompType::Oct, DecompType::Kd] {
        let config = Configuration {
            decomp_type: decomp,
            n_subtrees: 64,
            n_partitions: 64,
            ..Default::default()
        };
        group.bench_function(decomp.name(), |b| {
            b.iter(|| {
                let d = decompose(black_box(ps.clone()), &config);
                black_box(d.subtrees.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_build_parallelism, bench_decompose);
criterion_main!(benches);
