//! Query requests, results, and batch execution against one snapshot.
//!
//! [`execute_batch`] is the *pure* core of the service: given a
//! [`SnapshotData`] and a batch of requests it produces responses with
//! no clocks, queues, or threads involved. The replay tests lean on
//! this purity — the same snapshot and batch always yield bit-identical
//! responses, which is what makes pinned-epoch serving auditable.

use crate::degrade::DegradeConfig;
use crate::error::ServeError;
use crate::snapshot::SnapshotData;
use paratreet_geometry::{BoundingBox, Vec3};
use paratreet_tree::query::{
    ball_query_with, entry_subtree, knn_query_with, range_query_with, raycast_with,
};
use paratreet_tree::{Data, Neighbor, QueryScratch, RayHit};
use std::time::{Duration, Instant};

/// The query classes the service answers, used to key latency
/// histograms and traffic mixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// k nearest neighbours of a point.
    Knn,
    /// Everything within a radius of a point.
    Ball,
    /// Everything inside an axis-aligned box.
    Range,
    /// First particle along a ray.
    Ray,
}

impl QueryClass {
    /// All classes, in histogram-index order.
    pub const ALL: [QueryClass; 4] =
        [QueryClass::Knn, QueryClass::Ball, QueryClass::Range, QueryClass::Ray];

    /// Stable metric-name segment.
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::Knn => "knn",
            QueryClass::Ball => "ball",
            QueryClass::Range => "range",
            QueryClass::Ray => "ray",
        }
    }

    /// Index into per-class arrays (matches [`QueryClass::ALL`]).
    pub fn index(self) -> usize {
        match self {
            QueryClass::Knn => 0,
            QueryClass::Ball => 1,
            QueryClass::Range => 2,
            QueryClass::Ray => 3,
        }
    }
}

/// One spatial query.
#[derive(Clone, Copy, Debug)]
pub enum Query {
    /// The `k` nearest particles to `pos`.
    Knn {
        /// Query point.
        pos: Vec3,
        /// Neighbour count.
        k: usize,
    },
    /// Every particle within `radius` of `center`.
    Ball {
        /// Ball center.
        center: Vec3,
        /// Ball radius.
        radius: f64,
    },
    /// Ids of every particle inside `bbox`.
    Range {
        /// Query box.
        bbox: BoundingBox,
        /// Resume cursor for paging: only ids strictly greater than
        /// this are returned. Ids come back ascending, so a client
        /// holding a partial answer resubmits the same box with the
        /// cursor from [`Response::partial`] to page through the rest.
        resume_after: Option<u64>,
    },
    /// The first particle within `radius` of the ray.
    Ray {
        /// Ray origin.
        origin: Vec3,
        /// Ray direction (normalized by the kernel).
        dir: Vec3,
        /// Capture radius around the ray.
        radius: f64,
        /// Maximum ray parameter.
        t_max: f64,
    },
}

impl Query {
    /// The class this query is accounted under.
    pub fn class(&self) -> QueryClass {
        match self {
            Query::Knn { .. } => QueryClass::Knn,
            Query::Ball { .. } => QueryClass::Ball,
            Query::Range { .. } => QueryClass::Range,
            Query::Ray { .. } => QueryClass::Ray,
        }
    }

    /// The point the batcher groups by: where the query's first descent
    /// enters the forest.
    pub fn anchor(&self) -> Vec3 {
        match self {
            Query::Knn { pos, .. } => *pos,
            Query::Ball { center, .. } => *center,
            Query::Range { bbox, .. } => bbox.center(),
            Query::Ray { origin, .. } => *origin,
        }
    }
}

/// A query's answer.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// kNN / ball answers: neighbours ascending by distance.
    Neighbors(Vec<Neighbor>),
    /// Range answers: particle ids ascending.
    Ids(Vec<u64>),
    /// Raycast answer.
    Hit(Option<RayHit>),
}

impl QueryResult {
    /// Number of particles in the answer.
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Neighbors(v) => v.len(),
            QueryResult::Ids(v) => v.len(),
            QueryResult::Hit(h) => h.is_some() as usize,
        }
    }

    /// True when the answer holds no particles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An order-sensitive FNV fold over the result's ids and distance
    /// bit patterns. Two results are replay-identical iff their
    /// checksums (and lengths) agree — the serving tests' equality
    /// currency.
    pub fn checksum(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100_0000_01b3)
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        match self {
            QueryResult::Neighbors(v) => {
                for n in v {
                    h = mix(h, n.id);
                    h = mix(h, n.dist_sq.to_bits());
                }
            }
            QueryResult::Ids(v) => {
                for id in v {
                    h = mix(h, *id);
                }
            }
            QueryResult::Hit(None) => h = mix(h, 0),
            QueryResult::Hit(Some(hit)) => {
                h = mix(h, hit.id);
                h = mix(h, hit.t.to_bits());
            }
        }
        h
    }
}

/// One client request in flight.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Issuing client.
    pub client: u32,
    /// Client-local sequence number.
    pub seq: u32,
    /// The query.
    pub query: Query,
    /// Submission instant — the latency histograms measure from here,
    /// so queue wait counts against the service.
    pub submitted_at: Instant,
    /// Optional completion deadline. Admission predicts against it,
    /// workers drop the request at pop time if it has already passed
    /// (answering [`ServeError::DeadlineExceeded`] instead of doing
    /// useless work). `None` = no deadline.
    pub deadline: Option<Instant>,
}

impl Request {
    /// A request stamped "now", with no deadline.
    pub fn new(client: u32, seq: u32, query: Query) -> Request {
        Request { client, seq, query, submitted_at: Instant::now(), deadline: None }
    }

    /// A request stamped "now" that must complete within `budget`.
    pub fn with_deadline(client: u32, seq: u32, query: Query, budget: Duration) -> Request {
        let now = Instant::now();
        Request { client, seq, query, submitted_at: now, deadline: Some(now + budget) }
    }

    /// The request id used in span links and histogram exemplars:
    /// `client << 32 | seq`, unique per request in a run.
    pub fn id(&self) -> u64 {
        ((self.client as u64) << 32) | self.seq as u64
    }

    /// Nanoseconds of budget left at `now`; `None` when the request
    /// has no deadline, `Some(0)` when it has already expired.
    pub fn remaining_ns(&self, now: Instant) -> Option<u64> {
        self.deadline.map(|d| d.saturating_duration_since(now).as_nanos() as u64)
    }
}

/// One answered request. `result` is a `Result`: the service answers
/// every admitted request, and failures (deadline expiry in queue, a
/// panicked worker) arrive as structured [`ServeError`]s rather than
/// silence or an abort.
#[derive(Clone, Debug)]
pub struct Response {
    /// Issuing client (copied from the request).
    pub client: u32,
    /// Client-local sequence number (copied from the request).
    pub seq: u32,
    /// The snapshot epoch the answer was computed against (0 for
    /// error responses that never reached a snapshot).
    pub epoch: u64,
    /// The answer, or why there is none.
    pub result: Result<QueryResult, ServeError>,
    /// True when a degradation-ladder clamp could have changed this
    /// answer (kNN `k` capped, ball radius shrunk, range truncated).
    pub degraded: bool,
    /// Set when a range answer was truncated: the last id returned.
    /// Resubmit the same box with `resume_after = Some(cursor)` to
    /// page through the rest (ids are ascending).
    pub partial: Option<u64>,
}

impl Response {
    /// True for an untruncated, unclamped `Ok` answer — the only
    /// responses the deterministic result folds count, so replay
    /// comparisons stay valid under chaos and degraded runs.
    pub fn is_full_fidelity(&self) -> bool {
        self.result.is_ok() && !self.degraded && self.partial.is_none()
    }
}

/// Runs one query against a forest at full fidelity. Range queries
/// honour their `resume_after` cursor (paging is a client feature, not
/// degradation): only ids strictly greater than the cursor return.
pub fn execute<D: Data>(
    trees: &[paratreet_tree::BuiltTree<D>],
    query: &Query,
    scratch: &mut QueryScratch,
) -> QueryResult {
    match *query {
        Query::Knn { pos, k } => QueryResult::Neighbors(knn_query_with(trees, pos, k, scratch)),
        Query::Ball { center, radius } => {
            QueryResult::Neighbors(ball_query_with(trees, center, radius, scratch))
        }
        Query::Range { bbox, resume_after } => {
            let mut ids = range_query_with(trees, &bbox, scratch);
            if let Some(cursor) = resume_after {
                // Ids are ascending: everything ≤ cursor was already
                // delivered in an earlier page.
                ids.retain(|&id| id > cursor);
            }
            QueryResult::Ids(ids)
        }
        Query::Ray { origin, dir, radius, t_max } => {
            QueryResult::Hit(raycast_with(trees, origin, dir, radius, t_max, scratch))
        }
    }
}

/// The degradation ladder's pre-execution clamp: returns the effective
/// query at `level` and whether the clamp could change the answer.
/// Range truncation happens post-execution (see
/// [`execute_batch_degraded`]) because the cap applies to the result.
fn clamp_query(query: &Query, cfg: &DegradeConfig, level: u8) -> (Query, bool) {
    match *query {
        Query::Knn { pos, k } => {
            let cap = cfg.k_cap(level);
            if k > cap {
                (Query::Knn { pos, k: cap }, true)
            } else {
                (*query, false)
            }
        }
        Query::Ball { center, radius } => {
            let scale = cfg.radius_scale(level);
            if scale < 1.0 {
                (Query::Ball { center, radius: radius * scale }, true)
            } else {
                (*query, false)
            }
        }
        _ => (*query, false),
    }
}

/// Answers a batch against one pinned snapshot, grouped by entry
/// subtree: queries whose first descent enters the same Subtree run
/// back-to-back, so the batch walks each arena while it is cache-warm
/// and shares one scratch allocation. The grouping is a stable sort —
/// deterministic for a given snapshot and batch.
pub fn execute_batch<D: Data>(
    snapshot: &SnapshotData<D>,
    requests: &[Request],
    scratch: &mut QueryScratch,
) -> Vec<Response> {
    execute_batch_observed(snapshot, requests, scratch, None)
}

/// Per-request execution observer: called after each request in a batch
/// runs, with `(request index, entry subtree, started, finished)`.
/// Request tracing hooks in here; `None` keeps the pure clock-free path.
pub type ExecObserver<'a> = &'a mut dyn FnMut(usize, usize, Instant, Instant);

/// [`execute_batch`] with an optional per-request observer. The answers
/// are identical with or without one — the observer only *watches* the
/// same entry-subtree-grouped execution order.
pub fn execute_batch_observed<D: Data>(
    snapshot: &SnapshotData<D>,
    requests: &[Request],
    scratch: &mut QueryScratch,
    observer: Option<ExecObserver<'_>>,
) -> Vec<Response> {
    execute_batch_degraded(snapshot, requests, scratch, &DegradeConfig::disabled(), 0, observer)
}

/// [`execute_batch_observed`] at a degradation-ladder level: kNN `k`
/// and ball radii are clamped before execution, range answers are
/// truncated to the level's result cap with a resume cursor after it.
/// At level 0 (or with the ladder disabled) this is exactly the pure
/// full-fidelity batch — degrade-off runs stay bit-identical.
pub fn execute_batch_degraded<D: Data>(
    snapshot: &SnapshotData<D>,
    requests: &[Request],
    scratch: &mut QueryScratch,
    degrade: &DegradeConfig,
    level: u8,
    mut observer: Option<ExecObserver<'_>>,
) -> Vec<Response> {
    let trees = &snapshot.trees;
    let mut order: Vec<(usize, usize)> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| (entry_subtree(trees, r.query.anchor()), i))
        .collect();
    order.sort();
    // Execute in entry-subtree order (cache-warm arenas), but return
    // responses in *request* order so `responses[i]` answers
    // `requests[i]` — callers account per-request without a join.
    let mut out: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
    for (subtree, i) in order {
        let r = &requests[i];
        let (effective, mut degraded) = if degrade.enabled && level > 0 {
            clamp_query(&r.query, degrade, level)
        } else {
            (r.query, false)
        };
        let started = observer.is_some().then(Instant::now);
        let mut result = execute(trees, &effective, scratch);
        if let (Some(obs), Some(t0)) = (observer.as_mut(), started) {
            obs(i, subtree, t0, Instant::now());
        }
        let mut partial = None;
        if degrade.enabled && level > 0 {
            if let QueryResult::Ids(ids) = &mut result {
                let cap = degrade.result_cap(level);
                if ids.len() > cap {
                    ids.truncate(cap);
                    partial = ids.last().copied();
                    degraded = true;
                }
            }
        }
        out[i] = Some(Response {
            client: r.client,
            seq: r.seq,
            epoch: snapshot.epoch,
            result: Ok(result),
            degraded,
            partial,
        });
    }
    out.into_iter().map(|r| r.expect("every request answered")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_particles::gen;
    use paratreet_tree::{CountData, TreeBuilder, TreeType};

    fn snapshot(n: usize, seed: u64) -> SnapshotData<CountData> {
        let ps = gen::clustered(n, 3, seed, 1.0, 1.0);
        let universe = BoundingBox::around(ps.iter().map(|p| p.pos));
        let tree = TreeBuilder::new(TreeType::Octree).bucket_size(8).build(ps, universe);
        SnapshotData::new(0, vec![tree], universe)
    }

    #[test]
    fn batch_answers_match_singles_and_keep_identity() {
        let snap = snapshot(500, 3);
        let mut scratch = QueryScratch::default();
        let c = snap.universe.center();
        let reqs = vec![
            Request::new(1, 0, Query::Knn { pos: c, k: 5 }),
            Request::new(2, 7, Query::Ball { center: c, radius: 0.3 }),
            Request::new(
                3,
                1,
                Query::Range { bbox: BoundingBox::cube(c, 0.2), resume_after: None },
            ),
            Request::new(
                4,
                2,
                Query::Ray {
                    origin: snap.universe.lo,
                    dir: c - snap.universe.lo,
                    radius: 0.05,
                    t_max: 10.0,
                },
            ),
        ];
        let responses = execute_batch(&snap, &reqs, &mut scratch);
        assert_eq!(responses.len(), reqs.len());
        for resp in &responses {
            let req = reqs
                .iter()
                .find(|r| r.client == resp.client && r.seq == resp.seq)
                .expect("response keeps request identity");
            let single = execute(&snap.trees, &req.query, &mut scratch);
            assert!(resp.is_full_fidelity());
            assert_eq!(*resp.result.as_ref().unwrap(), single);
            assert_eq!(resp.epoch, 0);
        }
    }

    #[test]
    fn batch_execution_is_deterministic() {
        let snap = snapshot(400, 9);
        let reqs: Vec<Request> = (0..50)
            .map(|i| {
                let f = i as f64 / 50.0;
                Request::new(
                    i,
                    0,
                    Query::Knn {
                        pos: snap.universe.lo + (snap.universe.hi - snap.universe.lo) * f,
                        k: 4,
                    },
                )
            })
            .collect();
        let a = execute_batch(&snap, &reqs, &mut QueryScratch::default());
        let b = execute_batch(&snap, &reqs, &mut QueryScratch::default());
        let ka: Vec<u64> = a.iter().map(|r| r.result.as_ref().unwrap().checksum()).collect();
        let kb: Vec<u64> = b.iter().map(|r| r.result.as_ref().unwrap().checksum()).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn range_resume_cursor_pages_through_the_box() {
        let snap = snapshot(600, 5);
        let mut scratch = QueryScratch::default();
        let bbox = snap.universe;
        let full =
            match execute(&snap.trees, &Query::Range { bbox, resume_after: None }, &mut scratch) {
                QueryResult::Ids(ids) => ids,
                other => panic!("expected ids, got {other:?}"),
            };
        assert!(full.len() > 4, "need a non-trivial answer to page");
        // Resume after the 3rd id: the page is exactly the tail.
        let cursor = full[2];
        let page = match execute(
            &snap.trees,
            &Query::Range { bbox, resume_after: Some(cursor) },
            &mut scratch,
        ) {
            QueryResult::Ids(ids) => ids,
            other => panic!("expected ids, got {other:?}"),
        };
        assert_eq!(page, full[3..].to_vec());
    }

    #[test]
    fn degraded_batch_clamps_and_marks() {
        let snap = snapshot(800, 11);
        let mut scratch = QueryScratch::default();
        let c = snap.universe.center();
        let cfg = DegradeConfig {
            knn_k_cap: [usize::MAX, 4, 2, 1],
            range_cap: [usize::MAX, 3, 2, 1],
            ball_radius_scale: [1.0, 0.5, 0.25, 0.1],
            ..DegradeConfig::default()
        };
        let reqs = vec![
            Request::new(1, 0, Query::Knn { pos: c, k: 16 }),
            Request::new(2, 0, Query::Range { bbox: snap.universe, resume_after: None }),
            Request::new(3, 0, Query::Ball { center: c, radius: 0.4 }),
        ];
        let out = execute_batch_degraded(&snap, &reqs, &mut scratch, &cfg, 1, None);
        let knn = out.iter().find(|r| r.client == 1).unwrap();
        assert!(knn.degraded);
        assert_eq!(knn.result.as_ref().unwrap().len(), 4, "k clamped to level-1 cap");
        let range = out.iter().find(|r| r.client == 2).unwrap();
        assert!(range.degraded);
        let ids = match range.result.as_ref().unwrap() {
            QueryResult::Ids(ids) => ids,
            other => panic!("expected ids, got {other:?}"),
        };
        assert_eq!(ids.len(), 3, "range truncated to level-1 cap");
        assert_eq!(range.partial, Some(*ids.last().unwrap()), "cursor = last id returned");
        let ball = out.iter().find(|r| r.client == 3).unwrap();
        assert!(ball.degraded, "scaled radius marks the answer");
        // The degraded ball answer is a prefix of the full-fidelity one
        // (smaller radius, same center, distances ascending).
        let full = execute(&snap.trees, &Query::Ball { center: c, radius: 0.4 }, &mut scratch);
        assert!(ball.result.as_ref().unwrap().len() <= full.len());
        // Level 0 through the degraded path is bit-identical to the
        // pure batch.
        let clean = execute_batch(&snap, &reqs, &mut scratch);
        let via_ladder = execute_batch_degraded(&snap, &reqs, &mut scratch, &cfg, 0, None);
        for (a, b) in clean.iter().zip(&via_ladder) {
            assert_eq!(
                a.result.as_ref().unwrap().checksum(),
                b.result.as_ref().unwrap().checksum()
            );
            assert!(b.is_full_fidelity());
        }
    }

    #[test]
    fn checksum_distinguishes_results() {
        let a = QueryResult::Ids(vec![1, 2, 3]);
        let b = QueryResult::Ids(vec![1, 2, 4]);
        let c = QueryResult::Ids(vec![2, 1, 3]);
        assert_ne!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), c.checksum(), "checksum is order-sensitive");
        assert_eq!(a.checksum(), QueryResult::Ids(vec![1, 2, 3]).checksum());
    }
}
