//! The discrete-event distributed-machine simulator.
//!
//! [`Sim`] plays the role Charm++ plays for the reference code: it owns
//! the notion of ranks, workers, message delivery, and time. The engine
//! layered on top executes the real algorithm inside event handlers and
//! charges costs in *calibrated seconds* (measured on the Stampede2
//! Skylake baseline and scaled by the machine's clock).
//!
//! Scheduling rules:
//!
//! * a task spawned on a rank goes to that rank's **least busy worker**
//!   (the paper's fill-assignment policy) and runs for its cost,
//! * an *exclusive* task additionally serialises on a named per-rank
//!   resource — this models the XWrite cache's insertion lock and the
//!   one-message-at-a-time semantics of chares (partitions),
//! * a message occupies the sender's NIC for `bytes × byte_time`
//!   (injection serialisation), then arrives `latency` later.
//!
//! Determinism: the event queue breaks time ties by sequence number, so
//! identical inputs replay identical timelines.

use crate::ledger::Ledger;
use crate::machine::MachineSpec;
use crate::phase::Phase;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};

/// Identifies one worker thread: `(rank, worker index within rank)`.
pub type WorkerId = (u32, u32);

/// A pending event.
struct Scheduled<P> {
    time: f64,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for Scheduled<P> {}
impl<P> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Scheduled<P> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Communication counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

/// The simulator. `P` is the engine's event payload type.
pub struct Sim<P> {
    /// The machine being simulated.
    pub machine: MachineSpec,
    now: f64,
    seq: u64,
    queue: BinaryHeap<Scheduled<P>>,
    /// `rank * workers_per_rank + worker` → busy-until time.
    worker_free: Vec<f64>,
    /// Per-rank NIC busy-until time.
    nic_free: Vec<f64>,
    /// Named exclusive resources → busy-until time.
    resource_free: HashMap<u64, f64>,
    /// Busy-interval accounting.
    pub ledger: Ledger,
    /// Communication accounting.
    pub comm: CommStats,
    compute_scale: f64,
}

impl<P> Sim<P> {
    /// A fresh simulator for `machine` at time zero.
    pub fn new(machine: MachineSpec) -> Sim<P> {
        let workers = machine.total_workers();
        let nodes = machine.nodes;
        let compute_scale = machine.compute_scale();
        Sim {
            machine,
            now: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
            worker_free: vec![0.0; workers],
            nic_free: vec![0.0; nodes],
            resource_free: HashMap::new(),
            ledger: Ledger::new(),
            comm: CommStats::default(),
            compute_scale,
        }
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of ranks.
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.machine.nodes as u32
    }

    fn push(&mut self, time: f64, payload: P) {
        self.seq += 1;
        self.queue.push(Scheduled { time, seq: self.seq, payload });
    }

    /// Index of the least-busy worker on `rank`.
    fn least_busy_worker(&self, rank: u32) -> usize {
        let w = self.machine.workers_per_rank;
        let base = rank as usize * w;
        let mut best = base;
        for i in base..base + w {
            if self.worker_free[i] < self.worker_free[best] {
                best = i;
            }
        }
        best
    }

    /// Runs `cost` calibrated-seconds of `phase` work on `rank`'s least
    /// busy worker; `payload` fires when it completes.
    pub fn spawn(&mut self, rank: u32, phase: Phase, cost: f64, payload: P) {
        self.spawn_inner(rank, None, phase, cost, payload);
    }

    /// Like [`Sim::spawn`], but also serialises on exclusive resource
    /// `resource` (a caller-chosen id, e.g. a partition id or a lock id):
    /// the task cannot start until both a worker and the resource are
    /// free, and it holds the resource for its duration.
    pub fn spawn_exclusive(&mut self, rank: u32, resource: u64, phase: Phase, cost: f64, payload: P) {
        self.spawn_inner(rank, Some(resource), phase, cost, payload);
    }

    fn spawn_inner(&mut self, rank: u32, resource: Option<u64>, phase: Phase, cost: f64, payload: P) {
        debug_assert!((rank as usize) < self.machine.nodes, "rank out of range");
        debug_assert!(cost >= 0.0);
        let cost = cost * self.compute_scale;
        let w = self.least_busy_worker(rank);
        let mut start = self.now.max(self.worker_free[w]);
        if let Some(r) = resource {
            let free = self.resource_free.entry(r).or_insert(0.0);
            start = start.max(*free);
            *free = start + cost;
        }
        let end = start + cost;
        self.worker_free[w] = end;
        self.ledger.record(start, end, phase);
        self.push(end, payload);
    }

    /// Sends `bytes` from `from` to `to`; `payload` fires on arrival.
    /// Rank-local sends skip the NIC and latency entirely (shared
    /// memory), which is exactly the saving the node-wide cache exploits.
    pub fn send(&mut self, from: u32, to: u32, bytes: u64, payload: P) {
        self.comm.messages += 1;
        if from == to {
            self.push(self.now, payload);
            return;
        }
        self.comm.bytes += bytes;
        let nic = &mut self.nic_free[from as usize];
        let inject_done = self.now.max(*nic) + bytes as f64 * self.machine.byte_time_s;
        *nic = inject_done;
        let arrive = inject_done + self.machine.latency_s;
        self.push(arrive, payload);
    }

    /// Fires `payload` at the current time without occupying a worker
    /// (control messages, iteration barriers).
    pub fn post(&mut self, payload: P) {
        self.push(self.now, payload);
    }

    /// Drains the event queue, advancing time and calling `handler` for
    /// every event. Returns the makespan: the later of the last event and
    /// the last worker-busy end.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Sim<P>, P)) -> f64 {
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.time >= self.now - 1e-12, "time must not run backwards");
            self.now = self.now.max(ev.time);
            handler(self, ev.payload);
        }
        self.makespan()
    }

    /// The later of "now" and every worker's busy-until.
    pub fn makespan(&self) -> f64 {
        self.worker_free.iter().copied().fold(self.now, f64::max)
    }

    /// Total worker-seconds of capacity up to the makespan.
    pub fn capacity(&self) -> f64 {
        self.makespan() * self.machine.total_workers() as f64
    }

    /// Fraction of capacity spent busy (0..=1).
    pub fn utilization(&self) -> f64 {
        let cap = self.capacity();
        if cap == 0.0 {
            0.0
        } else {
            self.ledger.total_busy() / cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineSpec {
        MachineSpec::test(2, 2)
    }

    #[test]
    fn tasks_run_in_time_order_deterministically() {
        let mut sim: Sim<u32> = Sim::new(machine());
        sim.spawn(0, Phase::TreeBuild, 2.0, 1);
        sim.spawn(0, Phase::TreeBuild, 1.0, 2);
        sim.spawn(1, Phase::TreeBuild, 0.5, 3);
        let mut order = Vec::new();
        sim.run(|_, p| order.push(p));
        assert_eq!(order, vec![3, 2, 1]);
    }

    #[test]
    fn least_busy_worker_balances() {
        // Two workers on rank 0: four 1s tasks finish at 1,1,2,2 not 1,2,3,4.
        let mut sim: Sim<u32> = Sim::new(machine());
        for i in 0..4 {
            sim.spawn(0, Phase::LocalTraversal, 1.0, i);
        }
        let makespan = sim.run(|_, _| {});
        assert!((makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exclusive_resource_serialises() {
        // Two workers, but both tasks hold resource 7: they serialise.
        let mut sim: Sim<u32> = Sim::new(machine());
        sim.spawn_exclusive(0, 7, Phase::CacheInsertion, 1.0, 0);
        sim.spawn_exclusive(0, 7, Phase::CacheInsertion, 1.0, 1);
        let makespan = sim.run(|_, _| {});
        assert!((makespan - 2.0).abs() < 1e-12);
        // Without the resource they would overlap.
        let mut sim2: Sim<u32> = Sim::new(machine());
        sim2.spawn(0, Phase::CacheInsertion, 1.0, 0);
        sim2.spawn(0, Phase::CacheInsertion, 1.0, 1);
        assert!((sim2.run(|_, _| {}) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn messages_pay_latency_and_bandwidth() {
        let m = machine();
        let latency = m.latency_s;
        let byte_time = m.byte_time_s;
        let mut sim: Sim<&str> = Sim::new(m);
        sim.send(0, 1, 1000, "arrived");
        let mut arrival = 0.0;
        sim.run(|s, p| {
            assert_eq!(p, "arrived");
            arrival = s.now();
        });
        let expected = 1000.0 * byte_time + latency;
        assert!((arrival - expected).abs() < 1e-15);
        assert_eq!(sim.comm.messages, 1);
        assert_eq!(sim.comm.bytes, 1000);
    }

    #[test]
    fn rank_local_sends_are_free() {
        let mut sim: Sim<&str> = Sim::new(machine());
        sim.send(1, 1, 1_000_000, "local");
        let mut arrival = f64::NAN;
        sim.run(|s, _| arrival = s.now());
        assert_eq!(arrival, 0.0);
        assert_eq!(sim.comm.bytes, 0, "local bytes do not hit the network");
    }

    #[test]
    fn nic_injection_serialises_sends() {
        let m = machine();
        let byte_time = m.byte_time_s;
        let mut sim: Sim<u32> = Sim::new(m);
        sim.send(0, 1, 1_000_000, 1);
        sim.send(0, 1, 1_000_000, 2);
        let mut times = Vec::new();
        sim.run(|s, p| times.push((p, s.now())));
        // Second message injects only after the first.
        let gap = times[1].1 - times[0].1;
        assert!((gap - 1_000_000.0 * byte_time).abs() < 1e-12);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim: Sim<u32> = Sim::new(machine());
        sim.spawn(0, Phase::LocalTraversal, 1.0, 0);
        let mut count = 0;
        sim.run(|s, p| {
            count += 1;
            if p < 3 {
                s.spawn(0, Phase::LocalTraversal, 1.0, p + 1);
            }
        });
        assert_eq!(count, 4);
        assert!((sim.makespan() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut sim: Sim<u32> = Sim::new(MachineSpec::test(1, 2));
        sim.spawn(0, Phase::LocalTraversal, 2.0, 0); // one of two workers busy
        sim.run(|_, _| {});
        assert!((sim.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compute_scale_applies_to_costs() {
        // Summit's 3.1 GHz clock makes a 1.0s-calibrated task faster.
        let mut sim: Sim<u32> = Sim::new(MachineSpec::summit(1));
        sim.spawn(0, Phase::LocalTraversal, 1.0, 0);
        let makespan = sim.run(|_, _| {});
        assert!((makespan - 2.1 / 3.1).abs() < 1e-12);
    }
}
