//! The graceful-degradation ladder: under sustained pressure the
//! service steps through fidelity levels instead of falling over, and
//! every degraded answer says so.
//!
//! Levels are 0 (full fidelity) through [`DegradeConfig::max_level`].
//! Each level carries three per-class knobs:
//!
//! * **kNN `k` clamp** — a level caps the neighbour count; clients
//!   asking for more get the `cap` nearest (the cheapest prefix of the
//!   answer they wanted).
//! * **ball radius scale** — a level shrinks ball-query radii, the
//!   serving analog of raising a Barnes-Hut opening angle: the answer
//!   covers a coarser (smaller) region for less work. When serving a
//!   gravity-class workload through an embedding simulation the same
//!   ladder slot is where an opening-angle boost belongs.
//! * **range cap + partial cursor** — range scans are truncated at a
//!   result-count cap and the response carries a resume cursor (the
//!   last id returned, the dobonomodo S10 pipeline-executor shape):
//!   ids are returned ascending, so the client resubmits the same box
//!   with `resume_after` set to page through the rest.
//!
//! Every clamp that could change an answer marks the response
//! `degraded` (and `partial` for truncation), so results are never
//! silently wrong. The supervisor drives the ladder from the same
//! pressure counters the flight-recorder series samples (queue-depth
//! fraction, shed + deadline-miss deltas) through
//! [`PressureTracker::tick`], with hysteresis so one spike does not
//! flap the level.

/// Ladder shape and pressure thresholds. `Copy` so [`crate::ServeConfig`]
/// stays a plain value.
#[derive(Clone, Copy, Debug)]
pub struct DegradeConfig {
    /// Master switch; `false` pins the service at level 0.
    pub enabled: bool,
    /// Queue-depth fraction at or above which a supervisor tick counts
    /// as pressure.
    pub high_watermark: f64,
    /// Queue-depth fraction at or below which a tick counts as calm
    /// (between the watermarks neither counter advances).
    pub low_watermark: f64,
    /// Consecutive pressured ticks before stepping one level up.
    pub step_up_ticks: u32,
    /// Consecutive calm ticks before stepping one level down
    /// (deliberately larger: recover slower than you degrade).
    pub step_down_ticks: u32,
    /// Highest level the ladder reaches (≤ 3).
    pub max_level: u8,
    /// Per-level kNN `k` cap (`usize::MAX` = no clamp). Index = level.
    pub knn_k_cap: [usize; 4],
    /// Per-level ball radius scale (1.0 = no change). Index = level.
    pub ball_radius_scale: [f64; 4],
    /// Per-level range result cap (`usize::MAX` = no truncation).
    pub range_cap: [usize; 4],
}

impl Default for DegradeConfig {
    fn default() -> DegradeConfig {
        DegradeConfig {
            enabled: true,
            high_watermark: 0.75,
            low_watermark: 0.25,
            step_up_ticks: 2,
            step_down_ticks: 10,
            max_level: 3,
            knn_k_cap: [usize::MAX, 64, 16, 8],
            ball_radius_scale: [1.0, 1.0, 0.5, 0.25],
            range_cap: [usize::MAX, 4096, 1024, 256],
        }
    }
}

impl DegradeConfig {
    /// The ladder with degradation disabled (always level 0).
    pub fn disabled() -> DegradeConfig {
        DegradeConfig { enabled: false, ..DegradeConfig::default() }
    }

    /// The kNN cap at `level`.
    pub fn k_cap(&self, level: u8) -> usize {
        self.knn_k_cap[(level as usize).min(3)]
    }

    /// The ball radius scale at `level`.
    pub fn radius_scale(&self, level: u8) -> f64 {
        self.ball_radius_scale[(level as usize).min(3)]
    }

    /// The range result cap at `level`.
    pub fn result_cap(&self, level: u8) -> usize {
        self.range_cap[(level as usize).min(3)]
    }
}

/// Hysteresis state for the supervisor's pressure loop. Pure — every
/// transition is a deterministic function of the tick inputs, which is
/// what makes the ladder unit-testable without threads.
#[derive(Debug, Default)]
pub struct PressureTracker {
    pressured: u32,
    calm: u32,
    level: u8,
    transitions: u64,
}

impl PressureTracker {
    /// A tracker at level 0.
    pub fn new() -> PressureTracker {
        PressureTracker::default()
    }

    /// Current level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Level changes so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// One supervisor tick: `depth_frac` is queue depth over capacity,
    /// `misses` is the shed + deadline-exceeded delta since the last
    /// tick. Returns `Some(new_level)` when the level changed.
    pub fn tick(&mut self, cfg: &DegradeConfig, depth_frac: f64, misses: u64) -> Option<u8> {
        if !cfg.enabled {
            return None;
        }
        let pressured = depth_frac >= cfg.high_watermark || misses > 0;
        let calm = depth_frac <= cfg.low_watermark && misses == 0;
        if pressured {
            self.calm = 0;
            self.pressured += 1;
            if self.pressured >= cfg.step_up_ticks && self.level < cfg.max_level.min(3) {
                self.pressured = 0;
                self.level += 1;
                self.transitions += 1;
                return Some(self.level);
            }
        } else if calm {
            self.pressured = 0;
            self.calm += 1;
            if self.calm >= cfg.step_down_ticks && self.level > 0 {
                self.calm = 0;
                self.level -= 1;
                self.transitions += 1;
                return Some(self.level);
            }
        } else {
            // Between the watermarks: hold position.
            self.pressured = 0;
            self.calm = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DegradeConfig {
        DegradeConfig { step_up_ticks: 2, step_down_ticks: 3, ..DegradeConfig::default() }
    }

    #[test]
    fn ladder_steps_up_under_sustained_pressure_only() {
        let cfg = cfg();
        let mut t = PressureTracker::new();
        // One spike does not step.
        assert_eq!(t.tick(&cfg, 0.9, 0), None);
        assert_eq!(t.level(), 0);
        // A calm tick resets the streak.
        assert_eq!(t.tick(&cfg, 0.0, 0), None);
        assert_eq!(t.tick(&cfg, 0.9, 0), None);
        // Two consecutive pressured ticks step to 1.
        assert_eq!(t.tick(&cfg, 0.9, 0), Some(1));
        // Misses alone count as pressure, regardless of depth.
        assert_eq!(t.tick(&cfg, 0.0, 5), None);
        assert_eq!(t.tick(&cfg, 0.0, 5), Some(2));
        assert_eq!(t.transitions(), 2);
    }

    #[test]
    fn ladder_recovers_slowly_and_clamps_at_bounds() {
        let cfg = cfg();
        let mut t = PressureTracker::new();
        for _ in 0..20 {
            t.tick(&cfg, 1.0, 10);
        }
        assert_eq!(t.level(), 3, "ladder tops out at max_level");
        // Recovery needs step_down_ticks consecutive calm ticks per level.
        assert_eq!(t.tick(&cfg, 0.1, 0), None);
        assert_eq!(t.tick(&cfg, 0.1, 0), None);
        assert_eq!(t.tick(&cfg, 0.1, 0), Some(2));
        // Mid-band ticks hold position.
        assert_eq!(t.tick(&cfg, 0.5, 0), None);
        assert_eq!(t.level(), 2);
        for _ in 0..20 {
            t.tick(&cfg, 0.0, 0);
        }
        assert_eq!(t.level(), 0, "ladder bottoms out at 0");
    }

    #[test]
    fn disabled_ladder_never_moves() {
        let cfg = DegradeConfig::disabled();
        let mut t = PressureTracker::new();
        for _ in 0..50 {
            assert_eq!(t.tick(&cfg, 1.0, 100), None);
        }
        assert_eq!(t.level(), 0);
    }

    #[test]
    fn level_knobs_read_defaults() {
        let cfg = DegradeConfig::default();
        assert_eq!(cfg.k_cap(0), usize::MAX);
        assert_eq!(cfg.k_cap(3), 8);
        assert_eq!(cfg.radius_scale(0), 1.0);
        assert!(cfg.radius_scale(3) < 1.0);
        assert_eq!(cfg.result_cap(2), 1024);
    }
}
