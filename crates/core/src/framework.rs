//! The shared-memory execution engine.
//!
//! [`Framework`] runs the full ParaTreeT pipeline on one process:
//! decomposition → parallel Subtree build → cache init → leaf sharing →
//! parallel traversal per Partition → write-back. It is the engine the
//! examples and applications use directly, and the reference semantics
//! the distributed engine must agree with (see the cross-engine tests).
//!
//! Within a [`Framework::step`], every traversal sees the same
//! start-of-step particle snapshot as *sources* (the built tree), while
//! target accumulators (acceleration, density, …) and visitor states are
//! written into partition-owned bucket copies and merged back after each
//! traversal — the paper's race-freedom-by-construction.

use crate::config::{Configuration, TraversalKind};
use crate::decomp::{decompose, Partitioner};
use crate::maintain::{TreeMaintainer, UpdateTotals};
use crate::traversal::{traverse_local, TraversalStats, WorkCounts};
use crate::visitor::{TargetBucket, Visitor};
use paratreet_cache::{CacheTree, NodeKind, SubtreeSummary};
use paratreet_geometry::{BoundingBox, NodeKey};
use paratreet_particles::Particle;
use paratreet_telemetry::{FlightRecorder, MetricsRegistry, Telemetry};
use paratreet_tree::{BuiltTree, Data, TreeBuilder};
use rayon::prelude::*;

/// A partition's share of target buckets: the global bucket indices and
/// the owned copies the traversal mutates.
type PartitionSlot<S> = (Vec<usize>, Vec<TargetBucket<S>>);

/// Where one target bucket's particles live in the master array.
#[derive(Clone, Debug)]
struct BucketMeta {
    leaf_key: NodeKey,
    partition: u32,
    /// Master-array indices of this bucket's particles.
    indices: Vec<u32>,
}

/// Measurements for one step.
#[derive(Clone, Debug, Default)]
pub struct StepReport {
    /// Subtree pieces built.
    pub n_subtrees: usize,
    /// Partitions used.
    pub n_partitions: usize,
    /// Target buckets after leaf sharing.
    pub n_buckets: usize,
    /// Tree leaves whose particles spanned >1 Partition (split buckets,
    /// Fig. 5).
    pub n_split_leaves: usize,
    /// Aggregated interaction counts over all traversals this step.
    pub counts: WorkCounts,
    /// Wall-clock seconds per pipeline stage: decompose, build, share,
    /// traverse (summed over traversals).
    pub seconds_decompose: f64,
    /// Tree build seconds.
    pub seconds_build: f64,
    /// Leaf-sharing seconds.
    pub seconds_share: f64,
    /// Traversal seconds.
    pub seconds_traverse: f64,
    /// Incremental tree-update seconds (zero when maintenance is off or
    /// this step seeded the maintainer).
    pub seconds_update: f64,
    /// Cumulative incremental-maintenance counters, present once a
    /// maintainer is live (`tree.update.*` in [`StepReport::metrics`]).
    pub update: Option<UpdateTotals>,
    /// Non-empty per-Subtree insert batches applied by this step's
    /// incremental advance (zero on seed/full-rebuild steps).
    pub round_batches: u64,
    /// Particles that crossed Subtree boundaries in this step's advance.
    pub round_migrated: u64,
}

impl StepReport {
    /// The report under the stable dotted names the distributed engines
    /// use where the statistics overlap (`counts.*`, `time.*`), plus
    /// shared-memory decomposition sizes under `decomp.*`.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.absorb("counts", &self.counts);
        m.set_u64("decomp.n_subtrees", self.n_subtrees as u64);
        m.set_u64("decomp.n_partitions", self.n_partitions as u64);
        m.set_u64("decomp.n_buckets", self.n_buckets as u64);
        m.set_u64("decomp.n_split_leaves", self.n_split_leaves as u64);
        m.set_f64("time.decompose_s", self.seconds_decompose);
        m.set_f64("time.build_s", self.seconds_build);
        m.set_f64("time.share_s", self.seconds_share);
        m.set_f64("time.traverse_s", self.seconds_traverse);
        if let Some(update) = &self.update {
            m.set_f64("time.update_s", self.seconds_update);
            m.absorb("tree.update", update);
            m.set_u64("tree.update.round_batches", self.round_batches);
            m.set_u64("tree.update.round_migrated", self.round_migrated);
        }
        m
    }
}

/// One in-flight step: the built cache plus bucket bookkeeping.
pub struct Step<D: Data> {
    /// The per-process cached global tree (all subtrees local here).
    pub cache: CacheTree<D>,
    /// The universe box this step was built in.
    pub universe: BoundingBox,
    /// Step measurements, updated by each traversal.
    pub report: StepReport,
    master: Vec<Particle>,
    buckets: Vec<BucketMeta>,
}

/// Observer for every step's freshly built forest, called as
/// `(epoch, trees, universe)` before leaf sharing consumes the trees.
/// Epochs count steps from zero. This is the serving layer's
/// publication point: a `paratreet-serve` snapshot ring subscribes
/// here to expose a live simulation to external queries.
pub type SnapshotHook<D> = Box<dyn FnMut(u64, &[BuiltTree<D>], BoundingBox) + Send>;

impl<D: Data> Step<D> {
    fn build(
        config: &Configuration,
        telemetry: &Telemetry,
        particles: Vec<Particle>,
        epoch: u64,
        hook: &mut Option<SnapshotHook<D>>,
    ) -> Step<D> {
        let t0 = std::time::Instant::now();
        let decomp = telemetry.wall_span(0, "decomposition", None, || decompose(particles, config));
        let seconds_decompose = t0.elapsed().as_secs_f64();
        let crate::decomp::Decomposition { universe, subtrees, partitioner, n_partitions } = decomp;

        // Parallel Subtree build: pieces are independent (the paper's
        // synchronization-free tree build).
        let t0 = std::time::Instant::now();
        let trees: Vec<_> = telemetry.wall_span(0, "tree build", None, || {
            subtrees
                .into_par_iter()
                .map(|piece| {
                    let builder = TreeBuilder {
                        root_key: piece.key,
                        root_depth: piece.depth,
                        ..TreeBuilder::new(config.tree_type)
                    }
                    .bucket_size(config.bucket_size);
                    builder.build::<D>(piece.particles, piece.bbox)
                })
                .collect()
        });
        let seconds_build = t0.elapsed().as_secs_f64();

        if let Some(h) = hook.as_mut() {
            h(epoch, &trees, universe);
        }
        let report = StepReport { seconds_decompose, seconds_build, ..Default::default() };
        Step::from_trees(config, telemetry, trees, &partitioner, n_partitions, universe, report)
    }

    /// Finishes a step from already-built Subtrees: leaf sharing against
    /// `partitioner`, then cache init. This is the common tail of the
    /// full-rebuild path ([`Step::build`]) and the incremental path,
    /// where the trees come from a [`TreeMaintainer`] instead of a fresh
    /// decomposition — guaranteeing both pipelines share semantics.
    fn from_trees(
        config: &Configuration,
        telemetry: &Telemetry,
        trees: Vec<BuiltTree<D>>,
        partitioner: &Partitioner,
        n_partitions: usize,
        universe: BoundingBox,
        mut report: StepReport,
    ) -> Step<D> {
        // Master array: subtree particle arrays concatenated in piece
        // order; leaf buckets are contiguous master ranges.
        let t0 = std::time::Instant::now();
        let total: usize = trees.iter().map(|t| t.particles.len()).sum();
        let mut master = Vec::with_capacity(total);
        let mut buckets: Vec<BucketMeta> = Vec::new();
        let mut n_split_leaves = 0usize;
        let share_span = telemetry.clone();
        share_span.wall_span(0, "leaf sharing", None, || {
            // Grouping scratch, reused across leaves (inner index vectors
            // move into BucketMeta; only the spine's capacity persists).
            let mut per_part: Vec<(u32, Vec<u32>)> = Vec::new();
            for tree in &trees {
                let offset = master.len() as u32;
                // The arena is pre-order, so a linear node scan visits
                // leaves in DFS order without a traversal stack.
                for node in &tree.nodes {
                    let Some(range) = node.bucket_range() else { continue };
                    // Group the leaf's particles by Partition assignment —
                    // the leaf-sharing step, with bucket splitting (Fig. 5).
                    // Assignments run in SFC-contiguous streaks, so memoize
                    // the previous particle's slot.
                    let mut last_part = u32::MAX;
                    let mut last_slot = usize::MAX;
                    for i in range {
                        let part = partitioner.assign(&tree.particles[i]);
                        if part != last_part {
                            last_slot = match per_part.iter().position(|(p, _)| *p == part) {
                                Some(s) => s,
                                None => {
                                    per_part.push((part, Vec::new()));
                                    per_part.len() - 1
                                }
                            };
                            last_part = part;
                        }
                        per_part[last_slot].1.push(offset + i as u32);
                    }
                    if per_part.len() > 1 {
                        n_split_leaves += 1;
                    }
                    for (partition, indices) in per_part.drain(..) {
                        buckets.push(BucketMeta { leaf_key: node.key, partition, indices });
                    }
                }
                master.extend_from_slice(&tree.particles);
            }
        });
        let seconds_share = t0.elapsed().as_secs_f64();

        // Cache init: summaries of every piece, then graft (single rank:
        // everything is local).
        let summaries: Vec<SubtreeSummary<D>> = trees
            .iter()
            .map(|t| SubtreeSummary {
                key: t.root().key,
                bbox: t.root().bbox,
                n_particles: t.root().n_particles,
                data: t.root().data.clone(),
                home_rank: 0,
            })
            .collect();
        let n_subtrees = trees.len();
        let mut cache: CacheTree<D> = CacheTree::new(0, config.tree_type.bits_per_level());
        cache.telemetry = telemetry.clone();
        cache.init(&summaries, trees);

        report.n_subtrees = n_subtrees;
        report.n_partitions = n_partitions;
        report.n_buckets = buckets.len();
        report.n_split_leaves = n_split_leaves;
        report.seconds_share = seconds_share;
        Step { cache, universe, report, master, buckets }
    }

    /// Runs one traversal of `kind` with `visitor` over every Partition
    /// in parallel, merges particle accumulators back, and returns the
    /// per-bucket visitor states (in deterministic bucket order) plus
    /// this traversal's statistics.
    pub fn traverse<V: Visitor<Data = D>>(
        &mut self,
        visitor: &V,
        kind: TraversalKind,
    ) -> (Vec<V::State>, TraversalStats) {
        let t0 = std::time::Instant::now();
        let n_partitions =
            self.buckets.iter().map(|b| b.partition).max().map_or(0, |m| m as usize + 1);

        // Assemble per-partition target buckets (owned particle copies).
        let mut per_partition: Vec<PartitionSlot<V::State>> =
            (0..n_partitions).map(|_| (Vec::new(), Vec::new())).collect();
        for (bi, meta) in self.buckets.iter().enumerate() {
            let particles: Vec<Particle> =
                meta.indices.iter().map(|&i| self.master[i as usize]).collect();
            let bbox = BoundingBox::around(particles.iter().map(|p| p.pos));
            let slot = &mut per_partition[meta.partition as usize];
            slot.0.push(bi);
            slot.1.push(TargetBucket {
                leaf_key: meta.leaf_key,
                particles,
                bbox,
                state: V::State::default(),
            });
        }

        // Parallel traversal: partitions are independent, the cache is
        // read-only (all local).
        let cache = &self.cache;
        let counts_total: WorkCounts =
            cache.telemetry.clone().wall_span(0, "local traversal", None, || {
                per_partition
                    .par_iter_mut()
                    .map(|(_, buckets)| traverse_local(cache, visitor, kind, buckets))
                    .reduce(WorkCounts::default, |mut a, b| {
                        a += b;
                        a
                    })
            });

        // Write-back: bucket particle copies return to the master array;
        // states are collected in bucket order.
        let mut states: Vec<Option<V::State>> = (0..self.buckets.len()).map(|_| None).collect();
        for (bucket_ids, buckets) in per_partition {
            for (bi, bucket) in bucket_ids.into_iter().zip(buckets) {
                for (&mi, p) in self.buckets[bi].indices.iter().zip(&bucket.particles) {
                    self.master[mi as usize] = *p;
                }
                states[bi] = Some(bucket.state);
            }
        }

        self.report.counts += counts_total;
        self.report.seconds_traverse += t0.elapsed().as_secs_f64();
        (
            states.into_iter().map(|s| s.expect("every bucket traversed")).collect(),
            TraversalStats { counts: counts_total, fetches: 0 },
        )
    }

    /// Read access to the step's current particle state (sources remain
    /// the start-of-step snapshot; this reflects traversal write-backs).
    pub fn particles(&self) -> &[Particle] {
        &self.master
    }

    /// The particle ids of each bucket, aligned with the state vector
    /// [`Step::traverse`] returns — for applications whose states refer
    /// to bucket-local particle positions.
    pub fn bucket_particle_ids(&self) -> Vec<Vec<u64>> {
        self.buckets
            .iter()
            .map(|m| m.indices.iter().map(|&i| self.master[i as usize].id).collect())
            .collect()
    }

    /// Number of leaves in the cached tree (sanity/debug).
    pub fn n_leaves(&self) -> usize {
        let mut n = 0;
        let mut stack = vec![self.cache.root().expect("init")];
        while let Some(node) = stack.pop() {
            if node.kind == NodeKind::Leaf {
                n += 1;
            }
            for c in node.children_iter(8) {
                stack.push(c);
            }
        }
        n
    }
}

/// The shared-memory ParaTreeT engine: owns the particle set and the
/// configuration, and runs steps.
/// Columns the shared-memory engine's flight recorder samples at each
/// phase boundary (one row after setup, one after traversal, per step).
/// `stage` is 0 for setup (decompose + build or incremental update) and
/// 1 for leaf sharing + traversal.
pub const FLIGHT_SERIES: &[&str] =
    &["epoch", "stage", "seconds", "n_subtrees", "n_buckets", "update_migrated"];

pub struct Framework<D: Data> {
    /// Run configuration.
    pub config: Configuration,
    /// Span sink (wall clock); the default disabled handle costs nothing.
    pub telemetry: Telemetry,
    /// Flight-recorder sink sampled at phase boundaries
    /// ([`FLIGHT_SERIES`] rows, wall clock); disabled by default.
    pub flight: FlightRecorder,
    master: Vec<Particle>,
    /// The live maintained tree, once `config.incremental.enabled` has
    /// seeded it (first step).
    maintainer: Option<TreeMaintainer<D>>,
    /// Per-step forest observer (serving-layer publication point).
    snapshot_hook: Option<SnapshotHook<D>>,
    /// Steps run so far — the epoch the hook is stamped with.
    steps_run: u64,
}

impl<D: Data> Framework<D> {
    /// A framework over `particles` with `config`.
    pub fn new(config: Configuration, particles: Vec<Particle>) -> Framework<D> {
        Framework {
            config,
            telemetry: Telemetry::disabled(),
            flight: FlightRecorder::disabled(),
            master: particles,
            maintainer: None,
            snapshot_hook: None,
            steps_run: 0,
        }
    }

    /// Attaches a telemetry handle recording wall-clock phase spans.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a flight recorder sampled at every phase boundary
    /// (one [`FLIGHT_SERIES`] row after setup, one after traversal).
    pub fn with_flight_recorder(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self
    }

    /// Attaches a snapshot hook: called once per step with
    /// `(epoch, trees, universe)` right after the forest is built (or
    /// incrementally advanced), before leaf sharing consumes it. Both
    /// pipelines fire it, so a query service subscribed here serves
    /// exactly the forest each step traverses.
    pub fn with_snapshot_hook(
        mut self,
        hook: impl FnMut(u64, &[BuiltTree<D>], BoundingBox) + Send + 'static,
    ) -> Self {
        self.snapshot_hook = Some(Box::new(hook));
        self
    }

    /// Current particle state.
    pub fn particles(&self) -> &[Particle] {
        &self.master
    }

    /// Mutable particle state — for integration (drift/kick) between steps.
    pub fn particles_mut(&mut self) -> &mut Vec<Particle> {
        &mut self.master
    }

    /// Runs one step: builds the trees, hands the [`Step`] to `f` so the
    /// application can launch traversals (the paper's `traversal()`
    /// callback), then absorbs the updated particles. Returns `f`'s
    /// result and the step report.
    pub fn step<R>(&mut self, f: impl FnOnce(&mut Step<D>) -> R) -> (R, StepReport) {
        let particles = std::mem::take(&mut self.master);
        let epoch = self.steps_run;
        let mut step = if self.config.incremental.enabled {
            self.step_incremental(particles, epoch)
        } else {
            Step::build(&self.config, &self.telemetry, particles, epoch, &mut self.snapshot_hook)
        };
        self.steps_run += 1;
        if self.flight.is_enabled() {
            let rep = &step.report;
            self.flight.sample(&[
                epoch as f64,
                0.0,
                rep.seconds_decompose + rep.seconds_build + rep.seconds_update,
                rep.n_subtrees as f64,
                rep.n_buckets as f64,
                rep.round_migrated as f64,
            ]);
        }
        let r = f(&mut step);
        if self.flight.is_enabled() {
            let rep = &step.report;
            self.flight.sample(&[
                epoch as f64,
                1.0,
                rep.seconds_share + rep.seconds_traverse,
                rep.n_subtrees as f64,
                rep.n_buckets as f64,
                rep.round_migrated as f64,
            ]);
        }
        self.master = step.master;
        (r, step.report)
    }

    /// The incremental pipeline: seed a [`TreeMaintainer`] on the first
    /// step (a normal decomposition + build), then patch the maintained
    /// tree in place on every later step under the "incremental update"
    /// phase. Both paths feed the shared [`Step::from_trees`] tail, so
    /// traversal semantics are identical to a full rebuild.
    fn step_incremental(&mut self, particles: Vec<Particle>, epoch: u64) -> Step<D> {
        let mut report = StepReport::default();
        let trees = match self.maintainer.as_mut() {
            None => {
                // Seed = decompose + build once; charge it to build time
                // like the full pipeline's dominant stage.
                let t0 = std::time::Instant::now();
                let (maintainer, trees) = self.telemetry.wall_span(0, "tree build", None, || {
                    TreeMaintainer::seed(&self.config, particles, true)
                });
                report.seconds_build = t0.elapsed().as_secs_f64();
                self.maintainer = Some(maintainer);
                trees
            }
            Some(maintainer) => {
                let t0 = std::time::Instant::now();
                let (trees, round) =
                    self.telemetry
                        .wall_span(0, "incremental update", None, || maintainer.advance(particles));
                report.seconds_update = t0.elapsed().as_secs_f64();
                report.round_batches = round.n_batches;
                report.round_migrated = round.n_migrated;
                trees
            }
        };
        let maintainer = self.maintainer.as_ref().expect("seeded above");
        if let Some(h) = self.snapshot_hook.as_mut() {
            h(epoch, &trees, maintainer.universe());
        }
        report.update = Some(*maintainer.totals());
        let step = Step::from_trees(
            &self.config,
            &self.telemetry,
            trees,
            maintainer.partitioner(),
            maintainer.n_partitions(),
            maintainer.universe(),
            report,
        );
        // Patched trees must still satisfy every structural invariant a
        // fresh build does — checked at the phase boundary in debug runs.
        #[cfg(debug_assertions)]
        step.cache
            .audit_patched(self.config.bucket_size)
            .expect("incremental maintenance broke a cache-tree invariant");
        step
    }
}
