//! Property tests for the forest decomposition: boxes partition the
//! particle set exactly (no duplicated or lost ids, for every tree
//! type), ghost copies always identify owned originals and never enter
//! ownership, and the whole pipeline is deterministic.

use std::collections::{HashMap, HashSet};

use paratreet_core::{
    decompose_forest, exchange_ghosts, Configuration, DecompType, DomainSpec, Forest,
};
use paratreet_geometry::Vec3;
use paratreet_particles::Particle;
use paratreet_telemetry::Telemetry;
use paratreet_tree::{CountData, TreeType};
use proptest::prelude::*;

fn arb_particles(extent: f64) -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec((0.0..extent, 0.0..extent, 0.0..extent), 1..300).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y, z))| Particle::point_mass(i as u64, 1.0, Vec3::new(x, y, z)))
            .collect()
    })
}

fn owned_ids(f: &Forest) -> Vec<u64> {
    let mut ids: Vec<u64> = f
        .decomps
        .iter()
        .flat_map(|d| d.subtrees.iter().flat_map(|s| s.particles.iter().map(|p| p.id)))
        .collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forest_partitions_particles_exactly(
        ps in arb_particles(2.0),
        tree_idx in 0usize..4,
        decomp_idx in 0usize..4,
        tiles_x in 1usize..4,
        tiles_y in 1usize..3,
        periodic in any::<bool>(),
    ) {
        let config = Configuration {
            tree_type: [TreeType::Octree, TreeType::KdTree, TreeType::LongestDim, TreeType::BinaryOct][tree_idx],
            decomp_type: [DecompType::Sfc, DecompType::Oct, DecompType::Kd, DecompType::LongestDim][decomp_idx],
            bucket_size: 8,
            n_subtrees: 8,
            n_partitions: 8,
            ..Default::default()
        };
        let n = ps.len();
        // Tile size chosen so the 2.0-extent sample spans several tiles.
        let spec = DomainSpec::tiled([tiles_x, tiles_y, 1], 2.0 / tiles_x as f64, periodic);
        let f = decompose_forest(ps, &config, &spec);
        prop_assert_eq!(f.boxes.len(), tiles_x * tiles_y);
        prop_assert_eq!(f.n_owned.iter().sum::<usize>(), n, "ownership conserves particles");
        // No duplicate, no lost ids across boxes.
        let ids = owned_ids(&f);
        prop_assert_eq!(ids.len(), n);
        for (i, &id) in ids.iter().enumerate() {
            prop_assert_eq!(id, i as u64, "every id owned exactly once");
        }
        // Ownership respects the assignment rule: each box's particles
        // assign back to that box.
        for (bi, d) in f.decomps.iter().enumerate() {
            for s in &d.subtrees {
                for p in &s.particles {
                    prop_assert_eq!(f.spec.assign(p.pos, &f.boxes), bi);
                }
            }
        }
    }

    #[test]
    fn ghosts_identify_owned_originals_and_stay_out_of_ownership(
        ps in arb_particles(2.0),
        periodic in any::<bool>(),
        radius in 0.01f64..0.4,
    ) {
        let config = Configuration {
            tree_type: TreeType::Octree,
            bucket_size: 8,
            n_subtrees: 8,
            n_partitions: 8,
            ..Default::default()
        };
        let spec = DomainSpec::tiled([2, 1, 1], 1.0, periodic);
        let f = decompose_forest(ps, &config, &spec);
        let trees = f.build_trees::<CountData>(&config, false);
        let owned: HashSet<u64> = owned_ids(&f).into_iter().collect();
        let owner: HashMap<u64, usize> = f
            .decomps
            .iter()
            .enumerate()
            .flat_map(|(bi, d)| {
                d.subtrees
                    .iter()
                    .flat_map(move |s| s.particles.iter().map(move |p| (p.id, bi)))
            })
            .collect();
        let layer = exchange_ghosts(&f, &trees, radius, &Telemetry::disabled());
        let r2 = radius * radius;
        let mut n_ghosts = 0u64;
        for z in &layer.zones {
            for g in &z.particles {
                n_ghosts += 1;
                // A ghost is a flagged copy: its id identifies an owned
                // original in the zone's source box — it never becomes
                // a new owned particle.
                prop_assert!(owned.contains(&g.id), "ghost id {} must be owned", g.id);
                prop_assert_eq!(owner[&g.id], z.src, "ghosts come from their owner box");
                // And it lives within the ghost radius of its target.
                prop_assert!(
                    f.boxes[z.dst].dist_sq_to(g.pos) <= r2 + 1e-12,
                    "ghost outside the radius of its destination box"
                );
            }
        }
        prop_assert_eq!(n_ghosts, layer.stats.particles);
        // The exchange does not touch ownership.
        prop_assert_eq!(owned_ids(&f).len(), owned.len());
    }

    #[test]
    fn forest_decomposition_is_deterministic(
        ps in arb_particles(2.0),
        tree_idx in 0usize..4,
        periodic in any::<bool>(),
    ) {
        let config = Configuration {
            tree_type: [TreeType::Octree, TreeType::KdTree, TreeType::LongestDim, TreeType::BinaryOct][tree_idx],
            bucket_size: 8,
            n_subtrees: 8,
            n_partitions: 8,
            ..Default::default()
        };
        let spec = DomainSpec::tiled([2, 2, 1], 1.0, periodic);
        let a = decompose_forest(ps.clone(), &config, &spec);
        let b = decompose_forest(ps, &config, &spec);
        prop_assert_eq!(a.n_owned.clone(), b.n_owned.clone());
        prop_assert_eq!(a.routes.len(), b.routes.len());
        for (da, db) in a.decomps.iter().zip(&b.decomps) {
            prop_assert_eq!(da.subtrees.len(), db.subtrees.len());
            for (sa, sb) in da.subtrees.iter().zip(&db.subtrees) {
                prop_assert_eq!(sa.key, sb.key);
                let ida: Vec<u64> = sa.particles.iter().map(|p| p.id).collect();
                let idb: Vec<u64> = sb.particles.iter().map(|p| p.id).collect();
                prop_assert_eq!(ida, idb);
            }
        }
    }
}
