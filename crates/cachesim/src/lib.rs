//! A three-level data-cache simulator and traversal access-trace
//! generators — the substrate behind the Table II reproduction.
//!
//! The paper profiles ParaTreeT and ChaNGa with hardware counters on a
//! Stampede2 SKX node (L1D 32 KB, L2 1 MB, L3 33 MB). Hardware counters
//! are not portable, so this crate *simulates* the data-cache hierarchy:
//! [`hierarchy::CacheHierarchy`] models private L1D/L2 per CPU and a
//! shared L3 with LRU set-associative arrays, and [`trace`] replays the
//! memory-access stream of a Barnes-Hut gravity traversal in the two
//! styles Table II compares:
//!
//! * **transposed** (ParaTreeT): each tree node is brought in once and
//!   evaluated against every interested bucket — node state amortises,
//!   total accesses drop, and miss *rates* rise because the survivors
//!   are the hard misses;
//! * **per-bucket** (ChaNGa): the tree is walked once per bucket — node
//!   state is re-read per (node, bucket) pair, inflating access counts
//!   with easy hits.
//!
//! The replay uses the *real* tree and the *real* opening decisions, so
//! access counts are exact algorithmic quantities; only the address
//! layout and the cost weights are modelled.

pub mod hierarchy;
pub mod trace;

pub use hierarchy::{CacheHierarchy, HierarchyConfig, LevelStats};
pub use trace::{simulate_gravity, TraceConfig, TraceResult, TraceStyle};
