//! Planetesimal collision detection and the protoplanetary-disk case
//! study (paper §IV).
//!
//! The disk simulation tracks gravity between all bodies *and* tests
//! solid finite-radius planetesimals for collisions each step. Following
//! the ParaTreeT model, the application defines one combined `Data`
//! ([`DiskData`]) and two visitors over it — gravity and collision — and
//! runs both traversals in a single framework step.
//!
//! The case study's scientific output (Fig. 12) is the radial collision
//! profile of a disk perturbed by a giant planet, with mean-motion
//! resonances (3:1, 2:1, 5:3) marked; [`resonance_radius`] computes
//! those locations and [`CollisionProfile`] accumulates the histogram.

use crate::gravity::{grav_approx, grav_exact, CentroidData};
use paratreet_core::{
    Configuration, Framework, SpatialNodeView, TargetBucket, TraversalKind, Visitor,
};
use paratreet_geometry::{BoundingBox, Sphere, Vec3};
use paratreet_particles::gen::G;
use paratreet_particles::Particle;
use paratreet_tree::data::wire;
use paratreet_tree::Data;

/// Combined per-node state for the disk application: gravity moments
/// plus the bounds collision sweeps need.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiskData {
    /// Mass moments for Barnes-Hut gravity.
    pub centroid: CentroidData,
    /// Largest body radius in the subtree.
    pub max_radius: f64,
    /// Largest speed in the subtree (bounds swept volumes).
    pub max_speed: f64,
}

impl Data for DiskData {
    fn from_leaf(particles: &[Particle], bbox: &BoundingBox) -> Self {
        DiskData {
            centroid: CentroidData::from_leaf(particles, bbox),
            max_radius: particles.iter().map(|p| p.radius).fold(0.0, f64::max),
            max_speed: particles.iter().map(|p| p.vel.norm()).fold(0.0, f64::max),
        }
    }

    fn merge(&mut self, child: &Self) {
        self.centroid.merge(&child.centroid);
        self.max_radius = self.max_radius.max(child.max_radius);
        self.max_speed = self.max_speed.max(child.max_speed);
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.centroid.encode(out);
        wire::put_f64(out, self.max_radius);
        wire::put_f64(out, self.max_speed);
    }

    fn decode(input: &[u8]) -> Option<(Self, usize)> {
        let (centroid, mut off) = CentroidData::decode(input)?;
        let max_radius = wire::get_f64(input, &mut off)?;
        let max_speed = wire::get_f64(input, &mut off)?;
        Some((DiskData { centroid, max_radius, max_speed }, off))
    }
}

/// Barnes-Hut gravity over [`DiskData`] (delegates to the gravity
/// kernels; the disk's own visitor because the `Data` type differs).
pub struct DiskGravityVisitor {
    /// Opening angle.
    pub theta: f64,
}

impl Visitor for DiskGravityVisitor {
    type Data = DiskData;
    type State = ();

    fn open(&self, source: &SpatialNodeView<'_, DiskData>, target: &TargetBucket<()>) -> bool {
        let c = &source.data.centroid;
        if c.sum_mass == 0.0 {
            return false;
        }
        let sphere = Sphere::new(c.centroid(), c.opening_radius(self.theta));
        target.bbox.intersects_sphere(&sphere)
    }

    fn node(&self, source: &SpatialNodeView<'_, DiskData>, target: &mut TargetBucket<()>) {
        let c = &source.data.centroid;
        let centroid = c.centroid();
        let quad = c.quad_about_centroid();
        for p in &mut target.particles {
            let (acc, pot) = grav_approx(p.pos, centroid, c.sum_mass, &quad);
            p.acc += acc * G;
            p.potential += pot * G * p.mass;
        }
    }

    fn leaf(&self, source: &SpatialNodeView<'_, DiskData>, target: &mut TargetBucket<()>) {
        for p in &mut target.particles {
            for s in source.particles {
                if s.id == p.id {
                    continue;
                }
                let (acc, pot) = grav_exact(p.pos, s.pos, s.mass, p.softening.max(s.softening));
                p.acc += acc * G;
                p.potential += pot * G * p.mass;
            }
        }
    }
}

/// One detected collision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollisionEvent {
    /// Lower particle id of the pair.
    pub a: u64,
    /// Higher particle id of the pair.
    pub b: u64,
    /// Time of closest approach within the step, in `[0, dt]`.
    pub t: f64,
    /// Heliocentric distance of the pair at impact.
    pub radius: f64,
}

/// Collision-detection visitor: swept-sphere pair tests at leaves,
/// swept-box overlap pruning above (the "finite radius" test of §IV-A).
pub struct CollisionVisitor {
    /// Timestep over which motion is swept.
    pub dt: f64,
}

impl CollisionVisitor {
    /// Closest-approach test for one pair over `[0, dt]`.
    fn pair_collides(a: &Particle, b: &Particle, dt: f64) -> Option<(f64, f64)> {
        let rsum = a.radius + b.radius;
        if rsum <= 0.0 {
            return None;
        }
        let dr = b.pos - a.pos;
        let dv = b.vel - a.vel;
        let dv2 = dv.norm_sq();
        let t_star = if dv2 == 0.0 { 0.0 } else { (-dr.dot(dv) / dv2).clamp(0.0, dt) };
        let closest = dr + dv * t_star;
        if closest.norm_sq() <= rsum * rsum {
            let impact = a.pos + a.vel * t_star;
            Some((t_star, impact.norm()))
        } else {
            None
        }
    }

    /// A bucket's swept, radius-inflated bounding box.
    fn swept_box(target: &TargetBucket<Vec<CollisionEvent>>, dt: f64) -> BoundingBox {
        let mut b = BoundingBox::empty();
        for p in &target.particles {
            let margin = Vec3::splat(p.radius);
            b.merge(&BoundingBox::new(p.pos - margin, p.pos + margin));
            let moved = p.pos + p.vel * dt;
            b.merge(&BoundingBox::new(moved - margin, moved + margin));
        }
        b
    }
}

impl Visitor for CollisionVisitor {
    type Data = DiskData;
    type State = Vec<CollisionEvent>;

    fn open(
        &self,
        source: &SpatialNodeView<'_, DiskData>,
        target: &TargetBucket<Vec<CollisionEvent>>,
    ) -> bool {
        if source.data.centroid.sum_mass == 0.0 {
            return false;
        }
        // Inflate the source's tight box by its worst-case sweep and
        // body radius; test against the target's swept box.
        let margin = source.data.max_radius + source.data.max_speed * self.dt;
        let mut src = source.data.centroid.tight_box;
        src.lo -= Vec3::splat(margin);
        src.hi += Vec3::splat(margin);
        src.intersects(&Self::swept_box(target, self.dt))
    }

    fn node(&self, _s: &SpatialNodeView<'_, DiskData>, _t: &mut TargetBucket<Vec<CollisionEvent>>) {
        // A pruned subtree cannot collide with this bucket.
    }

    fn leaf(
        &self,
        source: &SpatialNodeView<'_, DiskData>,
        target: &mut TargetBucket<Vec<CollisionEvent>>,
    ) {
        for tp in &target.particles {
            for sp in source.particles {
                // Each unordered pair is reported once (by its lower id).
                if sp.id <= tp.id {
                    continue;
                }
                if let Some((t, radius)) = Self::pair_collides(tp, sp, self.dt) {
                    target.state.push(CollisionEvent { a: tp.id, b: sp.id, t, radius });
                }
            }
        }
    }
}

/// Orbital period around a central mass at semi-major axis `a`.
pub fn orbital_period(a: f64, central_mass: f64) -> f64 {
    std::f64::consts::TAU * (a * a * a / (G * central_mass)).sqrt()
}

/// Radius of the inner `j:k` mean-motion resonance with a planet at
/// `a_planet` (a body there orbits `j` times per `k` planet orbits):
/// `a = a_p (k/j)^(2/3)`. The paper's markers: 3:1 → 2.50 AU,
/// 2:1 → 3.27 AU, 5:3 → 3.70 AU for a planet at 5.2 AU.
pub fn resonance_radius(j: u32, k: u32, a_planet: f64) -> f64 {
    a_planet * (k as f64 / j as f64).powf(2.0 / 3.0)
}

/// Histogram of collisions against heliocentric distance (Fig. 12).
#[derive(Clone, Debug)]
pub struct CollisionProfile {
    /// Inner edge of the histogram.
    pub r_min: f64,
    /// Outer edge of the histogram.
    pub r_max: f64,
    /// Per-bin collision counts.
    pub bins: Vec<u64>,
    /// Total collisions recorded.
    pub total: u64,
}

impl CollisionProfile {
    /// An empty profile with `n_bins` radial bins.
    pub fn new(r_min: f64, r_max: f64, n_bins: usize) -> CollisionProfile {
        CollisionProfile { r_min, r_max, bins: vec![0; n_bins], total: 0 }
    }

    /// Records one collision at heliocentric distance `r`.
    pub fn record(&mut self, r: f64) {
        self.total += 1;
        if r < self.r_min || r >= self.r_max || self.bins.is_empty() {
            return;
        }
        let t = (r - self.r_min) / (self.r_max - self.r_min);
        let idx = ((t * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Bin centres, for plotting.
    pub fn bin_centers(&self) -> Vec<f64> {
        let w = (self.r_max - self.r_min) / self.bins.len().max(1) as f64;
        (0..self.bins.len()).map(|i| self.r_min + (i as f64 + 0.5) * w).collect()
    }
}

/// The disk-evolution driver: per step, one gravity traversal + one
/// collision traversal in the same framework step, leapfrog integration,
/// and perfect-merger resolution of detected collisions.
pub struct DiskSimulation {
    /// Framework over the disk particles.
    pub framework: Framework<DiskData>,
    /// Timestep.
    pub dt: f64,
    /// Opening angle for gravity.
    pub theta: f64,
    /// Mass of the central star (particle 0), for orbital periods.
    pub star_mass: f64,
    /// All collisions recorded so far.
    pub events: Vec<CollisionEvent>,
    first_step: bool,
}

impl DiskSimulation {
    /// A simulation over `particles` (particle 0 must be the star).
    pub fn new(config: Configuration, particles: Vec<Particle>, dt: f64) -> DiskSimulation {
        let star_mass = particles.first().map(|p| p.mass).unwrap_or(1.0);
        DiskSimulation {
            framework: Framework::new(config, particles),
            dt,
            theta: 0.7,
            star_mass,
            events: Vec::new(),
            first_step: true,
        }
    }

    /// Advances one step; returns the collisions detected in it.
    pub fn step(&mut self) -> Vec<CollisionEvent> {
        let dt = self.dt;
        let theta = self.theta;
        // Leapfrog: complete the previous step's kick, drift, then
        // compute new accelerations and kick again.
        if !self.first_step {
            for p in self.framework.particles_mut().iter_mut() {
                p.vel += p.acc * (0.5 * dt);
                p.pos += p.vel * dt;
            }
        }
        self.first_step = false;
        for p in self.framework.particles_mut().iter_mut() {
            p.acc = Vec3::ZERO;
            p.potential = 0.0;
        }

        let gravity = DiskGravityVisitor { theta };
        let collisions = CollisionVisitor { dt };
        let (step_events, _report) = self.framework.step(|step| {
            step.traverse(&gravity, TraversalKind::TopDown);
            let (states, _) = step.traverse(&collisions, TraversalKind::TopDown);
            let mut evs: Vec<CollisionEvent> = states.into_iter().flatten().collect();
            evs.sort_by(|x, y| x.a.cmp(&y.a).then(x.b.cmp(&y.b)));
            evs.dedup_by(|x, y| x.a == y.a && x.b == y.b);
            evs
        });

        for p in self.framework.particles_mut().iter_mut() {
            p.vel += p.acc * (0.5 * dt);
        }

        // Resolve collisions by perfect merger (momentum conserving).
        // Only *resolved* events are recorded and returned: a detected
        // pair whose body already merged this step is skipped, and the
        // survivors are re-detected next step if they still overlap.
        let step_events =
            if step_events.is_empty() { step_events } else { self.merge(&step_events) };
        self.events.extend(step_events.iter().copied());
        step_events
    }

    fn merge(&mut self, events: &[CollisionEvent]) -> Vec<CollisionEvent> {
        let particles = self.framework.particles_mut();
        let mut absorbed: Vec<u64> = Vec::new();
        let mut resolved = Vec::with_capacity(events.len());
        for ev in events {
            if absorbed.contains(&ev.a) || absorbed.contains(&ev.b) {
                continue; // one merger per body per step
            }
            let ib = particles.iter().position(|p| p.id == ev.b);
            let ia = particles.iter().position(|p| p.id == ev.a);
            if let (Some(ia), Some(ib)) = (ia, ib) {
                let b = particles[ib];
                let a = &mut particles[ia];
                let m = a.mass + b.mass;
                a.vel = (a.vel * a.mass + b.vel * b.mass) / m;
                a.pos = (a.pos * a.mass + b.pos * b.mass) / m;
                a.radius = (a.radius.powi(3) + b.radius.powi(3)).cbrt();
                a.mass = m;
                absorbed.push(ev.b);
                resolved.push(*ev);
            }
        }
        particles.retain(|p| !absorbed.contains(&p.id));
        resolved
    }

    /// The collision profile over the recorded events.
    pub fn profile(&self, r_min: f64, r_max: f64, bins: usize) -> CollisionProfile {
        let mut prof = CollisionProfile::new(r_min, r_max, bins);
        for ev in &self.events {
            prof.record(ev.radius);
        }
        prof
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_particles::gen::{self, DiskParams};
    use paratreet_tree::TreeType;

    #[test]
    fn resonances_match_paper_locations() {
        // Planet at 5.2 AU: 2:1 resonance "at 3.27 AU" (§IV-A).
        assert!((resonance_radius(2, 1, 5.2) - 3.27).abs() < 0.01);
        assert!((resonance_radius(3, 1, 5.2) - 2.50).abs() < 0.01);
        assert!((resonance_radius(5, 3, 5.2) - 3.70).abs() < 0.01);
    }

    #[test]
    fn pair_collision_detection() {
        let mut a = Particle::point_mass(0, 1.0, Vec3::ZERO);
        let mut b = Particle::point_mass(1, 1.0, Vec3::new(1.0, 0.0, 0.0));
        a.radius = 0.1;
        b.radius = 0.1;
        // Static and apart: no collision.
        assert!(CollisionVisitor::pair_collides(&a, &b, 1.0).is_none());
        // Approaching head-on: collides within the step.
        b.vel = Vec3::new(-1.0, 0.0, 0.0);
        let (t, _r) = CollisionVisitor::pair_collides(&a, &b, 1.0).unwrap();
        assert!(t > 0.0 && t <= 1.0);
        // Approaching but step too short: no collision yet.
        assert!(CollisionVisitor::pair_collides(&a, &b, 0.1).is_none());
        // Already overlapping: collides at t = 0.
        let c = Particle { pos: Vec3::new(0.15, 0.0, 0.0), radius: 0.1, ..a };
        let (t0, _) = CollisionVisitor::pair_collides(&a, &c, 1.0).unwrap();
        assert_eq!(t0, 0.0);
    }

    #[test]
    fn traversal_finds_all_crossing_pairs() {
        // A ring of co-orbital particles with two deliberately
        // overlapping pairs; the traversal must find exactly those.
        let mut ps = gen::keplerian_disk(400, 21, DiskParams::default());
        // Create two overlapping pairs with huge radii.
        ps[10].radius = 0.2;
        ps[11].pos = ps[10].pos + Vec3::new(0.05, 0.0, 0.0);
        ps[11].vel = ps[10].vel;
        ps[11].radius = 0.2;
        ps[50].radius = 0.15;
        ps[51].pos = ps[50].pos + Vec3::new(0.01, 0.0, 0.0);
        ps[51].vel = ps[50].vel;
        ps[51].radius = 0.15;
        let expect: Vec<(u64, u64)> = vec![
            (ps[10].id.min(ps[11].id), ps[10].id.max(ps[11].id)),
            (ps[50].id.min(ps[51].id), ps[50].id.max(ps[51].id)),
        ];

        // Brute-force reference over all pairs.
        let dt = 1e-3;
        let mut brute: Vec<(u64, u64)> = Vec::new();
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                if CollisionVisitor::pair_collides(&ps[i], &ps[j], dt).is_some() {
                    brute.push((ps[i].id.min(ps[j].id), ps[i].id.max(ps[j].id)));
                }
            }
        }
        brute.sort_unstable();

        let config = Configuration {
            tree_type: TreeType::LongestDim,
            decomp_type: paratreet_core::DecompType::LongestDim,
            bucket_size: 8,
            n_subtrees: 8,
            n_partitions: 8,
            ..Default::default()
        };
        let mut fw: Framework<DiskData> = Framework::new(config, ps);
        let v = CollisionVisitor { dt };
        let (mut found, _) = fw.step(|step| {
            let (states, _) = step.traverse(&v, TraversalKind::TopDown);
            let evs: Vec<(u64, u64)> =
                states.into_iter().flatten().map(|e| (e.a.min(e.b), e.a.max(e.b))).collect();
            evs
        });
        found.sort_unstable();
        found.dedup();
        assert_eq!(found, brute);
        for pair in expect {
            assert!(found.contains(&pair), "missing expected pair {pair:?}");
        }
    }

    #[test]
    fn incremental_maintenance_survives_mergers() {
        // The collision driver *removes* particles on merger, so the
        // maintained tree's population changes under it; the maintainer
        // must fall back to a rebuild instead of patching (or dying).
        let mut ps = gen::keplerian_disk(300, 21, DiskParams::default());
        for (i, j) in [(10usize, 11usize), (50, 51), (120, 121)] {
            ps[i].radius = 0.2;
            ps[j].pos = ps[i].pos + Vec3::new(0.03, 0.0, 0.0);
            ps[j].vel = ps[i].vel;
            ps[j].radius = 0.2;
        }
        let total_mass: f64 = ps.iter().map(|p| p.mass).sum();
        let n0 = ps.len();
        let mut config = Configuration {
            tree_type: TreeType::LongestDim,
            decomp_type: paratreet_core::DecompType::LongestDim,
            bucket_size: 8,
            n_subtrees: 8,
            n_partitions: 8,
            ..Default::default()
        };
        config.incremental.enabled = true;
        let dt = orbital_period(2.0, ps[0].mass) / 100.0;
        let mut sim = DiskSimulation::new(config, ps, dt);
        for _ in 0..4 {
            sim.step();
        }
        assert!(!sim.events.is_empty(), "engineered overlaps must merge");
        assert_eq!(sim.framework.particles().len(), n0 - sim.events.len());
        let mass_after: f64 = sim.framework.particles().iter().map(|p| p.mass).sum();
        assert!((mass_after - total_mass).abs() < 1e-9 * total_mass, "mergers conserve mass");
    }

    #[test]
    fn disk_data_wire_roundtrip() {
        let ps = gen::keplerian_disk(50, 3, DiskParams::default());
        let d = DiskData::from_leaf(&ps, &BoundingBox::empty());
        let mut buf = Vec::new();
        d.encode(&mut buf);
        let (back, used) = DiskData::decode(&buf).unwrap();
        assert_eq!(back, d);
        assert_eq!(used, buf.len());
        assert!(d.max_radius > 0.0);
        assert!(d.max_speed > 0.0);
    }

    #[test]
    fn merger_conserves_mass_and_momentum() {
        let params = DiskParams::default();
        let ps = gen::keplerian_disk(100, 9, params);
        let config = Configuration {
            tree_type: TreeType::LongestDim,
            decomp_type: paratreet_core::DecompType::LongestDim,
            bucket_size: 8,
            ..Default::default()
        };
        let mut sim = DiskSimulation::new(config, ps, 1e-3);
        // Force a merger by overlapping two planetesimals.
        {
            let parts = sim.framework.particles_mut();
            let p5 = parts[5];
            parts[6].pos = p5.pos;
            parts[6].vel = p5.vel;
        }
        let mass_before: f64 = sim.framework.particles().iter().map(|p| p.mass).sum();
        let mom_before: Vec3 =
            sim.framework.particles().iter().map(|p| p.vel * p.mass).fold(Vec3::ZERO, |a, v| a + v);
        let n_before = sim.framework.particles().len();
        let events = sim.step();
        assert!(!events.is_empty(), "overlapping bodies must collide");
        let n_after = sim.framework.particles().len();
        assert!(n_after < n_before);
        let mass_after: f64 = sim.framework.particles().iter().map(|p| p.mass).sum();
        assert!((mass_after - mass_before).abs() < 1e-12);
        // Momentum changes only by the gravity kick, which is equal and
        // opposite pairwise; compare against a fresh momentum sum with
        // generous tolerance (the star dominates).
        let mom_after: Vec3 =
            sim.framework.particles().iter().map(|p| p.vel * p.mass).fold(Vec3::ZERO, |a, v| a + v);
        assert!((mom_after - mom_before).norm() < 1e-2 * mom_before.norm().max(1.0));
    }

    #[test]
    fn profile_bins_collisions() {
        let mut prof = CollisionProfile::new(2.0, 4.0, 4);
        prof.record(2.1);
        prof.record(2.4);
        prof.record(3.9);
        prof.record(5.0); // outside: counted in total only
        assert_eq!(prof.total, 4);
        assert_eq!(prof.bins, vec![2, 0, 0, 1]);
        assert_eq!(prof.bin_centers().len(), 4);
        assert!((prof.bin_centers()[0] - 2.25).abs() < 1e-12);
    }

    #[test]
    fn disk_orbits_remain_bound_over_steps() {
        let params = DiskParams::default();
        let ps = gen::keplerian_disk(200, 13, params);
        let config = Configuration {
            tree_type: TreeType::LongestDim,
            decomp_type: paratreet_core::DecompType::LongestDim,
            bucket_size: 16,
            n_subtrees: 4,
            n_partitions: 4,
            ..Default::default()
        };
        // dt ~ 1/100 of the inner orbital period.
        let dt = orbital_period(params.r_in, params.star_mass) / 100.0;
        let mut sim = DiskSimulation::new(config, ps, dt);
        for _ in 0..20 {
            sim.step();
        }
        // No planetesimal should have been ejected or fallen into the
        // star over 20 small steps. (The framework reorders particles
        // into tree order, so select planetesimals by id, not position.)
        for p in sim.framework.particles().iter().filter(|p| p.id >= 2) {
            let r = (p.pos.x * p.pos.x + p.pos.y * p.pos.y).sqrt();
            assert!(r > 1.0 && r < 10.0, "planetesimal at r = {r}");
        }
    }
}
