//! Structured service errors — admission control, deadlines, and the
//! supervision layer all speak through these. No path in the service
//! answers a client with a panic: every way a request can fail is a
//! [`ServeError`] variant a client can match on.

use std::fmt;

/// Why the service declined — or failed — a submission or a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the batch: the work queue was at
    /// capacity under the depth policy (the `Shed` fallback knob, or
    /// the hard cap behind cost-based admission). Carries the observed
    /// depth and the bound so clients can implement informed
    /// retry/backoff.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// Cost-based admission shed the batch: the predicted completion
    /// time (queued backlog plus this batch's predicted service time)
    /// exceeds the batch's deadline budget — or, with no deadline, the
    /// configured backlog-time bound. Retrying immediately cannot
    /// help; the deadline will not move.
    OverBudget {
        /// Predicted nanoseconds until this batch would complete.
        predicted_ns: u64,
        /// The budget it had to fit in (deadline remainder or the
        /// backlog bound), nanoseconds.
        budget_ns: u64,
    },
    /// The request's deadline expired while it waited in the queue;
    /// it was dropped at pop time instead of being executed uselessly.
    /// Carries how late it already was when a worker saw it.
    DeadlineExceeded {
        /// Nanoseconds past the deadline at pop time.
        late_ns: u64,
    },
    /// The worker executing this request's batch panicked. The panic
    /// was isolated (caught at the batch boundary) and the worker
    /// respawned; the request itself was not answered and may be
    /// safely retried.
    WorkerPanicked,
    /// No snapshot has been published yet; there is nothing to query.
    NotReady,
    /// The service is shutting down; no further work is accepted.
    ShuttingDown,
}

impl ServeError {
    /// True for errors a client may reasonably retry after backoff
    /// (transient pressure or startup), false for errors retrying
    /// cannot fix ([`ServeError::OverBudget`]: the deadline will not
    /// move; [`ServeError::ShuttingDown`]: the service is going away).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. } | ServeError::NotReady | ServeError::WorkerPanicked
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            ServeError::OverBudget { predicted_ns, budget_ns } => write!(
                f,
                "over budget: predicted completion in {predicted_ns}ns exceeds budget {budget_ns}ns"
            ),
            ServeError::DeadlineExceeded { late_ns } => {
                write!(f, "deadline exceeded: {late_ns}ns late at pop time")
            }
            ServeError::WorkerPanicked => write!(f, "worker panicked executing this batch"),
            ServeError::NotReady => write!(f, "no snapshot published yet"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}
