//! Property-based invariants for batch tree updates.
//!
//! The batch-apply contract: applying one grouped escapee batch must
//! produce *exactly* the tree that applying the same particles one at a
//! time (in the same order) produces — structure, particle order, and
//! accumulated `Data` all bit-identical — for every tree type, bucket
//! size, and drift pattern. And with zero motion, a maintained tree must
//! flatten back to the fresh builder's arena unchanged.

use paratreet_geometry::Vec3;
use paratreet_particles::{Particle, ParticleVec};
use paratreet_tree::update::UpdatableTree;
use paratreet_tree::{BuiltTree, CountData, TreeBuilder, TreeType};
use proptest::prelude::*;

fn arb_particles() -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0), 8..250).prop_map(
        |pts| {
            pts.into_iter()
                .enumerate()
                .map(|(i, (x, y, z))| Particle::point_mass(i as u64, 1.0, Vec3::new(x, y, z)))
                .collect()
        },
    )
}

fn arb_tree_type() -> impl Strategy<Value = TreeType> {
    prop_oneof![
        Just(TreeType::Octree),
        Just(TreeType::KdTree),
        Just(TreeType::LongestDim),
        Just(TreeType::BinaryOct)
    ]
}

fn build(ps: Vec<Particle>, tree_type: TreeType, bucket: usize) -> BuiltTree<CountData> {
    let bbox = ps.bounding_box().padded(1e-9);
    let bbox = if matches!(tree_type, TreeType::Octree | TreeType::BinaryOct) {
        bbox.bounding_cube()
    } else {
        bbox
    };
    TreeBuilder::new(tree_type).bucket_size(bucket).build::<CountData>(ps, bbox)
}

/// Deterministic per-particle drift, clamped to stay inside `t`'s root
/// box so every escapee remains insertable into the same tree.
fn drifted(master: &[Particle], lo: Vec3, hi: Vec3, seed: u64, scale: f64) -> Vec<Particle> {
    let extent = hi - lo;
    master
        .iter()
        .map(|p| {
            let mut p = *p;
            let h = (seed ^ p.id).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let d = Vec3::new(
                ((h >> 1 & 0xFFFF) as f64 / 65_535.0 - 0.5) * scale * extent.x,
                ((h >> 17 & 0xFFFF) as f64 / 65_535.0 - 0.5) * scale * extent.y,
                ((h >> 33 & 0xFFFF) as f64 / 65_535.0 - 0.5) * scale * extent.z,
            );
            p.pos += d;
            p.pos.x = p.pos.x.clamp(lo.x, hi.x);
            p.pos.y = p.pos.y.clamp(lo.y, hi.y);
            p.pos.z = p.pos.z.clamp(lo.z, hi.z);
            p
        })
        .collect()
}

fn assert_trees_identical(a: &BuiltTree<CountData>, b: &BuiltTree<CountData>) {
    assert_eq!(a.nodes.len(), b.nodes.len());
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.shape, y.shape);
        assert_eq!(x.children, y.children);
        assert_eq!(x.n_particles, y.n_particles);
        assert_eq!(&x.data, &y.data);
    }
    assert_eq!(&a.particles, &b.particles);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Batch apply ≡ sequential apply: classify the same drifted master
    // twice, then insert the escapees as one grouped batch on one tree
    // and one at a time (same order) on the other. After repair, both
    // must flatten to bit-identical arenas.
    #[test]
    fn batch_apply_equals_sequential_under_drift(
        ps in arb_particles(),
        tree_type in arb_tree_type(),
        bucket in 1usize..16,
        seed in 0u64..1_000,
        scale in 0.0f64..0.4,
    ) {
        let built = build(ps, tree_type, bucket);
        let (lo, hi) = (built.root().bbox.lo, built.root().bbox.hi);
        let master = drifted(&built.particles, lo, hi, seed, scale);

        let mut batched = UpdatableTree::from_built(&built, tree_type, bucket, 0);
        let mut sequential = UpdatableTree::from_built(&built, tree_type, bucket, 0);

        let ca = batched.classify(&master).unwrap();
        let cb = sequential.classify(&master).unwrap();
        prop_assert_eq!(ca.escapees.len(), cb.escapees.len());

        // Canonical application order (the maintainer sorts batches by
        // (key, id); ids are unique so id alone is a total order here).
        let mut batch = ca.escapees;
        batch.sort_unstable_by_key(|p| p.id);
        let mut ordered = cb.escapees;
        ordered.sort_unstable_by_key(|p| p.id);

        batched.insert_batch(batch).unwrap();
        for p in ordered {
            sequential.insert(p).unwrap();
        }
        batched.repair(0.7).unwrap();
        sequential.repair(0.7).unwrap();

        assert_trees_identical(&batched.flatten().unwrap(), &sequential.flatten().unwrap());
    }

    // Zero motion: classify against an unchanged master, repair, and
    // flatten — the result must be the fresh builder's arena, exactly.
    #[test]
    fn zero_motion_flatten_is_bit_identical_to_fresh_build(
        ps in arb_particles(),
        tree_type in arb_tree_type(),
        bucket in 1usize..16,
    ) {
        let built = build(ps, tree_type, bucket);
        let mut t = UpdatableTree::from_built(&built, tree_type, bucket, 0);
        let c = t.classify(&built.particles.clone()).unwrap();
        prop_assert_eq!(c.n_moved, 0);
        prop_assert_eq!(c.escapees.len(), 0);
        t.repair(0.7).unwrap();
        assert_trees_identical(&t.flatten().unwrap(), &built);
    }
}
