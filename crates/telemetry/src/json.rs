//! A tiny self-contained JSON value: builder, writer, and parser.
//!
//! The workspace's `serde` is an offline marker shim (see
//! `shims/serde`), so anything that needs real JSON — the metrics dump,
//! the Chrome trace exporter, and the trace-schema validator — goes
//! through this module instead. Output is deterministic: object keys
//! keep insertion order, and floats use Rust's shortest round-trip
//! formatting, so identical values always produce identical bytes.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats serialise as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters).
    U64(u64),
    /// A float (times, fractions).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::push`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object; panics on non-objects.
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    /// Looks a field up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(u) => Some(*u as f64),
            Json::F64(f) => Some(*f),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(u) => write!(f, "{u}"),
            Json::F64(x) if !x.is_finite() => f.write_str("null"),
            Json::F64(x) => write!(f, "{x}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a JSON document. Used by the trace-schema validator and the
/// round-trip tests; strict enough for machine-produced JSON (no
/// comments, no trailing commas).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if let Ok(u) = text.parse::<u64>() {
        return Ok(Json::U64(u));
    }
    text.parse::<f64>().map(Json::F64).map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_escapes() {
        let mut o = Json::obj();
        o.push("name", Json::Str("a\"b\\c\nd".to_string()));
        o.push("n", Json::U64(3));
        o.push("x", Json::F64(0.5));
        o.push("bad", Json::F64(f64::NAN));
        o.push("list", Json::Arr(vec![Json::Bool(true), Json::Null]));
        assert_eq!(
            o.to_string(),
            r#"{"name":"a\"b\\c\nd","n":3,"x":0.5,"bad":null,"list":[true,null]}"#
        );
    }

    #[test]
    fn round_trips() {
        let text = r#"{"a":[1,2.5,"xA",{"b":null,"c":false}],"d":-3.25e2}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-325.0));
        let rewritten = v.to_string();
        assert_eq!(parse(&rewritten).unwrap(), v);
    }

    #[test]
    fn float_output_is_shortest_roundtrip() {
        assert_eq!(Json::F64(0.1).to_string(), "0.1");
        assert_eq!(parse(&Json::F64(1e-9).to_string()).unwrap().as_f64(), Some(1e-9));
        assert_eq!(parse("0.1").unwrap().as_f64(), Some(0.1));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"open").is_err());
    }
}
