//! Ablation: the Partitions–Subtrees model vs tree-bound decomposition
//! (§II-C).
//!
//! "At the boundaries of decomposed Partitions, only buckets need be
//! split up, and not tree segments... only split leaf nodes need to be
//! communicated across processes, not their whole path to the root."
//!
//! For an SFC decomposition of an octree, this harness counts, on the
//! real tree:
//!
//! * **split leaves** — leaves whose particles span a partition
//!   boundary: what ParaTreeT duplicates (bucket copies only),
//! * **branch nodes** — tree nodes (of any depth) whose particle range
//!   spans a boundary: what a traditional tree-bound decomposition
//!   duplicates across ranks and must merge during the build,
//!
//! and the corresponding communication bytes. The gap widens as the
//! partition count grows — the paper's strong-scaling argument.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin ablate_partitions_subtrees -- \
//!     --particles 50000
//! ```

use paratreet_apps::gravity::CentroidData;
use paratreet_bench::{fmt_bytes, Args};
use paratreet_core::{decompose, Configuration, DecompType};
use paratreet_particles::gen;
use paratreet_particles::io::PARTICLE_WIRE_BYTES;
use paratreet_tree::{BuiltTree, TreeBuilder, TreeType};

/// Bytes a traditional code ships per duplicated branch node (its
/// moments and bookkeeping).
const BRANCH_NODE_BYTES: u64 = 160;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 50_000);
    let seed = args.get_u64("seed", 23);

    println!("Ablation: Partitions-Subtrees vs tree-bound decomposition");
    println!("({n} clustered particles, octree + SFC decomposition)\n");
    println!(
        "{:>11} {:>12} {:>13} {:>13} {:>14} {:>12}",
        "partitions", "split leaves", "leaf bytes", "branch nodes", "branch bytes", "ratio"
    );
    println!("{}", "-".repeat(80));

    for n_partitions in [4usize, 16, 64, 256, 1024] {
        let particles = gen::clustered(n, 6, seed, 1.0, 1.0);
        let config = Configuration {
            decomp_type: DecompType::Sfc,
            tree_type: TreeType::Octree,
            n_partitions,
            n_subtrees: 1,
            bucket_size: 16,
            ..Default::default()
        };
        let decomp = decompose(particles, &config);
        // One monolithic tree: the *global* tree both schemes share.
        let piece = decomp.subtrees.into_iter().next().expect("one piece");
        let tree: BuiltTree<CentroidData> = TreeBuilder {
            root_key: piece.key,
            root_depth: piece.depth,
            ..TreeBuilder::new(TreeType::Octree)
        }
        .bucket_size(16)
        .build(piece.particles, piece.bbox);

        // Walk every node; count boundary-spanning nodes and leaves.
        // A node spans a boundary iff its particles map to >1 partition.
        let mut split_leaves = 0u64;
        let mut split_leaf_particles = 0u64;
        let mut branch_nodes = 0u64;
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            let node = tree.node(i);
            if node.n_particles == 0 {
                continue;
            }
            // The particle range of any subtree is contiguous in the
            // reordered array; find it via the leaves below.
            let (start, end) = node_range(&tree, i);
            let first = decomp.partitioner.assign(&tree.particles[start]);
            let last = decomp.partitioner.assign(&tree.particles[end - 1]);
            let spans = first != last;
            if spans {
                branch_nodes += 1;
                if node.is_leaf() {
                    split_leaves += 1;
                    split_leaf_particles += node.n_particles as u64;
                }
            }
            for c in node.child_indices() {
                stack.push(c);
            }
        }

        let leaf_bytes = split_leaf_particles * PARTICLE_WIRE_BYTES as u64;
        let branch_bytes = branch_nodes * BRANCH_NODE_BYTES;
        println!(
            "{:>11} {:>12} {:>13} {:>13} {:>14} {:>11.1}x",
            n_partitions,
            split_leaves,
            fmt_bytes(leaf_bytes),
            branch_nodes,
            fmt_bytes(branch_bytes),
            branch_nodes as f64 / split_leaves.max(1) as f64
        );
    }
    println!();
    println!("split leaves (ParaTreeT's cost) stay near the partition count while");
    println!("branch nodes (tree-bound cost: every duplicated root path) grow with");
    println!("depth x partitions — the synchronization the model eliminates.");
}

/// The contiguous particle range beneath node `i`.
fn node_range(tree: &BuiltTree<CentroidData>, i: u32) -> (usize, usize) {
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    let mut stack = vec![i];
    while let Some(j) = stack.pop() {
        let node = tree.node(j);
        if let Some(r) = node.bucket_range() {
            lo = lo.min(r.start);
            hi = hi.max(r.end);
        }
        for c in node.child_indices() {
            stack.push(c);
        }
    }
    (lo, hi.max(lo))
}
