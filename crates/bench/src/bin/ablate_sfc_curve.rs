//! Ablation: Morton vs Hilbert space-filling curve for SFC decomposition.
//!
//! Morton keys are what the hashed-octree tradition uses (and what maps
//! onto octree digits); production codes like ChaNGa decompose along a
//! Peano–Hilbert curve instead because its equal-count slices are more
//! compact — less partition surface means fewer remote fetches during
//! traversal and fewer buckets shared across ranks. This harness
//! measures exactly those quantities on the machine model.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin ablate_sfc_curve -- \
//!     --particles 40000 --procs 13
//! ```

use paratreet_apps::gravity::GravityVisitor;
use paratreet_bench::{fmt_bytes, fmt_seconds, harness_telemetry, write_telemetry_outputs, Args};
use paratreet_core::{CacheModel, Configuration, DistributedEngine, SfcCurve, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 40_000);
    let seed = args.get_u64("seed", 47);
    // A prime process count keeps curve slices misaligned with octants,
    // which is where the curves genuinely differ.
    let procs = args.get_usize("procs", 13);

    let particles = gen::uniform_cube(n, seed, 1.0, 1.0);
    let visitor = GravityVisitor::default();

    println!("Ablation: SFC curve for decomposition, {n} uniform particles");
    println!("(Stampede2 model, {procs} processes x 24 workers, Barnes-Hut)\n");
    println!(
        "{:>9} {:>10} {:>12} {:>14} {:>12} {:>8}",
        "curve", "requests", "fill bytes", "shared buckets", "makespan", "util"
    );
    println!("{}", "-".repeat(72));

    let telemetry = harness_telemetry(&args, true);
    let mut last_metrics = None;
    for curve in [SfcCurve::Morton, SfcCurve::Hilbert] {
        let config = Configuration { sfc: curve, bucket_size: 16, ..Default::default() };
        let mut machine = MachineSpec::stampede2(procs);
        machine.workers_per_rank = 24;
        let _ = telemetry.drain(); // keep only the final curve's spans
        let engine = DistributedEngine::new(
            machine,
            config,
            CacheModel::WaitFree,
            TraversalKind::TopDown,
            &visitor,
        )
        .with_telemetry(telemetry.clone());
        let rep = engine.run_iteration(particles.clone());
        println!(
            "{:>9} {:>10} {:>12} {:>14} {:>12} {:>7.1}%",
            curve.name(),
            rep.cache.requests_sent,
            fmt_bytes(rep.cache.bytes_received),
            rep.n_shared_buckets,
            fmt_seconds(rep.makespan),
            rep.utilization * 100.0
        );
        last_metrics = Some(rep.metrics);
    }
    write_telemetry_outputs(&args, &telemetry, last_metrics.as_ref());
    println!();
    println!("expected: the Hilbert curve's compact slices need fewer remote");
    println!("fetches and share fewer buckets across ranks than Morton slices.");
}
