//! Snapshot-format robustness: arbitrary bytes never panic the parser,
//! and round-trips are exact for any particle contents.

use paratreet_geometry::Vec3;
use paratreet_particles::io;
use paratreet_particles::Particle;
use proptest::prelude::*;

fn arb_particle() -> impl Strategy<Value = Particle> {
    (
        any::<u64>(),
        -1e12f64..1e12,
        prop::array::uniform3(-1e9f64..1e9),
        prop::array::uniform3(-1e6f64..1e6),
        0.0f64..1e3,
    )
        .prop_map(|(id, mass, pos, vel, smoothing)| Particle {
            id,
            mass,
            pos: Vec3::from(pos),
            vel: Vec3::from(vel),
            smoothing,
            density: mass.abs() * 0.5,
            pressure: smoothing * 2.0,
            internal_energy: 1.5,
            radius: smoothing * 0.1,
            softening: 1e-3,
            potential: -mass,
            acc: Vec3::splat(0.25),
            key: id.rotate_left(7),
        })
}

proptest! {
    #[test]
    fn snapshot_roundtrip_is_exact(ps in prop::collection::vec(arb_particle(), 0..64)) {
        let bytes = io::to_bytes(&ps);
        let back = io::from_bytes(bytes).unwrap();
        prop_assert_eq!(ps, back);
    }

    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = io::from_bytes(bytes::Bytes::from(data)); // Err or Ok, never panic
    }

    #[test]
    fn particle_wire_roundtrip(p in arb_particle(), prefix in 0usize..16) {
        let mut buf = vec![0u8; prefix];
        io::put_particle(&mut buf, &p);
        let mut off = prefix;
        prop_assert_eq!(io::get_particle(&buf, &mut off), Some(p));
        prop_assert_eq!(off, buf.len());
    }

    #[test]
    fn csv_row_count_matches(ps in prop::collection::vec(arb_particle(), 0..32)) {
        let mut out = Vec::new();
        io::write_csv(&mut out, &ps).unwrap();
        let text = String::from_utf8(out).unwrap();
        prop_assert_eq!(text.lines().count(), ps.len() + 1);
    }
}
