//! Spatial tree construction and the `Data` accumulation abstraction.
//!
//! This crate implements the lowest layer of the paper's abstraction
//! stack: *trees* and their *Data*. It provides
//!
//! * the [`Data`] trait — the paper's three-function interface
//!   (`Data(particles, n)`, `Data()`, `operator+=`) that extracts
//!   application state from the particle set into tree nodes and
//!   accumulates it from the leaves to the root (§II-A-1),
//! * [`TreeType`] — the built-in tree types: octree, k-d
//!   (axis-cycling median splits), and the longest-dimension tree from
//!   the planetary-disk case study (§IV-B),
//! * [`build::TreeBuilder`] — sequential and rayon-parallel top-down
//!   builds that reorder particles so every leaf owns a contiguous
//!   bucket, then accumulate `Data` bottom-up,
//! * [`node::BuiltTree`] — the arena the build produces, which the cache
//!   layer grafts into the per-process global tree,
//! * [`query`] — traversal-agnostic point-query kernels (kNN / ball /
//!   range / raycast) over a forest of built arenas, shared by the kNN
//!   application and the `paratreet-serve` query service.

pub mod build;
pub mod data;
pub mod node;
pub mod query;
pub mod types;
pub mod update;

pub use build::TreeBuilder;
pub use data::{CountData, Data};
pub use node::{BuildNode, BuiltTree, NodeIdx, NodeShape};
pub use query::{KnnHeap, Neighbor, QueryScratch, RayHit};
pub use types::TreeType;
pub use update::{Classified, RepairReport, UpdatableTree, UpdateError, UpdateStats};
