//! Property tests for the discrete-event machine: time never runs
//! backwards, work is conserved into the ledger, exclusive resources
//! serialise, and identical inputs replay identical timelines.

use paratreet_runtime::{MachineSpec, Phase, Sim};
use proptest::prelude::*;

fn arb_tasks() -> impl Strategy<Value = Vec<(u8, f64)>> {
    prop::collection::vec((0u8..4, 1e-6f64..1e-2), 1..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn events_fire_in_nondecreasing_time(tasks in arb_tasks()) {
        let mut sim: Sim<usize> = Sim::new(MachineSpec::test(4, 2));
        for (i, (rank, cost)) in tasks.iter().enumerate() {
            sim.spawn(*rank as u32, Phase::Other, *cost, i);
        }
        let mut times = Vec::new();
        sim.run(|s, _| times.push(s.now()));
        for w in times.windows(2) {
            prop_assert!(w[1] >= w[0], "time ran backwards: {} -> {}", w[0], w[1]);
        }
        prop_assert!(sim.makespan() >= times.last().copied().unwrap_or(0.0));
    }

    #[test]
    fn busy_time_equals_total_cost(tasks in arb_tasks()) {
        let mut sim: Sim<usize> = Sim::new(MachineSpec::test(4, 2));
        let total: f64 = tasks.iter().map(|(_, c)| *c).sum();
        for (i, (rank, cost)) in tasks.iter().enumerate() {
            sim.spawn(*rank as u32, Phase::LocalTraversal, *cost, i);
        }
        sim.run(|_, _| {});
        let busy = sim.ledger.total_busy();
        prop_assert!((busy - total).abs() < 1e-9 * total.max(1.0),
            "ledger {busy} vs spawned {total}");
    }

    #[test]
    fn makespan_bounded_by_serial_and_critical(tasks in arb_tasks()) {
        let workers = 2usize;
        let mut sim: Sim<usize> = Sim::new(MachineSpec::test(1, workers));
        let total: f64 = tasks.iter().map(|(_, c)| *c).sum();
        let max_single = tasks.iter().map(|(_, c)| *c).fold(0.0, f64::max);
        for (i, (_, cost)) in tasks.iter().enumerate() {
            sim.spawn(0, Phase::Other, *cost, i);
        }
        let makespan = sim.run(|_, _| {});
        // Never faster than perfect speedup, never slower than serial.
        prop_assert!(makespan + 1e-12 >= total / workers as f64);
        prop_assert!(makespan <= total + 1e-12);
        prop_assert!(makespan + 1e-12 >= max_single);
    }

    #[test]
    fn exclusive_resource_fully_serialises(tasks in arb_tasks()) {
        let mut sim: Sim<usize> = Sim::new(MachineSpec::test(1, 4));
        let total: f64 = tasks.iter().map(|(_, c)| *c).sum();
        for (i, (_, cost)) in tasks.iter().enumerate() {
            sim.spawn_exclusive(0, 42, Phase::CacheInsertion, *cost, i);
        }
        let makespan = sim.run(|_, _| {});
        prop_assert!((makespan - total).abs() < 1e-9 * total.max(1.0),
            "exclusive tasks must serialise: {makespan} vs {total}");
    }

    #[test]
    fn replay_is_bitwise_identical(tasks in arb_tasks()) {
        let run = || {
            let mut sim: Sim<usize> = Sim::new(MachineSpec::test(3, 2));
            let mut order = Vec::new();
            for (i, (rank, cost)) in tasks.iter().enumerate() {
                sim.spawn((*rank % 3) as u32, Phase::Other, *cost, i);
            }
            sim.run(|s, p| order.push((p, s.now())));
            (order, sim.makespan())
        };
        let (oa, ma) = run();
        let (ob, mb) = run();
        prop_assert_eq!(oa, ob);
        prop_assert_eq!(ma, mb);
    }

    #[test]
    fn messages_preserve_payload_and_order_per_link(
        payloads in prop::collection::vec(0u32..1000, 1..32),
    ) {
        // Same-size messages on one link arrive in send order (FIFO NIC
        // injection + constant latency).
        let mut sim: Sim<u32> = Sim::new(MachineSpec::test(2, 1));
        for &p in &payloads {
            sim.send(0, 1, 128, p);
        }
        let mut got = Vec::new();
        sim.run(|_, p| got.push(p));
        prop_assert_eq!(got, payloads);
    }
}
