//! A small cosmological N-body run: a Plummer halo evolved with
//! Barnes-Hut gravity and leapfrog integration, with conservation
//! diagnostics printed per output — the workload class behind Fig. 10.
//!
//! ```text
//! cargo run --release --example gravity_cosmology -- [n] [steps]
//! ```

use paratreet::core_api::{Configuration, Framework, TraversalKind};
use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_geometry::Vec3;
use paratreet_particles::{gen, ParticleVec};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);

    let mut particles = gen::plummer(n, 7, 1.0, 1.0);
    for p in &mut particles {
        p.softening = 0.02;
    }
    let config =
        Configuration { bucket_size: 16, n_subtrees: 8, n_partitions: 16, ..Default::default() };
    let visitor = GravityVisitor { theta: 0.6, g: 1.0 };
    // Crossing time of a Plummer sphere ~ a few; resolve it well.
    let dt = 1.0 / 64.0;

    let mut fw: Framework<CentroidData> = Framework::new(config, particles);

    // Initial forces.
    fw.step(|s| {
        s.traverse(&visitor, TraversalKind::TopDown);
    });
    let e0 = total_energy(fw.particles());
    println!("evolving a {n}-particle Plummer halo for {steps} steps (dt = {dt})");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12}",
        "step", "kinetic", "potential", "dE/E0", "CoM drift"
    );

    for step in 0..steps {
        // Kick-drift with current accelerations.
        for p in fw.particles_mut().iter_mut() {
            p.vel += p.acc * (0.5 * dt);
            p.pos += p.vel * dt;
            p.acc = Vec3::ZERO;
            p.potential = 0.0;
        }
        // New forces at the drifted positions.
        fw.step(|s| {
            s.traverse(&visitor, TraversalKind::TopDown);
        });
        // Closing kick.
        for p in fw.particles_mut().iter_mut() {
            p.vel += p.acc * (0.5 * dt);
        }

        if step % 10 == 0 || step + 1 == steps {
            let ke = fw.particles().kinetic_energy();
            let pe: f64 = fw.particles().iter().map(|p| p.potential).sum::<f64>() * 0.5;
            let e = ke + pe;
            let com = fw.particles().center_of_mass();
            println!(
                "{:>6} {:>14.6} {:>14.6} {:>12.2e} {:>12.2e}",
                step,
                ke,
                pe,
                (e - e0) / e0.abs(),
                com.norm()
            );
        }
    }
    println!("\na stable virialised halo keeps |dE/E0| small and the centre of mass fixed.");
}

fn total_energy(ps: &[paratreet_particles::Particle]) -> f64 {
    let ke: f64 = ps.iter().map(|p| p.kinetic_energy()).sum();
    let pe: f64 = ps.iter().map(|p| p.potential).sum::<f64>() * 0.5;
    ke + pe
}
