//! Bounding spheres.
//!
//! Opening criteria in Barnes-Hut-style traversals test whether a node's
//! box intersects a sphere around the source's centroid (see the paper's
//! `GravityVisitor::open`). The sphere type here is that object.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// A sphere given by centre and radius.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sphere {
    /// Centre of the sphere.
    pub center: Vec3,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Sphere {
    /// Builds a sphere; the radius is clamped to be non-negative.
    #[inline]
    pub fn new(center: Vec3, radius: f64) -> Sphere {
        Sphere { center, radius: radius.max(0.0) }
    }

    /// Squared radius.
    #[inline]
    pub fn radius_sq(&self) -> f64 {
        self.radius * self.radius
    }

    /// True when `p` is inside or on the sphere.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        self.center.dist_sq(p) <= self.radius_sq()
    }

    /// True when the two spheres touch or overlap.
    #[inline]
    pub fn intersects(&self, o: &Sphere) -> bool {
        let r = self.radius + o.radius;
        self.center.dist_sq(o.center) <= r * r
    }

    /// Grows the radius so that `p` is contained.
    #[inline]
    pub fn grow(&mut self, p: Vec3) {
        let d = self.center.dist(p);
        if d > self.radius {
            self.radius = d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_boundary_and_inside() {
        let s = Sphere::new(Vec3::ZERO, 2.0);
        assert!(s.contains(Vec3::new(2.0, 0.0, 0.0)));
        assert!(s.contains(Vec3::splat(1.0)));
        assert!(!s.contains(Vec3::splat(2.0)));
    }

    #[test]
    fn sphere_sphere_intersection() {
        let a = Sphere::new(Vec3::ZERO, 1.0);
        let b = Sphere::new(Vec3::new(2.0, 0.0, 0.0), 1.0);
        assert!(a.intersects(&b)); // tangent
        let c = Sphere::new(Vec3::new(2.1, 0.0, 0.0), 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn negative_radius_clamped() {
        let s = Sphere::new(Vec3::ZERO, -1.0);
        assert_eq!(s.radius, 0.0);
        assert!(s.contains(Vec3::ZERO));
    }

    #[test]
    fn grow_extends_radius() {
        let mut s = Sphere::new(Vec3::ZERO, 1.0);
        s.grow(Vec3::new(3.0, 0.0, 0.0));
        assert_eq!(s.radius, 3.0);
        s.grow(Vec3::new(1.0, 0.0, 0.0)); // already inside: no change
        assert_eq!(s.radius, 3.0);
    }
}
