//! Overload-resilience tests (ISSUE 9): deterministic cost-based
//! admission, deadline expiry in queue, same-seed overload replay, and
//! the chaos criteria — a worker panic mid-load and a writer kill must
//! leave the service answering, with unaffected answers bit-identical
//! to a clean same-seed run.

use paratreet_core::{Configuration, TreeMaintainer};
use paratreet_particles::{gen, Particle};
use paratreet_serve::{
    run_load, AdmissionPolicy, FailPoints, LoadConfig, Query, QueryService, Request, Response,
    ServeConfig, ServeError, WriterConfig, WriterState,
};
use paratreet_tree::CountData;
use rand::{SeedableRng, StdRng};
use std::collections::BTreeMap;
use std::time::Duration;

fn config() -> Configuration {
    let mut config =
        Configuration { n_subtrees: 6, n_partitions: 4, bucket_size: 16, ..Default::default() };
    config.incremental.enabled = true;
    config
}

/// Deterministic small drift, same shape as the service tests.
fn drift(particles: &mut [Particle], iteration: u64) {
    for p in particles.iter_mut() {
        let h = p.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ iteration;
        p.pos.x += ((h & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
        p.pos.y += ((h >> 8 & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
        p.pos.z += ((h >> 16 & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
    }
}

/// Cost-based admission with zero workers is a pure function of the
/// default cost estimate: nothing drains, nothing is observed, so the
/// exact accept/shed boundary is computable — and identical across
/// runs.
#[test]
fn cost_admission_sheds_deterministically_at_the_backlog_bound() {
    let run = || {
        let cfg = config();
        let particles = gen::uniform_cube(500, 3, 1.0, 1.0);
        let (maintainer, seed_trees) = TreeMaintainer::<CountData>::seed(&cfg, particles, false);
        let universe = maintainer.universe();
        let service: QueryService<CountData> = QueryService::new(ServeConfig {
            workers: 0,
            queue_capacity: 512,
            ring_capacity: 4,
            admission: AdmissionPolicy::CostAware,
            max_backlog: Some(Duration::from_millis(1)),
            ..ServeConfig::default()
        });
        service.publish(seed_trees, universe);

        let mut accepted = 0u64;
        let mut over_budget = 0u64;
        for i in 0..300u32 {
            let batch = vec![Request::new(i, 0, Query::Knn { pos: universe.center(), k: 4 })];
            match service.submit(batch, None) {
                Ok(()) => accepted += 1,
                Err(ServeError::OverBudget { predicted_ns, budget_ns }) => {
                    assert!(predicted_ns > budget_ns);
                    over_budget += 1;
                }
                other => panic!("batch {i}: unexpected {other:?}"),
            }
        }
        let m = service.metrics();
        assert_eq!(m.get_u64("serve.queries.submitted"), accepted);
        assert_eq!(m.get_u64("serve.shed.predicted"), over_budget);
        assert_eq!(m.get_u64("serve.shed.depth"), 0, "cost model shed before the queue filled");
        (accepted, over_budget)
    };
    let (accepted, over_budget) = run();
    // 1ms backlog bound / 4µs default estimate = 250 batches fit.
    assert_eq!(accepted, 250);
    assert_eq!(over_budget, 50);
    assert_eq!(run(), (accepted, over_budget), "same seed, same admission decisions");
}

/// A request whose deadline passed while it sat in the queue is
/// answered with a structured `DeadlineExceeded`, never executed; live
/// requests in the same batch still get full answers.
#[test]
fn expired_in_queue_requests_get_structured_errors() {
    let cfg = config();
    let particles = gen::uniform_cube(500, 3, 1.0, 1.0);
    let (maintainer, seed_trees) = TreeMaintainer::<CountData>::seed(&cfg, particles, false);
    let universe = maintainer.universe();
    let mut service: QueryService<CountData> = QueryService::new(ServeConfig {
        workers: 1,
        admission: AdmissionPolicy::Defer,
        ..ServeConfig::default()
    });
    service.publish(seed_trees, universe);

    let query = Query::Knn { pos: universe.center(), k: 4 };
    let batch = vec![
        // Already expired at submission: the pop-time check must catch it.
        Request::with_deadline(0, 0, query, Duration::ZERO),
        Request::with_deadline(0, 1, query, Duration::from_secs(60)),
    ];
    let (tx, rx) = crossbeam::channel::unbounded::<Vec<Response>>();
    service.submit(batch, Some(tx)).unwrap();
    let responses = rx.recv().expect("batch answered");
    assert_eq!(responses.len(), 2);
    let by_seq: BTreeMap<u32, &Response> = responses.iter().map(|r| (r.seq, r)).collect();
    match &by_seq[&0].result {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("expired request: expected DeadlineExceeded, got {other:?}"),
    }
    assert!(!by_seq[&0].is_full_fidelity());
    assert!(by_seq[&1].result.is_ok(), "live request in the same batch still answered");

    let report = service.shutdown();
    assert!(report.is_clean(), "{report:?}");
    let m = service.metrics();
    assert_eq!(m.get_u64("serve.deadline_exceeded"), 1);
    assert_eq!(m.get_u64("serve.latency.knn.deadline_exceeded"), 1);
    assert_eq!(m.get_u64("serve.queries.completed"), 1);
}

/// Sustained overload replays deterministically: two same-seed load
/// runs against identically-configured over-budget services report
/// identical shed counts, and two all-expired-deadline runs report
/// identical deadline counts.
#[test]
fn same_seed_overload_runs_report_identical_counts() {
    // Arm 1: every batch is over budget (1ns bound vs 4µs estimate) —
    // everything sheds at admission, nothing needs draining.
    let shed_run = || {
        let cfg = config();
        let particles = gen::uniform_cube(400, 11, 1.0, 1.0);
        let (maintainer, seed_trees) = TreeMaintainer::<CountData>::seed(&cfg, particles, false);
        let universe = maintainer.universe();
        let service: QueryService<CountData> = QueryService::new(ServeConfig {
            workers: 0,
            admission: AdmissionPolicy::CostAware,
            max_backlog: Some(Duration::from_nanos(1)),
            ..ServeConfig::default()
        });
        service.publish(seed_trees, universe);
        let load = LoadConfig {
            clients: 60,
            queries_per_client: 10,
            threads: 3,
            batch: 8,
            k: 4,
            seed: 31,
            ..LoadConfig::default()
        };
        let r = run_load(&service, universe, &load);
        (r.submitted, r.shed, r.retries, r.abandoned, r.per_class, r.checksum)
    };
    let a = shed_run();
    assert_eq!(a.0, 0, "nothing fits a 1ns backlog bound");
    assert_eq!(a.1, 600, "every query shed");
    assert_eq!(a.2, 0, "OverBudget is not retryable");
    assert_eq!(a, shed_run(), "same seed, same shed counts");

    // Arm 2: every request expires in queue (zero deadline) — answered,
    // but as structured deadline errors.
    let deadline_run = || {
        let cfg = config();
        let particles = gen::uniform_cube(400, 11, 1.0, 1.0);
        let (maintainer, seed_trees) = TreeMaintainer::<CountData>::seed(&cfg, particles, false);
        let universe = maintainer.universe();
        let mut service: QueryService<CountData> = QueryService::new(ServeConfig {
            workers: 1,
            admission: AdmissionPolicy::Defer,
            ..ServeConfig::default()
        });
        service.publish(seed_trees, universe);
        let load = LoadConfig {
            clients: 60,
            queries_per_client: 10,
            threads: 3,
            batch: 8,
            k: 4,
            seed: 31,
            deadline: Some(Duration::ZERO),
            ..LoadConfig::default()
        };
        let r = run_load(&service, universe, &load);
        service.shutdown();
        (r.submitted, r.completed, r.deadline_exceeded, r.checksum)
    };
    let b = deadline_run();
    assert_eq!(b, (600, 0, 600, 0), "every query expired in queue");
    assert_eq!(b, deadline_run(), "same seed, same deadline counts");
}

/// Builds the deterministic request stream the chaos test replays:
/// `batches` batches of `per_batch` seeded queries, client = batch
/// index, seq = position.
fn chaos_batches(universe: &paratreet_geometry::BoundingBox) -> Vec<Vec<Request>> {
    (0..40u32)
        .map(|b| {
            (0..8u32)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(977 ^ ((b as u64) << 8 | s as u64));
                    let query =
                        paratreet_serve::load::random_query(&mut rng, universe, 5, &[1, 1, 1, 1]);
                    Request::new(b, s, query)
                })
                .collect()
        })
        .collect()
}

/// Runs the chaos request stream against a fresh same-seed service,
/// optionally with an injected worker panic, and returns every
/// response keyed by `(client, seq)`.
fn chaos_run(fail: FailPoints) -> (BTreeMap<(u32, u32), Response>, QueryService<CountData>) {
    let cfg = config();
    let particles = gen::clustered(2000, 3, 21, 1.0, 1.0);
    let (maintainer, seed_trees) = TreeMaintainer::<CountData>::seed(&cfg, particles, false);
    let universe = maintainer.universe();
    let service: QueryService<CountData> = QueryService::new(ServeConfig {
        workers: 1, // single worker: batch pop order == submit order
        queue_capacity: 256,
        admission: AdmissionPolicy::Defer,
        fail,
        ..ServeConfig::default()
    });
    service.publish(seed_trees, universe);

    let (tx, rx) = crossbeam::channel::unbounded::<Vec<Response>>();
    let batches = chaos_batches(&universe);
    let n_batches = batches.len();
    for batch in batches {
        service.submit(batch, Some(tx.clone())).unwrap();
    }
    let mut responses = BTreeMap::new();
    for _ in 0..n_batches {
        for resp in rx.recv().expect("batch answered") {
            responses.insert((resp.client, resp.seq), resp);
        }
    }
    (responses, service)
}

/// Chaos criterion: a worker panic mid-load. The run completes without
/// aborting, the poisoned batch is answered with structured errors,
/// every other answer is bit-identical to a clean same-seed run, and
/// the supervisor respawned the worker.
#[test]
fn worker_panic_mid_load_answers_everything_and_respawns() {
    let (clean, mut clean_service) = chaos_run(FailPoints::default());
    let (chaos, mut chaos_service) =
        chaos_run(FailPoints { worker_panic_at_batch: Some(5), ..FailPoints::default() });
    assert_eq!(clean.len(), 320);
    assert_eq!(chaos.len(), 320, "every request answered despite the panic");

    for ((client, seq), resp) in &chaos {
        if *client == 4 {
            // The 5th popped batch (client index 4) hit the fail point.
            assert_eq!(resp.result, Err(ServeError::WorkerPanicked), "({client},{seq})");
        } else {
            let clean_resp = &clean[&(*client, *seq)];
            let (a, b) = (resp.result.as_ref().unwrap(), clean_resp.result.as_ref().unwrap());
            assert_eq!(a.checksum(), b.checksum(), "({client},{seq}) diverged from clean run");
            assert!(resp.is_full_fidelity());
        }
    }

    let health = chaos_service.health();
    assert_eq!(health.worker_panics, 1);
    assert_eq!(health.worker_respawns, 1, "supervisor replaced the panicked worker");
    assert!(!health.quarantined);
    let report = chaos_service.shutdown();
    assert_eq!(report.workers.spawned, 2, "initial worker + one respawn");
    assert_eq!(report.workers.panicked, 1);
    assert!(clean_service.shutdown().is_clean());
}

/// Chaos criterion: the writer dies mid-run. Readers keep serving the
/// last published snapshot, health reports stale-serving with a
/// staleness bound, and shutdown surfaces the panic as data.
#[test]
fn writer_kill_enters_stale_serving_and_readers_keep_answering() {
    let cfg = config();
    let particles = gen::clustered(1500, 3, 29, 1.0, 1.0);
    let (maintainer, seed_trees) = TreeMaintainer::<CountData>::seed(&cfg, particles, false);
    let universe = maintainer.universe();
    let mut service: QueryService<CountData> = QueryService::new(ServeConfig {
        workers: 1,
        admission: AdmissionPolicy::Defer,
        fail: FailPoints { writer_panic_at_epoch: Some(2), ..FailPoints::default() },
        ..ServeConfig::default()
    });
    service.spawn_writer(
        maintainer,
        seed_trees,
        Box::new(drift),
        WriterConfig { iterations: u64::MAX, pace: None },
    );

    // Wait (bounded) for the injected writer death.
    let t0 = std::time::Instant::now();
    while service.health().writer != WriterState::Panicked {
        assert!(t0.elapsed() < Duration::from_secs(20), "writer never hit the fail point");
        std::thread::sleep(Duration::from_millis(1));
    }
    let health = service.health();
    assert!(health.stale_serving);
    assert_eq!(service.current_epoch(), Some(1), "epoch 2 was never published");

    // Readers still answer from the last snapshot.
    let (tx, rx) = crossbeam::channel::unbounded::<Vec<Response>>();
    let batch = vec![Request::new(0, 0, Query::Knn { pos: universe.center(), k: 4 })];
    service.submit(batch, Some(tx)).unwrap();
    let responses = rx.recv().expect("stale-serving still answers");
    assert!(responses[0].result.is_ok());
    assert_eq!(responses[0].epoch, 1);

    // Staleness grows as wall time passes without publishes.
    std::thread::sleep(Duration::from_millis(5));
    let health = service.health();
    assert!(health.last_publish_age.is_some());

    let report = service.shutdown();
    assert_eq!(report.writer, paratreet_serve::JoinOutcome::Panicked);
    assert_eq!(report.last_epoch, Some(1));
    assert_eq!(report.workers.panicked, 0, "workers were untouched");
    let m = service.metrics();
    assert_eq!(m.get_u64("serve.writer.state"), WriterState::Panicked.code());
    assert_eq!(m.get_u64("serve.stale_serving"), 1);
}
