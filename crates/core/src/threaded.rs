//! A real multi-threaded distributed executor.
//!
//! Where [`crate::DistributedEngine`] *models* a distributed machine in
//! virtual time, this engine *runs* one on real OS threads: each
//! simulated rank is a thread group (one message pump + worker threads),
//! inter-rank traffic is crossbeam channels carrying the same serialized
//! fills as the wire protocol, and — the point of the exercise — the
//! wait-free cache is exercised exactly as designed: traversal workers
//! keep reading the cached tree while fills are deserialised and spliced
//! in concurrently by whichever worker picks the insert task up.
//!
//! On a many-core host this is a usable shared/distributed-memory hybrid
//! engine; in this repository it is primarily the strongest correctness
//! test of the concurrency design (forces must match the deterministic
//! engines bit-for-bit up to floating-point summation order).
//!
//! Execution structure per rank:
//!
//! * a **task channel** (MPMC): `RunPartition` and `InsertFill` tasks,
//!   consumed by the rank's workers — fills go to "the currently least
//!   busy worker" by construction, since any idle worker takes them;
//! * a **message pump** thread owning the rank's inbox: `Request`s are
//!   served from the local cache (serialise + reply), `Fill`s become
//!   insert tasks;
//! * partitions are chare-like: a partition task runs to completion or
//!   until every remaining item waits on a fetch; its state then parks
//!   in the rank's shared table until a fill re-enqueues it.

use crate::config::{Configuration, TraversalKind};
use crate::decomp::{decompose, Partitioner};
use crate::maintain::TreeMaintainer;
use crate::traversal::{process_item, seed_items, PendingFetch, WorkCounts, WorkItem};
use crate::visitor::{TargetBucket, Visitor};
use crossbeam::channel::{unbounded, Receiver, Sender};
use paratreet_cache::stats::CacheStatsSnapshot;
use paratreet_cache::{CacheTree, NodeHandle, RequestOutcome, SubtreeSummary};
use paratreet_geometry::{BoundingBox, NodeKey};
use paratreet_particles::Particle;
use paratreet_telemetry::{FlightRecorder, MetricsRegistry, Telemetry};
use paratreet_tree::TreeBuilder;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Inter-rank messages (the "network").
enum Msg {
    /// Fetch the subtree under `key`; reply to `reply_to`.
    Request { key: NodeKey, reply_to: u32 },
    /// A serialized fill fragment.
    Fill { bytes: Vec<u8> },
    /// Drain and exit.
    Shutdown,
}

/// Intra-rank work.
enum Task<V: Visitor> {
    RunPartition(Box<PartState<V>>),
    InsertFill(Vec<u8>),
    Stop,
}

/// One partition's private traversal state (moves with its task).
struct PartState<V: Visitor> {
    id: u32,
    buckets: Vec<TargetBucket<V::State>>,
    bucket_indices: Vec<Vec<u32>>,
    stack: Vec<WorkItem<V::Data>>,
    counts: WorkCounts,
    outstanding: usize,
    seeded: bool,
}

/// Items a parked partition waits on, plus the handoff flags.
struct Parked<V: Visitor> {
    /// The partition state while it is not running.
    state: Option<Box<PartState<V>>>,
    /// Items keyed by the fetch that will release them.
    waiting: HashMap<NodeKey, Vec<Vec<u32>>>,
    /// Items released by fills while the partition was running/parked.
    ready: Vec<(NodeKey, Vec<u32>)>,
}

impl<V: Visitor> Default for Parked<V> {
    fn default() -> Self {
        Parked { state: None, waiting: HashMap::new(), ready: Vec::new() }
    }
}

/// Everything a rank's threads share.
struct RankShared<V: Visitor> {
    rank: u32,
    cache: CacheTree<V::Data>,
    tasks: Sender<Task<V>>,
    /// Outboxes to every rank (including self).
    net: Vec<Sender<Msg>>,
    /// Parked partitions, by partition id.
    parked: Mutex<HashMap<u32, Parked<V>>>,
    /// Partitions not yet finished, across the whole machine.
    remaining: Arc<AtomicUsize>,
    fetch_depth: u32,
    counts: Mutex<WorkCounts>,
}

/// Outcome of a threaded iteration.
pub struct ThreadedReport {
    /// Final particle state (bucket write-backs merged).
    pub particles: Vec<Particle>,
    /// Total interaction counts (exact, engine-independent).
    pub counts: WorkCounts,
    /// Cache traffic aggregated over ranks.
    pub cache: CacheStatsSnapshot,
    /// Number of fills that crossed rank boundaries.
    pub remote_fills: u64,
    /// Every statistic above under a stable dotted name, plus the
    /// measured wall time of the iteration.
    pub metrics: MetricsRegistry,
}

/// The real-threads engine. See module docs.
pub struct ThreadedEngine<'v, V: Visitor> {
    /// Framework configuration.
    pub config: Configuration,
    /// Number of rank thread-groups.
    pub n_ranks: usize,
    /// Worker threads per rank (in addition to the message pump).
    pub workers_per_rank: usize,
    /// Span/counter sink (wall clock). An enabled handle records setup
    /// phases, every partition run, and — through the per-rank caches —
    /// fill serving and cache insertion, one track per real thread.
    pub telemetry: Telemetry,
    /// Flight-recorder sink sampled at phase boundaries (the same
    /// [`crate::framework::FLIGHT_SERIES`] rows as the shared-memory
    /// engine, wall clock); disabled by default.
    pub flight: FlightRecorder,
    /// Iterations completed — the `epoch` column of flight rows.
    iterations: std::sync::atomic::AtomicU64,
    visitor: &'v V,
}

impl<'v, V: Visitor> ThreadedEngine<'v, V> {
    /// A new engine over `n_ranks × workers_per_rank` real threads.
    pub fn new(
        config: Configuration,
        n_ranks: usize,
        workers_per_rank: usize,
        visitor: &'v V,
    ) -> ThreadedEngine<'v, V> {
        ThreadedEngine {
            config,
            n_ranks: n_ranks.max(1),
            workers_per_rank: workers_per_rank.max(1),
            telemetry: Telemetry::disabled(),
            flight: FlightRecorder::disabled(),
            iterations: std::sync::atomic::AtomicU64::new(0),
            visitor,
        }
    }

    /// Attaches a flight recorder sampled at phase boundaries (one
    /// setup row per iteration from the callers, one traversal row at
    /// iteration end).
    pub fn with_flight_recorder(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self
    }

    /// Attaches a telemetry handle (use [`Telemetry::wall`], sized to
    /// `n_ranks × (workers_per_rank + 1)` threads).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Runs one full iteration: decompose, build, exchange, traverse —
    /// with fetches and fills crossing real channels between real
    /// threads. `kind` must not be [`TraversalKind::DualTree`].
    pub fn run_iteration(&self, particles: Vec<Particle>, kind: TraversalKind) -> ThreadedReport {
        let started = std::time::Instant::now();
        let ranks = self.n_ranks;
        let mut config = self.config.clone();
        config.n_subtrees = config.n_subtrees.max(ranks * 4);
        config.n_partitions = config.n_partitions.max(ranks * self.workers_per_rank * 2);

        // ---- Decompose and build (centrally; the builds themselves are
        // rayon-parallel inside TreeBuilder) ----
        let decomp =
            self.telemetry.wall_span(0, "decomposition", None, || decompose(particles, &config));
        let n_subtrees = decomp.subtrees.len();
        let subtree_rank = |si: usize| -> u32 { (si * ranks / n_subtrees) as u32 };

        let trees: Vec<(u32, paratreet_tree::BuiltTree<V::Data>)> =
            self.telemetry.wall_span(0, "tree build", None, || {
                decomp
                    .subtrees
                    .into_iter()
                    .enumerate()
                    .map(|(si, piece)| {
                        let builder = TreeBuilder {
                            root_key: piece.key,
                            root_depth: piece.depth,
                            ..TreeBuilder::new(config.tree_type)
                        }
                        .bucket_size(config.bucket_size);
                        (subtree_rank(si), builder.build::<V::Data>(piece.particles, piece.bbox))
                    })
                    .collect()
            });
        if self.flight.is_enabled() {
            let epoch = self.iterations.load(Ordering::Relaxed);
            self.flight.sample(&[
                epoch as f64,
                0.0,
                started.elapsed().as_secs_f64(),
                trees.len() as f64,
                0.0,
                0.0,
            ]);
        }
        self.run_prepared(&config, trees, &decomp.partitioner, decomp.n_partitions, kind, started)
    }

    /// Runs one iteration against a tree maintained across calls: the
    /// first call seeds the [`TreeMaintainer`] into `slot` (a normal
    /// decomposition + build), every later call patches the maintained
    /// tree in place under the "incremental update" phase and traverses
    /// the flattened result through the exact machinery of
    /// [`ThreadedEngine::run_iteration`]. Pass the same `slot` every
    /// iteration; its tree-update counters land under `tree.update.*`
    /// in the report's metrics.
    pub fn run_maintained(
        &self,
        slot: &mut Option<TreeMaintainer<V::Data>>,
        particles: Vec<Particle>,
        kind: TraversalKind,
    ) -> ThreadedReport {
        let started = std::time::Instant::now();
        let ranks = self.n_ranks;
        let mut config = self.config.clone();
        config.n_subtrees = config.n_subtrees.max(ranks * 4);
        config.n_partitions = config.n_partitions.max(ranks * self.workers_per_rank * 2);
        config.incremental.enabled = true;

        let mut seconds_update = 0.0;
        let mut round_batches = 0u64;
        let mut round_migrated = 0u64;
        let flat = match slot.as_mut() {
            None => {
                let (maintainer, flat) = self.telemetry.wall_span(0, "tree build", None, || {
                    TreeMaintainer::seed(&config, particles, true)
                });
                *slot = Some(maintainer);
                flat
            }
            Some(maintainer) => {
                let t0 = std::time::Instant::now();
                let (flat, round) = self
                    .telemetry
                    .wall_span(0, "incremental update", None, || maintainer.advance(particles));
                seconds_update = t0.elapsed().as_secs_f64();
                round_batches = round.n_batches;
                round_migrated = round.n_migrated;
                flat
            }
        };
        let maintainer = slot.as_ref().expect("seeded above");
        let n_subtrees = flat.len();
        if self.flight.is_enabled() {
            let epoch = self.iterations.load(Ordering::Relaxed);
            self.flight.sample(&[
                epoch as f64,
                0.0,
                started.elapsed().as_secs_f64(),
                n_subtrees as f64,
                0.0,
                round_migrated as f64,
            ]);
        }
        let trees: Vec<(u32, paratreet_tree::BuiltTree<V::Data>)> = flat
            .into_iter()
            .enumerate()
            .map(|(si, t)| ((si * ranks / n_subtrees) as u32, t))
            .collect();
        let mut report = self.run_prepared(
            &config,
            trees,
            maintainer.partitioner(),
            maintainer.n_partitions(),
            kind,
            started,
        );
        report.metrics.set_f64("time.update_s", seconds_update);
        report.metrics.absorb("tree.update", maintainer.totals());
        report.metrics.set_u64("tree.update.round_batches", round_batches);
        report.metrics.set_u64("tree.update.round_migrated", round_migrated);
        report
    }

    /// The engine tail shared by the full-rebuild and maintained paths:
    /// leaf sharing against `partitioner`, per-rank cache init, and the
    /// real-threads traversal, starting from already-built Subtrees
    /// tagged with their home ranks.
    fn run_prepared(
        &self,
        config: &Configuration,
        trees: Vec<(u32, paratreet_tree::BuiltTree<V::Data>)>,
        partitioner: &Partitioner,
        n_partitions: usize,
        kind: TraversalKind,
        started: std::time::Instant,
    ) -> ThreadedReport {
        let ranks = self.n_ranks;
        let n_partitions = n_partitions.max(1);
        let n_subtrees = trees.len();
        let partition_rank = |pi: usize| -> u32 { (pi * ranks / n_partitions) as u32 };
        let summaries: Vec<SubtreeSummary<V::Data>> = trees
            .iter()
            .map(|(rank, t)| SubtreeSummary {
                key: t.root().key,
                bbox: t.root().bbox,
                n_particles: t.root().n_particles,
                data: t.root().data.clone(),
                home_rank: *rank,
            })
            .collect();

        // ---- Master array + leaf sharing ----
        let mut master: Vec<Particle> = Vec::new();
        struct Seed {
            leaf_key: NodeKey,
            partition: u32,
            indices: Vec<u32>,
        }
        let mut seeds: Vec<Seed> = Vec::new();
        for (_, tree) in &trees {
            let offset = master.len() as u32;
            for li in tree.leaf_indices() {
                let node = tree.node(li);
                let range = node.bucket_range().expect("leaf");
                let mut per_part: Vec<(u32, Vec<u32>)> = Vec::new();
                for i in range {
                    let part = partitioner.assign(&tree.particles[i]);
                    match per_part.iter_mut().find(|(p, _)| *p == part) {
                        Some((_, v)) => v.push(offset + i as u32),
                        None => per_part.push((part, vec![offset + i as u32])),
                    }
                }
                for (partition, indices) in per_part {
                    seeds.push(Seed { leaf_key: node.key, partition, indices });
                }
            }
            master.extend_from_slice(&tree.particles);
        }
        let n_buckets = seeds.len();

        // ---- Per-rank caches ----
        let bits = config.tree_type.bits_per_level();
        let mut per_rank_trees: Vec<Vec<paratreet_tree::BuiltTree<V::Data>>> =
            (0..ranks).map(|_| Vec::new()).collect();
        for (rank, tree) in trees {
            per_rank_trees[rank as usize].push(tree);
        }
        let caches: Vec<CacheTree<V::Data>> = per_rank_trees
            .into_iter()
            .enumerate()
            .map(|(r, local)| {
                let mut cache = CacheTree::new(r as u32, bits);
                cache.telemetry = self.telemetry.clone();
                cache.init(&summaries, local);
                cache
            })
            .collect();

        // ---- Partition states ----
        let mut part_states: Vec<Option<Box<PartState<V>>>> = (0..n_partitions)
            .map(|p| {
                Some(Box::new(PartState {
                    id: p as u32,
                    buckets: Vec::new(),
                    bucket_indices: Vec::new(),
                    stack: Vec::new(),
                    counts: WorkCounts::default(),
                    outstanding: 0,
                    seeded: false,
                }))
            })
            .collect();
        for seed in &seeds {
            let ps = part_states[seed.partition as usize].as_mut().expect("unclaimed");
            let bucket_particles: Vec<Particle> =
                seed.indices.iter().map(|&i| master[i as usize]).collect();
            let bbox = BoundingBox::around(bucket_particles.iter().map(|p| p.pos));
            ps.buckets.push(TargetBucket {
                leaf_key: seed.leaf_key,
                particles: bucket_particles,
                bbox,
                state: V::State::default(),
            });
            ps.bucket_indices.push(seed.indices.clone());
        }

        // ---- Channels ----
        let mut net_senders: Vec<Sender<Msg>> = Vec::with_capacity(ranks);
        let mut net_receivers: Vec<Receiver<Msg>> = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (tx, rx) = unbounded::<Msg>();
            net_senders.push(tx);
            net_receivers.push(rx);
        }
        let mut task_senders: Vec<Sender<Task<V>>> = Vec::with_capacity(ranks);
        let mut task_receivers: Vec<Receiver<Task<V>>> = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (tx, rx) = unbounded::<Task<V>>();
            task_senders.push(tx);
            task_receivers.push(rx);
        }

        let remaining = Arc::new(AtomicUsize::new(n_partitions));
        let remote_fills = Arc::new(AtomicUsize::new(0));
        let shared: Vec<Arc<RankShared<V>>> = caches
            .into_iter()
            .enumerate()
            .map(|(r, cache)| {
                Arc::new(RankShared {
                    rank: r as u32,
                    cache,
                    tasks: task_senders[r].clone(),
                    net: net_senders.clone(),
                    parked: Mutex::new(HashMap::new()),
                    remaining: remaining.clone(),
                    fetch_depth: config.fetch_depth,
                    counts: Mutex::new(WorkCounts::default()),
                })
            })
            .collect();

        // Seed partition tasks on their home ranks.
        for (p, state) in part_states.iter_mut().enumerate() {
            let rank = partition_rank(p) as usize;
            task_senders[rank]
                .send(Task::RunPartition(state.take().expect("seeded once")))
                .expect("rank alive");
        }

        // ---- Run ----
        let visitor = self.visitor;
        let workers = self.workers_per_rank;
        let collected: Mutex<Vec<Box<PartState<V>>>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            // Message pumps.
            let mut pump_handles = Vec::new();
            for (r, rx) in net_receivers.into_iter().enumerate() {
                let shared = shared[r].clone();
                let remote_fills = remote_fills.clone();
                pump_handles.push(scope.spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Request { key, reply_to } => {
                                match shared.cache.serialize_fragment(key, shared.fetch_depth) {
                                    Ok(bytes) => {
                                        if reply_to != shared.rank {
                                            remote_fills.fetch_add(1, Ordering::Relaxed);
                                        }
                                        if shared.net[reply_to as usize]
                                            .send(Msg::Fill { bytes })
                                            .is_err()
                                        {
                                            debug_assert!(false, "rank {reply_to} hung up early");
                                        }
                                    }
                                    Err(e) => eprintln!(
                                        "threaded: fetch for {key} failed on rank {}: {e}",
                                        shared.rank
                                    ),
                                }
                            }
                            Msg::Fill { bytes } => {
                                // Hand the insert to the least busy
                                // worker: any idle one takes it next.
                                if shared.tasks.send(Task::InsertFill(bytes)).is_err() {
                                    debug_assert!(false, "workers gone before fill handled");
                                }
                            }
                            Msg::Shutdown => break,
                        }
                    }
                }));
            }

            // Workers.
            let mut worker_handles = Vec::new();
            for r in 0..ranks {
                for _ in 0..workers {
                    let shared = shared[r].clone();
                    let rx = task_receivers[r].clone();
                    let collected = &collected;
                    worker_handles.push(scope.spawn(move || {
                        while let Ok(task) = rx.recv() {
                            match task {
                                Task::Stop => break,
                                Task::InsertFill(bytes) => handle_fill(&shared, &bytes),
                                Task::RunPartition(ps) => {
                                    let part = ps.id as u64;
                                    let done = shared.cache.telemetry.wall_span(
                                        shared.rank,
                                        "local traversal",
                                        Some(part),
                                        || run_partition(&shared, visitor, kind, ps),
                                    );
                                    if let Some(done) = done {
                                        collected.lock().push(done);
                                        shared.remaining.fetch_sub(1, Ordering::AcqRel);
                                    }
                                }
                            }
                        }
                    }));
                }
            }

            // Wait for global completion, then shut everything down.
            while remaining.load(Ordering::Acquire) > 0 {
                std::thread::yield_now();
            }
            for tx in &net_senders {
                let _ = tx.send(Msg::Shutdown);
            }
            for tx in task_senders.iter().take(ranks) {
                for _ in 0..workers {
                    let _ = tx.send(Task::Stop);
                }
            }
            for h in worker_handles {
                h.join().expect("worker panicked");
            }
            for h in pump_handles {
                h.join().expect("pump panicked");
            }
        });

        // ---- Write-back and report ----
        let mut counts = WorkCounts::default();
        for s in &shared {
            counts += *s.counts.lock();
        }
        let mut cache_stats = CacheStatsSnapshot::default();
        for s in &shared {
            cache_stats.merge(&s.cache.stats.snapshot());
        }
        for ps in collected.into_inner() {
            counts += ps.counts;
            for (indices, bucket) in ps.bucket_indices.iter().zip(&ps.buckets) {
                for (&mi, p) in indices.iter().zip(&bucket.particles) {
                    master[mi as usize] = *p;
                }
            }
        }
        let remote_fills = remote_fills.load(Ordering::Relaxed) as u64;
        let mut metrics = MetricsRegistry::new();
        metrics.absorb("cache", &cache_stats);
        metrics.absorb("counts", &counts);
        metrics.set_u64("net.remote_fills", remote_fills);
        metrics.set_f64("time.iteration_s", started.elapsed().as_secs_f64());
        let epoch = self.iterations.fetch_add(1, Ordering::Relaxed);
        if self.flight.is_enabled() {
            self.flight.sample(&[
                epoch as f64,
                1.0,
                started.elapsed().as_secs_f64(),
                n_subtrees as f64,
                n_buckets as f64,
                0.0,
            ]);
        }
        ThreadedReport { particles: master, counts, cache: cache_stats, remote_fills, metrics }
    }
}

/// Inserts a fill and re-enqueues every partition it unblocks. A fill
/// may materialise several keys at once; each (key, partition) pair
/// from the outcome releases its own waiting entry.
fn handle_fill<V: Visitor>(shared: &RankShared<V>, bytes: &[u8]) {
    let outcome = match shared.cache.insert_fragment(bytes) {
        Ok(o) => o,
        Err(e) => {
            // Rejected fills mutate nothing; log and drop, the
            // placeholder stays requestable.
            eprintln!("threaded: fill rejected on rank {}: {e}", shared.rank);
            return;
        }
    };
    let mut parked = shared.parked.lock();
    for (key, waiter) in outcome.resumed {
        let entry = parked.entry(waiter as u32).or_default();
        if let Some(bucket_sets) = entry.waiting.remove(&key) {
            for buckets in bucket_sets {
                entry.ready.push((key, buckets));
            }
        }
        // If the partition is parked (not running), hand it back to the
        // workers; if it is running, it will collect `ready` itself.
        if let Some(mut state) = entry.state.take() {
            drain_ready(shared, &mut state, entry);
            if shared.tasks.send(Task::RunPartition(state)).is_err() {
                debug_assert!(false, "workers gone while partitions still parked");
            }
        }
    }
}

/// Moves released items into the partition's stack.
fn drain_ready<V: Visitor>(
    shared: &RankShared<V>,
    state: &mut PartState<V>,
    entry: &mut Parked<V>,
) {
    for (key, buckets) in entry.ready.drain(..) {
        let Some(node) = shared.cache.find(key) else {
            debug_assert!(false, "released key {key} missing from cache");
            continue;
        };
        state.outstanding -= 1;
        state.stack.push(WorkItem { node: NodeHandle::new(node), buckets });
    }
}

/// Runs a partition until it finishes (returned) or parks (None).
fn run_partition<V: Visitor>(
    shared: &RankShared<V>,
    visitor: &V,
    kind: TraversalKind,
    mut ps: Box<PartState<V>>,
) -> Option<Box<PartState<V>>> {
    if !ps.seeded {
        ps.seeded = true;
        ps.stack = seed_items::<V>(&shared.cache, kind, &ps.buckets);
    }
    loop {
        // Drain local work, surrendering placeholder hits.
        let mut fetches: Vec<PendingFetch<V::Data>> = Vec::new();
        let ordered = kind == TraversalKind::UpAndDown;
        while let Some(item) = ps.stack.pop() {
            process_item(
                &shared.cache,
                visitor,
                &mut ps.buckets,
                item,
                &mut ps.stack,
                &mut fetches,
                &mut ps.counts,
            );
            if ordered && !fetches.is_empty() {
                break;
            }
        }

        // Register fetches *before* releasing the partition, so a racing
        // fill always finds either the waiting entry or the parked state.
        for f in fetches {
            let node = f.node.get(&shared.cache);
            {
                let mut parked = shared.parked.lock();
                let entry = parked.entry(ps.id).or_default();
                entry.waiting.entry(f.key).or_default().push(f.buckets.clone());
            }
            ps.outstanding += 1;
            match shared.cache.request(node, ps.id as u64) {
                RequestOutcome::Ready(n) => {
                    // Fill won the race: reclaim the waiting entry.
                    let mut parked = shared.parked.lock();
                    let entry = parked.entry(ps.id).or_default();
                    if let Some(mut sets) = entry.waiting.remove(&f.key) {
                        sets.pop();
                        if !sets.is_empty() {
                            entry.waiting.insert(f.key, sets);
                        }
                    }
                    ps.outstanding -= 1;
                    ps.stack.push(WorkItem { node: NodeHandle::new(n), buckets: f.buckets });
                }
                RequestOutcome::SendFetch { home_rank } => {
                    if shared.net[home_rank as usize]
                        .send(Msg::Request { key: f.key, reply_to: shared.rank })
                        .is_err()
                    {
                        debug_assert!(false, "home rank {home_rank} hung up early");
                    }
                }
                RequestOutcome::InFlight => {}
            }
        }

        // Collect anything fills released while we were working.
        {
            let mut parked = shared.parked.lock();
            if let Some(entry) = parked.get_mut(&ps.id) {
                drain_ready(shared, &mut ps, entry);
            }
        }
        if !ps.stack.is_empty() {
            continue;
        }
        if ps.outstanding == 0 {
            return Some(ps);
        }
        // Park: publish the state; if something raced in, take it back.
        let mut parked = shared.parked.lock();
        let entry = parked.entry(ps.id).or_default();
        if entry.ready.is_empty() {
            entry.state = Some(ps);
            return None;
        }
        drain_ready(shared, &mut ps, entry);
        drop(parked);
    }
}
