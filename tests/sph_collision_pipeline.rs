//! End-to-end application pipelines through the public API: a
//! multi-step SPH run stays physical, and the disk case study detects,
//! merges, and conserves through collisions.

use paratreet_apps::collision::{orbital_period, DiskSimulation};
use paratreet_apps::sph::{sph_framework, SphSimulation};
use paratreet_core::{Configuration, DecompType};
use paratreet_geometry::Vec3;
use paratreet_particles::gen::{self, DiskParams};
use paratreet_tree::TreeType;

#[test]
fn sph_multi_step_run_stays_physical() {
    let mut particles = gen::perturbed_lattice(1000, 3, 0.5, 0.02);
    for p in &mut particles {
        if p.pos.norm() < 0.2 {
            p.internal_energy = 5.0;
        }
    }
    let config =
        Configuration { bucket_size: 16, n_subtrees: 4, n_partitions: 4, ..Default::default() };
    let mut fw = sph_framework(config, particles);
    let sph = SphSimulation { k: 24, ..Default::default() };
    let dt = 1e-3;

    let mut prev_hot_radius = 0.0;
    for step in 0..8 {
        for p in fw.particles_mut().iter_mut() {
            p.acc = Vec3::ZERO;
        }
        let stats = sph.step(&mut fw);
        assert!(stats.mean_density.is_finite() && stats.mean_density > 0.0, "step {step}");
        for p in fw.particles_mut().iter_mut() {
            p.vel += p.acc * dt;
            p.pos += p.vel * dt;
            assert!(p.pos.is_finite(), "position blew up at step {step}");
            assert!(p.density >= 0.0);
        }
        let hot_radius = fw
            .particles()
            .iter()
            .filter(|p| p.internal_energy > 2.0)
            .map(|p| p.pos.norm())
            .fold(0.0, f64::max);
        if step > 2 {
            assert!(
                hot_radius >= prev_hot_radius * 0.99,
                "hot blob should not collapse: {hot_radius} < {prev_hot_radius}"
            );
        }
        prev_hot_radius = hot_radius;
    }
}

#[test]
fn disk_simulation_conserves_mass_through_mergers() {
    let mut params = DiskParams::default();
    params.body_radius *= 5e4; // ensure collisions at small N
    params.rms_ecc = 0.08;
    let particles = gen::keplerian_disk(600, 17, params);
    let mass0: f64 = particles.iter().map(|p| p.mass).sum();
    let config = Configuration {
        tree_type: TreeType::LongestDim,
        decomp_type: DecompType::LongestDim,
        bucket_size: 16,
        ..Default::default()
    };
    let dt = orbital_period(params.r_in, params.star_mass) / 60.0;
    let mut sim = DiskSimulation::new(config, particles, dt);
    let mut total_events = 0;
    for _ in 0..30 {
        total_events += sim.step().len();
    }
    assert!(total_events > 0, "inflated radii must produce collisions");
    let mass1: f64 = sim.framework.particles().iter().map(|p| p.mass).sum();
    assert!((mass1 - mass0).abs() < 1e-12 * mass0, "mergers must conserve mass");
    assert_eq!(
        sim.framework.particles().len() + total_events.min(sim.events.len()),
        600 + 2,
        "each collision merges exactly one body away"
    );
    // Events recorded carry radii inside the disk (plus margin).
    for ev in &sim.events {
        assert!(ev.radius > 1.0 && ev.radius < 6.0, "impact at r = {}", ev.radius);
    }
}

#[test]
fn disk_angular_momentum_is_stable_without_collisions() {
    let params = DiskParams::default(); // tiny radii: no collisions
    let particles = gen::keplerian_disk(400, 23, params);
    let lz0: f64 = particles.iter().map(|p| p.angular_momentum().z).sum();
    let config = Configuration {
        tree_type: TreeType::LongestDim,
        decomp_type: DecompType::LongestDim,
        bucket_size: 16,
        ..Default::default()
    };
    let dt = orbital_period(params.r_in, params.star_mass) / 80.0;
    let mut sim = DiskSimulation::new(config, particles, dt);
    for _ in 0..20 {
        let events = sim.step();
        assert!(events.is_empty(), "50 km bodies at N=400 should never touch");
    }
    let lz1: f64 = sim.framework.particles().iter().map(|p| p.angular_momentum().z).sum();
    assert!(((lz1 - lz0) / lz0).abs() < 1e-3, "z angular momentum drifted: {lz0} -> {lz1}");
}
