//! Property tests for the decomposition layer: every particle gets a
//! valid partition, pieces tile without overlap, and all of it is
//! deterministic — for every decomposition type, tree type, and curve.

use paratreet_core::{decompose, Configuration, DecompType, SfcCurve};
use paratreet_geometry::Vec3;
use paratreet_particles::Particle;
use paratreet_tree::TreeType;
use proptest::prelude::*;

fn arb_particles() -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 1..400).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y, z))| Particle::point_mass(i as u64, 1.0, Vec3::new(x, y, z)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_particle_lands_in_a_valid_partition(
        ps in arb_particles(),
        decomp_idx in 0usize..4,
        tree_idx in 0usize..4,
        n_partitions in 1usize..24,
        n_subtrees in 1usize..24,
        hilbert in any::<bool>(),
    ) {
        let config = Configuration {
            decomp_type: [DecompType::Sfc, DecompType::Oct, DecompType::Kd, DecompType::LongestDim][decomp_idx],
            tree_type: [TreeType::Octree, TreeType::KdTree, TreeType::LongestDim, TreeType::BinaryOct][tree_idx],
            n_partitions,
            n_subtrees,
            bucket_size: 8,
            sfc: if hilbert { SfcCurve::Hilbert } else { SfcCurve::Morton },
            ..Default::default()
        };
        let n = ps.len();
        let d = decompose(ps, &config);
        prop_assert!(d.n_partitions >= 1);
        let mut total = 0usize;
        for s in &d.subtrees {
            for p in &s.particles {
                let id = d.partitioner.assign(p) as usize;
                prop_assert!(id < d.n_partitions, "partition {id} out of {}", d.n_partitions);
            }
            total += s.particles.len();
        }
        prop_assert_eq!(total, n, "pieces must conserve particles");
    }

    #[test]
    fn pieces_form_an_antichain(
        ps in arb_particles(),
        tree_idx in 0usize..4,
        n_subtrees in 1usize..32,
    ) {
        let tree_type =
            [TreeType::Octree, TreeType::KdTree, TreeType::LongestDim, TreeType::BinaryOct][tree_idx];
        let config = Configuration {
            tree_type,
            n_subtrees,
            bucket_size: 4,
            ..Default::default()
        };
        let d = decompose(ps, &config);
        let bits = tree_type.bits_per_level();
        for a in &d.subtrees {
            for b in &d.subtrees {
                if a.key != b.key {
                    prop_assert!(
                        !a.key.is_ancestor_of(b.key, bits),
                        "piece {:?} is an ancestor of {:?}",
                        a.key,
                        b.key
                    );
                }
            }
        }
    }

    #[test]
    fn decomposition_is_deterministic(
        ps in arb_particles(),
        decomp_idx in 0usize..4,
    ) {
        let config = Configuration {
            decomp_type: [DecompType::Sfc, DecompType::Oct, DecompType::Kd, DecompType::LongestDim][decomp_idx],
            bucket_size: 8,
            ..Default::default()
        };
        let a = decompose(ps.clone(), &config);
        let b = decompose(ps, &config);
        prop_assert_eq!(a.n_partitions, b.n_partitions);
        prop_assert_eq!(a.subtrees.len(), b.subtrees.len());
        for (x, y) in a.subtrees.iter().zip(&b.subtrees) {
            prop_assert_eq!(x.key, y.key);
            prop_assert_eq!(x.particles.len(), y.particles.len());
        }
    }

    #[test]
    fn partition_assignment_is_stable(
        ps in arb_particles(),
        decomp_idx in 0usize..4,
    ) {
        // Assigning the same particle twice gives the same partition
        // (the partitioner is a pure function of key/position).
        let config = Configuration {
            decomp_type: [DecompType::Sfc, DecompType::Oct, DecompType::Kd, DecompType::LongestDim][decomp_idx],
            n_partitions: 7,
            bucket_size: 8,
            ..Default::default()
        };
        let d = decompose(ps, &config);
        for s in &d.subtrees {
            for p in &s.particles {
                prop_assert_eq!(d.partitioner.assign(p), d.partitioner.assign(p));
            }
        }
    }
}
