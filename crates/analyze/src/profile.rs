//! Per-track utilization profiles and grain-size histograms.
//!
//! The utilization profile is the Fig. 9 analog: slice the trace's
//! extent into equal bins and report, per worker track, the fraction
//! of each slice the track was busy. Busy time is the *union* of the
//! track's span intervals — request spans nest (a root "request" span
//! covers its stage children), and a union counts the covered wall
//! time once instead of double-counting parents over children.

use crate::trace::{SpanRec, TraceData};

/// One worker track's utilization row.
#[derive(Clone, Debug, PartialEq)]
pub struct TrackProfile {
    /// Rank of the track.
    pub rank: u64,
    /// Worker of the track.
    pub worker: u64,
    /// Spans recorded on the track.
    pub n_spans: usize,
    /// Union busy time (µs) over the trace extent.
    pub busy_us: f64,
    /// `busy_us / extent`, 0 when the extent is empty.
    pub busy_frac: f64,
    /// Busy fraction per time slice, `bins` entries over the extent.
    pub bins: Vec<f64>,
}

/// The full profile: the shared time window plus one row per track.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Utilization {
    /// Window start (µs).
    pub t0_us: f64,
    /// Window end (µs).
    pub t1_us: f64,
    /// One row per `(rank, worker)` track, ascending.
    pub tracks: Vec<TrackProfile>,
}

/// Merges a track's span intervals into a disjoint ascending union.
fn merged_intervals(spans: &[&SpanRec]) -> Vec<(f64, f64)> {
    let mut ivs: Vec<(f64, f64)> = spans.iter().map(|s| (s.start_us, s.end_us())).collect();
    ivs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (lo, hi) in ivs {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// Computes the per-track utilization profile with `n_bins` slices
/// over the trace's full extent.
pub fn utilization(trace: &TraceData, n_bins: usize) -> Utilization {
    let Some((t0, t1)) = trace.extent_us() else {
        return Utilization::default();
    };
    let extent = (t1 - t0).max(0.0);
    let n_bins = n_bins.max(1);
    let width = extent / n_bins as f64;
    let tracks = trace
        .tracks()
        .into_iter()
        .map(|(rank, worker)| {
            let spans: Vec<&SpanRec> =
                trace.spans.iter().filter(|s| s.rank == rank && s.worker == worker).collect();
            let union = merged_intervals(&spans);
            let busy_us: f64 = union.iter().map(|(lo, hi)| hi - lo).sum();
            let mut bins = vec![0.0f64; n_bins];
            if width > 0.0 {
                for &(lo, hi) in &union {
                    let first = (((lo - t0) / width).floor() as usize).min(n_bins - 1);
                    let last = (((hi - t0) / width).ceil() as usize).clamp(1, n_bins);
                    for (b, bin) in bins.iter_mut().enumerate().take(last).skip(first) {
                        let b_lo = t0 + b as f64 * width;
                        let b_hi = b_lo + width;
                        let overlap = (hi.min(b_hi) - lo.max(b_lo)).max(0.0);
                        *bin += overlap / width;
                    }
                }
            }
            TrackProfile {
                rank,
                worker,
                n_spans: spans.len(),
                busy_us,
                busy_frac: if extent > 0.0 { busy_us / extent } else { 0.0 },
                bins,
            }
        })
        .collect();
    Utilization { t0_us: t0, t1_us: t1, tracks }
}

/// One span name's grain-size row (durations in µs).
#[derive(Clone, Debug, PartialEq)]
pub struct GrainRow {
    /// Span name.
    pub name: String,
    /// Occurrences.
    pub count: usize,
    /// Total duration.
    pub total_us: f64,
    /// Mean duration.
    pub mean_us: f64,
    /// Median duration (nearest-rank).
    pub p50_us: f64,
    /// 99th percentile duration (nearest-rank).
    pub p99_us: f64,
    /// Longest occurrence.
    pub max_us: f64,
}

/// Exact nearest-rank percentile over an ascending slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Grain-size histogram per span name, sorted descending by total time
/// (name breaks ties) — the "where did the time go, and in what size
/// pieces" table.
pub fn grain_sizes(trace: &TraceData) -> Vec<GrainRow> {
    let mut by_name: Vec<(String, Vec<f64>)> = Vec::new();
    for s in &trace.spans {
        match by_name.iter_mut().find(|(n, _)| *n == s.name) {
            Some((_, durs)) => durs.push(s.dur_us),
            None => by_name.push((s.name.clone(), vec![s.dur_us])),
        }
    }
    let mut rows: Vec<GrainRow> = by_name
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_by(f64::total_cmp);
            let total: f64 = durs.iter().sum();
            GrainRow {
                count: durs.len(),
                mean_us: total / durs.len() as f64,
                p50_us: percentile(&durs, 0.50),
                p99_us: percentile(&durs, 0.99),
                max_us: *durs.last().unwrap(),
                total_us: total,
                name,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.total_us.total_cmp(&a.total_us).then(a.name.cmp(&b.name)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start: f64, dur: f64, worker: u64) -> SpanRec {
        SpanRec {
            name: name.to_string(),
            start_us: start,
            dur_us: dur,
            rank: 0,
            worker,
            key: None,
            id: None,
            parent: None,
            request: None,
        }
    }

    #[test]
    fn nested_spans_count_once_in_utilization() {
        // Worker 0: a parent [0,10) with a nested child [2,6) — union
        // busy is 10, not 14. Worker 1: busy [5,10) only.
        let trace = TraceData {
            clock: "wall".into(),
            spans: vec![
                span("request", 0.0, 10.0, 0),
                span("executed", 2.0, 4.0, 0),
                span("request", 5.0, 5.0, 1),
            ],
            counters: vec![],
        };
        let util = utilization(&trace, 2);
        assert_eq!((util.t0_us, util.t1_us), (0.0, 10.0));
        assert_eq!(util.tracks.len(), 2);
        let w0 = &util.tracks[0];
        assert_eq!((w0.rank, w0.worker, w0.n_spans), (0, 0, 2));
        assert!((w0.busy_us - 10.0).abs() < 1e-9);
        assert!((w0.busy_frac - 1.0).abs() < 1e-9);
        assert!((w0.bins[0] - 1.0).abs() < 1e-9 && (w0.bins[1] - 1.0).abs() < 1e-9);
        let w1 = &util.tracks[1];
        assert!((w1.busy_frac - 0.5).abs() < 1e-9);
        assert!(w1.bins[0].abs() < 1e-9 && (w1.bins[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grain_rows_rank_names_by_total_time() {
        let trace = TraceData {
            clock: "wall".into(),
            spans: vec![span("a", 0.0, 1.0, 0), span("a", 1.0, 3.0, 0), span("b", 0.0, 10.0, 1)],
            counters: vec![],
        };
        let rows = grain_sizes(&trace);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "b");
        assert_eq!(rows[1].name, "a");
        assert_eq!(rows[1].count, 2);
        assert!((rows[1].mean_us - 2.0).abs() < 1e-9);
        assert_eq!(rows[1].p50_us, 1.0);
        assert_eq!(rows[1].max_us, 3.0);
    }
}
