//! The `paratreet` command-line driver — the paper's "coding,
//! configuring and running the application" workflow (§II-D-2): pick an
//! application, a workload (generator or snapshot file), a tree type, a
//! decomposition type, a traversal, an engine, and iterate.
//!
//! ```text
//! paratreet gravity --particles 20000 --iterations 5 --tree oct --decomp sfc
//! paratreet sph     --particles 8000  --k 32
//! paratreet disk    --particles 3000  --iterations 100
//! paratreet gravity --input snap.ptrt --output out.ptrt --csv out.csv
//! paratreet gravity --engine threaded --ranks 4 --workers 2
//! ```

use paratreet::core_api::{
    CacheModel, Configuration, DecompType, DistributedEngine, Framework, ThreadedEngine,
    TraversalKind,
};
use paratreet_apps::collision::{orbital_period, DiskSimulation};
use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_apps::sph::{sph_framework, SphSimulation};
use paratreet_geometry::Vec3;
use paratreet_particles::gen::{self, DiskParams};
use paratreet_particles::{io, Particle};
use paratreet_runtime::{
    CrashConfig, CrashPhase, CrashTrigger, FaultConfig, FaultInjector, FaultStats, MachineSpec,
};
use paratreet_telemetry::{export, FlightRecorder, MetricsRegistry, Telemetry};
use std::collections::HashMap;
use std::process::exit;

const USAGE: &str = "\
paratreet — spatial tree traversal framework (ParaTreeT reproduction)

USAGE: paratreet <APP> [OPTIONS]

APPS:
  gravity     Barnes-Hut N-body (leapfrog integration)
  sph         smoothed-particle hydrodynamics (kNN density + pressure)
  disk        planetesimal disk with collision detection (case study)
  serve-bench concurrent query service over a live maintained tree:
              a writer thread advances the forest while a reader pool
              answers a mixed kNN/ball/range/raycast stream from
              simulated clients against pinned snapshots
  fof         friends-of-friends halo finding over a forest of boxes:
              per-box trees, 2:1 seam balance, ghost-layer exchange,
              dual-tree linking, cross-box union-find merge

WORKLOAD (default: generator):
  --particles N        particle count                      [10000]
  --dist KIND          uniform | plummer | clustered | disk | lattice
                       | tiled (one Plummer blob per grid tile)
  --seed S             generator seed                      [1]
  --input FILE         read a .ptrt snapshot instead of generating

FOREST / FOF (fof only):
  --tiles AxBxC        domain grid, tiles per axis         [2x2x1]
  --tile L             side length of one cubical tile     [1.0]
  --periodic B         identify opposite outer faces       [true]
  --link B             FoF linking length (0 = 0.2 × mean
                       interparticle separation)           [0]
  --min-members N      smallest component kept as a halo   [8]

CONFIGURATION:
  --tree KIND          oct | kd | longest-dim              [oct]
  --decomp KIND        sfc | oct | kd | longest-dim        [sfc]
  --traversal KIND     top-down | basic-dfs | up-and-down | dual-tree
  --bucket N           max bucket size                     [16]
  --subtrees N         minimum Subtrees                    [8]
  --partitions N       minimum Partitions                  [16]
  --iterations N       simulation steps                    [1]
  --theta T            Barnes-Hut opening angle            [0.7]
  --k N                SPH/kNN neighbour count             [32]
  --dt T               timestep (gravity/disk)             [auto]

ENGINE:
  --engine KIND        shared | threaded | machine         [shared]
  --ranks N            ranks for threaded/machine engines  [2]
  --workers N          workers per rank                    [2]

INCREMENTAL TREE MAINTENANCE (all engines):
  --incremental B      maintain the tree across iterations instead
                       of rebuilding from scratch          [false]
  --inc-alpha F        BB[α] weight-balance factor: rebuild a
                       median-split Subtree when a child outweighs
                       α of its parent                     [0.7]
  --inc-depth-slack N  levels past the α-balance depth bound before
                       a per-Subtree rebuild               [2]
  --inc-imbalance R    partition-cost imbalance ratio that triggers
                       a whole-tree rebuild + re-decomposition [2.5]
  --inc-universe-pad F universe padding fraction kept as drift
                       headroom (0 disables padding)       [0.05]
  --inc-threads N      threads for the batch update phases
                       (0 = one per core)                  [0]

QUERY SERVING (serve-bench only):
  --clients N          simulated clients                   [200]
  --queries N          queries per client                  [50]
  --serve-workers N    reader (worker) threads             [4]
  --threads N          client driver threads               [4]
  --batch N            queries per submitted batch         [32]
  --queue N            work queue capacity, batches        [256]
  --ring N             snapshot ring capacity              [8]
  --admission KIND     defer (backpressure) | shed (depth) |
                       cost (EWMA predicted-cost shedding) [defer]
  --writer-pace-ms T   sleep between writer advances, ms   [0]
                       (--iterations 0 = advance until the load
                       finishes; N = stop after N advances)
  --deadline-ms T      per-request completion deadline, ms
                       (0 = none; expired requests answered
                       DeadlineExceeded, not executed)      [0]
  --max-backlog-ms T   cost-admission backlog bound for
                       deadline-free requests, ms (0 = none) [0]
  --retries N          load-generator retry attempts after a
                       retryable submit failure (seeded
                       jittered exponential backoff)        [3]
  --pace-us T          inter-batch gap per driver thread, us
                       (0 = submit as fast as possible)     [0]
  --degrade B          1 = enable the degradation ladder
                       (clamped k, shrunk radii, truncated
                       range answers with resume cursors)   [0]
  --respawn-limit N    worker respawns before quarantine    [8]
  --inject-worker-panic N  chaos: panic the worker popping
                       batch N (0 = off)                    [0]
  --inject-writer-panic N  chaos: panic the writer before
                       publishing epoch N (0 = off); the
                       service enters stale-serving mode    [0]

FAULT INJECTION (machine engine only; seeded, deterministic):
  --fault-drop P       drop probability per message        [0]
  --fault-dup P        duplicate probability per message   [0]
  --fault-delay P      extra-delay probability per message [0]
  --fault-delay-s T    extra delay magnitude, seconds      [2e-3]
  --fault-seed S       fault stream seed                   [0x5EEDCAFE]
  --fault-timeout T    fetch retry timeout, seconds        [5e-3]

CRASH-STOP FAULTS (machine engine only; deterministic):
  --crash-rank R       rank R crash-stops (requires --ranks >= 2)
  --crash-phase P      decomposition | tree-build | leaf-sharing |
                       traversal — crash at that phase start [traversal]
  --crash-time T       crash at virtual time T seconds (overrides
                       --crash-phase)
  --crash-restart B    true: restart from checkpoint; false: stay dead
                       and re-shard onto survivors          [true]
  --crash-restart-delay T  reboot delay after detection, s  [5e-3]

OUTPUT:
  --output FILE        write final .ptrt snapshot
  --csv FILE           write final state as CSV
  --trace-out FILE     write a Chrome trace of the run (open at
                       ui.perfetto.dev; one track per rank/worker)
  --metrics-out FILE   dump the metrics registry (.csv extension
                       selects CSV, anything else JSON)
  --timeseries-out FILE  write the flight-recorder time series
                       (.csv extension selects CSV, else JSON);
                       feed all three files to paratreet-analyze
  --sample-ms T        serve-bench flight sampling interval, ms [5]
";

fn parse_args() -> (String, HashMap<String, String>) {
    let mut args = std::env::args().skip(1);
    let app = match args.next() {
        Some(a) if !a.starts_with("--") => a,
        _ => {
            eprintln!("{USAGE}");
            exit(2);
        }
    };
    let mut opts = HashMap::new();
    while let Some(k) = args.next() {
        if let Some(name) = k.strip_prefix("--") {
            match args.next() {
                Some(v) => {
                    opts.insert(name.to_string(), v);
                }
                None => {
                    eprintln!("missing value for --{name}\n{USAGE}");
                    exit(2);
                }
            }
        } else {
            eprintln!("unexpected argument {k}\n{USAGE}");
            exit(2);
        }
    }
    (app, opts)
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    match opts.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v}");
            exit(2);
        }),
        None => default,
    }
}

fn tree_type(s: &str) -> paratreet_tree::TreeType {
    match s {
        "oct" => paratreet_tree::TreeType::Octree,
        "kd" => paratreet_tree::TreeType::KdTree,
        "longest-dim" => paratreet_tree::TreeType::LongestDim,
        _ => {
            eprintln!("unknown tree type {s}");
            exit(2);
        }
    }
}

fn decomp_type(s: &str) -> DecompType {
    match s {
        "sfc" => DecompType::Sfc,
        "oct" => DecompType::Oct,
        "kd" => DecompType::Kd,
        "longest-dim" => DecompType::LongestDim,
        _ => {
            eprintln!("unknown decomposition type {s}");
            exit(2);
        }
    }
}

fn traversal_kind(s: &str) -> TraversalKind {
    match s {
        "top-down" => TraversalKind::TopDown,
        "basic-dfs" => TraversalKind::BasicDfs,
        "up-and-down" => TraversalKind::UpAndDown,
        "dual-tree" => TraversalKind::DualTree,
        _ => {
            eprintln!("unknown traversal {s}");
            exit(2);
        }
    }
}

/// Parses `--tiles AxBxC` (e.g. `2x2x1`).
fn parse_tiles(opts: &HashMap<String, String>) -> [usize; 3] {
    let s = get(opts, "tiles", "2x2x1".to_string());
    let parts: Vec<usize> = s.split('x').filter_map(|t| t.parse().ok()).collect();
    if parts.len() != 3 || parts.contains(&0) {
        eprintln!("bad value for --tiles: {s} (expected AxBxC, e.g. 2x2x1)");
        exit(2);
    }
    [parts[0], parts[1], parts[2]]
}

fn load_particles(app: &str, opts: &HashMap<String, String>) -> Vec<Particle> {
    if let Some(path) = opts.get("input") {
        match io::read_snapshot(path) {
            Ok(ps) => {
                println!("loaded {} particles from {path}", ps.len());
                return ps;
            }
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                exit(1);
            }
        }
    }
    let n = get(opts, "particles", 10_000usize);
    let seed = get(opts, "seed", 1u64);
    let default_dist = match app {
        "sph" => "lattice",
        "disk" => "disk",
        "fof" => "tiled",
        _ => "plummer",
    };
    let binding = default_dist.to_string();
    let dist = opts.get("dist").unwrap_or(&binding);
    match dist.as_str() {
        "uniform" => gen::uniform_cube(n, seed, 1.0, 1.0),
        "plummer" => gen::plummer(n, seed, 1.0, 1.0),
        "clustered" => gen::clustered(n, 4, seed, 1.0, 1.0),
        "lattice" => gen::perturbed_lattice(n, seed, 0.5, 0.02),
        "tiled" => gen::tiled_plummer(n, parse_tiles(opts), seed, get(opts, "tile", 1.0), 1.0),
        "disk" => {
            let mut params = DiskParams::default();
            params.body_radius *= get(opts, "radius-scale", 3e4);
            gen::keplerian_disk(n, seed, params)
        }
        other => {
            eprintln!("unknown distribution {other}");
            exit(2);
        }
    }
}

fn write_outputs(opts: &HashMap<String, String>, particles: &[Particle]) {
    if let Some(path) = opts.get("output") {
        if let Err(e) = io::write_snapshot(path, particles) {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }
        println!("wrote snapshot to {path}");
    }
    if let Some(path) = opts.get("csv") {
        match std::fs::File::create(path) {
            Ok(mut f) => {
                io::write_csv(&mut f, particles).expect("csv write");
                println!("wrote CSV to {path}");
            }
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                exit(1);
            }
        }
    }
}

fn configuration(opts: &HashMap<String, String>) -> Configuration {
    let mut config = Configuration {
        tree_type: tree_type(&get(opts, "tree", "oct".to_string())),
        decomp_type: decomp_type(&get(opts, "decomp", "sfc".to_string())),
        bucket_size: get(opts, "bucket", 16usize),
        n_subtrees: get(opts, "subtrees", 8usize),
        n_partitions: get(opts, "partitions", 16usize),
        iterations: get(opts, "iterations", 1usize),
        seed: get(opts, "seed", 1u64),
        ..Default::default()
    };
    let inc = &mut config.incremental;
    inc.enabled = get(opts, "incremental", inc.enabled);
    inc.balance_alpha = get(opts, "inc-alpha", inc.balance_alpha);
    inc.balance_depth_slack = get(opts, "inc-depth-slack", inc.balance_depth_slack);
    inc.imbalance_rebuild = get(opts, "inc-imbalance", inc.imbalance_rebuild);
    inc.universe_pad = get(opts, "inc-universe-pad", inc.universe_pad);
    inc.batch_threads = get(opts, "inc-threads", inc.batch_threads);
    config
}

/// Scheduled crash-stop knobs; `None` unless `--crash-rank` was given.
fn crash_config(opts: &HashMap<String, String>) -> Option<CrashConfig> {
    let rank = opts.get("crash-rank")?;
    let rank: u32 = rank.parse().unwrap_or_else(|_| {
        eprintln!("bad value for --crash-rank: {rank}");
        exit(2);
    });
    let trigger = if opts.contains_key("crash-time") {
        CrashTrigger::AtTime(get(opts, "crash-time", 0.0f64))
    } else {
        let phase = match get(opts, "crash-phase", "traversal".to_string()).as_str() {
            "decomposition" => CrashPhase::Decomposition,
            "tree-build" => CrashPhase::TreeBuild,
            "leaf-sharing" => CrashPhase::LeafSharing,
            "traversal" => CrashPhase::Traversal,
            other => {
                eprintln!("unknown crash phase {other}");
                exit(2);
            }
        };
        CrashTrigger::AtPhase(phase)
    };
    Some(CrashConfig {
        rank,
        trigger,
        restart: get(opts, "crash-restart", true),
        restart_delay_s: get(opts, "crash-restart-delay", 5e-3),
    })
}

/// Fault-injection knobs for the machine engine; `None` when every
/// probability is zero and no crash is scheduled (a perfect network
/// needs no retry machinery). Every rejected configuration is reported
/// through [`FaultConfigError`]'s rendering, not a panic.
fn fault_config(opts: &HashMap<String, String>) -> Option<FaultConfig> {
    let drop_p = get(opts, "fault-drop", 0.0f64);
    let duplicate_p = get(opts, "fault-dup", 0.0f64);
    let delay_p = get(opts, "fault-delay", 0.0f64);
    let crash = crash_config(opts);
    if drop_p == 0.0 && duplicate_p == 0.0 && delay_p == 0.0 && crash.is_none() {
        return None;
    }
    let config = FaultConfig {
        seed: get(opts, "fault-seed", 0x5EED_CAFEu64),
        drop_p,
        duplicate_p,
        delay_p,
        delay_s: get(opts, "fault-delay-s", 2e-3),
        retry_timeout_s: get(opts, "fault-timeout", 5e-3),
        crash,
    };
    if let Err(e) = FaultInjector::new(config) {
        eprintln!("invalid fault configuration: {e}");
        exit(2);
    }
    Some(config)
}

/// The telemetry handle for a run: enabled when `--trace-out` was
/// given (virtual clock for the machine engine, wall clock otherwise),
/// disabled — and therefore free — when it wasn't.
fn telemetry_for(opts: &HashMap<String, String>, virtual_clock: bool, shards: usize) -> Telemetry {
    if !opts.contains_key("trace-out") {
        return Telemetry::disabled();
    }
    let t = if virtual_clock { Telemetry::virtual_time(shards) } else { Telemetry::wall(shards) };
    if !t.is_enabled() {
        eprintln!(
            "warning: --trace-out given but the telemetry feature is compiled out; \
             the trace will be empty (rebuild without --no-default-features)"
        );
    }
    t
}

/// Drains `telemetry` into `--trace-out` and dumps `metrics` to
/// `--metrics-out`, when the respective flag was given.
fn write_telemetry(
    opts: &HashMap<String, String>,
    telemetry: &Telemetry,
    metrics: Option<&MetricsRegistry>,
) {
    if let Some(path) = opts.get("trace-out") {
        match export::write_chrome_trace(path, &telemetry.drain()) {
            Ok(()) => println!("wrote Chrome trace to {path} (load at ui.perfetto.dev)"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
        }
    }
    if let Some(path) = opts.get("metrics-out") {
        let Some(metrics) = metrics else {
            eprintln!("--metrics-out is not supported for this app/engine combination");
            exit(2);
        };
        match export::write_metrics(path, metrics) {
            Ok(()) => println!("wrote metrics to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
        }
    }
}

/// Wall-clock shard count for engines running on OS threads.
fn wall_shards(extra_threads: usize) -> usize {
    extra_threads + std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8) + 1
}

/// The flight-recorder handle for a run: enabled when
/// `--timeseries-out` was given (virtual clock for the machine engine,
/// wall clock otherwise), disabled — and therefore free — otherwise.
fn flight_for(
    opts: &HashMap<String, String>,
    virtual_clock: bool,
    series: &[&'static str],
    capacity: usize,
) -> FlightRecorder {
    if !opts.contains_key("timeseries-out") {
        return FlightRecorder::disabled();
    }
    let f = if virtual_clock {
        FlightRecorder::virtual_time(series, capacity)
    } else {
        FlightRecorder::wall(series, capacity)
    };
    if !f.is_enabled() {
        eprintln!(
            "warning: --timeseries-out given but the telemetry feature is compiled out; \
             the series will be empty (rebuild without --no-default-features)"
        );
    }
    f
}

/// Writes the flight-recorder window to `--timeseries-out`, when given.
fn write_flight(opts: &HashMap<String, String>, flight: &FlightRecorder) {
    if let Some(path) = opts.get("timeseries-out") {
        match export::write_timeseries(path, &flight.snapshot()) {
            Ok(()) => println!("wrote flight-recorder series to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
        }
    }
}

fn run_gravity(opts: &HashMap<String, String>) {
    let mut particles = load_particles("gravity", opts);
    for p in &mut particles {
        if p.softening == 0.0 {
            p.softening = 0.01;
        }
    }
    let config = configuration(opts);
    let kind = traversal_kind(&get(opts, "traversal", "top-down".to_string()));
    let visitor = GravityVisitor { theta: get(opts, "theta", 0.7), g: 1.0 };
    let iterations = config.iterations;
    let dt = get(opts, "dt", 1.0 / 64.0);
    let engine = get(opts, "engine", "shared".to_string());

    match engine.as_str() {
        "shared" => {
            let telemetry = telemetry_for(opts, false, wall_shards(0));
            let flight = flight_for(
                opts,
                false,
                paratreet::core_api::framework::FLIGHT_SERIES,
                (iterations + 1) * 2 + 8,
            );
            let mut fw: Framework<CentroidData> = Framework::new(config, particles)
                .with_telemetry(telemetry.clone())
                .with_flight_recorder(flight.clone());
            fw.step(|s| {
                s.traverse(&visitor, kind);
            });
            let mut last_metrics = MetricsRegistry::new();
            for step in 0..iterations {
                for p in fw.particles_mut().iter_mut() {
                    p.vel += p.acc * (0.5 * dt);
                    p.pos += p.vel * dt;
                    p.acc = Vec3::ZERO;
                    p.potential = 0.0;
                }
                let (_, report) = fw.step(|s| {
                    s.traverse(&visitor, kind);
                });
                for p in fw.particles_mut().iter_mut() {
                    p.vel += p.acc * (0.5 * dt);
                }
                println!(
                    "step {step}: {} pp + {} pn interactions, traverse {:.1} ms",
                    report.counts.leaf_interactions,
                    report.counts.node_interactions,
                    report.seconds_traverse * 1e3
                );
                last_metrics = report.metrics();
            }
            write_telemetry(opts, &telemetry, Some(&last_metrics));
            write_flight(opts, &flight);
            write_outputs(opts, fw.particles());
        }
        "threaded" => {
            let ranks = get(opts, "ranks", 2usize);
            let workers = get(opts, "workers", 2usize);
            let incremental = config.incremental.enabled;
            let telemetry = telemetry_for(opts, false, wall_shards(ranks * workers + ranks));
            let flight = flight_for(
                opts,
                false,
                paratreet::core_api::framework::FLIGHT_SERIES,
                (iterations + 1) * 2 + 8,
            );
            let eng = ThreadedEngine::new(config, ranks, workers, &visitor)
                .with_telemetry(telemetry.clone())
                .with_flight_recorder(flight.clone());
            let rep = if incremental {
                // Maintained mode: the tree persists across iterations
                // inside `slot`; each step drifts the particles and
                // patches the tree instead of rebuilding it.
                let mut slot = None;
                let mut rep = eng.run_maintained(&mut slot, particles, kind);
                for step in 1..iterations.max(1) {
                    let mut ps = rep.particles;
                    for p in ps.iter_mut() {
                        p.vel += p.acc * dt;
                        p.pos += p.vel * dt;
                        p.acc = Vec3::ZERO;
                        p.potential = 0.0;
                    }
                    rep = eng.run_maintained(&mut slot, ps, kind);
                    println!(
                        "step {step}: {} pp interactions, update {:.1} ms",
                        rep.counts.leaf_interactions,
                        rep.metrics.get_f64("time.update_s") * 1e3
                    );
                }
                rep
            } else {
                eng.run_iteration(particles, kind)
            };
            println!(
                "threaded ({ranks}x{workers}): {} pp interactions, {} remote fills, {} fetches",
                rep.counts.leaf_interactions, rep.remote_fills, rep.cache.requests_sent
            );
            write_telemetry(opts, &telemetry, Some(&rep.metrics));
            write_flight(opts, &flight);
            write_outputs(opts, &rep.particles);
        }
        "machine" => {
            let ranks = get(opts, "ranks", 2usize);
            let incremental = config.incremental.enabled;
            let telemetry = telemetry_for(opts, true, 1);
            let flight = flight_for(
                opts,
                true,
                paratreet::core_api::DES_FLIGHT_SERIES,
                (iterations + 1) * 2 + 8,
            );
            let mut eng = DistributedEngine::new(
                MachineSpec::stampede2(ranks),
                config,
                CacheModel::WaitFree,
                kind,
                &visitor,
            )
            .with_telemetry(telemetry.clone())
            .with_flight_recorder(flight.clone());
            if let Some(f) = fault_config(opts) {
                if let Some(c) = f.crash {
                    if ranks < 2 || c.rank as usize >= ranks {
                        eprintln!(
                            "--crash-rank {} needs a machine of at least 2 ranks \
                             with the crashed rank on it (got --ranks {ranks})",
                            c.rank
                        );
                        exit(2);
                    }
                }
                eng = eng.with_faults(f);
            }
            let rep = if incremental {
                // Maintained mode on the simulated machine: later
                // iterations charge Phase::TreeUpdate instead of full
                // decomposition + build time.
                let mut slot = None;
                let mut rep = eng.run_maintained(&mut slot, particles);
                for step in 1..iterations.max(1) {
                    let mut ps = rep.particles;
                    for p in ps.iter_mut() {
                        p.vel += p.acc * dt;
                        p.pos += p.vel * dt;
                        p.acc = Vec3::ZERO;
                        p.potential = 0.0;
                    }
                    rep = eng.run_maintained(&mut slot, ps);
                    println!(
                        "step {step}: makespan {:.3} ms, {} buckets patched, {} migrated",
                        rep.makespan * 1e3,
                        rep.metrics.get_u64("tree.update.patched"),
                        rep.metrics.get_u64("tree.update.round_migrated")
                    );
                }
                rep
            } else {
                eng.run_iteration(particles)
            };
            println!(
                "machine model ({ranks} nodes): makespan {:.3} ms, utilization {:.1}%, {} bytes on the wire",
                rep.makespan * 1e3,
                rep.utilization * 100.0,
                rep.comm.bytes
            );
            if rep.faults != FaultStats::default() || rep.fetch_retries > 0 {
                println!(
                    "faults injected: {} dropped, {} duplicated, {} delayed; {} fetch retries, {} fill errors",
                    rep.faults.dropped,
                    rep.faults.duplicated,
                    rep.faults.delayed,
                    rep.fetch_retries,
                    rep.fill_errors
                );
            }
            if rep.recovery.count > 0 {
                let r = &rep.recovery;
                println!(
                    "crash recovered: detected at {:.3} ms, done at {:.3} ms ({}); \
                     {} stale fills rejected, {} checkpoint bytes read",
                    r.detected_s * 1e3,
                    r.completed_s * 1e3,
                    if r.restarted > 0 {
                        "rank restarted from checkpoint".to_string()
                    } else {
                        format!(
                            "{} subtrees re-sharded, {} partitions moved",
                            r.resharded_subtrees, r.moved_partitions
                        )
                    },
                    r.stale_fills,
                    r.restored_bytes
                );
            }
            write_telemetry(opts, &telemetry, Some(&rep.metrics));
            write_flight(opts, &flight);
            write_outputs(opts, &rep.particles);
        }
        other => {
            eprintln!("unknown engine {other}");
            exit(2);
        }
    }
}

fn run_sph(opts: &HashMap<String, String>) {
    let particles = load_particles("sph", opts);
    let config = configuration(opts);
    let iterations = config.iterations;
    let telemetry = telemetry_for(opts, false, wall_shards(0));
    let flight = flight_for(
        opts,
        false,
        paratreet::core_api::framework::FLIGHT_SERIES,
        (iterations + 1) * 2 + 8,
    );
    let mut fw = sph_framework(config, particles);
    fw.telemetry = telemetry.clone();
    fw.flight = flight.clone();
    let sph = SphSimulation { k: get(opts, "k", 32usize), ..Default::default() };
    let dt = get(opts, "dt", 1e-3);
    let mut metrics = MetricsRegistry::new();
    for step in 0..iterations {
        for p in fw.particles_mut().iter_mut() {
            p.acc = Vec3::ZERO;
        }
        let stats = sph.step(&mut fw);
        for p in fw.particles_mut().iter_mut() {
            p.vel += p.acc * dt;
            p.pos += p.vel * dt;
        }
        println!(
            "step {step}: mean density {:.4}, {} neighbour entries",
            stats.mean_density, stats.neighbor_entries
        );
        metrics.set_f64("sph.mean_density", stats.mean_density);
        metrics.set_u64("sph.neighbor_entries", stats.neighbor_entries as u64);
        metrics.set_u64("sph.steps", (step + 1) as u64);
    }
    write_telemetry(opts, &telemetry, Some(&metrics));
    write_flight(opts, &flight);
    write_outputs(opts, fw.particles());
}

fn run_disk(opts: &HashMap<String, String>) {
    let particles = load_particles("disk", opts);
    let mut config = configuration(opts);
    if !opts.contains_key("tree") {
        config.tree_type = paratreet_tree::TreeType::LongestDim;
    }
    if !opts.contains_key("decomp") {
        config.decomp_type = DecompType::LongestDim;
    }
    let iterations = config.iterations;
    let star_mass = particles.first().map(|p| p.mass).unwrap_or(1.0);
    let dt = get(opts, "dt", orbital_period(2.0, star_mass) / 50.0);
    let telemetry = telemetry_for(opts, false, wall_shards(0));
    let flight = flight_for(
        opts,
        false,
        paratreet::core_api::framework::FLIGHT_SERIES,
        (iterations + 1) * 2 + 8,
    );
    let mut sim = DiskSimulation::new(config, particles, dt);
    sim.framework.telemetry = telemetry.clone();
    sim.framework.flight = flight.clone();
    for step in 0..iterations {
        let events = sim.step();
        if !events.is_empty() {
            println!("step {step}: {} collisions (total {})", events.len(), sim.events.len());
        }
    }
    println!(
        "{} collisions over {iterations} steps; {} bodies remain",
        sim.events.len(),
        sim.framework.particles().len()
    );
    let mut metrics = MetricsRegistry::new();
    metrics.set_u64("disk.collisions", sim.events.len() as u64);
    metrics.set_u64("disk.steps", iterations as u64);
    metrics.set_u64("disk.bodies_remaining", sim.framework.particles().len() as u64);
    write_telemetry(opts, &telemetry, Some(&metrics));
    write_flight(opts, &flight);
    write_outputs(opts, sim.framework.particles());
}

fn run_serve_bench(opts: &HashMap<String, String>) {
    use paratreet_serve::{
        run_load, AdmissionPolicy, DegradeConfig, FailPoints, LoadConfig, QueryClass, QueryService,
        ServeConfig, WriterConfig,
    };
    use paratreet_tree::CountData;

    let particles = load_particles("serve-bench", opts);
    let mut config = configuration(opts);
    config.incremental.enabled = true;
    let admission = match get(opts, "admission", "defer".to_string()).as_str() {
        "defer" => AdmissionPolicy::Defer,
        "shed" => AdmissionPolicy::Shed,
        "cost" => AdmissionPolicy::CostAware,
        other => {
            eprintln!("unknown admission policy {other} (defer | shed | cost)");
            exit(2);
        }
    };
    let iterations = get(opts, "iterations", 0u64);
    let pace_ms = get(opts, "writer-pace-ms", 0u64);
    let deadline_ms = get(opts, "deadline-ms", 0u64);
    let max_backlog_ms = get(opts, "max-backlog-ms", 0u64);
    let degrade_on = get(opts, "degrade", 0u64) != 0;
    let fail = FailPoints {
        worker_panic_at_batch: match get(opts, "inject-worker-panic", 0u64) {
            0 => None,
            n => Some(n),
        },
        writer_panic_at_epoch: match get(opts, "inject-writer-panic", 0u64) {
            0 => None,
            n => Some(n),
        },
    };

    let (maintainer, seed_trees) =
        paratreet::core_api::TreeMaintainer::<CountData>::seed(&config, particles, true);
    let universe = maintainer.universe();

    // Attach observability *before* the service spawns: workers trace
    // each request's span chain into `telemetry` as it runs, and the
    // sampler thread records FLIGHT_SERIES rows while the load is live.
    let serve_workers = get(opts, "serve-workers", 4usize);
    let client_threads = get(opts, "threads", 4usize);
    let telemetry = telemetry_for(opts, false, wall_shards(serve_workers + client_threads + 2));
    let flight = flight_for(opts, false, paratreet_serve::service::FLIGHT_SERIES, 65_536);
    let mut service: QueryService<CountData> = QueryService::with_telemetry(
        ServeConfig {
            workers: serve_workers,
            queue_capacity: get(opts, "queue", 256usize),
            ring_capacity: get(opts, "ring", 8usize),
            admission,
            max_backlog: (max_backlog_ms > 0)
                .then(|| std::time::Duration::from_millis(max_backlog_ms)),
            degrade: if degrade_on { DegradeConfig::default() } else { DegradeConfig::disabled() },
            respawn_limit: get(opts, "respawn-limit", 8u32),
            fail,
            ..ServeConfig::default()
        },
        telemetry.clone(),
    );
    if flight.is_enabled() {
        let interval = std::time::Duration::from_millis(get(opts, "sample-ms", 5u64));
        service.spawn_flight_sampler(flight.clone(), interval);
    }
    service.spawn_writer(
        maintainer,
        seed_trees,
        Box::new(|particles: &mut [Particle], iteration: u64| {
            for p in particles.iter_mut() {
                let h = p.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ iteration;
                p.pos.x += ((h & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
                p.pos.y += ((h >> 8 & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
                p.pos.z += ((h >> 16 & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
            }
        }),
        WriterConfig {
            iterations: if iterations == 0 { u64::MAX } else { iterations },
            pace: (pace_ms > 0).then(|| std::time::Duration::from_millis(pace_ms)),
        },
    );

    let load = LoadConfig {
        clients: get(opts, "clients", 200usize),
        queries_per_client: get(opts, "queries", 50usize),
        threads: client_threads,
        batch: get(opts, "batch", 32usize),
        k: get(opts, "k", 8usize),
        seed: get(opts, "seed", 1u64),
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        max_retries: get(opts, "retries", 3u32),
        pace: match get(opts, "pace-us", 0u64) {
            0 => None,
            us => Some(std::time::Duration::from_micros(us)),
        },
        ..LoadConfig::default()
    };
    let report = run_load(&service, universe, &load);
    let health = service.health();
    let shutdown = service.shutdown();
    let last_epoch = shutdown.last_epoch.unwrap_or(0);
    let metrics = service.metrics();

    println!(
        "{} completed / {} submitted / {} shed in {:.2}s — {:.0} queries/s; \
         epochs {}..{} answered, writer published {} (last epoch {last_epoch})",
        report.completed,
        report.submitted,
        report.shed,
        report.elapsed_s,
        report.throughput,
        report.min_epoch,
        report.max_epoch,
        metrics.get_u64("serve.snapshots.published"),
    );
    println!(
        "  overload: {} deadline-exceeded, {} retries, {} abandoned, {} degraded, {} partial",
        report.deadline_exceeded, report.retries, report.abandoned, report.degraded, report.partial,
    );
    let issued: u64 = report.per_class.iter().sum();
    if load.deadline.is_some() && issued > 0 {
        println!(
            "  in-deadline completion: {}/{} = {:.1}%",
            metrics.get_u64("serve.queries.completed_in_deadline"),
            issued,
            100.0 * metrics.get_u64("serve.queries.completed_in_deadline") as f64 / issued as f64,
        );
    }
    println!(
        "  health: {} writer, {}/{} workers alive, {} panics, {} respawns{}{}",
        health.writer.label(),
        health.workers_alive,
        health.workers_configured,
        health.worker_panics,
        health.worker_respawns,
        if health.stale_serving {
            format!(", STALE-SERVING ({} epochs behind)", health.staleness_epochs)
        } else {
            String::new()
        },
        if shutdown.is_clean() { String::new() } else { " [unclean shutdown]".to_string() },
    );
    for class in QueryClass::ALL {
        let key = |stat: &str| format!("serve.latency.{}.{stat}", class.label());
        println!(
            "  {:>5}: {} queries, p50 {:.1}us p99 {:.1}us p999 {:.1}us",
            class.label(),
            metrics.get_u64(&key("count")),
            metrics.get_u64(&key("p50")) as f64 * 1e-3,
            metrics.get_u64(&key("p99")) as f64 * 1e-3,
            metrics.get_u64(&key("p999")) as f64 * 1e-3,
        );
    }

    write_telemetry(opts, &telemetry, Some(&metrics));
    write_flight(opts, &flight);
}

/// Friends-of-friends halo finding over a tiled forest: decompose per
/// box, balance the seams, exchange ghost layers at the linking length,
/// link with the dual-tree pass, and merge halos across boxes. The
/// machine engine additionally prices the exchange through the DES comm
/// model (`ghost.des.*` metrics, virtual-time spans).
fn run_fof(opts: &HashMap<String, String>) {
    use paratreet::core_api::{
        decompose_forest, des_ghost_exchange, enforce_seam_balance, exchange_ghosts, DomainSpec,
    };
    use paratreet_apps::fof::{link_forest, FofParams};
    use paratreet_tree::CountData;

    let config = configuration(opts);
    let particles = load_particles("fof", opts);
    let tiles = parse_tiles(opts);
    let tile = get(opts, "tile", 1.0f64);
    let periodic = get(opts, "periodic", true);
    let spec = DomainSpec::tiled(tiles, tile, periodic);
    let n = particles.len();
    let volume = (tiles[0] * tiles[1] * tiles[2]) as f64 * tile * tile * tile;
    let mut link = get(opts, "link", 0.0f64);
    if link <= 0.0 {
        link = 0.2 * (volume / n.max(1) as f64).cbrt();
    }
    let params = FofParams { link, min_members: get(opts, "min-members", 8usize) };
    let engine = get(opts, "engine", "shared".to_string());
    let machine_engine = match engine.as_str() {
        "machine" => true,
        "shared" => false,
        other => {
            eprintln!("unknown engine {other} for fof (shared | machine)");
            exit(2);
        }
    };
    let telemetry = telemetry_for(opts, machine_engine, wall_shards(0));

    let t0 = std::time::Instant::now();
    let forest = decompose_forest(particles, &config, &spec);
    let mut trees = forest.build_trees::<CountData>(&config, !machine_engine);
    let seam_splits = enforce_seam_balance(
        &mut trees,
        &forest.boxes,
        &forest.routes,
        config.tree_type,
        config.bucket_size,
    );
    let layer = exchange_ghosts(&forest, &trees, link, &telemetry);
    let catalog =
        link_forest(&forest, &trees, &layer, &params, config.tree_type, config.bucket_size);
    let elapsed = t0.elapsed().as_secs_f64();

    let mut metrics = MetricsRegistry::new();
    let mut fstats = forest.stats();
    fstats.seam_splits = seam_splits;
    metrics.absorb("forest", &fstats);
    metrics.absorb("ghost", &layer.stats);
    metrics.absorb("fof", &catalog);
    metrics.set_f64("fof.link", link);
    metrics.set_f64("fof.elapsed_s", elapsed);
    if machine_engine {
        let ranks = get(opts, "ranks", 2usize);
        let workers = get(opts, "workers", 2usize);
        let report =
            des_ghost_exchange(&layer, MachineSpec::test(ranks, workers), telemetry.clone());
        metrics.absorb("ghost.des", &report);
        println!(
            "ghost DES: {} messages, {} bytes, makespan {:.3} ms, utilization {:.0}%",
            report.comm.messages,
            report.comm.bytes,
            report.makespan * 1e3,
            report.utilization * 100.0
        );
    }
    println!(
        "fof: {} boxes, {} routes, {} seam splits; {} ghosts ({} bytes); \
         {} halos (largest {}, grouped {}/{}) with link {:.4} in {:.3} s",
        forest.boxes.len(),
        forest.routes.len(),
        seam_splits,
        layer.stats.particles,
        layer.stats.bytes,
        catalog.halos.len(),
        catalog.halos.first().map(|h| h.members.len()).unwrap_or(0),
        catalog.n_grouped,
        catalog.n_particles,
        link,
        elapsed,
    );
    for h in catalog.halos.iter().take(5) {
        println!(
            "  halo {:>6}: {:>6} members, mass {:.4}, center ({:.3}, {:.3}, {:.3})",
            h.id,
            h.members.len(),
            h.mass,
            h.center.x,
            h.center.y,
            h.center.z
        );
    }
    write_telemetry(opts, &telemetry, Some(&metrics));
}

fn main() {
    let (app, opts) = parse_args();
    match app.as_str() {
        "gravity" => run_gravity(&opts),
        "sph" => run_sph(&opts),
        "disk" => run_disk(&opts),
        "serve-bench" => run_serve_bench(&opts),
        "fof" => run_fof(&opts),
        "help" | "-h" | "--help" => println!("{USAGE}"),
        other => {
            eprintln!("unknown app {other}\n{USAGE}");
            exit(2);
        }
    }
}
