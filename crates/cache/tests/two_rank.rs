//! Two simulated ranks exchanging fills: the full cache-miss lifecycle of
//! Fig. 2 — placeholder, request, serialise at home, insert, atomic swap,
//! waiter resumption — driven synchronously for determinism.

use paratreet_cache::{CacheTree, NodeKind, RequestOutcome, SubtreeSummary};
use paratreet_geometry::NodeKey;
use paratreet_particles::{gen, ParticleVec};
use paratreet_tree::{CountData, TreeBuilder, TreeType};

/// Builds a two-rank world: particles split by the root octant's first
/// digit would be uneven, so split the sorted SFC order in half and give
/// each rank the subtree(s) covering its half. For test simplicity each
/// rank owns ONE subtree: rank 0 the low octants under root child c0,
/// rank 1 the rest. We fabricate the split by building each rank's tree
/// over its own particles under distinct root children.
fn make_world(
    n: usize,
) -> (CacheTree<CountData>, CacheTree<CountData>, Vec<SubtreeSummary<CountData>>) {
    let mut ps = gen::uniform_cube(n, 77, 1.0, 1.0);
    let universe = ps.bounding_box().padded(1e-9).bounding_cube();
    ps.assign_keys(&universe);
    ps.sort_by_sfc_key();

    // Octant groups 0..4 -> rank 0 under their own subtree roots;
    // octants 4..8 -> rank 1. Subtree root = root child (one per octant).
    let mut summaries = Vec::new();
    let mut trees0 = Vec::new();
    let mut trees1 = Vec::new();
    for oct in 0..8 {
        let part: Vec<_> =
            ps.iter().copied().filter(|p| universe.octant_of(p.pos) == oct).collect();
        if part.is_empty() {
            continue;
        }
        let home = if oct < 4 { 0 } else { 1 };
        let builder = TreeBuilder {
            root_key: NodeKey::root().child(oct, 3),
            root_depth: 1,
            parallel: false,
            ..TreeBuilder::new(TreeType::Octree)
        };
        let tree = builder.bucket_size(8).build::<CountData>(part, universe.octant(oct));
        summaries.push(SubtreeSummary {
            key: tree.root().key,
            bbox: tree.root().bbox,
            n_particles: tree.root().n_particles,
            data: tree.root().data,
            home_rank: home,
        });
        if home == 0 {
            trees0.push(tree);
        } else {
            trees1.push(tree);
        }
    }

    let cache0: CacheTree<CountData> = CacheTree::new(0, 3);
    let cache1: CacheTree<CountData> = CacheTree::new(1, 3);
    cache0.init(&summaries, trees0);
    cache1.init(&summaries, trees1);
    (cache0, cache1, summaries)
}

#[test]
fn skeleton_has_correct_totals() {
    let (c0, c1, _) = make_world(500);
    assert_eq!(c0.root().unwrap().n_particles, 500);
    assert_eq!(c1.root().unwrap().n_particles, 500);
    assert_eq!(c0.root().unwrap().data.count, 500);
}

#[test]
fn local_subtrees_are_materialised_remote_are_placeholders() {
    let (c0, _c1, summaries) = make_world(500);
    for s in &summaries {
        let node = c0.lookup(s.key).expect("every subtree root resolved");
        if s.home_rank == 0 {
            assert_ne!(node.kind, NodeKind::Placeholder);
        } else {
            assert_eq!(node.kind, NodeKind::Placeholder);
            assert_eq!(node.home_rank, 1);
            assert_eq!(node.n_particles, s.n_particles); // summary present
        }
    }
}

#[test]
fn fetch_fill_swap_resume_cycle() {
    let (c0, c1, summaries) = make_world(800);
    let remote = summaries.iter().find(|s| s.home_rank == 1).unwrap();
    let ph = c0.lookup(remote.key).unwrap();
    assert!(ph.is_placeholder());

    // First request sends a fetch and parks waiter 42.
    match c0.request(ph, 42) {
        RequestOutcome::SendFetch { home_rank } => assert_eq!(home_rank, 1),
        other => panic!("expected SendFetch, got {other:?}"),
    }
    // Duplicate request from another traversal is absorbed.
    match c0.request(ph, 43) {
        RequestOutcome::InFlight => {}
        other => panic!("expected InFlight, got {other:?}"),
    }
    assert_eq!(c0.stats.snapshot().requests_sent, 1);
    assert_eq!(c0.stats.snapshot().requests_deduped, 1);

    // Home rank serialises the fill (depth 2).
    let fill = c1.serialize_fragment(remote.key, 2).unwrap();
    let outcome = c0.insert_fragment(&fill).unwrap();
    assert!(!outcome.duplicate);
    let mut resumed = outcome.resumed.clone();
    resumed.sort_by_key(|(_, w)| *w);
    assert_eq!(resumed, vec![(remote.key, 42), (remote.key, 43)]);
    let node = outcome.root;
    assert_eq!(node.key, remote.key);
    assert_ne!(node.kind, NodeKind::Placeholder);
    assert_eq!(node.n_particles, remote.n_particles);

    // The placeholder has been swapped out of the tree: walking from the
    // root now reaches the materialised node.
    let root = c0.root().unwrap();
    let slot = remote.key.child_index(3);
    let via_tree = root.child(slot).unwrap();
    assert!(std::ptr::eq(via_tree, node));

    // A request after the fill reports Ready immediately.
    match c0.request(ph, 44) {
        RequestOutcome::Ready(n) => assert!(std::ptr::eq(n, node)),
        other => panic!("expected Ready, got {other:?}"),
    }
}

#[test]
fn chained_fetches_reach_all_particles() {
    // Fetch with depth 1 repeatedly until every remote particle is
    // materialised on rank 0; the sum of leaf particle counts must equal
    // the global count. Exercises frontier placeholders and re-requests.
    let (c0, c1, _) = make_world(600);
    let mut waiter = 100u64;
    loop {
        // Walk the whole tree on rank 0, collecting placeholder keys.
        let mut placeholders = Vec::new();
        let mut leaf_particles = 0u64;
        let mut stack = vec![c0.root().unwrap()];
        while let Some(n) = stack.pop() {
            match n.kind {
                NodeKind::Placeholder => placeholders.push((n.key, n)),
                NodeKind::Leaf => leaf_particles += n.particles.len() as u64,
                _ => {}
            }
            for c in n.children_iter(8) {
                stack.push(c);
            }
        }
        if placeholders.is_empty() {
            assert_eq!(leaf_particles, 600);
            break;
        }
        for (key, ph) in placeholders {
            waiter += 1;
            match c0.request(ph, waiter) {
                RequestOutcome::SendFetch { home_rank } => {
                    assert_eq!(home_rank, 1);
                    let fill = c1.serialize_fragment(key, 1).unwrap();
                    let outcome = c0.insert_fragment(&fill).unwrap();
                    assert_eq!(outcome.resumed, vec![(key, waiter)]);
                }
                RequestOutcome::Ready(_) | RequestOutcome::InFlight => {
                    panic!("each placeholder key is requested exactly once")
                }
            }
        }
    }
    // All fills accounted: bytes received and nodes inserted are nonzero.
    let snap = c0.stats.snapshot();
    assert!(snap.fills_inserted > 0);
    assert!(snap.bytes_received > 0);
    assert_eq!(snap.waiters_parked, snap.waiters_resumed);
}

#[test]
fn traversal_sees_identical_structure_on_both_ranks_after_full_fetch() {
    let (c0, c1, _) = make_world(300);
    // Materialise everything on rank 0.
    let mut w = 0;
    loop {
        let mut any = false;
        let mut stack = vec![c0.root().unwrap()];
        let mut to_fetch = Vec::new();
        while let Some(n) = stack.pop() {
            if n.is_placeholder() {
                to_fetch.push((n.key, n));
            }
            for c in n.children_iter(8) {
                stack.push(c);
            }
        }
        for (key, ph) in to_fetch {
            any = true;
            w += 1;
            if let RequestOutcome::SendFetch { .. } = c0.request(ph, w) {
                let fill = c1.serialize_fragment(key, 64).unwrap();
                c0.insert_fragment(&fill).unwrap();
            }
        }
        if !any {
            break;
        }
    }
    // Compare whole-tree particle multiset between ranks via DFS of keys.
    fn collect(c: &CacheTree<CountData>) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        let mut stack = vec![c.root().unwrap()];
        while let Some(n) = stack.pop() {
            if n.is_leaf() {
                out.push((n.key.raw(), n.particles.len()));
            }
            for ch in n.children_iter(8) {
                stack.push(ch);
            }
        }
        out.sort_unstable();
        out
    }
    // Rank 1 still has placeholders for rank 0's data; compare only the
    // leaves under rank-1-owned subtrees, which rank 0 now mirrors.
    let r1_leaves = collect(&c1)
        .into_iter()
        .filter(|(k, _)| {
            let key = NodeKey(*k);
            let top = key.ancestor_at(1, 3);
            top.child_index(3) >= 4 // rank 1's octants
        })
        .collect::<Vec<_>>();
    let r0_view = collect(&c0)
        .into_iter()
        .filter(|(k, _)| NodeKey(*k).ancestor_at(1, 3).child_index(3) >= 4)
        .collect::<Vec<_>>();
    assert_eq!(r1_leaves, r0_view);
    assert!(!r1_leaves.is_empty());
}
