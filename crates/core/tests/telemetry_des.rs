//! Telemetry on the discrete-event engine: the trace is stamped in
//! virtual time, so the same workload and seed must yield a
//! byte-identical Chrome trace — and that trace must validate against
//! the trace-event schema with one track per simulated worker.

#![cfg(feature = "telemetry")]

use paratreet_core::{
    CacheModel, Configuration, DistributedEngine, IterationReport, SpatialNodeView, TargetBucket,
    TraversalKind, Visitor, DES_FLIGHT_SERIES,
};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;
use paratreet_telemetry::{
    chrome_trace_json, validate_chrome_trace, FlightRecorder, Telemetry, Trace,
};
use paratreet_tree::CountData;

/// Minimal mass-count visitor: descends until buckets, so multi-rank
/// runs generate genuine remote fetches and fills.
struct CountVisitor;

impl Visitor for CountVisitor {
    type Data = CountData;
    type State = u64;
    fn open(&self, s: &SpatialNodeView<'_, CountData>, _t: &TargetBucket<u64>) -> bool {
        s.n_particles > 8
    }
    fn node(&self, s: &SpatialNodeView<'_, CountData>, t: &mut TargetBucket<u64>) {
        t.state += s.data.count;
    }
    fn leaf(&self, s: &SpatialNodeView<'_, CountData>, t: &mut TargetBucket<u64>) {
        t.state += s.particles.len() as u64 * s.data.count;
    }
}

const RANKS: usize = 3;
const WORKERS: usize = 2;

fn run_traced() -> (IterationReport, Trace) {
    let particles = gen::uniform_cube(3_000, 42, 1.0, 1.0);
    let visitor = CountVisitor;
    let machine = MachineSpec::test(RANKS, WORKERS);
    let engine = DistributedEngine::new(
        machine,
        Configuration { bucket_size: 8, ..Default::default() },
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    )
    .with_telemetry(Telemetry::virtual_time(1));
    let telemetry = engine.telemetry.clone();
    let rep = engine.run_iteration(particles);
    (rep, telemetry.drain())
}

fn run_flight() -> String {
    let particles = gen::uniform_cube(3_000, 42, 1.0, 1.0);
    let visitor = CountVisitor;
    let machine = MachineSpec::test(RANKS, WORKERS);
    let engine = DistributedEngine::new(
        machine,
        Configuration { bucket_size: 8, ..Default::default() },
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    )
    .with_flight_recorder(FlightRecorder::virtual_time(DES_FLIGHT_SERIES, 64));
    let flight = engine.flight.clone();
    engine.run_iteration(particles);
    flight.snapshot().to_json().to_string()
}

#[test]
fn same_seed_yields_byte_identical_trace() {
    let (rep_a, trace_a) = run_traced();
    let (rep_b, trace_b) = run_traced();
    let json_a = chrome_trace_json(&trace_a);
    let json_b = chrome_trace_json(&trace_b);
    assert!(!trace_a.spans.is_empty(), "the engine must record spans");
    assert_eq!(json_a, json_b, "virtual-time traces must be byte-identical across runs");
    assert_eq!(rep_a.makespan, rep_b.makespan);
    assert_eq!(rep_a.metrics, rep_b.metrics);
}

#[test]
fn trace_validates_and_covers_every_worker() {
    let (rep, trace) = run_traced();
    let json = chrome_trace_json(&trace);
    let n_events = validate_chrome_trace(&json).expect("schema-valid Chrome trace");
    assert!(n_events > 0);

    // One track per simulated worker: the traversal phase keeps every
    // worker of every rank busy, so all RANKS × WORKERS tracks appear.
    let tracks = trace.tracks();
    for rank in 0..RANKS as u32 {
        for worker in 0..WORKERS as u32 {
            assert!(
                tracks.iter().any(|t| t.rank == rank && t.worker == worker),
                "missing track for rank {rank} worker {worker}"
            );
        }
    }

    // Spans cover the whole pipeline, labelled with the phase names.
    for name in ["decomposition", "tree build", "local traversal", "cache insertion"] {
        assert!(trace.spans.iter().any(|s| s.name == name), "no {name} span");
    }
    // Cache fetch spans carry the requested key.
    assert!(trace.spans.iter().any(|s| s.name == "cache request" && s.key.is_some()));

    // The registry agrees with the report's named fields.
    assert_eq!(rep.metrics.get_u64("cache.requests_sent"), rep.cache.requests_sent);
    assert_eq!(rep.metrics.get_u64("comm.messages"), rep.comm.messages);
    assert_eq!(rep.metrics.get_f64("time.makespan_s"), rep.makespan);
    assert!(rep.metrics.get_u64("counts.nodes_visited") > 0);
    assert!(rep.cache.requests_sent > 0, "multi-rank run must fetch remotely");
}

#[test]
fn same_seed_yields_byte_identical_flight_series() {
    let a = run_flight();
    let b = run_flight();
    assert_eq!(a, b, "virtual-time flight series must be byte-identical across runs");
    assert!(a.contains("\"clock\":\"virtual\""), "series is stamped in virtual time: {a}");
    // Two phase-boundary rows: stage 0 at traversal start, stage 1 at
    // the makespan, each with the full DES_FLIGHT_SERIES width.
    let rows = a.matches('[').count();
    assert!(rows >= 3, "expected at least two sample rows in {a}");
    assert!(a.contains("\"busy_frac\""), "series names the sampled columns: {a}");
}
