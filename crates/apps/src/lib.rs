//! ParaTreeT applications (paper §II-D-3, §III, §IV).
//!
//! Each application is exactly what the paper's productivity argument
//! says it should be: a `Data` implementation, a `Visitor`, and a thin
//! driver — the framework does the rest.
//!
//! * [`gravity`] — Barnes-Hut gravity with monopole + quadrupole moments
//!   (`CentroidData`, `GravityVisitor`; Figs. 6–8),
//! * [`knn`] — k-nearest-neighbour search with the up-and-down traversal,
//! * [`sph`] — smoothed-particle hydrodynamics: kNN density estimation
//!   and pressure forces from neighbour lists (§III-B),
//! * [`collision`] — planetesimal collision detection and the
//!   protoplanetary-disk case study (§IV),
//! * [`correlation`] — two-point correlation functions by dual-tree
//!   pair counting (the "n-point correlation" workload of §III),
//! * [`fof`] — friends-of-friends halo finding over a forest of boxes
//!   with ghost-layer exchange (the first multi-box workload).

pub mod collision;
pub mod correlation;
pub mod fof;
pub mod gravity;
pub mod knn;
pub mod sph;
