//! `paratreet-analyze`: the workspace's critical-path profiler.
//!
//! ```text
//! paratreet-analyze --trace trace.json [--metrics metrics.json]
//!                   [--timeseries flight.json] [--bins N]
//!                   [--json-out report.json] [--check]
//! ```
//!
//! Ingests the observability artifacts the engines and the query
//! service export, prints a human-readable report (utilization per
//! worker track, critical path, grain sizes, request chains, latency
//! breakdown, flight-recorder summary), optionally writes the
//! deterministic JSON form, and with `--check` exits non-zero unless
//! the artifacts pass the CI invariants (nonzero critical path, a
//! busy utilization row per track, a resolvable p999 exemplar when
//! latency histograms carry traffic).

use paratreet_analyze::{analyze, parse_trace};
use paratreet_telemetry::json::{parse, Json};
use std::process::ExitCode;

struct Args {
    trace: Option<String>,
    metrics: Option<String>,
    timeseries: Option<String>,
    bins: usize,
    json_out: Option<String>,
    check: bool,
}

const USAGE: &str = "usage: paratreet-analyze --trace FILE [--metrics FILE] \
                     [--timeseries FILE] [--bins N] [--json-out FILE] [--check]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trace: None,
        metrics: None,
        timeseries: None,
        bins: 40,
        json_out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--trace" => args.trace = Some(value("--trace")?),
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--timeseries" => args.timeseries = Some(value("--timeseries")?),
            "--bins" => args.bins = value("--bins")?.parse().map_err(|e| format!("--bins: {e}"))?,
            "--json-out" => args.json_out = Some(value("--json-out")?),
            "--check" => args.check = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.trace.is_none() && args.metrics.is_none() && args.timeseries.is_none() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

fn read_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let trace = match &args.trace {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(parse_trace(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let metrics = args.metrics.as_deref().map(read_json).transpose()?;
    let series = args.timeseries.as_deref().map(read_json).transpose()?;
    let analysis = analyze(trace, metrics.as_ref(), series.as_ref(), args.bins)?;
    print!("{}", analysis.render());
    if let Some(path) = &args.json_out {
        std::fs::write(path, format!("{}\n", analysis.to_json()))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if args.check {
        analysis.check()?;
        println!("\ncheck: ok");
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(_) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
