//! Snapshot-epoch invariants, randomised:
//!
//! * a reader pinned on epoch N sees bit-identical query results no
//!   matter how many epochs the writer publishes meanwhile,
//! * no snapshot is freed while any reader pins it (drop-counter),
//! * pins taken during a publish storm always land on a coherent
//!   (epoch, payload) pair.

use paratreet_geometry::{BoundingBox, Vec3};
use paratreet_particles::gen;
use paratreet_serve::load::random_query;
use paratreet_serve::{execute, SnapshotData, SnapshotRing};
use paratreet_tree::{CountData, QueryScratch, TreeBuilder, TreeType};
use proptest::prelude::*;
use rand::{SeedableRng, StdRng};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

/// A single-tree forest over a seeded clustered distribution.
fn forest(n: usize, seed: u64) -> (Vec<paratreet_tree::BuiltTree<CountData>>, BoundingBox) {
    let ps = gen::clustered(n.max(64), 3, seed, 1.0, 1.0);
    let universe = BoundingBox::around(ps.iter().map(|p| p.pos));
    let tree = TreeBuilder::new(TreeType::Octree).bucket_size(8).build(ps, universe);
    (vec![tree], universe)
}

/// Checksums of a seeded query stream against a forest.
fn answers(
    trees: &[paratreet_tree::BuiltTree<CountData>],
    universe: &BoundingBox,
    seed: u64,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = QueryScratch::default();
    (0..40)
        .map(|_| {
            let q = random_query(&mut rng, universe, 5, &[1, 1, 1, 1]);
            execute(trees, &q, &mut scratch).checksum()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The reader's world does not move: results computed through a pin
    // taken at epoch 0 are identical before and after the writer
    // publishes an arbitrary number of *different* forests over it.
    #[test]
    fn pinned_reader_sees_frozen_results(
        n in 100usize..400,
        seed in 0u64..1000,
        later_publishes in 1usize..6,
        query_seed in 0u64..1000,
    ) {
        let ring: Arc<SnapshotRing<CountData>> = SnapshotRing::new(3);
        let (trees, universe) = forest(n, seed);
        ring.publish(trees, universe);

        let pin = ring.pin().unwrap();
        prop_assert_eq!(pin.epoch(), 0);
        let before = answers(&pin.trees, &universe, query_seed);

        // The writer moves on: different particle sets entirely. Stay
        // below ring capacity so the writer needn't reclaim the pinned
        // slot (that path is exercised separately below).
        let later = later_publishes.min(ring.capacity() - 1);
        for k in 0..later {
            let (other, u2) = forest(n / 2 + 13 * k, seed + 1 + k as u64);
            ring.publish(other, u2);
        }
        prop_assert_eq!(ring.head_epoch(), Some(later as u64));

        let after = answers(&pin.trees, &universe, query_seed);
        prop_assert_eq!(before, after, "pinned results changed under the writer");

        // A fresh pin sees the newest epoch, not ours.
        let fresh = ring.pin().unwrap();
        prop_assert_eq!(fresh.epoch(), later as u64);
    }

    // Drop-counter: with a pin held, every snapshot the ring retires
    // except the pinned one may be freed; the pinned one never is,
    // and it frees exactly once after release.
    #[test]
    fn no_snapshot_freed_while_pinned(seed in 0u64..1000, churn in 4usize..12) {
        let ring: Arc<SnapshotRing<CountData>> = SnapshotRing::new(3);
        let probe = Arc::new(AtomicU64::new(0));

        let (trees, universe) = forest(120, seed);
        let p = probe.clone();
        ring.publish_with(move |e| {
            SnapshotData::new(e, trees, universe).with_drop_probe(p)
        });
        let pin = ring.pin().unwrap();

        // Churn from another thread: publishes 1..churn+1. Epoch 3's
        // publish wants the pinned slot and must stall until we unpin.
        let r2 = Arc::clone(&ring);
        let writer = std::thread::spawn(move || {
            for k in 0..churn {
                let (other, u2) = forest(80, 5000 + k as u64);
                r2.publish(other, u2);
            }
        });
        // However far the writer got, the pinned snapshot is alive.
        for _ in 0..50 {
            prop_assert_eq!(probe.load(SeqCst), 0, "snapshot freed while pinned");
            std::thread::yield_now();
        }
        drop(pin);
        writer.join().unwrap();
        // Churn >= capacity publishes: slot 0 was recycled after the
        // unpin, so the probe fired exactly once.
        prop_assert_eq!(probe.load(SeqCst), 1);
        prop_assert_eq!(ring.stats().published, churn as u64 + 1);
    }

    // Coherence under a publish storm: every successful pin pairs the
    // head epoch it chased with that epoch's own payload.
    #[test]
    fn pins_during_publish_storm_are_coherent(publishes in 10u64..60) {
        let ring: Arc<SnapshotRing<CountData>> = SnapshotRing::new(2);
        let r2 = Arc::clone(&ring);
        let writer = std::thread::spawn(move || {
            for e in 0..publishes {
                // Payload stamps the epoch into the universe box.
                r2.publish(Vec::new(), BoundingBox::cube(Vec3::splat(e as f64), 0.25));
            }
        });
        let mut last = 0u64;
        let mut seen = 0u64;
        while !writer.is_finished() {
            if let Some(pin) = ring.pin() {
                let e = pin.epoch();
                prop_assert_eq!(pin.universe.lo, BoundingBox::cube(Vec3::splat(e as f64), 0.25).lo);
                prop_assert!(e >= last, "epoch went backwards");
                last = e;
                seen += 1;
            }
        }
        writer.join().unwrap();
        // The storm may outrun our first pin entirely; the head is
        // still live after the writer exits, so the final epoch is
        // always observable.
        let pin = ring.pin().unwrap();
        prop_assert_eq!(pin.epoch(), publishes - 1);
        prop_assert_eq!(
            pin.universe.lo,
            BoundingBox::cube(Vec3::splat((publishes - 1) as f64), 0.25).lo
        );
        prop_assert!(seen + 1 > 0);
        prop_assert_eq!(ring.stats().published, publishes);
    }
}
