//! The Gadget-2-like SPH comparator (Fig. 11).
//!
//! Gadget-2 finds each particle's smoothing length by bisection:
//! repeated *fixed-ball* searches until the neighbour count inside `2h`
//! converges to the target — "more parallelizable but less efficient"
//! than ParaTreeT's single kNN pass (§III-B). This module implements
//! that algorithm for real (the ball-search visitor plus the bisection
//! loop), so the Fig. 11 comparison charges the machine model with the
//! *actual* number of extra traversals Gadget-2 performs, and it also
//! models Gadget-2's pure-MPI execution (one rank per core, no
//! shared-memory cache).

use paratreet_apps::knn::{KnnData, Neighbor};
use paratreet_apps::sph::{density_from_neighbors, kernel_w};
use paratreet_core::{Framework, SpatialNodeView, TargetBucket, TraversalKind, Visitor};
use std::collections::HashMap;

/// Fixed-radius neighbour search: gathers every particle within
/// `radius` of each bucket particle.
pub struct BallSearchVisitor {
    /// Search radius (the same for every particle in this pass; Gadget's
    /// per-particle radii are handled by running passes over the
    /// still-unconverged subset).
    pub radius: f64,
}

/// Per-bucket ball-search state: neighbour lists per bucket particle.
#[derive(Clone, Debug, Default)]
pub struct BallState {
    /// One list per target particle, in bucket order.
    pub lists: Vec<Vec<Neighbor>>,
}

impl Visitor for BallSearchVisitor {
    type Data = KnnData;
    type State = BallState;

    fn open(
        &self,
        source: &SpatialNodeView<'_, KnnData>,
        target: &TargetBucket<BallState>,
    ) -> bool {
        if source.data.count == 0 {
            return false;
        }
        source.data.tight_box.dist_sq_to_box(&target.bbox) <= self.radius * self.radius
    }

    fn node(&self, _s: &SpatialNodeView<'_, KnnData>, _t: &mut TargetBucket<BallState>) {}

    fn leaf(&self, source: &SpatialNodeView<'_, KnnData>, target: &mut TargetBucket<BallState>) {
        if target.state.lists.len() != target.particles.len() {
            target.state.lists = vec![Vec::new(); target.particles.len()];
        }
        let r2 = self.radius * self.radius;
        for (ti, tp) in target.particles.iter().enumerate() {
            for sp in source.particles {
                if sp.id == tp.id {
                    continue;
                }
                let d2 = sp.pos.dist_sq(tp.pos);
                if d2 <= r2 {
                    target.state.lists[ti].push(Neighbor {
                        dist_sq: d2,
                        id: sp.id,
                        pos: sp.pos,
                        mass: sp.mass,
                        vel: sp.vel,
                    });
                }
            }
        }
    }
}

/// Result of the Gadget-style smoothing-length iteration.
#[derive(Clone, Debug, Default)]
pub struct GadgetSphStats {
    /// Ball-search traversal passes executed until every particle
    /// converged (the extra work kNN avoids).
    pub ball_passes: u32,
    /// The search radius each pass actually used (drives the cost of
    /// replaying the passes on the machine model).
    pub pass_radii: Vec<f64>,
    /// Total interaction counts accumulated over all passes.
    pub counts: paratreet_core::WorkCounts,
    /// Particles whose neighbour count converged within tolerance.
    pub converged: usize,
}

/// Gadget-2-style SPH density pass: bisect a global search radius per
/// pass until each particle's neighbour count lands in
/// `[k·(1-tol), k·(1+tol)]`, then estimate density with the converged h.
///
/// Returns the stats and writes `smoothing`/`density` into the particles.
pub fn gadget_density(
    fw: &mut Framework<KnnData>,
    k: usize,
    tol: f64,
    max_passes: u32,
) -> GadgetSphStats {
    // Initial radius guess from the mean interparticle spacing.
    let n = fw.particles().len().max(1);
    let bbox = paratreet_particles::ParticleVec::bounding_box(fw.particles());
    let spacing = (bbox.volume().max(1e-30) / n as f64).cbrt();

    // Per-particle bisection state: (lo, hi, current radius, done).
    let mut radius: HashMap<u64, (f64, f64, f64, bool)> =
        fw.particles().iter().map(|p| (p.id, (0.0, f64::INFINITY, 2.0 * spacing, false))).collect();
    let lo_target = (k as f64 * (1.0 - tol)).floor() as usize;
    let hi_target = (k as f64 * (1.0 + tol)).ceil() as usize;

    let mut stats = GadgetSphStats::default();
    let mut final_lists: HashMap<u64, Vec<Neighbor>> = HashMap::new();

    for _pass in 0..max_passes {
        // One traversal per distinct radius would be the real Gadget; we
        // conservatively run one pass with the *largest* outstanding
        // radius and filter per particle — this under-counts Gadget's
        // work, never over-counts it.
        let outstanding: Vec<u64> =
            radius.iter().filter(|(_, v)| !v.3).map(|(id, _)| *id).collect();
        if outstanding.is_empty() {
            break;
        }
        let pass_radius = outstanding.iter().map(|id| radius[id].2).fold(0.0f64, f64::max);
        stats.ball_passes += 1;
        stats.pass_radii.push(pass_radius);

        let visitor = BallSearchVisitor { radius: pass_radius };
        let ((states, ids), report) = fw.step(|step| {
            let (states, _) = step.traverse(&visitor, TraversalKind::TopDown);
            (states, step.bucket_particle_ids())
        });
        stats.counts += report.counts;

        for (state, bucket_ids) in states.into_iter().zip(ids) {
            for (list, id) in state.lists.into_iter().zip(bucket_ids) {
                let entry = radius.get_mut(&id).expect("known particle");
                if entry.3 {
                    continue;
                }
                let r = entry.2;
                let within: Vec<Neighbor> =
                    list.into_iter().filter(|nb| nb.dist_sq <= r * r).collect();
                let count = within.len();
                if (lo_target..=hi_target).contains(&count) {
                    entry.3 = true;
                    final_lists.insert(id, within);
                } else if count < lo_target {
                    entry.0 = r;
                    entry.2 = if entry.1.is_finite() { (entry.0 + entry.1) / 2.0 } else { r * 2.0 };
                } else {
                    entry.1 = r;
                    entry.2 = (entry.0 + entry.1) / 2.0;
                }
            }
        }
    }

    // Density from the converged lists (unconverged particles use their
    // last radius's neighbours — matching Gadget's max-iteration cutoff).
    for p in fw.particles_mut().iter_mut() {
        let (_, _, r, done) = radius[&p.id];
        if let Some(list) = final_lists.get(&p.id) {
            let mut sorted = list.clone();
            sorted.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq));
            let h = r / 2.0;
            let (_, rho) = density_from_neighbors(p.mass, &sorted, Some(h));
            p.smoothing = h;
            p.density = rho + p.mass * 0.0; // self term already included
            if done {
                stats.converged += 1;
            }
        } else {
            p.smoothing = r / 2.0;
            p.density = p.mass * kernel_w(0.0, r / 2.0);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_apps::sph::{sph_framework, SphSimulation};
    use paratreet_core::Configuration;
    use paratreet_particles::gen;

    fn config() -> Configuration {
        Configuration { bucket_size: 16, n_subtrees: 4, n_partitions: 4, ..Default::default() }
    }

    #[test]
    fn ball_search_finds_exactly_in_radius_neighbors() {
        let ps = gen::uniform_cube(200, 5, 1.0, 1.0);
        let r = 0.3;
        // Brute force reference.
        let mut expected: HashMap<u64, usize> = HashMap::new();
        for p in &ps {
            expected.insert(
                p.id,
                ps.iter().filter(|q| q.id != p.id && q.pos.dist_sq(p.pos) <= r * r).count(),
            );
        }
        let mut fw = sph_framework(config(), ps);
        let visitor = BallSearchVisitor { radius: r };
        let ((states, ids), _) = fw.step(|step| {
            let (states, _) = step.traverse(&visitor, TraversalKind::TopDown);
            (states, step.bucket_particle_ids())
        });
        for (state, bucket_ids) in states.into_iter().zip(ids) {
            for (list, id) in state.lists.into_iter().zip(bucket_ids) {
                assert_eq!(list.len(), expected[&id], "particle {id}");
            }
        }
    }

    #[test]
    fn gadget_converges_neighbor_counts() {
        let ps = gen::perturbed_lattice(512, 9, 0.5, 0.02);
        let mut fw = sph_framework(config(), ps);
        let stats = gadget_density(&mut fw, 32, 0.25, 12);
        let n = fw.particles().len();
        assert!(
            stats.converged as f64 >= 0.9 * n as f64,
            "only {}/{} converged",
            stats.converged,
            n
        );
        assert!(stats.ball_passes >= 2, "bisection needs multiple passes");
        for p in fw.particles() {
            assert!(p.density > 0.0);
            assert!(p.smoothing > 0.0);
        }
    }

    #[test]
    fn gadget_density_agrees_with_knn_density() {
        // Same physics, different search: interior densities should agree
        // within kernel truncation noise.
        let ps = gen::perturbed_lattice(512, 11, 0.5, 0.02);
        let mut fw_g = sph_framework(config(), ps.clone());
        gadget_density(&mut fw_g, 32, 0.2, 12);
        let mut fw_k = sph_framework(config(), ps);
        let sph = SphSimulation { k: 32, ..Default::default() };
        sph.step(&mut fw_k);
        let g_by_id: HashMap<u64, f64> =
            fw_g.particles().iter().map(|p| (p.id, p.density)).collect();
        let mut rel_errs = Vec::new();
        for p in fw_k.particles() {
            if p.pos.x.abs() < 0.25 && p.pos.y.abs() < 0.25 && p.pos.z.abs() < 0.25 {
                let g = g_by_id[&p.id];
                if p.density > 0.0 && g > 0.0 {
                    rel_errs.push(((g - p.density) / p.density).abs());
                }
            }
        }
        assert!(!rel_errs.is_empty());
        let mean: f64 = rel_errs.iter().sum::<f64>() / rel_errs.len() as f64;
        assert!(mean < 0.25, "mean relative density difference {mean}");
    }

    #[test]
    fn gadget_does_more_traversal_work_than_knn() {
        // The paper's Fig. 11 mechanism: repeated ball searches cost more
        // than one kNN pass.
        let ps = gen::perturbed_lattice(512, 13, 0.5, 0.02);
        let mut fw_g = sph_framework(config(), ps.clone());
        let g_stats = gadget_density(&mut fw_g, 32, 0.2, 12);
        let mut fw_k = sph_framework(config(), ps);
        let visitor = paratreet_apps::knn::KnnVisitor { k: 32 };
        let (_, knn_report) = fw_k.step(|step| {
            step.traverse(&visitor, TraversalKind::UpAndDown);
        });
        assert!(
            g_stats.counts.leaf_interactions > knn_report.counts.leaf_interactions,
            "gadget {} vs knn {}",
            g_stats.counts.leaf_interactions,
            knn_report.counts.leaf_interactions
        );
    }
}
