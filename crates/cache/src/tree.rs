//! The per-process cached global tree (Fig. 2).
//!
//! One [`CacheTree`] lives on every simulated process (rank). After the
//! local tree build it holds
//!
//! * the *top skeleton*: the global root and every ancestor of a subtree
//!   root, with `Data` summaries merged from the subtree root summaries
//!   that all ranks exchange ("the global root and a user-specified
//!   number of its descendants are shared with each process"),
//! * grafted local subtrees (full structure, reachable "as if local"),
//! * placeholders for remote subtrees, each with an atomic `requested`
//!   flag,
//! * received fill fragments spliced in by atomic pointer swap.
//!
//! # Safety model
//!
//! Every node is individually boxed; ownership of all boxes lives in an
//! append-only allocation list inside the tree, and nothing is freed
//! until the `CacheTree` drops (the cache is no-delete, like the paper's).
//! Child pointers only ever point at nodes in that list, and every store
//! that publishes a pointer is `Release` while traversal loads are
//! `Acquire`. Hence any `&CacheNode` obtained through the tree is valid
//! for the tree's lifetime and its non-atomic fields are fully visible.

use crate::error::CacheError;
use crate::node::{CacheNode, NodeKind};
use crate::stats::CacheStats;
use crate::wire;
use paratreet_geometry::{BoundingBox, NodeKey};
use paratreet_telemetry::Telemetry;
use paratreet_tree::node::NO_NODE;
use paratreet_tree::{BuiltTree, Data, NodeShape};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, Ordering};

/// The summary of one subtree root that every rank learns during the
/// share step: enough to build the top skeleton and to prune traversals
/// without fetching.
#[derive(Clone, Debug)]
pub struct SubtreeSummary<D> {
    /// Key of the subtree root in the global tree.
    pub key: NodeKey,
    /// Spatial footprint of the subtree.
    pub bbox: BoundingBox,
    /// Particles in the subtree.
    pub n_particles: u32,
    /// Accumulated `Data` of the subtree root.
    pub data: D,
    /// Rank that owns the subtree.
    pub home_rank: u32,
}

/// Result of asking the cache for a remote node's contents.
#[derive(Debug)]
pub enum RequestOutcome<'a, D> {
    /// The data is already materialised (a fill won the race); traverse on.
    Ready(&'a CacheNode<D>),
    /// First request for this key: the caller must send a fetch to
    /// `home_rank`. The waiter has been parked.
    SendFetch {
        /// Where the authoritative subtree lives.
        home_rank: u32,
    },
    /// A fetch is already in flight; the waiter has been parked.
    InFlight,
}

/// Everything a successful fill splice produced: the canonical node now
/// standing at the fragment root's key, and every parked waiter the fill
/// unblocked (tagged with the key it was parked on, so engines can
/// requeue the right paused work).
#[derive(Debug)]
pub struct FillOutcome<'a, D> {
    /// Canonical node at the fragment root's key. On a duplicate fill
    /// this is the *pre-existing* materialised node, not the payload's.
    pub root: &'a CacheNode<D>,
    /// `(key, waiter)` pairs drained from `pending`, covering every key
    /// the fill materialised — root, interior, and frontier keys alike.
    pub resumed: Vec<(NodeKey, u64)>,
    /// True when the fragment root was already materialised and the
    /// payload was discarded (idempotent duplicate delivery).
    pub duplicate: bool,
}

/// Book-keeping guarded by one short-held mutex: the process-level hash
/// table of materialised nodes plus parked waiters. Traversal *reads*
/// never touch this — they walk atomic child pointers.
struct Bookkeeping<D> {
    resolved: HashMap<NodeKey, NonNull<CacheNode<D>>>,
    pending: HashMap<NodeKey, Vec<u64>>,
}

/// The per-rank software cache; see module docs.
pub struct CacheTree<D: Data> {
    /// This cache's rank (process id).
    pub rank: u32,
    /// Bits per key digit of the tree type in use.
    pub bits: u32,
    /// Traffic counters.
    pub stats: CacheStats,
    /// Span sink for the fetch/fill path (wall clock — only the real
    /// threaded engine attaches an enabled handle; the DES engine keeps
    /// its virtual-time trace free of wall timestamps).
    pub telemetry: Telemetry,
    root: AtomicPtr<CacheNode<D>>,
    book: Mutex<Bookkeeping<D>>,
    allocs: Mutex<Vec<NonNull<CacheNode<D>>>>,
    /// Recovery epoch: fills are stamped with the sender's epoch at
    /// serialisation and rejected on insert when they predate the
    /// receiver's ([`CacheError::StaleEpoch`]). Bumped by the engine on
    /// every recovery (rank crash).
    epoch: AtomicU32,
    /// Set when this cache's rank has crashed for good (re-shard
    /// recovery): serialisation and insertion fail with
    /// [`CacheError::OwnerDead`].
    dead: AtomicBool,
}

// SAFETY: the raw pointers all target boxed nodes owned by `allocs`,
// which live exactly as long as the tree; cross-thread publication of
// node contents happens-before any read via the Release/Acquire pairs on
// child pointers and the root pointer, or via the book-keeping mutex.
unsafe impl<D: Data> Send for CacheTree<D> {}
unsafe impl<D: Data> Sync for CacheTree<D> {}

impl<D: Data> CacheTree<D> {
    /// An empty cache for `rank`, for a tree with `bits` per key digit.
    pub fn new(rank: u32, bits: u32) -> CacheTree<D> {
        CacheTree {
            rank,
            bits,
            stats: CacheStats::new(),
            telemetry: Telemetry::disabled(),
            root: AtomicPtr::new(std::ptr::null_mut()),
            book: Mutex::new(Bookkeeping { resolved: HashMap::new(), pending: HashMap::new() }),
            allocs: Mutex::new(Vec::new()),
            epoch: AtomicU32::new(0),
            dead: AtomicBool::new(false),
        }
    }

    /// The current recovery epoch. Every fill serialised by this cache
    /// carries it; every fill inserted must match it.
    pub fn epoch(&self) -> u32 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Moves this cache into `epoch`. Called by the engine on every
    /// cache when a crash is detected, so fills serialised before the
    /// crash can no longer splice anywhere.
    pub fn set_epoch(&self, epoch: u32) {
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Marks this cache's rank as crashed-for-good (re-shard recovery).
    pub fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
    }

    /// Whether [`CacheTree::mark_dead`] was called.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Re-arms every placeholder homed on `dead_rank`: clears the
    /// `requested` flag so the next [`CacheTree::request`] sends a fresh
    /// fetch (which the engine routes to the subtree's *new* owner)
    /// instead of deduplicating against a fetch the dead rank swallowed.
    /// Returns the number of placeholders re-armed.
    pub fn on_owner_crash(&self, dead_rank: u32) -> usize {
        let book = self.book.lock();
        let mut rearmed = 0;
        for p in book.resolved.values() {
            // SAFETY: resolved pointers target nodes owned by self.
            let node = unsafe { p.as_ref() };
            if node.is_placeholder()
                && node.home_rank == dead_rank
                && node.requested.swap(false, Ordering::AcqRel)
            {
                rearmed += 1;
            }
        }
        rearmed
    }

    /// Rebuilds this cache from scratch (restart recovery): every fill
    /// received so far is forgotten, the book-keeping is cleared, and
    /// the skeleton is re-initialised from `summaries` + the rank's
    /// rebuilt `local` trees. Superseded allocations are kept until drop
    /// (the cache stays no-delete, so old [`NodeHandle`]s never dangle
    /// — the engine discards all work items of the crashed rank anyway).
    pub fn reinit(&self, summaries: &[SubtreeSummary<D>], local: Vec<BuiltTree<D>>) {
        {
            let mut book = self.book.lock();
            book.resolved.clear();
            book.pending.clear();
            self.root.store(std::ptr::null_mut(), Ordering::Release);
        }
        self.init(summaries, local);
    }

    /// Grafts a freshly (re)built subtree into an already-initialised
    /// cache — re-shard recovery, where a surviving rank adopts a dead
    /// rank's subtree reconstructed from its checkpoint. Implemented as
    /// a self-delivered full-depth fill, which reuses the canonical
    /// splice/waiter-drain machinery: any traversal parked on the
    /// subtree's placeholder resumes through the returned
    /// [`FillOutcome`].
    pub fn insert_subtree(
        &self,
        tree: BuiltTree<D>,
        home_rank: u32,
    ) -> Result<FillOutcome<'_, D>, CacheError> {
        let root = tree.root();
        let summary = SubtreeSummary {
            key: root.key,
            bbox: root.bbox,
            n_particles: root.n_particles,
            data: root.data.clone(),
            home_rank,
        };
        let staging: CacheTree<D> = CacheTree::new(home_rank, self.bits);
        staging.set_epoch(self.epoch());
        staging.init(std::slice::from_ref(&summary), vec![tree]);
        let bytes = staging.serialize_fragment(summary.key, u32::MAX)?;
        self.insert_fragment(&bytes)
    }

    /// Takes ownership of a boxed node, returning its stable pointer.
    fn adopt(&self, node: Box<CacheNode<D>>) -> NonNull<CacheNode<D>> {
        let ptr = NonNull::from(Box::leak(node));
        self.allocs.lock().push(ptr);
        ptr
    }

    /// Builds the top skeleton from all ranks' subtree summaries and
    /// grafts this rank's built subtrees. `local` maps subtree-root keys
    /// to built trees; every key in `local` must appear in `summaries`
    /// with `home_rank == self.rank`.
    ///
    /// Called once per iteration, before traversal, from one thread.
    ///
    /// # Panics
    ///
    /// On API misuse (programming errors, not message faults): empty
    /// `summaries`, duplicate keys in `summaries` (which would corrupt
    /// the skeleton's child lists), or a local tree without a summary.
    pub fn init(&self, summaries: &[SubtreeSummary<D>], local: Vec<BuiltTree<D>>) {
        assert!(!summaries.is_empty(), "cannot init cache with no subtrees");
        let mut summary_keys: HashSet<NodeKey> = HashSet::with_capacity(summaries.len());
        for s in summaries {
            assert!(
                summary_keys.insert(s.key),
                "duplicate subtree summary for {}: every key must appear exactly once",
                s.key
            );
        }
        let mut local_by_key: HashMap<NodeKey, BuiltTree<D>> = HashMap::new();
        for t in local {
            local_by_key.insert(t.root().key, t);
        }

        // Collect every ancestor of a subtree root, with its children.
        let mut child_keys: HashMap<NodeKey, Vec<NodeKey>> = HashMap::new();
        for s in summaries {
            let mut k = s.key;
            while k != NodeKey::root() {
                let p = k.parent(self.bits);
                let kids = child_keys.entry(p).or_default();
                if !kids.contains(&k) {
                    kids.push(k);
                }
                k = p;
            }
        }

        let mut book = self.book.lock();
        // Materialise subtree roots first.
        for s in summaries {
            let ptr = if let Some(tree) = local_by_key.remove(&s.key) {
                self.graft(tree, s.home_rank)
            } else {
                self.adopt(Box::new(CacheNode::new(
                    s.key,
                    s.bbox,
                    s.n_particles,
                    s.data.clone(),
                    s.home_rank,
                    NodeKind::Placeholder,
                    vec![],
                )))
            };
            book.resolved.insert(s.key, ptr);
        }
        assert!(local_by_key.is_empty(), "local subtree without matching summary");

        // Materialise ancestors bottom-up (deepest keys first, i.e. by
        // descending raw key value since children have longer keys; sort
        // by level explicitly for clarity).
        let mut ancestors: Vec<NodeKey> = child_keys.keys().copied().collect();
        ancestors.sort_by_key(|k| std::cmp::Reverse(k.level(self.bits)));
        for key in ancestors {
            if book.resolved.contains_key(&key) {
                // A subtree root can itself be an ancestor of nothing
                // else; and with one subtree the root is the summary.
                continue;
            }
            let mut bbox = BoundingBox::empty();
            let mut n = 0u32;
            let mut data = D::default();
            let node = Box::new(CacheNode::new(
                key,
                bbox, // placeholder; fixed below after children are read
                0,
                D::default(),
                u32::MAX, // the skeleton is replicated, not owned
                NodeKind::Internal,
                vec![],
            ));
            let ptr = self.adopt(node);
            let mut kids = child_keys[&key].clone();
            kids.sort_by_key(|k| k.child_index(self.bits));
            for ck in kids {
                let child = book.resolved[&ck];
                // SAFETY: both nodes are owned by this tree and we are
                // pre-publication (under the book lock, root not yet set).
                let child_ref = unsafe { child.as_ref() };
                bbox.merge(&child_ref.bbox);
                n += child_ref.n_particles;
                data.merge(&child_ref.data);
                unsafe { ptr.as_ref() }.children[ck.child_index(self.bits)]
                    .store(child.as_ptr(), Ordering::Relaxed);
            }
            // SAFETY: sole owner pre-publication; no other thread can
            // reach this node yet.
            unsafe {
                let m = &mut *ptr.as_ptr();
                m.bbox = bbox;
                m.n_particles = n;
                m.data = data;
            }
            book.resolved.insert(key, ptr);
        }

        let root_ptr = book.resolved[&NodeKey::root()];
        drop(book);
        self.root.store(root_ptr.as_ptr(), Ordering::Release);
    }

    /// Converts a built subtree into cache nodes, wiring children, and
    /// returns the pointer to its root. Pre-publication, so plain stores.
    fn graft(&self, tree: BuiltTree<D>, home_rank: u32) -> NonNull<CacheNode<D>> {
        let mut ptrs: Vec<NonNull<CacheNode<D>>> = Vec::with_capacity(tree.nodes.len());
        for bn in &tree.nodes {
            let (kind, particles) = match bn.shape {
                NodeShape::Internal => (NodeKind::Internal, vec![]),
                NodeShape::Empty => (NodeKind::Empty, vec![]),
                NodeShape::Leaf { start, end } => {
                    (NodeKind::Leaf, tree.particles[start as usize..end as usize].to_vec())
                }
            };
            let node = Box::new(CacheNode::new(
                bn.key,
                bn.bbox,
                bn.n_particles,
                bn.data.clone(),
                home_rank,
                kind,
                particles,
            ));
            ptrs.push(self.adopt(node));
        }
        for (i, bn) in tree.nodes.iter().enumerate() {
            for (slot, &c) in bn.children.iter().enumerate() {
                if c != NO_NODE {
                    unsafe { ptrs[i].as_ref() }.children[slot]
                        .store(ptrs[c as usize].as_ptr(), Ordering::Relaxed);
                }
            }
        }
        // The caller treats slot 0 as the subtree root; a BuiltTree whose
        // first node is not its root would silently graft garbage.
        debug_assert_eq!(
            unsafe { ptrs[0].as_ref() }.key,
            tree.root().key,
            "grafted tree's nodes[0] must be its root"
        );
        ptrs[0]
    }

    /// The global root; `None` before [`CacheTree::init`].
    pub fn root(&self) -> Option<&CacheNode<D>> {
        let p = self.root.load(Ordering::Acquire);
        // SAFETY: see module-level safety model.
        unsafe { p.as_ref() }
    }

    /// Looks a node up in the process-level hash table. Takes the
    /// book-keeping lock — setup/debug paths only, not traversal.
    pub fn lookup(&self, key: NodeKey) -> Option<&CacheNode<D>> {
        let book = self.book.lock();
        let p = book.resolved.get(&key).copied();
        // SAFETY: nodes live as long as self.
        p.map(|nn| unsafe { &*nn.as_ptr() })
    }

    /// Asks for the contents of placeholder `node`, parking `waiter`
    /// until the fill arrives. See [`RequestOutcome`] for what the caller
    /// must do; if the fill already arrived the parked waiter is *not*
    /// registered and the materialised node is returned instead.
    pub fn request(&self, node: &CacheNode<D>, waiter: u64) -> RequestOutcome<'_, D> {
        debug_assert!(node.is_placeholder());
        let mut book = self.book.lock();
        // Re-check under the lock: a fill may have swapped the
        // placeholder out after the caller loaded its pointer.
        if let Some(&cur) = book.resolved.get(&node.key) {
            // SAFETY: nodes live as long as self.
            let cur_ref = unsafe { &*cur.as_ptr() };
            if !cur_ref.is_placeholder() {
                return RequestOutcome::Ready(cur_ref);
            }
        }
        book.pending.entry(node.key).or_default().push(waiter);
        CacheStats::add(&self.stats.waiters_parked, 1);
        drop(book);
        if !node.requested.swap(true, Ordering::AcqRel) {
            CacheStats::add(&self.stats.requests_sent, 1);
            RequestOutcome::SendFetch { home_rank: node.home_rank }
        } else {
            CacheStats::add(&self.stats.requests_deduped, 1);
            RequestOutcome::InFlight
        }
    }

    /// Finds the node for `key`: first via the process-level hash table
    /// (which holds subtree roots and fill fragments), then by walking
    /// down from the nearest hashed ancestor following the key's digits.
    /// This is how a home rank locates an interior node of its local
    /// subtree when a fetch arrives — the paper hashes only subtree
    /// roots, not every node.
    pub fn find(&self, key: NodeKey) -> Option<&CacheNode<D>> {
        if let Some(n) = self.lookup(key) {
            return Some(n);
        }
        let mut node = self.root()?;
        let target_level = key.level(self.bits);
        let mut level = node.key.level(self.bits);
        while level < target_level {
            level += 1;
            let digit = key.ancestor_at(level, self.bits).child_index(self.bits);
            node = node.child(digit)?;
        }
        (node.key == key).then_some(node)
    }

    /// Serialises the subtree under `key` to relative `depth` levels —
    /// the home-side half of a fetch (Step 1 of Fig. 2). Fails with
    /// [`CacheError::UnknownKey`] when this rank cannot locate `key`
    /// (e.g. a corrupted fetch message); engines log and drop such
    /// requests instead of panicking.
    pub fn serialize_fragment(&self, key: NodeKey, depth: u32) -> Result<Vec<u8>, CacheError> {
        self.telemetry.wall_span(self.rank, "fill serve", Some(key.raw()), || {
            if self.is_dead() {
                return Err(CacheError::OwnerDead { rank: self.rank });
            }
            if self.root().is_none() {
                return Err(CacheError::NotInitialized);
            }
            let node = self.find(key).ok_or(CacheError::UnknownKey { key })?;
            Ok(wire::encode_fragment(node, depth, self.epoch()))
        })
    }

    /// Splices a received fill into the tree (Steps 2–4 of Fig. 2) and
    /// returns a [`FillOutcome`]: the canonical fragment-root node plus
    /// every parked waiter this fill unblocks (Step 5). Any worker
    /// thread may call this — that is the point of the wait-free design:
    /// the tree structure is updated by atomic child-pointer swaps, and
    /// only the hash-table/pending book-keeping takes a (short) lock.
    ///
    /// Guarantees, in the presence of duplicated / reordered deliveries:
    ///
    /// * **Per-key canonicalisation** — for every key the fragment
    ///   carries, the first *materialised* node wins and stays canonical;
    ///   later copies are discarded (the cache is no-delete, so they stay
    ///   allocated but unreachable). Duplicate fills are idempotent.
    /// * **Complete waiter drain** — `pending` is drained for *every*
    ///   key whose canonical node is materialised after this call, not
    ///   just the fragment root. A deep fill that materialises interior
    ///   keys resumes waiters parked at those depths too.
    /// * **Atomic failure** — on `Err` the cache is unchanged, so the
    ///   engine can simply re-request.
    ///
    /// A fill whose root decodes to a placeholder (the home rank
    /// serialised at depth 0, carrying no child data) clears the
    /// `requested` flag and hands back the parked waiters so the engine
    /// re-requests instead of deadlocking.
    pub fn insert_fragment(&self, bytes: &[u8]) -> Result<FillOutcome<'_, D>, CacheError> {
        self.telemetry
            .wall_span(self.rank, "cache insertion", None, || self.insert_fragment_impl(bytes))
    }

    fn insert_fragment_impl(&self, bytes: &[u8]) -> Result<FillOutcome<'_, D>, CacheError> {
        if self.is_dead() {
            return Err(CacheError::OwnerDead { rank: self.rank });
        }
        let frag = wire::decode_fragment::<D>(bytes)?;
        let cache_epoch = self.epoch();
        if frag.epoch != cache_epoch {
            return Err(CacheError::StaleEpoch { fill_epoch: frag.epoch, cache_epoch });
        }
        if frag.nodes.is_empty() {
            return Err(CacheError::EmptyFragment);
        }
        let root_key = frag.nodes[0].key;
        let n_fragment_particles = frag.n_particles;

        let mut book = self.book.lock();

        // Validate the splice point *before* mutating anything, so a
        // rejected fill leaves the cache untouched.
        if root_key == NodeKey::root() {
            if !book.resolved.contains_key(&root_key) {
                return Err(CacheError::NotInitialized);
            }
        } else {
            let parent_key = root_key.parent(self.bits);
            let parent_ok = book
                .resolved
                .get(&parent_key)
                // SAFETY: resolved pointers target nodes owned by self.
                .map(|p| !unsafe { p.as_ref() }.is_placeholder())
                .unwrap_or(false);
            if !parent_ok {
                return Err(CacheError::OrphanFill { key: root_key });
            }
        }

        CacheStats::add(&self.stats.fills_inserted, 1);
        CacheStats::add(&self.stats.bytes_received, bytes.len() as u64);
        CacheStats::add(&self.stats.nodes_inserted, frag.nodes.len() as u64);
        CacheStats::add(&self.stats.particles_inserted, n_fragment_particles);

        // Adopt allocations (pointers stay valid; Boxes move, heap
        // doesn't). Lock order is always book → allocs, as in `init`.
        let mut ptrs = Vec::with_capacity(frag.nodes.len());
        {
            let mut allocs = self.allocs.lock();
            for node in frag.nodes {
                let ptr = NonNull::from(Box::leak(node));
                allocs.push(ptr);
                ptrs.push(ptr);
            }
        }

        // Step 3a — canonicalise per key: decide, for every key the
        // fragment carries, which node shall represent it from now on.
        // An existing materialised node always wins (idempotence); an
        // existing placeholder is kept over a fragment placeholder (it
        // owns the `requested` flag and the identity other parents point
        // at) but loses to fragment data.
        let mut fragment_wins = Vec::with_capacity(ptrs.len());
        for &p in &ptrs {
            // SAFETY: just adopted, owned by self.
            let node = unsafe { p.as_ref() };
            let wins = match book.resolved.get(&node.key) {
                Some(existing) => {
                    // SAFETY: resolved pointers target nodes owned by self.
                    let ex = unsafe { existing.as_ref() };
                    ex.is_placeholder() && !node.is_placeholder()
                }
                None => true,
            };
            if wins {
                book.resolved.insert(node.key, p);
            }
            fragment_wins.push(wins);
        }

        // Step 3b — rewire winning internal nodes' child slots to the
        // canonical node per key. Pre-publication: Relaxed suffices, the
        // publishing stores below are Release.
        for (i, &p) in ptrs.iter().enumerate() {
            if !fragment_wins[i] {
                continue;
            }
            // SAFETY: adopted above.
            let node = unsafe { p.as_ref() };
            if node.kind != NodeKind::Internal {
                continue;
            }
            for slot in 0..wire::MAX_BRANCH {
                let child = node.children[slot].load(Ordering::Relaxed);
                if child.is_null() {
                    continue;
                }
                // SAFETY: fragment-internal pointer, adopted above.
                let child_key = unsafe { (*child).key };
                if let Some(canon) = book.resolved.get(&child_key) {
                    if canon.as_ptr() != child {
                        node.children[slot].store(canon.as_ptr(), Ordering::Relaxed);
                    }
                }
            }
        }

        // Step 4 — publish every winning node into its canonical
        // parent's child slot (Release: pairs with traversal's Acquire
        // loads). This covers the fragment root replacing its
        // placeholder AND interior keys whose placeholder is referenced
        // by an *older* fill's internal node.
        for (i, &p) in ptrs.iter().enumerate() {
            if !fragment_wins[i] {
                continue;
            }
            // SAFETY: adopted above.
            let key = unsafe { p.as_ref() }.key;
            if key == NodeKey::root() {
                self.root.store(p.as_ptr(), Ordering::Release);
                continue;
            }
            let Some(parent) = book.resolved.get(&key.parent(self.bits)) else {
                // Interior keys always have their parent in the fragment;
                // the root's parent was validated above.
                continue;
            };
            // SAFETY: resolved pointers target nodes owned by self.
            let parent_ref = unsafe { parent.as_ref() };
            if parent_ref.is_placeholder() {
                // Never hang children off a placeholder (audit invariant).
                continue;
            }
            parent_ref.children[key.child_index(self.bits)].store(p.as_ptr(), Ordering::Release);
        }

        // Step 5 — drain waiters for every key that is materialised
        // after this fill, tagging each with its parking key so the
        // engine can requeue the right paused work.
        let mut resumed: Vec<(NodeKey, u64)> = Vec::new();
        for &p in &ptrs {
            // SAFETY: adopted above.
            let key = unsafe { p.as_ref() }.key;
            let materialised = book
                .resolved
                .get(&key)
                // SAFETY: resolved pointers target nodes owned by self.
                .map(|c| !unsafe { c.as_ref() }.is_placeholder())
                .unwrap_or(false);
            if materialised {
                if let Some(ws) = book.pending.remove(&key) {
                    resumed.extend(ws.into_iter().map(|w| (key, w)));
                }
            }
        }

        let canon_root = book.resolved[&root_key];
        // SAFETY: nodes live as long as self.
        let canon_root_ref = unsafe { &*canon_root.as_ptr() };
        if canon_root_ref.is_placeholder() {
            // Depth-0 fill: no data arrived. Re-arm the request flag and
            // hand the waiters back; resuming them re-runs the visitor,
            // which re-requests at the placeholder and re-parks.
            canon_root_ref.requested.store(false, Ordering::Release);
            if let Some(ws) = book.pending.remove(&root_key) {
                resumed.extend(ws.into_iter().map(|w| (root_key, w)));
            }
        }
        CacheStats::add(&self.stats.waiters_resumed, resumed.len() as u64);

        let duplicate = !fragment_wins[0] && !canon_root_ref.is_placeholder();
        if duplicate {
            CacheStats::add(&self.stats.fills_duplicate, 1);
        }
        drop(book);

        Ok(FillOutcome { root: canon_root_ref, resumed, duplicate })
    }

    /// Checks every structural invariant of the cached tree. Intended
    /// for debug builds at phase boundaries; takes the book-keeping lock
    /// (mutations are excluded, lock-free readers race benignly).
    ///
    /// Invariants checked:
    ///
    /// 1. every `resolved` key maps to a node with that key, reachable
    ///    from the root,
    /// 2. every reachable child's key equals `parent.key.child(slot)`,
    ///    and no child sits in a slot beyond the branch factor,
    /// 3. no placeholder (or leaf, or empty) node has children,
    /// 4. every `pending` key refers to a resolved placeholder (a waiter
    ///    parked on materialised data would sleep forever),
    /// 5. the allocation list is at least as large as the reachable set
    ///    (no-delete cache: nothing reachable was ever freed).
    pub fn audit(&self) -> Result<(), String> {
        let book = self.book.lock();
        let root = self.root.load(Ordering::Acquire);
        if root.is_null() {
            return if book.resolved.is_empty() && book.pending.is_empty() {
                Ok(())
            } else {
                Err("cache has book-keeping entries but no published root".into())
            };
        }

        let branch = 1usize << self.bits;
        let mut errors: Vec<String> = Vec::new();
        let mut reachable: HashSet<*const CacheNode<D>> = HashSet::new();
        let mut stack: Vec<*const CacheNode<D>> = vec![root];
        while let Some(p) = stack.pop() {
            if !reachable.insert(p) {
                // SAFETY: reachable pointers target nodes owned by self.
                let key = unsafe { (*p).key };
                errors.push(format!("node {key} is reachable via more than one path"));
                continue;
            }
            // SAFETY: as above.
            let node = unsafe { &*p };
            let mut has_children = false;
            for slot in 0..node.children.len() {
                let c = node.children[slot].load(Ordering::Acquire);
                if c.is_null() {
                    continue;
                }
                has_children = true;
                if slot >= branch {
                    errors.push(format!(
                        "node {} has a child in slot {slot}, beyond branch factor {branch}",
                        node.key
                    ));
                }
                // SAFETY: child pointers target nodes owned by self.
                let child_key = unsafe { (*c).key };
                let expected = node.key.child(slot, self.bits);
                if child_key != expected {
                    errors.push(format!(
                        "child of {} in slot {slot} has key {child_key}, expected {expected}",
                        node.key
                    ));
                }
                stack.push(c);
            }
            if has_children && node.kind != NodeKind::Internal {
                errors.push(format!("{:?} node {} has children", node.kind, node.key));
            }
        }

        for (&key, p) in &book.resolved {
            // SAFETY: resolved pointers target nodes owned by self.
            let node = unsafe { p.as_ref() };
            if node.key != key {
                errors.push(format!("resolved[{key}] points at node with key {}", node.key));
            }
            if !reachable.contains(&(p.as_ptr() as *const CacheNode<D>)) {
                errors.push(format!("resolved key {key} is not reachable from the root"));
            }
        }

        for (&key, waiters) in &book.pending {
            if waiters.is_empty() {
                continue;
            }
            let is_placeholder = book
                .resolved
                .get(&key)
                // SAFETY: as above.
                .map(|p| unsafe { p.as_ref() }.is_placeholder())
                .unwrap_or(false);
            if !is_placeholder {
                errors.push(format!(
                    "{} waiter(s) parked on {key}, which is not a resolved placeholder",
                    waiters.len()
                ));
            }
        }

        let n_alloc = self.allocs.lock().len();
        if n_alloc < reachable.len() {
            errors.push(format!(
                "allocation list holds {n_alloc} nodes but {} are reachable",
                reachable.len()
            ));
        }

        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors.join("; "))
        }
    }

    /// [`CacheTree::audit`] plus the invariants a *fresh* build gets for
    /// free but incremental maintenance must actively preserve — run at
    /// the incremental-update phase boundary in debug builds:
    ///
    /// 1. **Bucket-size bounds** — every leaf holds at most
    ///    `bucket_size` particles unless its key has no room for deeper
    ///    digits (the depth-cap escape hatch fresh builds also use), and
    ///    its particle list length matches its `n_particles` summary,
    /// 2. **Summary consistency** — every internal node's `n_particles`
    ///    equals the sum over its children (placeholder summaries
    ///    included: counts travel on the wire), every child's region box
    ///    sits inside its parent's, every leaf contains its particles,
    ///    and no internal node is childless (a patched-empty interior
    ///    must be pruned, not left dangling),
    /// 3. **No orphan placeholders** — every reachable placeholder is
    ///    the canonical `resolved` entry for its key, so a fill can
    ///    still replace it (a spliced-in subtree that re-hung a stale
    ///    placeholder would strand requests forever).
    pub fn audit_patched(&self, bucket_size: usize) -> Result<(), String> {
        self.audit()?;
        let book = self.book.lock();
        let root = self.root.load(Ordering::Acquire);
        if root.is_null() {
            return Ok(());
        }
        let max_level = 63 / self.bits; // deepest level a key can encode
        let mut errors: Vec<String> = Vec::new();
        let mut stack: Vec<*const CacheNode<D>> = vec![root];
        while let Some(p) = stack.pop() {
            // SAFETY: reachable pointers target nodes owned by self.
            let node = unsafe { &*p };
            match node.kind {
                NodeKind::Leaf => {
                    if node.particles.len() != node.n_particles as usize {
                        errors.push(format!(
                            "leaf {} summarises {} particles but holds {}",
                            node.key,
                            node.n_particles,
                            node.particles.len()
                        ));
                    }
                    let at_depth_cap = node.key.level(self.bits) >= max_level;
                    if node.particles.len() > bucket_size && !at_depth_cap {
                        errors.push(format!(
                            "leaf {} holds {} particles, over bucket size {bucket_size}",
                            node.key,
                            node.particles.len()
                        ));
                    }
                    if let Some(p) = node.particles.iter().find(|p| !node.bbox.contains(p.pos)) {
                        errors.push(format!(
                            "leaf {} holds particle {} outside its region box",
                            node.key, p.id
                        ));
                    }
                }
                NodeKind::Internal => {
                    let mut n_children = 0u32;
                    let mut sum = 0u32;
                    for slot in 0..node.children.len() {
                        let c = node.children[slot].load(Ordering::Acquire);
                        if c.is_null() {
                            continue;
                        }
                        n_children += 1;
                        // SAFETY: child pointers target nodes owned by self.
                        let child = unsafe { &*c };
                        sum += child.n_particles;
                        let contained =
                            node.bbox.contains(child.bbox.lo) && node.bbox.contains(child.bbox.hi);
                        if !child.bbox.is_empty() && !contained {
                            errors.push(format!(
                                "child {} sticks out of parent {}'s region box",
                                child.key, node.key
                            ));
                        }
                        stack.push(c);
                    }
                    if n_children == 0 {
                        errors.push(format!("internal node {} has no children", node.key));
                    } else if sum != node.n_particles {
                        errors.push(format!(
                            "internal node {} summarises {} particles but its children sum to {sum}",
                            node.key, node.n_particles
                        ));
                    }
                }
                NodeKind::Placeholder => {
                    let canonical = book
                        .resolved
                        .get(&node.key)
                        .map(|canon| std::ptr::eq(canon.as_ptr(), p))
                        .unwrap_or(false);
                    if !canonical {
                        errors.push(format!(
                            "orphan placeholder {}: reachable but not the canonical entry",
                            node.key
                        ));
                    }
                }
                NodeKind::Empty => {}
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors.join("; "))
        }
    }

    /// Number of nodes currently allocated (including superseded
    /// placeholders — the cache is no-delete).
    pub fn n_allocated(&self) -> usize {
        self.allocs.lock().len()
    }
}

impl<D: Data> Drop for CacheTree<D> {
    fn drop(&mut self) {
        for ptr in self.allocs.get_mut().drain(..) {
            // SAFETY: every pointer in `allocs` came from Box::leak and
            // is dropped exactly once, here.
            drop(unsafe { Box::from_raw(ptr.as_ptr()) });
        }
    }
}
