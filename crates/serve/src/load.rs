//! Seeded open-loop load generation: thousands of simulated clients
//! multiplexed over a few driver threads, issuing a mixed query stream
//! against a [`QueryService`](crate::service::QueryService).
//!
//! Every client's query stream is a pure function of
//! `(seed, client id)`, so two runs against the *same pinned snapshot*
//! produce bit-identical result checksums — the replay property — while
//! runs against a live writer legitimately differ only in which epoch
//! answered each query.
//!
//! Overload is *measured*, never fatal: retryable submit failures
//! (`Overloaded`, `NotReady`) back off with deterministic seeded
//! jitter and retry a bounded number of times; non-retryable ones
//! (`OverBudget` — the deadline will not move) are charged as sheds
//! immediately. Error *responses* (deadline expiry in queue, a
//! panicked worker) are tallied per kind in the [`LoadReport`].

use crate::request::{Query, QueryClass, Request, Response};
use crate::service::QueryService;
use crate::ServeError;
use paratreet_geometry::{BoundingBox, Vec3};
use paratreet_tree::Data;
use rand::{Rng, SeedableRng, StdRng};
use std::time::Duration;

/// Folds one response into the order-independent run checksum: the XOR
/// over responses of a per-response mix of client, sequence number, and
/// result checksum. Epochs are deliberately excluded — they vary under
/// a live writer; the *results per request* are what replays compare.
/// Non-full-fidelity responses (errors, degraded, partial) contribute 0
/// so the fold stays comparable across clean, degraded, and chaos runs.
pub fn checksum_fold(resp: &Response) -> u64 {
    if !resp.is_full_fidelity() {
        return 0;
    }
    let Ok(result) = &resp.result else { return 0 };
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [resp.client as u64, resp.seq as u64, result.checksum()] {
        h = (h ^ v).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Traffic shape for one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Simulated clients.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// OS threads driving the clients.
    pub threads: usize,
    /// Queries per submitted batch.
    pub batch: usize,
    /// Neighbour count for kNN queries.
    pub k: usize,
    /// Stream seed: same seed, same query streams (and same retry
    /// jitter).
    pub seed: u64,
    /// Relative class weights, [`QueryClass::ALL`] order
    /// (knn, ball, range, ray).
    pub mix: [u32; 4],
    /// Per-request completion deadline (`None` = no deadlines).
    pub deadline: Option<Duration>,
    /// Retry attempts after a retryable submit failure before the
    /// batch is abandoned. 0 = shed immediately, the pre-ISSUE-9
    /// behaviour.
    pub max_retries: u32,
    /// Base backoff before a retry; attempt `a` sleeps
    /// `backoff × 2^a × jitter` with jitter drawn in `[0.5, 1.5)` from
    /// a seeded stream, so two same-seed runs back off identically.
    pub retry_backoff: Duration,
    /// Inter-batch gap per driver thread (`None` = submit as fast as
    /// possible). Paced load offers the same arrival timeline to every
    /// admission policy, which is what makes shed-vs-cost in-deadline
    /// fractions comparable: an unpaced driver finishes early exactly
    /// when admission sheds fast, cutting the slower arm's run short.
    pub pace: Option<Duration>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 1000,
            queries_per_client: 100,
            threads: 8,
            batch: 32,
            k: 8,
            seed: 42,
            mix: [4, 3, 2, 1],
            deadline: None,
            max_retries: 3,
            retry_backoff: Duration::from_micros(200),
            pace: None,
        }
    }
}

/// What a load run did.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadReport {
    /// Queries accepted by the service.
    pub submitted: u64,
    /// Queries answered with an `Ok` result.
    pub completed: u64,
    /// Queries shed by admission control (all reasons, after retries).
    pub shed: u64,
    /// Submit retry attempts performed.
    pub retries: u64,
    /// Queries abandoned after exhausting retries.
    pub abandoned: u64,
    /// Queries answered `Err(DeadlineExceeded)` — expired in queue.
    pub deadline_exceeded: u64,
    /// Queries answered with any other structured error (e.g.
    /// `WorkerPanicked`).
    pub failed: u64,
    /// `Ok` answers marked degraded by the ladder.
    pub degraded: u64,
    /// `Ok` answers carrying a partial resume cursor.
    pub partial: u64,
    /// Queries generated per class ([`QueryClass::ALL`] order).
    pub per_class: [u64; 4],
    /// Wall seconds from first submit to last response.
    pub elapsed_s: f64,
    /// Completed queries per second.
    pub throughput: f64,
    /// Lowest snapshot epoch observed in an `Ok` response.
    pub min_epoch: u64,
    /// Highest snapshot epoch observed in an `Ok` response.
    pub max_epoch: u64,
    /// Order-independent XOR of full-fidelity response checksums (see
    /// [`checksum_fold`]).
    pub checksum: u64,
}

/// One seeded random query with anchors inside `universe`.
pub fn random_query(rng: &mut StdRng, universe: &BoundingBox, k: usize, mix: &[u32; 4]) -> Query {
    let size = universe.size();
    let extent = size.x.max(size.y).max(size.z).max(1e-9);
    let point = |rng: &mut StdRng| {
        Vec3::new(
            universe.lo.x + rng.random_range(0.0..1.0) * size.x.max(1e-9),
            universe.lo.y + rng.random_range(0.0..1.0) * size.y.max(1e-9),
            universe.lo.z + rng.random_range(0.0..1.0) * size.z.max(1e-9),
        )
    };
    let total: u32 = mix.iter().sum::<u32>().max(1);
    let mut pick = rng.random_range(0..total);
    let mut class = QueryClass::Knn;
    for c in QueryClass::ALL {
        let w = mix[c.index()];
        if pick < w {
            class = c;
            break;
        }
        pick -= w;
    }
    match class {
        QueryClass::Knn => Query::Knn { pos: point(rng), k },
        QueryClass::Ball => {
            Query::Ball { center: point(rng), radius: extent * rng.random_range(0.02..0.1) }
        }
        QueryClass::Range => Query::Range {
            bbox: BoundingBox::cube(point(rng), extent * rng.random_range(0.02..0.08)),
            resume_after: None,
        },
        QueryClass::Ray => {
            let origin = point(rng);
            let through = point(rng);
            Query::Ray { origin, dir: through - origin, radius: extent * 0.02, t_max: extent * 4.0 }
        }
    }
}

/// Drives `config.clients` simulated clients against `service` and
/// blocks until every accepted query is answered. Submit failures are
/// retried (retryable kinds, bounded) or charged to the report —
/// overload experiments measure behaviour instead of crashing the
/// driver.
pub fn run_load<D: Data>(
    service: &QueryService<D>,
    universe: BoundingBox,
    config: &LoadConfig,
) -> LoadReport {
    let threads = config.threads.clamp(1, config.clients.max(1));
    let t0 = std::time::Instant::now();
    let mut report = LoadReport { min_epoch: u64::MAX, ..LoadReport::default() };

    let partials: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|ti| {
                let config = *config;
                scope.spawn(move || drive_clients(service, &universe, &config, ti, threads))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load driver panicked")).collect()
    });

    for p in partials {
        report.submitted += p.submitted;
        report.completed += p.completed;
        report.shed += p.shed;
        report.retries += p.retries;
        report.abandoned += p.abandoned;
        report.deadline_exceeded += p.deadline_exceeded;
        report.failed += p.failed;
        report.degraded += p.degraded;
        report.partial += p.partial;
        for i in 0..4 {
            report.per_class[i] += p.per_class[i];
        }
        report.min_epoch = report.min_epoch.min(p.min_epoch);
        report.max_epoch = report.max_epoch.max(p.max_epoch);
        report.checksum ^= p.checksum;
    }
    if report.completed == 0 {
        report.min_epoch = 0;
    }
    report.elapsed_s = t0.elapsed().as_secs_f64();
    report.throughput =
        if report.elapsed_s > 0.0 { report.completed as f64 / report.elapsed_s } else { 0.0 };
    report
}

/// One driver thread: its share of the clients, one reply channel.
fn drive_clients<D: Data>(
    service: &QueryService<D>,
    universe: &BoundingBox,
    config: &LoadConfig,
    thread_index: usize,
    threads: usize,
) -> LoadReport {
    let (tx, rx) = crossbeam::channel::unbounded::<Vec<Response>>();
    let mut report = LoadReport { min_epoch: u64::MAX, ..LoadReport::default() };
    let mut accepted_batches = 0u64;
    let mut received_batches = 0u64;
    let batch_len = config.batch.max(1);
    // The retry jitter stream is seeded independently of the query
    // streams, so backing off never perturbs what queries are issued.
    let mut retry_rng = StdRng::seed_from_u64(
        config.seed ^ 0xA076_1D64_78BD_642F ^ (thread_index as u64).wrapping_mul(0x9E37_79B9),
    );

    let absorb = |report: &mut LoadReport, responses: Vec<Response>| {
        for resp in &responses {
            match &resp.result {
                Ok(_) => {
                    report.completed += 1;
                    report.min_epoch = report.min_epoch.min(resp.epoch);
                    report.max_epoch = report.max_epoch.max(resp.epoch);
                    if resp.degraded {
                        report.degraded += 1;
                    }
                    if resp.partial.is_some() {
                        report.partial += 1;
                    }
                    report.checksum ^= checksum_fold(resp);
                }
                Err(ServeError::DeadlineExceeded { .. }) => report.deadline_exceeded += 1,
                Err(_) => report.failed += 1,
            }
        }
    };

    let mut client = thread_index;
    while client < config.clients {
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut pending: Vec<Request> = Vec::with_capacity(batch_len);
        for seq in 0..config.queries_per_client {
            let query = random_query(&mut rng, universe, config.k, &config.mix);
            report.per_class[query.class().index()] += 1;
            let request = match config.deadline {
                Some(d) => Request::with_deadline(client as u32, seq as u32, query, d),
                None => Request::new(client as u32, seq as u32, query),
            };
            pending.push(request);
            if pending.len() == batch_len {
                submit_batch(
                    service,
                    &mut pending,
                    &tx,
                    &mut report,
                    &mut accepted_batches,
                    config,
                    &mut retry_rng,
                );
                // Keep memory bounded: absorb whatever already came back.
                while let Ok(responses) = rx.try_recv() {
                    received_batches += 1;
                    absorb(&mut report, responses);
                }
            }
        }
        if !pending.is_empty() {
            submit_batch(
                service,
                &mut pending,
                &tx,
                &mut report,
                &mut accepted_batches,
                config,
                &mut retry_rng,
            );
        }
        client += threads;
    }

    // Every accepted batch eventually answers exactly once.
    while received_batches < accepted_batches {
        let responses = rx.recv().expect("service dropped a reply channel");
        received_batches += 1;
        absorb(&mut report, responses);
    }
    report
}

/// Submits one batch, retrying retryable failures with bounded,
/// deterministically jittered backoff and charging the rest to the
/// report. No failure path panics.
fn submit_batch<D: Data>(
    service: &QueryService<D>,
    pending: &mut Vec<Request>,
    tx: &crossbeam::channel::Sender<Vec<Response>>,
    report: &mut LoadReport,
    accepted_batches: &mut u64,
    config: &LoadConfig,
    retry_rng: &mut StdRng,
) {
    let batch = std::mem::take(pending);
    let n = batch.len() as u64;
    let mut attempt = 0u32;
    loop {
        // `submit` consumes the batch and returns nothing on failure;
        // requests are `Copy`, so clone per attempt.
        match service.submit(batch.clone(), Some(tx.clone())) {
            Ok(()) => {
                report.submitted += n;
                *accepted_batches += 1;
                break;
            }
            Err(e) if e.is_retryable() && attempt < config.max_retries => {
                attempt += 1;
                report.retries += 1;
                // Seeded jitter in [0.5, 1.5), doubling per attempt.
                let jitter = 0.5 + retry_rng.random_range(0.0..1.0);
                let backoff =
                    config.retry_backoff.mul_f64(jitter * (1u64 << (attempt - 1).min(16)) as f64);
                std::thread::sleep(backoff);
            }
            Err(e) => {
                report.shed += n;
                if e.is_retryable() {
                    // Retries exhausted on a transient failure.
                    report.abandoned += n;
                }
                break;
            }
        }
    }
    if let Some(pace) = config.pace {
        std::thread::sleep(pace);
    }
}
