//! Chrome trace ingestion: the inverse of `paratreet_telemetry::chrome`.

use paratreet_telemetry::json::{parse, Json};

/// One duration event out of a Chrome trace, flattened: the optional
/// `args` attributes (`key`, and the causal link `id`/`parent`/
/// `request`) ride as plain fields.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRec {
    /// Span name (phase or request stage).
    pub name: String,
    /// Start, microseconds in the trace's clock domain.
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Rank (Chrome `pid`).
    pub rank: u64,
    /// Worker (Chrome `tid`).
    pub worker: u64,
    /// Domain key (subtree / node), when the span carried one.
    pub key: Option<u64>,
    /// This span's own causal id.
    pub id: Option<u64>,
    /// The id of the span that caused this one.
    pub parent: Option<u64>,
    /// The request this span belongs to.
    pub request: Option<u64>,
}

impl SpanRec {
    /// End timestamp, microseconds.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// A parsed trace: duration events in a deterministic total order plus
/// the document's clock label and counters.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    /// `"wall"` or `"virtual"` (from `otherData.clock`).
    pub clock: String,
    /// Duration events, sorted by `(start, end, rank, worker, name, id)`.
    pub spans: Vec<SpanRec>,
    /// Named counters (from `otherData.counters`), sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl TraceData {
    /// Distinct `(rank, worker)` tracks, ascending.
    pub fn tracks(&self) -> Vec<(u64, u64)> {
        let mut tracks: Vec<(u64, u64)> = self.spans.iter().map(|s| (s.rank, s.worker)).collect();
        tracks.sort_unstable();
        tracks.dedup();
        tracks
    }

    /// `[min start, max end]` over all spans, or `None` when empty.
    pub fn extent_us(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.spans {
            lo = lo.min(s.start_us);
            hi = hi.max(s.end_us());
        }
        (hi >= lo).then_some((lo, hi))
    }
}

fn get_u64(v: &Json, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Json::U64(u)) => Some(*u),
        Some(Json::F64(f)) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
        _ => None,
    }
}

/// Parses a Chrome trace-event JSON document into [`TraceData`].
/// Metadata events (`"ph":"M"`) are skipped; anything that is not a
/// complete event is an error, matching what the workspace emits.
pub fn parse_trace(text: &str) -> Result<TraceData, String> {
    let doc = parse(text)?;
    let events =
        doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents array")?;
    let mut spans = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err(format!("event {i}: missing ph")),
        };
        if ph != "X" {
            continue;
        }
        let name = match ev.get("name") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err(format!("event {i}: duration event without a name")),
        };
        let start_us =
            ev.get("ts").and_then(Json::as_f64).ok_or(format!("event {i}: missing ts"))?;
        let dur_us =
            ev.get("dur").and_then(Json::as_f64).ok_or(format!("event {i}: missing dur"))?;
        let rank = get_u64(ev, "pid").ok_or(format!("event {i}: missing pid"))?;
        let worker = get_u64(ev, "tid").ok_or(format!("event {i}: missing tid"))?;
        let (key, id, parent, request) = match ev.get("args") {
            Some(args) => (
                get_u64(args, "key"),
                get_u64(args, "id"),
                get_u64(args, "parent"),
                get_u64(args, "request"),
            ),
            None => (None, None, None, None),
        };
        spans.push(SpanRec { name, start_us, dur_us, rank, worker, key, id, parent, request });
    }
    // Re-impose a total order so the analysis is independent of event
    // order in the file (the emitter already sorts, but be safe).
    spans.sort_by(|a, b| {
        a.start_us
            .total_cmp(&b.start_us)
            .then(a.dur_us.total_cmp(&b.dur_us))
            .then(a.rank.cmp(&b.rank))
            .then(a.worker.cmp(&b.worker))
            .then(a.name.cmp(&b.name))
            .then(a.id.cmp(&b.id))
    });

    let clock = match doc.get("otherData").and_then(|o| o.get("clock")) {
        Some(Json::Str(s)) => s.clone(),
        _ => "wall".to_string(),
    };
    let mut counters = Vec::new();
    if let Some(Json::Obj(fields)) = doc.get("otherData").and_then(|o| o.get("counters")) {
        for (k, v) in fields {
            if let Json::U64(u) = v {
                counters.push((k.clone(), *u));
            }
        }
    }
    counters.sort();
    Ok(TraceData { clock, spans, counters })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_what_the_emitter_writes() {
        use paratreet_telemetry::{chrome_trace_json, ClockDomain, Span, SpanLink, Trace, Track};
        let mut trace = Trace { clock: ClockDomain::Virtual, ..Default::default() };
        trace.counters.insert("faults", 3);
        trace.spans.push(Span {
            name: "tree build",
            start_us: 10.0,
            dur_us: 5.0,
            track: Track { rank: 1, worker: 2 },
            key: Some(7),
            link: SpanLink { id: Some(4), parent: Some(3), request: Some(99) },
        });
        trace.spans.push(Span {
            name: "decomposition",
            start_us: 0.0,
            dur_us: 10.0,
            track: Track { rank: 0, worker: 0 },
            key: None,
            link: SpanLink::NONE,
        });
        let parsed = parse_trace(&chrome_trace_json(&trace)).unwrap();
        assert_eq!(parsed.clock, "virtual");
        assert_eq!(parsed.counters, vec![("faults".to_string(), 3)]);
        assert_eq!(parsed.spans.len(), 2);
        assert_eq!(parsed.spans[0].name, "decomposition");
        let b = &parsed.spans[1];
        assert_eq!(
            (b.name.as_str(), b.start_us, b.dur_us, b.rank, b.worker),
            ("tree build", 10.0, 5.0, 1, 2)
        );
        assert_eq!((b.key, b.id, b.parent, b.request), (Some(7), Some(4), Some(3), Some(99)));
        assert_eq!(parsed.tracks(), vec![(0, 0), (1, 2)]);
        assert_eq!(parsed.extent_us(), Some((0.0, 15.0)));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{}").is_err());
        assert!(parse_trace(r#"{"traceEvents":[{"ph":"X","ts":1}]}"#).is_err());
    }
}
