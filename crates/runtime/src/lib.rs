//! The runtime substrate: a deterministic model of a distributed machine.
//!
//! The reference ParaTreeT runs on Charm++ across hundreds of
//! supercomputer nodes. Reproducing its *scaling* results needs a
//! distributed machine; this crate provides one as a **discrete-event
//! simulator** ([`sim::Sim`]): ranks × worker threads, a work queue per
//! rank with least-busy-worker assignment (the paper's fill-message
//! policy), per-message latency plus per-byte bandwidth costs with
//! sender-side injection serialisation, and named exclusive resources to
//! model locks (the XWrite cache). The traversal engine executes the
//! *real algorithm* — actual trees, actual fills — while charging virtual
//! time, so simulated makespans reflect genuine communication volume,
//! duplicate fetches, and critical-path structure rather than a formula.
//!
//! Everything is deterministic: ties in the event queue break on a
//! sequence number, so a given workload and machine produce the same
//! timeline every run.
//!
//! [`machine::MachineSpec`] carries the Table I presets (Summit,
//! Stampede2, Bridges2); [`phase::Phase`] names the activity categories
//! of the Fig. 9 utilisation profile; [`ledger::Ledger`] accumulates
//! per-phase busy intervals and renders the profile.

pub mod ledger;
pub mod machine;
pub mod phase;
pub mod sim;

pub use ledger::Ledger;
pub use machine::MachineSpec;
pub use phase::Phase;
pub use sim::{
    CommStats, CrashConfig, CrashPhase, CrashTrigger, FaultAction, FaultConfig, FaultConfigError,
    FaultInjector, FaultStats, Sim, WorkerId,
};
