#!/usr/bin/env bash
# Network-free CI gate: the workspace vendors all dependencies as local
# shims (see shims/), so every step below runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo build --workspace --no-default-features (telemetry off) =="
cargo build --workspace --no-default-features

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== fig9 smoke (--json) =="
cargo run --release -q -p paratreet-bench --bin fig9_time_profile -- \
    --particles 2000 --procs 2 --bins 8 --json true > /dev/null

echo "CI green."
