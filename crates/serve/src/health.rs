//! Service health surface: the supervision tree's observable state.
//!
//! [`ServiceHealth`] is a point-in-time snapshot clients and operators
//! poll ([`crate::QueryService::health`]); [`ShutdownReport`] is the
//! structured record of how every supervised thread ended — a late
//! panic degrades the report instead of aborting the process.

use paratreet_telemetry::metrics::{MetricSource, MetricsRegistry};
use std::time::Duration;

/// The writer thread's lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriterState {
    /// No writer was spawned (direct-publish / hook-fed services).
    NotSpawned,
    /// The writer is advancing and publishing.
    Running,
    /// The writer finished its configured iterations and retired; the
    /// last snapshot keeps serving (intended staleness).
    Finished,
    /// The writer panicked. The service is in **stale-serving mode**:
    /// readers keep answering from the last published snapshot and
    /// [`ServiceHealth::staleness_epochs`] bounds how far behind a
    /// healthy writer the answers are.
    Panicked,
}

impl WriterState {
    /// Stable numeric code for metrics export.
    pub fn code(self) -> u64 {
        match self {
            WriterState::NotSpawned => 0,
            WriterState::Running => 1,
            WriterState::Finished => 2,
            WriterState::Panicked => 3,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            WriterState::NotSpawned => "not-spawned",
            WriterState::Running => "running",
            WriterState::Finished => "finished",
            WriterState::Panicked => "panicked",
        }
    }
}

/// A point-in-time health snapshot of the whole supervision tree.
#[derive(Clone, Copy, Debug)]
pub struct ServiceHealth {
    /// Reader threads the service was configured with.
    pub workers_configured: usize,
    /// Reader threads currently alive (running their pop loop).
    pub workers_alive: usize,
    /// Batch executions that panicked (each caught at the batch
    /// boundary and answered as structured errors).
    pub worker_panics: u64,
    /// Workers respawned by the supervisor after a panic.
    pub worker_respawns: u64,
    /// True once the respawn budget is exhausted: panicked workers are
    /// no longer replaced (the quarantine that bounds respawn storms).
    pub quarantined: bool,
    /// The writer thread's state.
    pub writer: WriterState,
    /// True when the writer died but readers keep serving pinned
    /// snapshots (`writer == Panicked`).
    pub stale_serving: bool,
    /// In stale-serving mode: how many publications a healthy writer
    /// would have made since the last one actually landed (wall time
    /// since last publish over the EWMA publish interval). 0 when the
    /// writer is healthy, retired, or never existed.
    pub staleness_epochs: u64,
    /// Wall-clock age of the newest snapshot (`None` before the first
    /// publish).
    pub last_publish_age: Option<Duration>,
    /// Current degradation level (0 = full fidelity).
    pub degrade_level: u8,
    /// Requests dropped at pop time because their deadline had passed.
    pub deadline_exceeded: u64,
    /// Queries shed by admission control (all reasons).
    pub shed: u64,
}

impl MetricSource for ServiceHealth {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.workers_configured"), self.workers_configured as u64);
        registry.set_u64(format!("{prefix}.workers_alive"), self.workers_alive as u64);
        registry.set_u64(format!("{prefix}.worker_panics"), self.worker_panics);
        registry.set_u64(format!("{prefix}.worker_respawns"), self.worker_respawns);
        registry.set_bool(format!("{prefix}.quarantined"), self.quarantined);
        registry.set_u64(format!("{prefix}.writer_state"), self.writer.code());
        registry.set_bool(format!("{prefix}.stale_serving"), self.stale_serving);
        registry.set_u64(format!("{prefix}.staleness_epochs"), self.staleness_epochs);
        registry.set_u64(format!("{prefix}.degrade_level"), self.degrade_level as u64);
        registry.set_u64(format!("{prefix}.deadline_exceeded"), self.deadline_exceeded);
        registry.set_u64(format!("{prefix}.shed"), self.shed);
    }
}

/// How one supervised thread's join ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinOutcome {
    /// The thread was never spawned.
    NotSpawned,
    /// Joined cleanly.
    Clean,
    /// The thread panicked (either reported through its own
    /// `catch_unwind`, or the join itself returned an error because a
    /// panic escaped). The process did not abort; the report carries
    /// the fact instead.
    Panicked,
}

/// Aggregate worker-pool join accounting, assembled by the supervisor
/// at shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerJoinStats {
    /// Worker threads spawned over the service's life (initial pool
    /// plus respawns).
    pub spawned: usize,
    /// Joins that returned cleanly.
    pub clean: usize,
    /// Joins whose thread had panicked out of its loop (caught batch
    /// panics make the worker exit; the join itself is clean) plus
    /// joins that returned an error.
    pub panicked: usize,
}

/// The structured outcome of [`crate::QueryService::shutdown`]: every
/// supervised thread's ending, in one value. Replaces the old
/// `join().expect(...)` aborts — a worker or writer that died late
/// shows up here as data.
#[derive(Clone, Copy, Debug)]
pub struct ShutdownReport {
    /// The last epoch the writer published (`None` when no writer ran
    /// or the writer panicked before its first publish).
    pub last_epoch: Option<u64>,
    /// How the writer ended.
    pub writer: JoinOutcome,
    /// Worker-pool join accounting.
    pub workers: WorkerJoinStats,
    /// How the supervisor thread ended.
    pub supervisor: JoinOutcome,
    /// How the flight sampler ended.
    pub sampler: JoinOutcome,
}

impl ShutdownReport {
    /// True when every supervised thread ended cleanly.
    pub fn is_clean(&self) -> bool {
        self.writer != JoinOutcome::Panicked
            && self.supervisor != JoinOutcome::Panicked
            && self.sampler != JoinOutcome::Panicked
            && self.workers.panicked == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_metrics_are_schema_stable() {
        let h = ServiceHealth {
            workers_configured: 4,
            workers_alive: 3,
            worker_panics: 1,
            worker_respawns: 1,
            quarantined: false,
            writer: WriterState::Panicked,
            stale_serving: true,
            staleness_epochs: 7,
            last_publish_age: Some(Duration::from_millis(12)),
            degrade_level: 2,
            deadline_exceeded: 5,
            shed: 9,
        };
        let mut r = MetricsRegistry::new();
        r.absorb("serve.health", &h);
        assert_eq!(r.get_u64("serve.health.workers_alive"), 3);
        assert_eq!(r.get_u64("serve.health.writer_state"), WriterState::Panicked.code());
        assert_eq!(r.get_u64("serve.health.stale_serving"), 1);
        assert_eq!(r.get_u64("serve.health.staleness_epochs"), 7);
        assert_eq!(r.get_u64("serve.health.degrade_level"), 2);
    }

    #[test]
    fn shutdown_report_cleanliness() {
        let clean = ShutdownReport {
            last_epoch: Some(3),
            writer: JoinOutcome::Clean,
            workers: WorkerJoinStats { spawned: 4, clean: 4, panicked: 0 },
            supervisor: JoinOutcome::Clean,
            sampler: JoinOutcome::NotSpawned,
        };
        assert!(clean.is_clean());
        let dirty = ShutdownReport {
            workers: WorkerJoinStats { spawned: 4, clean: 3, panicked: 1 },
            ..clean
        };
        assert!(!dirty.is_clean());
    }
}
