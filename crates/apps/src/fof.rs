//! Friends-of-friends (FoF) halo finding — the first multi-box workload.
//!
//! FoF is the standard halo definition in cosmology: two particles are
//! *friends* when they sit within a linking length `b` of each other,
//! and a halo is a connected component of the friendship graph with at
//! least `min_members` members. It is the natural first consumer of the
//! forest decomposition because the graph does not respect box
//! boundaries: a halo can straddle a seam (or wrap through a periodic
//! face), so the finder must see its neighbors' boundary particles.
//!
//! The pipeline here is exactly the forest story:
//!
//! 1. decompose over a [`DomainSpec`] (`paratreet_core::decompose_forest`),
//! 2. build per-box trees, enforce 2:1 seam balance,
//! 3. exchange ghost layers with radius = linking length — this is what
//!    guarantees every cross-seam friendship is locally visible: if
//!    `q`'s (image) distance to `p`'s box is ≤ `b`, `q`'s shifted copy
//!    is materialized in `p`'s ghost layer,
//! 4. a **dual-tree linking pass** per box (local×local over subtree
//!    pairs, plus local×ghost against a tree built over the box's ghost
//!    layer), pruning node pairs farther apart than `b`,
//! 5. a global **union-find merge**: every link lands in one
//!    order-independent structure whose representative is the minimum
//!    member id, so the catalog is bit-identical across thread counts
//!    and across how the boxes happened to find the links.
//!
//! Distances in the linking pass are plain Euclidean: periodic images
//! are handled *geometrically* (ghost copies arrive pre-shifted into
//! the receiving box's frame), which is why the same pass serves open,
//! tiled, and periodic domains. The brute-force reference
//! ([`brute_force_fof`]) instead uses minimum-image distances directly
//! and is what the property tests compare against.

use std::collections::HashMap;

use paratreet_core::{Forest, GhostLayer};
use paratreet_geometry::{BoundingBox, PeriodicBox, Vec3, ROOT_KEY};
use paratreet_particles::Particle;
use paratreet_telemetry::{MetricSource, MetricsRegistry};
use paratreet_tree::{BuiltTree, CountData, Data, NodeIdx, NodeShape, TreeBuilder, TreeType};

/// Friends-of-friends parameters.
#[derive(Clone, Copy, Debug)]
pub struct FofParams {
    /// Linking length `b`: two particles closer than this are friends.
    pub link: f64,
    /// Minimum component size that counts as a halo.
    pub min_members: usize,
}

/// One halo: a connected component of the friendship graph.
#[derive(Clone, Debug, PartialEq)]
pub struct Halo {
    /// Halo id = the minimum member particle id (stable across runs).
    pub id: u64,
    /// Member particle ids, ascending.
    pub members: Vec<u64>,
    /// Mass-weighted center (periodic-aware: accumulated by minimum
    /// image around the first member, then wrapped).
    pub center: Vec3,
    /// Total halo mass.
    pub mass: f64,
}

/// The halo catalog plus the counters exported as `fof.*` metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FofCatalog {
    /// Halos sorted by (size descending, id ascending).
    pub halos: Vec<Halo>,
    /// Particles examined.
    pub n_particles: u64,
    /// Particles belonging to some halo.
    pub n_grouped: u64,
    /// Spanning links applied (`n_particles − components`); identical
    /// for every edge-discovery order.
    pub n_links: u64,
}

impl MetricSource for FofCatalog {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.halos"), self.halos.len() as u64);
        registry.set_u64(format!("{prefix}.grouped"), self.n_grouped);
        registry.set_u64(format!("{prefix}.links"), self.n_links);
        registry.set_u64(
            format!("{prefix}.largest"),
            self.halos.first().map(|h| h.members.len() as u64).unwrap_or(0),
        );
    }
}

// ---------------------------------------------------------------------
// Union-find keyed by particle id.
// ---------------------------------------------------------------------

/// Union-find over a fixed id universe. Roots are always the minimum id
/// of their component (unions attach the larger root under the
/// smaller), so the final forest — and everything derived from it — is
/// independent of the order links were discovered in.
struct UnionFind {
    /// Sorted ascending, so dense index order is id order.
    ids: Vec<u64>,
    index: HashMap<u64, u32>,
    parent: Vec<u32>,
    n_links: u64,
}

impl UnionFind {
    fn new(mut ids: Vec<u64>) -> UnionFind {
        ids.sort_unstable();
        ids.dedup();
        let index = ids.iter().enumerate().map(|(i, &id)| (id, i as u32)).collect();
        let parent = (0..ids.len() as u32).collect();
        UnionFind { ids, index, parent, n_links: 0 }
    }

    fn find(&mut self, mut i: u32) -> u32 {
        while self.parent[i as usize] != i {
            let gp = self.parent[self.parent[i as usize] as usize];
            self.parent[i as usize] = gp;
            i = gp;
        }
        i
    }

    /// Links two particle ids (ids not in the universe are ignored —
    /// defensive, ghosts always identify owned originals).
    fn union_ids(&mut self, a: u64, b: u64) {
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            return;
        };
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return;
        }
        // Smaller index = smaller id stays the root.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        self.n_links += 1;
    }
}

// ---------------------------------------------------------------------
// Dual-tree linking.
// ---------------------------------------------------------------------

/// Recursive dual-tree pass: applies every friendship between tree `a`
/// and tree `b` to the union-find, pruning node pairs separated by more
/// than the linking length. With `same_tree`, node pairs below the
/// diagonal are skipped and leaf self-pairs iterate `i < j`.
#[allow(clippy::too_many_arguments)]
fn dual_link<D: Data>(
    a: &BuiltTree<D>,
    ai: NodeIdx,
    b: &BuiltTree<D>,
    bi: NodeIdx,
    same_tree: bool,
    r2: f64,
    uf: &mut UnionFind,
) {
    let na = &a.nodes[ai as usize];
    let nb = &b.nodes[bi as usize];
    if na.n_particles == 0 || nb.n_particles == 0 {
        return;
    }
    if na.bbox.dist_sq_to_box(&nb.bbox) > r2 {
        return;
    }
    if same_tree && ai == bi {
        if let NodeShape::Leaf { start, end } = na.shape {
            let bucket = &a.particles[start as usize..end as usize];
            for (i, p) in bucket.iter().enumerate() {
                for q in &bucket[i + 1..] {
                    if p.pos.dist_sq(q.pos) <= r2 {
                        uf.union_ids(p.id, q.id);
                    }
                }
            }
            return;
        }
        // Expand both sides together, keeping child pairs ordered so
        // each off-diagonal pair is visited exactly once.
        let kids: Vec<NodeIdx> = na.child_indices().collect();
        for (i, &ca) in kids.iter().enumerate() {
            for &cb in &kids[i..] {
                dual_link(a, ca, b, cb, same_tree, r2, uf);
            }
        }
        return;
    }
    match (na.shape, nb.shape) {
        (NodeShape::Leaf { start: sa, end: ea }, NodeShape::Leaf { start: sb, end: eb }) => {
            for p in &a.particles[sa as usize..ea as usize] {
                for q in &b.particles[sb as usize..eb as usize] {
                    if p.id != q.id && p.pos.dist_sq(q.pos) <= r2 {
                        uf.union_ids(p.id, q.id);
                    }
                }
            }
        }
        (NodeShape::Internal, NodeShape::Leaf { .. }) => {
            for ca in na.child_indices() {
                dual_link(a, ca, b, bi, same_tree, r2, uf);
            }
        }
        (NodeShape::Leaf { .. }, NodeShape::Internal) => {
            for cb in nb.child_indices() {
                dual_link(a, ai, b, cb, same_tree, r2, uf);
            }
        }
        (NodeShape::Internal, NodeShape::Internal) => {
            // Open the fatter node: fewer pair visits for skewed depths.
            if na.bbox.size().max_component() >= nb.bbox.size().max_component() {
                for ca in na.child_indices() {
                    dual_link(a, ca, b, bi, same_tree, r2, uf);
                }
            } else {
                for cb in nb.child_indices() {
                    dual_link(a, ai, b, cb, same_tree, r2, uf);
                }
            }
        }
        _ => {}
    }
}

/// Builds a throwaway tree over a box's ghost particles so the
/// local×ghost pass can prune spatially. Ghosts sit in the receiving
/// box's frame (possibly in the radius ring outside it), so the root
/// box is derived from the ghosts themselves.
fn ghost_tree<D: Data>(
    ghosts: Vec<Particle>,
    tree_type: TreeType,
    bucket_size: usize,
) -> BuiltTree<D> {
    let tight = BoundingBox::around(ghosts.iter().map(|p| p.pos)).padded(1e-9);
    let root = match tree_type {
        TreeType::Octree | TreeType::BinaryOct => tight.bounding_cube(),
        _ => tight,
    };
    let builder =
        TreeBuilder { tree_type, bucket_size, parallel: false, root_key: ROOT_KEY, root_depth: 0 };
    builder.build::<D>(ghosts, root)
}

/// The dual-tree linking pass over a whole forest: per box, every
/// subtree pair (local×local) plus every subtree against the box's
/// ghost tree (local×ghost). Sequential and box-ordered, so the set of
/// links — and through the order-independent union-find, the catalog —
/// is a pure function of the particle state.
pub fn link_forest<D: Data>(
    forest: &Forest,
    trees: &[Vec<BuiltTree<D>>],
    layer: &GhostLayer,
    params: &FofParams,
    tree_type: TreeType,
    bucket_size: usize,
) -> FofCatalog {
    let r2 = params.link * params.link;
    let owned: Vec<Particle> =
        trees.iter().flat_map(|ts| ts.iter().flat_map(|t| t.particles.iter().copied())).collect();
    let mut uf = UnionFind::new(owned.iter().map(|p| p.id).collect());
    for (bi, box_trees) in trees.iter().enumerate() {
        for (ti, ta) in box_trees.iter().enumerate() {
            // Within and across the box's own subtrees.
            dual_link(ta, 0, ta, 0, true, r2, &mut uf);
            for tb in &box_trees[ti + 1..] {
                dual_link(ta, 0, tb, 0, false, r2, &mut uf);
            }
        }
        // Against the ghost layer (cross-box / cross-image friendships).
        let ghosts = layer.ghosts_for(bi);
        if !ghosts.is_empty() {
            let gt = ghost_tree::<CountData>(ghosts, tree_type, bucket_size);
            for ta in box_trees {
                dual_link_mixed(ta, 0, &gt, 0, r2, &mut uf);
            }
        }
    }
    let _ = forest;
    catalog_from(&owned, uf, params, &forest.period)
}

/// `dual_link` across two differently-typed trees (local `D` vs the
/// `CountData` ghost tree).
fn dual_link_mixed<D: Data>(
    a: &BuiltTree<D>,
    ai: NodeIdx,
    b: &BuiltTree<CountData>,
    bi: NodeIdx,
    r2: f64,
    uf: &mut UnionFind,
) {
    let na = &a.nodes[ai as usize];
    let nb = &b.nodes[bi as usize];
    if na.n_particles == 0 || nb.n_particles == 0 {
        return;
    }
    if na.bbox.dist_sq_to_box(&nb.bbox) > r2 {
        return;
    }
    match (na.shape, nb.shape) {
        (NodeShape::Leaf { start: sa, end: ea }, NodeShape::Leaf { start: sb, end: eb }) => {
            for p in &a.particles[sa as usize..ea as usize] {
                for q in &b.particles[sb as usize..eb as usize] {
                    // A ghost can be an image of the particle itself
                    // (periodic self-route); that is not a friendship.
                    if p.id != q.id && p.pos.dist_sq(q.pos) <= r2 {
                        uf.union_ids(p.id, q.id);
                    }
                }
            }
        }
        (NodeShape::Internal, NodeShape::Leaf { .. }) => {
            for ca in na.child_indices() {
                dual_link_mixed(a, ca, b, bi, r2, uf);
            }
        }
        (NodeShape::Leaf { .. }, NodeShape::Internal) => {
            for cb in nb.child_indices() {
                dual_link_mixed(a, ai, b, cb, r2, uf);
            }
        }
        (NodeShape::Internal, NodeShape::Internal) => {
            if na.bbox.size().max_component() >= nb.bbox.size().max_component() {
                for ca in na.child_indices() {
                    dual_link_mixed(a, ca, b, bi, r2, uf);
                }
            } else {
                for cb in nb.child_indices() {
                    dual_link_mixed(a, ai, b, cb, r2, uf);
                }
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Catalog assembly and the brute-force reference.
// ---------------------------------------------------------------------

/// Materializes the catalog from a finished union-find: components of
/// size ≥ `min_members` become halos, members ascending, halos sorted
/// by (size descending, id ascending). Centers accumulate by minimum
/// image around the first (minimum-id) member, then wrap — correct for
/// halos hugging a periodic seam.
fn catalog_from(
    particles: &[Particle],
    mut uf: UnionFind,
    params: &FofParams,
    period: &PeriodicBox,
) -> FofCatalog {
    let mut by_id: HashMap<u64, &Particle> = HashMap::with_capacity(particles.len());
    for p in particles {
        by_id.insert(p.id, p);
    }
    // Component members, grouped by root id (BTreeMap for stable order).
    let mut groups: std::collections::BTreeMap<u64, Vec<u64>> = std::collections::BTreeMap::new();
    let n = uf.ids.len();
    for i in 0..n as u32 {
        let root = uf.find(i);
        let root_id = uf.ids[root as usize];
        groups.entry(root_id).or_default().push(uf.ids[i as usize]);
    }
    let mut n_grouped = 0u64;
    let mut halos = Vec::new();
    for (root_id, mut members) in groups {
        if members.len() < params.min_members.max(1) || members.len() < 2 {
            continue;
        }
        members.sort_unstable();
        n_grouped += members.len() as u64;
        let anchor = by_id[&members[0]].pos;
        let mut mass = 0.0;
        let mut weighted = Vec3::ZERO;
        for id in &members {
            let p = by_id[id];
            weighted += period.min_image(anchor, p.pos) * p.mass;
            mass += p.mass;
        }
        let center =
            if mass > 0.0 { period.wrap(anchor + weighted / mass, Vec3::ZERO) } else { anchor };
        halos.push(Halo { id: root_id, members, center, mass });
    }
    halos.sort_by(|a, b| b.members.len().cmp(&a.members.len()).then(a.id.cmp(&b.id)));
    FofCatalog { halos, n_particles: n as u64, n_grouped, n_links: uf.n_links }
}

/// The O(n²) reference: every pair, minimum-image distances, same
/// union-find and catalog assembly. Small-N ground truth for tests.
pub fn brute_force_fof(
    particles: &[Particle],
    period: &PeriodicBox,
    params: &FofParams,
) -> FofCatalog {
    let r2 = params.link * params.link;
    let mut uf = UnionFind::new(particles.iter().map(|p| p.id).collect());
    for (i, p) in particles.iter().enumerate() {
        for q in &particles[i + 1..] {
            if period.dist_sq(p.pos, q.pos) <= r2 {
                uf.union_ids(p.id, q.id);
            }
        }
    }
    catalog_from(particles, uf, params, period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_core::{
        decompose_forest, enforce_seam_balance, exchange_ghosts, Configuration, DomainSpec,
    };
    use paratreet_particles::gen;
    use paratreet_telemetry::Telemetry;

    fn config() -> Configuration {
        Configuration {
            tree_type: TreeType::Octree,
            bucket_size: 8,
            n_subtrees: 8,
            n_partitions: 8,
            ..Configuration::default()
        }
    }

    /// Full forest-FoF pipeline over the given particles and spec.
    fn run_fof(particles: Vec<Particle>, spec: &DomainSpec, params: &FofParams) -> FofCatalog {
        let cfg = config();
        let forest = decompose_forest(particles, &cfg, spec);
        let mut trees = forest.build_trees::<CountData>(&cfg, false);
        enforce_seam_balance(
            &mut trees,
            &forest.boxes,
            &forest.routes,
            cfg.tree_type,
            cfg.bucket_size,
        );
        let layer = exchange_ghosts(&forest, &trees, params.link, &Telemetry::disabled());
        link_forest(&forest, &trees, &layer, params, cfg.tree_type, cfg.bucket_size)
    }

    /// A tight blob of `n` particles around `c` (radius ≪ link length).
    fn blob(ids: std::ops::Range<u64>, c: Vec3, spread: f64) -> Vec<Particle> {
        ids.map(|id| {
            // Deterministic low-discrepancy offsets.
            let t = id as f64 * 0.754877666;
            let u = id as f64 * 0.569840296;
            let off = Vec3::new(
                (t.fract() - 0.5) * spread,
                (u.fract() - 0.5) * spread,
                ((t + u).fract() - 0.5) * spread,
            );
            Particle { id, mass: 1.0, pos: c + off, ..Particle::default() }
        })
        .collect()
    }

    #[test]
    fn halo_spanning_an_open_seam_merges() {
        // Two half-blobs on either side of the x = 1 seam of a 2×1×1
        // grid: one halo, found only through the ghost layer.
        let mut ps = blob(0..20, Vec3::new(0.98, 0.5, 0.5), 0.01);
        ps.extend(blob(20..40, Vec3::new(1.02, 0.5, 0.5), 0.01));
        ps.extend(blob(40..60, Vec3::new(0.3, 0.3, 0.3), 0.01)); // separate halo
        let params = FofParams { link: 0.05, min_members: 5 };
        let cat = run_fof(ps, &DomainSpec::tiled([2, 1, 1], 1.0, false), &params);
        assert_eq!(cat.halos.len(), 2);
        assert_eq!(cat.halos[0].members.len(), 40, "seam halo must merge across boxes");
        assert_eq!(cat.halos[0].id, 0);
        assert_eq!(cat.halos[1].members.len(), 20);
    }

    #[test]
    fn halo_spanning_a_periodic_seam_merges() {
        // Half-blobs hugging opposite outer faces of a periodic 2×1×1
        // grid: friends only through the wrap-around image.
        let mut ps = blob(0..15, Vec3::new(0.01, 0.5, 0.5), 0.008);
        ps.extend(blob(15..30, Vec3::new(1.99, 0.5, 0.5), 0.008));
        let params = FofParams { link: 0.05, min_members: 5 };
        let open = run_fof(ps.clone(), &DomainSpec::tiled([2, 1, 1], 1.0, false), &params);
        assert_eq!(open.halos.len(), 2, "open domain keeps the blobs apart");
        let per = run_fof(ps, &DomainSpec::tiled([2, 1, 1], 1.0, true), &params);
        assert_eq!(per.halos.len(), 1, "periodic wrap links them");
        assert_eq!(per.halos[0].members.len(), 30);
    }

    #[test]
    fn matches_brute_force_on_clustered_particles() {
        let ps = gen::tiled_plummer(400, [2, 2, 1], 23, 1.0, 1.0);
        let params = FofParams { link: 0.06, min_members: 3 };
        let spec = DomainSpec::tiled([2, 2, 1], 1.0, true);
        let cat = run_fof(ps.clone(), &spec, &params);
        // Reference: wrap positions the same way the forest does.
        let period = spec.period();
        let wrapped: Vec<Particle> =
            ps.iter().map(|p| Particle { pos: period.wrap(p.pos, Vec3::ZERO), ..*p }).collect();
        let truth = brute_force_fof(&wrapped, &period, &params);
        assert_eq!(cat.n_links, truth.n_links);
        assert_eq!(cat.halos.len(), truth.halos.len());
        for (a, b) in cat.halos.iter().zip(&truth.halos) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.members, b.members);
            assert!((a.mass - b.mass).abs() < 1e-9);
        }
    }

    #[test]
    fn catalog_is_deterministic_and_thread_independent() {
        let ps = gen::tiled_plummer(500, [2, 1, 1], 41, 1.0, 1.0);
        let params = FofParams { link: 0.05, min_members: 2 };
        let spec = DomainSpec::tiled([2, 1, 1], 1.0, true);
        let a = run_fof(ps.clone(), &spec, &params);
        let b = run_fof(ps.clone(), &spec, &params);
        assert_eq!(a, b, "same seed, same catalog");
        // Parallel tree build must not change the catalog either.
        let cfg = config();
        let forest = decompose_forest(ps, &cfg, &spec);
        let mut trees = forest.build_trees::<CountData>(&cfg, true);
        enforce_seam_balance(
            &mut trees,
            &forest.boxes,
            &forest.routes,
            cfg.tree_type,
            cfg.bucket_size,
        );
        let layer = exchange_ghosts(&forest, &trees, params.link, &Telemetry::disabled());
        let c = link_forest(&forest, &trees, &layer, &params, cfg.tree_type, cfg.bucket_size);
        assert_eq!(a, c, "parallel build, same catalog");
    }

    #[test]
    fn min_members_filters_small_components() {
        let mut ps = blob(0..10, Vec3::new(0.5, 0.5, 0.5), 0.01);
        ps.extend(blob(10..12, Vec3::new(0.2, 0.2, 0.2), 0.001)); // pair
        let params = FofParams { link: 0.05, min_members: 5 };
        let cat = run_fof(ps.clone(), &DomainSpec::tiled([1, 1, 1], 1.0, false), &params);
        assert_eq!(cat.halos.len(), 1);
        assert_eq!(cat.n_grouped, 10);
        let loose = FofParams { link: 0.05, min_members: 2 };
        let cat2 = run_fof(ps, &DomainSpec::tiled([1, 1, 1], 1.0, false), &loose);
        assert_eq!(cat2.halos.len(), 2);
    }
}
