//! The trace data model: tracks, spans, counters, clock domains.

use std::collections::BTreeMap;

/// Which clock a trace's timestamps come from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClockDomain {
    /// Simulated seconds from the discrete-event machine model,
    /// converted to microseconds. Deterministic: the same seed produces
    /// the same timestamps bit-for-bit.
    #[default]
    Virtual,
    /// Wall-clock microseconds since the recorder was created (the
    /// threaded executor and the shared-memory framework).
    Wall,
}

impl ClockDomain {
    /// Label used in trace metadata.
    pub fn label(self) -> &'static str {
        match self {
            ClockDomain::Virtual => "virtual",
            ClockDomain::Wall => "wall",
        }
    }
}

/// One timeline in the trace: a (rank, worker) pair. Exported as
/// Chrome's `pid`/`tid`, so Perfetto shows one track per worker grouped
/// by rank — the paper's Projections view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Rank (process) id → `pid`.
    pub rank: u32,
    /// Worker (thread) id within the rank → `tid`.
    pub worker: u32,
}

/// Causal context a span can carry: its own id, its parent span's id,
/// and the request it belongs to. All optional — engine phase spans
/// carry none, so traces without request tracing serialise exactly as
/// before. Request-tracing code (the `serve` crate) allocates ids via
/// [`crate::Telemetry::next_span_id`] and links stage spans under a
/// per-request root so `paratreet-analyze` can rebuild the chain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanLink {
    /// This span's id, unique within one recorder's lifetime.
    pub id: Option<u64>,
    /// The id of the span this one is causally nested under.
    pub parent: Option<u64>,
    /// The request id (`client << 32 | seq` in `serve`) this span
    /// belongs to.
    pub request: Option<u64>,
}

impl SpanLink {
    /// No causal context: the default for engine phase spans.
    pub const NONE: SpanLink = SpanLink { id: None, parent: None, request: None };
}

/// One completed span: a named busy interval on one track, optionally
/// carrying a key attribute (node key, partition id).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// The timeline this span belongs to.
    pub track: Track,
    /// Phase/operation name (static: phase labels, operation names).
    pub name: &'static str,
    /// Start time in microseconds of the trace's clock domain.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Optional attribute: the node key or partition a span worked on.
    pub key: Option<u64>,
    /// Causal context (span id / parent / request), if any.
    pub link: SpanLink,
}

/// Everything one recorder captured: spans plus merged counter totals.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The clock the timestamps were taken on.
    pub clock: ClockDomain,
    /// All recorded spans (drain order; sort before exporting).
    pub spans: Vec<Span>,
    /// Counter totals, merged across shards.
    pub counters: BTreeMap<&'static str, u64>,
}

impl Trace {
    /// Sorts spans into the canonical export order: by start time, then
    /// track, then name — a total order, so identical span sets always
    /// serialise identically.
    pub fn sort(&mut self) {
        self.spans.sort_by(|a, b| {
            a.start_us
                .total_cmp(&b.start_us)
                .then_with(|| a.track.cmp(&b.track))
                .then_with(|| a.name.cmp(b.name))
                .then_with(|| a.dur_us.total_cmp(&b.dur_us))
                .then_with(|| a.link.cmp(&b.link))
        });
    }

    /// The distinct tracks present, sorted.
    pub fn tracks(&self) -> Vec<Track> {
        let mut tracks: Vec<Track> = self.spans.iter().map(|s| s.track).collect();
        tracks.sort();
        tracks.dedup();
        tracks
    }
}
