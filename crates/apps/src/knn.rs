//! k-nearest-neighbour search.
//!
//! The second headline workload of the paper's introduction. kNN prefers
//! the *up-and-down* traversal: each bucket starts at its own leaf, so
//! candidate radii shrink before distant subtrees are considered, and
//! the `open` test prunes against the current k-th distance — "pruning
//! criteria that can change during the traversal" (§II-A-2).

use paratreet_core::{SpatialNodeView, TargetBucket, Visitor};
use paratreet_geometry::BoundingBox;
use paratreet_particles::Particle;
use paratreet_tree::data::wire;
use paratreet_tree::Data;

// The candidate types and the bounded heap moved to the shared
// `tree::query` kernel module (the serving layer uses them too);
// re-exported here so application code keeps its import paths.
pub use paratreet_tree::query::{KnnHeap, Neighbor};

/// Tree `Data` for kNN: the tight box of the subtree (for distance
/// pruning) and the particle count.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KnnData {
    /// Tight bounding box of the subtree's particles.
    pub tight_box: BoundingBox,
    /// Particles beneath the node.
    pub count: u64,
}

impl Data for KnnData {
    fn from_leaf(particles: &[Particle], _bbox: &BoundingBox) -> Self {
        KnnData {
            tight_box: BoundingBox::around(particles.iter().map(|p| p.pos)),
            count: particles.len() as u64,
        }
    }

    fn merge(&mut self, child: &Self) {
        self.tight_box.merge(&child.tight_box);
        self.count += child.count;
    }

    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_vec3(out, self.tight_box.lo);
        wire::put_vec3(out, self.tight_box.hi);
        out.extend_from_slice(&self.count.to_le_bytes());
    }

    fn decode(input: &[u8]) -> Option<(Self, usize)> {
        let mut off = 0;
        let lo = wire::get_vec3(input, &mut off)?;
        let hi = wire::get_vec3(input, &mut off)?;
        let bytes: [u8; 8] = input.get(off..off + 8)?.try_into().ok()?;
        off += 8;
        Some((KnnData { tight_box: BoundingBox { lo, hi }, count: u64::from_le_bytes(bytes) }, off))
    }
}

/// Per-bucket kNN state: one heap per bucket particle (lazily sized on
/// first use, since `Default` cannot know the bucket length or k).
#[derive(Clone, Debug, Default)]
pub struct KnnState {
    /// One candidate heap per target particle, in bucket order.
    pub heaps: Vec<KnnHeap>,
}

/// The kNN visitor: exact candidates at leaves, pruning by the bucket's
/// worst current k-th distance everywhere else.
pub struct KnnVisitor {
    /// Number of neighbours to find per particle.
    pub k: usize,
}

impl KnnVisitor {
    fn ensure_state(&self, target: &mut TargetBucket<KnnState>) {
        if target.state.heaps.len() != target.particles.len() {
            target.state.heaps = vec![KnnHeap::new(self.k); target.particles.len()];
        }
    }

    /// The bucket-level pruning radius: the largest k-th-distance bound
    /// over the bucket's particles (infinite until every heap is full).
    fn bucket_bound(target: &TargetBucket<KnnState>) -> f64 {
        if target.state.heaps.is_empty() {
            return f64::INFINITY;
        }
        target.state.heaps.iter().map(|h| h.bound()).fold(0.0, f64::max)
    }
}

impl Visitor for KnnVisitor {
    type Data = KnnData;
    type State = KnnState;

    fn open(&self, source: &SpatialNodeView<'_, KnnData>, target: &TargetBucket<KnnState>) -> bool {
        if source.data.count == 0 {
            return false;
        }
        // Open when the source could contain a particle nearer than the
        // bucket's current worst k-th distance. Distances are measured
        // from the bucket's own box, which lower-bounds every particle's
        // distance to the source region.
        source.data.tight_box.dist_sq_to_box(&target.bbox) < Self::bucket_bound(target)
    }

    fn node(&self, _source: &SpatialNodeView<'_, KnnData>, _target: &mut TargetBucket<KnnState>) {
        // Pruned subtrees contribute no candidates.
    }

    fn leaf(&self, source: &SpatialNodeView<'_, KnnData>, target: &mut TargetBucket<KnnState>) {
        self.ensure_state(target);
        let state = &mut target.state;
        for (ti, tp) in target.particles.iter().enumerate() {
            let heap = &mut state.heaps[ti];
            for sp in source.particles {
                if sp.id == tp.id {
                    continue;
                }
                let d2 = sp.pos.dist_sq(tp.pos);
                if d2 < heap.bound() {
                    heap.offer(Neighbor {
                        dist_sq: d2,
                        id: sp.id,
                        pos: sp.pos,
                        mass: sp.mass,
                        vel: sp.vel,
                    });
                }
            }
        }
    }
}

/// Convenience: exact k nearest neighbours for every particle via a
/// framework traversal. Returns, per particle id, the ascending-distance
/// neighbour list.
pub fn knn_search(
    particles: Vec<Particle>,
    k: usize,
    config: paratreet_core::Configuration,
    kind: paratreet_core::TraversalKind,
) -> std::collections::HashMap<u64, Vec<Neighbor>> {
    let mut fw: paratreet_core::Framework<KnnData> =
        paratreet_core::Framework::new(config, particles);
    let visitor = KnnVisitor { k };
    let ((states, ids), _) = fw.step(|step| {
        let (states, _) = step.traverse(&visitor, kind);
        (states, step.bucket_particle_ids())
    });
    let mut out = std::collections::HashMap::new();
    for (state, bucket_ids) in states.into_iter().zip(ids) {
        for (heap, id) in state.heaps.into_iter().zip(bucket_ids) {
            out.insert(id, heap.into_sorted());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_core::{Configuration, TraversalKind};
    use paratreet_geometry::Vec3;
    use paratreet_particles::gen;
    use paratreet_tree::TreeType;

    #[test]
    fn heap_keeps_k_nearest() {
        let mut h = KnnHeap::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0, 0.5].iter().enumerate() {
            h.offer(Neighbor {
                dist_sq: *d,
                id: i as u64,
                pos: Vec3::ZERO,
                mass: 1.0,
                vel: Vec3::ZERO,
            });
        }
        assert_eq!(h.len(), 3);
        let sorted = h.into_sorted();
        let dists: Vec<f64> = sorted.iter().map(|n| n.dist_sq).collect();
        assert_eq!(dists, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn heap_bound_is_infinite_until_full() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.bound(), f64::INFINITY);
        h.offer(Neighbor { dist_sq: 1.0, id: 0, pos: Vec3::ZERO, mass: 1.0, vel: Vec3::ZERO });
        assert_eq!(h.bound(), f64::INFINITY);
        h.offer(Neighbor { dist_sq: 2.0, id: 1, pos: Vec3::ZERO, mass: 1.0, vel: Vec3::ZERO });
        assert_eq!(h.bound(), 2.0);
        assert!(!h.is_empty());
    }

    /// Brute-force kNN for validation.
    fn brute_knn(ps: &[Particle], k: usize) -> std::collections::HashMap<u64, Vec<u64>> {
        let mut out = std::collections::HashMap::new();
        for p in ps {
            let mut d: Vec<(f64, u64)> =
                ps.iter().filter(|q| q.id != p.id).map(|q| (q.pos.dist_sq(p.pos), q.id)).collect();
            d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            out.insert(p.id, d.into_iter().take(k).map(|(_, id)| id).collect());
        }
        out
    }

    fn check_knn_matches_brute(kind: TraversalKind, tree: TreeType) {
        let ps = gen::uniform_cube(300, 17, 1.0, 1.0);
        let config = Configuration {
            tree_type: tree,
            bucket_size: 8,
            n_subtrees: 6,
            n_partitions: 5,
            ..Default::default()
        };
        let expected = brute_knn(&ps, 8);
        let got = knn_search(ps, 8, config, kind);
        assert_eq!(got.len(), expected.len());
        for (id, nbrs) in &got {
            let got_ids: Vec<u64> = nbrs.iter().map(|n| n.id).collect();
            assert_eq!(&got_ids, &expected[id], "particle {id} ({kind:?}, {tree:?})");
        }
    }

    #[test]
    fn knn_topdown_octree_matches_brute_force() {
        check_knn_matches_brute(TraversalKind::TopDown, TreeType::Octree);
    }

    #[test]
    fn knn_up_and_down_octree_matches_brute_force() {
        check_knn_matches_brute(TraversalKind::UpAndDown, TreeType::Octree);
    }

    #[test]
    fn knn_up_and_down_kd_matches_brute_force() {
        check_knn_matches_brute(TraversalKind::UpAndDown, TreeType::KdTree);
    }

    #[test]
    fn knn_basic_dfs_matches_brute_force() {
        check_knn_matches_brute(TraversalKind::BasicDfs, TreeType::Octree);
    }

    #[test]
    fn knn_data_wire_roundtrip() {
        let ps = gen::uniform_cube(10, 3, 1.0, 1.0);
        let d = KnnData::from_leaf(&ps, &BoundingBox::empty());
        let mut buf = Vec::new();
        d.encode(&mut buf);
        let (back, used) = KnnData::decode(&buf).unwrap();
        assert_eq!(back, d);
        assert_eq!(used, buf.len());
    }
}
