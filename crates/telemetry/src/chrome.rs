//! Chrome trace-event export: loads in Perfetto (ui.perfetto.dev) or
//! chrome://tracing and reproduces the paper's *Projections* view — one
//! track per worker per rank, colored blocks per phase.
//!
//! Format: the JSON object form of the Trace Event Format with complete
//! (`"ph":"X"`) events. Every event carries `name`, `ph`, `ts`, `dur`,
//! `pid` (rank) and `tid` (worker); metadata events name each process
//! `rank N` and each thread `worker N`. Output is deterministic: spans
//! are sorted by the total order of [`Trace::sort`] and floats use
//! shortest round-trip formatting, so the same simulated timeline
//! always serialises to the same bytes.

use crate::json::{parse, Json};
use crate::span::Trace;

/// Serialises a trace as a Chrome trace-event JSON document.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut sorted = trace.clone();
    sorted.sort();

    let mut events: Vec<Json> = Vec::new();
    // Metadata: name ranks and workers so Perfetto labels the tracks.
    for track in sorted.tracks() {
        let mut process = Json::obj();
        process.push("name", Json::Str("process_name".to_string()));
        process.push("ph", Json::Str("M".to_string()));
        process.push("pid", Json::U64(track.rank as u64));
        process.push("tid", Json::U64(track.worker as u64));
        let mut args = Json::obj();
        args.push("name", Json::Str(format!("rank {}", track.rank)));
        process.push("args", args);
        events.push(process);

        let mut thread = Json::obj();
        thread.push("name", Json::Str("thread_name".to_string()));
        thread.push("ph", Json::Str("M".to_string()));
        thread.push("pid", Json::U64(track.rank as u64));
        thread.push("tid", Json::U64(track.worker as u64));
        let mut args = Json::obj();
        args.push("name", Json::Str(format!("worker {}", track.worker)));
        thread.push("args", args);
        events.push(thread);
    }

    for span in &sorted.spans {
        let mut ev = Json::obj();
        ev.push("name", Json::Str(span.name.to_string()));
        ev.push("cat", Json::Str("phase".to_string()));
        ev.push("ph", Json::Str("X".to_string()));
        ev.push("ts", Json::F64(span.start_us));
        ev.push("dur", Json::F64(span.dur_us));
        ev.push("pid", Json::U64(span.track.rank as u64));
        ev.push("tid", Json::U64(span.track.worker as u64));
        // Optional attributes ride in `args`, each emitted only when
        // present — spans without keys or causal links serialise exactly
        // as they did before links existed (golden bytes preserved).
        let link = span.link;
        if span.key.is_some() || link != crate::span::SpanLink::NONE {
            let mut args = Json::obj();
            if let Some(key) = span.key {
                args.push("key", Json::U64(key));
            }
            if let Some(id) = link.id {
                args.push("id", Json::U64(id));
            }
            if let Some(parent) = link.parent {
                args.push("parent", Json::U64(parent));
            }
            if let Some(request) = link.request {
                args.push("request", Json::U64(request));
            }
            ev.push("args", args);
        }
        events.push(ev);
    }

    let mut counters = Json::obj();
    for (name, value) in &sorted.counters {
        counters.push(name, Json::U64(*value));
    }

    let mut doc = Json::obj();
    doc.push("traceEvents", Json::Arr(events));
    doc.push("displayTimeUnit", Json::Str("ms".to_string()));
    let mut other = Json::obj();
    other.push("clock", Json::Str(sorted.clock.label().to_string()));
    other.push("tool", Json::Str("paratreet-telemetry".to_string()));
    other.push("counters", counters);
    doc.push("otherData", other);
    doc.to_string()
}

/// Validates a document against the trace-event schema subset we emit:
/// a top-level `traceEvents` array whose entries each carry `ph`, `ts`
/// (except metadata events), `pid`, and `tid`, with duration events
/// also carrying `dur` and `name`. Returns the number of duration
/// events.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse(text)?;
    let events =
        doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents array")?;
    let mut n_duration = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err(format!("event {i}: missing ph")),
        };
        for field in ["pid", "tid"] {
            if ev.get(field).and_then(Json::as_f64).is_none() {
                return Err(format!("event {i}: missing {field}"));
            }
        }
        match ph {
            "M" => {} // metadata: no timestamp required
            "X" => {
                let ts =
                    ev.get("ts").and_then(Json::as_f64).ok_or(format!("event {i}: missing ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: missing dur"))?;
                if !ts.is_finite() || !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: bad ts/dur ({ts}, {dur})"));
                }
                if !matches!(ev.get("name"), Some(Json::Str(_))) {
                    return Err(format!("event {i}: missing name"));
                }
                n_duration += 1;
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    Ok(n_duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ClockDomain, Span, SpanLink, Track};

    fn demo_trace() -> Trace {
        let mut t = Trace { clock: ClockDomain::Virtual, ..Trace::default() };
        t.spans.push(Span {
            track: Track { rank: 0, worker: 1 },
            name: "tree build",
            start_us: 5.0,
            dur_us: 2.5,
            key: None,
            link: SpanLink::NONE,
        });
        t.spans.push(Span {
            track: Track { rank: 0, worker: 0 },
            name: "decomposition",
            start_us: 0.0,
            dur_us: 4.0,
            key: Some(9),
            link: SpanLink::NONE,
        });
        t.counters.insert("fills", 3);
        t
    }

    #[test]
    fn export_is_schema_valid_and_deterministic() {
        let trace = demo_trace();
        let a = chrome_trace_json(&trace);
        let b = chrome_trace_json(&trace);
        assert_eq!(a, b);
        assert_eq!(validate_chrome_trace(&a), Ok(2));
    }

    #[test]
    fn export_matches_golden_bytes() {
        // Fixed expected bytes for a tiny trace: guards the exporter's
        // field order, float formatting, and span sorting all at once.
        let got = chrome_trace_json(&demo_trace());
        let expected = concat!(
            r#"{"traceEvents":["#,
            r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},"#,
            r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"worker 0"}},"#,
            r#"{"name":"process_name","ph":"M","pid":0,"tid":1,"args":{"name":"rank 0"}},"#,
            r#"{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"worker 1"}},"#,
            r#"{"name":"decomposition","cat":"phase","ph":"X","ts":0,"dur":4,"pid":0,"tid":0,"args":{"key":9}},"#,
            r#"{"name":"tree build","cat":"phase","ph":"X","ts":5,"dur":2.5,"pid":0,"tid":1}"#,
            r#"],"displayTimeUnit":"ms","otherData":{"clock":"virtual","tool":"paratreet-telemetry","counters":{"fills":3}}}"#,
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn linked_spans_emit_causal_args() {
        let mut t = Trace { clock: ClockDomain::Wall, ..Trace::default() };
        t.spans.push(Span {
            track: Track { rank: 0, worker: 2 },
            name: "queued",
            start_us: 1.0,
            dur_us: 3.0,
            key: None,
            link: SpanLink { id: Some(11), parent: Some(10), request: Some(0x2_0000_0001) },
        });
        let text = chrome_trace_json(&t);
        assert!(text.contains(r#""args":{"id":11,"parent":10,"request":8589934593}"#), "{text}");
        assert_eq!(validate_chrome_trace(&text), Ok(1));
    }

    #[test]
    fn validator_rejects_missing_fields() {
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"ph":"X","ts":1}]}"#).is_err());
        assert!(validate_chrome_trace(r#"{"foo":1}"#).is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }
}
