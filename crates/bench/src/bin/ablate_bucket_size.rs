//! Ablation: leaf bucket size.
//!
//! The bucket size is the classic tree-code knob the paper exposes via
//! `Configuration`: small buckets mean a deeper tree (more opens, more
//! node approximations, less exact work); large buckets mean shallower
//! trees with O(b²) exact kernels. This harness sweeps it for the
//! Barnes-Hut traversal and reports the real shared-memory runtime plus
//! the interaction mix, and the accuracy against direct summation.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin ablate_bucket_size -- \
//!     --particles 20000
//! ```

use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_baselines::direct::{direct_gravity, rms_acc_error};
use paratreet_bench::{harness_telemetry, write_telemetry_outputs, Args};
use paratreet_core::{Configuration, Framework, TraversalKind};
use paratreet_particles::gen;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 20_000);
    let seed = args.get_u64("seed", 41);
    let theta = args.get_f64("theta", 0.7);

    let mut reference = gen::plummer(n, seed, 1.0, 1.0);
    for p in &mut reference {
        p.softening = 0.01;
    }
    direct_gravity(&mut reference, 1.0);

    println!(
        "Ablation: bucket size, Barnes-Hut on a {n}-particle Plummer sphere (theta = {theta})\n"
    );
    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "bucket", "leaves", "pp pairs", "pn approx", "traverse", "rms err"
    );
    println!("{}", "-".repeat(70));

    let telemetry = harness_telemetry(&args, false);
    let mut last_metrics = None;
    for bucket in [2usize, 4, 8, 16, 32, 64, 128] {
        let config = Configuration { bucket_size: bucket, ..Default::default() };
        let _ = telemetry.drain(); // keep only the final bucket's spans
        let mut fw: Framework<CentroidData> =
            Framework::new(config, reference.clone()).with_telemetry(telemetry.clone());
        for p in fw.particles_mut().iter_mut() {
            p.reset_accumulators();
        }
        let visitor = GravityVisitor { theta, g: 1.0 };
        let (n_leaves, report) = fw.step(|step| {
            step.traverse(&visitor, TraversalKind::TopDown);
            step.n_leaves()
        });
        let err = rms_acc_error(fw.particles(), &reference);
        println!(
            "{:>7} {:>10} {:>12} {:>12} {:>11.1}ms {:>10.2e}",
            bucket,
            n_leaves,
            report.counts.leaf_interactions,
            report.counts.node_interactions,
            report.seconds_traverse * 1e3,
            err
        );
        last_metrics = Some(report.metrics());
    }
    write_telemetry_outputs(&args, &telemetry, last_metrics.as_ref());
    println!();
    println!("expected: exact (pp) work grows with bucket size while approximations");
    println!("(pn) shrink; the runtime minimum sits at a moderate bucket (the default");
    println!("16), and accuracy improves slightly with bigger buckets (more exact pairs).");
}
