//! Traversal engines: the work-item machinery shared by the
//! shared-memory and distributed executors.
//!
//! ParaTreeT's traversal is *transposed* relative to a textbook
//! Barnes-Hut walk: "instead of traversing the tree for each bucket, it
//! processes each bucket for each tree node" (§III-A). A work item is
//! therefore a tree node plus the list of target buckets still
//! interested in it; processing an item evaluates `open` per bucket and
//! forwards the still-interested subset to the node's children. The
//! classic walk ("BasicTrav" in Fig. 10) is the same machine seeded with
//! one single-bucket item per target bucket.
//!
//! When an item reaches a [`NodeKind::Placeholder`], the interested
//! buckets cannot proceed; the item is surrendered as a
//! [`PendingFetch`] and the executor decides what to do — the
//! shared-memory engine treats it as a bug (everything is local), the
//! distributed engine turns it into a cache request.

use crate::config::TraversalKind;
use crate::visitor::{SpatialNodeView, TargetBucket, Visitor};
use paratreet_cache::{CacheTree, NodeHandle, NodeKind};
use paratreet_geometry::NodeKey;
use paratreet_telemetry::{MetricSource, MetricsRegistry};
use serde::Serialize;
use std::ops::AddAssign;

/// A (source, target) node pair on the dual-tree work stack.
type NodePair<D> = (NodeHandle<D>, NodeHandle<D>);

/// Which software-cache model a distributed run uses (Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheModel {
    /// ParaTreeT's wait-free shared cache: parallel reads and writes,
    /// placeholder swap by atomic store.
    WaitFree,
    /// Exclusive-write shared cache: one lock per rank serialises every
    /// insertion (deserialisation included).
    XWrite,
    /// Per-thread caches ("Sequential" in Fig. 3): no sharing, so each
    /// worker fetches its own copy of remote data — more communication
    /// volume and memory, no insertion contention.
    PerThread,
}

impl CacheModel {
    /// Harness-output name matching the figure legend.
    pub fn name(self) -> &'static str {
        match self {
            CacheModel::WaitFree => "WaitFree",
            CacheModel::XWrite => "XWrite",
            CacheModel::PerThread => "Sequential",
        }
    }
}

/// Interaction counters for one traversal. These are exact algorithmic
/// quantities (identical across executors), and double as the cost basis
/// for the virtual-time machine model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct WorkCounts {
    /// Tree nodes visited (work items processed).
    pub nodes_visited: u64,
    /// `open()` evaluations.
    pub opens: u64,
    /// Particle–node approximations applied (`node()` per target particle).
    pub node_interactions: u64,
    /// Particle–particle exact interactions (`leaf()` pairs).
    pub leaf_interactions: u64,
}

impl AddAssign for WorkCounts {
    fn add_assign(&mut self, o: WorkCounts) {
        self.nodes_visited += o.nodes_visited;
        self.opens += o.opens;
        self.node_interactions += o.node_interactions;
        self.leaf_interactions += o.leaf_interactions;
    }
}

/// Per-traversal statistics.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct TraversalStats {
    /// Interaction counters.
    pub counts: WorkCounts,
    /// Placeholder hits that required a fetch.
    pub fetches: u64,
}

impl MetricSource for WorkCounts {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.nodes_visited"), self.nodes_visited);
        registry.set_u64(format!("{prefix}.opens"), self.opens);
        registry.set_u64(format!("{prefix}.node_interactions"), self.node_interactions);
        registry.set_u64(format!("{prefix}.leaf_interactions"), self.leaf_interactions);
    }
}

impl MetricSource for TraversalStats {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        self.counts.register_metrics(prefix, registry);
        registry.set_u64(format!("{prefix}.fetches"), self.fetches);
    }
}

/// A tree node plus the target buckets still interested in it.
#[derive(Clone, Debug)]
pub struct WorkItem<D> {
    /// The node to evaluate.
    pub node: NodeHandle<D>,
    /// Indices into the partition's bucket array.
    pub buckets: Vec<u32>,
}

/// A work item that hit a placeholder: the executor must fetch `key`
/// and re-enqueue the buckets when the fill lands.
#[derive(Clone, Debug)]
pub struct PendingFetch<D> {
    /// Key of the remote node.
    pub key: NodeKey,
    /// The placeholder node (carries `home_rank` and the request flag).
    pub node: NodeHandle<D>,
    /// Buckets that opened the placeholder.
    pub buckets: Vec<u32>,
}

/// Evaluates one work item: `open`/`node`/`leaf` per interested bucket,
/// pushing child items onto `out` (in reverse slot order, so a LIFO
/// stack pops slot 0 first) and surrendering placeholder hits to
/// `fetches`.
pub fn process_item<V: Visitor>(
    cache: &CacheTree<V::Data>,
    visitor: &V,
    buckets: &mut [TargetBucket<V::State>],
    item: WorkItem<V::Data>,
    out: &mut Vec<WorkItem<V::Data>>,
    fetches: &mut Vec<PendingFetch<V::Data>>,
    counts: &mut WorkCounts,
) {
    process_item_inner(cache, visitor, buckets, item, out, fetches, counts, true)
}

/// [`process_item`] without the visitor side effects: identical `open`
/// decisions, identical counters and child/fetch generation, but no
/// `node()`/`leaf()` application. The distributed engine runs crash
/// recovery in this mode — the simulated timeline drives fetches and
/// costs, and physics is applied afterwards by a canonical local replay
/// over the fully-fetched cache, so a crash can never double-apply an
/// interaction. Only valid for traversals whose `open` ignores bucket
/// state (gravity, collision); state-dependent walks (k-NN) must apply
/// as they go.
pub fn process_item_dry<V: Visitor>(
    cache: &CacheTree<V::Data>,
    visitor: &V,
    buckets: &mut [TargetBucket<V::State>],
    item: WorkItem<V::Data>,
    out: &mut Vec<WorkItem<V::Data>>,
    fetches: &mut Vec<PendingFetch<V::Data>>,
    counts: &mut WorkCounts,
) {
    process_item_inner(cache, visitor, buckets, item, out, fetches, counts, false)
}

#[allow(clippy::too_many_arguments)]
fn process_item_inner<V: Visitor>(
    cache: &CacheTree<V::Data>,
    visitor: &V,
    buckets: &mut [TargetBucket<V::State>],
    item: WorkItem<V::Data>,
    out: &mut Vec<WorkItem<V::Data>>,
    fetches: &mut Vec<PendingFetch<V::Data>>,
    counts: &mut WorkCounts,
    apply: bool,
) {
    let node = item.node.get(cache);
    counts.nodes_visited += 1;
    let view = SpatialNodeView::of(node);
    match node.kind {
        NodeKind::Empty => {}
        NodeKind::Leaf => {
            for &b in &item.buckets {
                counts.opens += 1;
                let bucket = &mut buckets[b as usize];
                if visitor.open(&view, bucket) {
                    counts.leaf_interactions += (node.particles.len() * bucket.len()) as u64;
                    if apply {
                        visitor.leaf(&view, bucket);
                    }
                } else {
                    counts.node_interactions += bucket.len() as u64;
                    if apply {
                        visitor.node(&view, bucket);
                    }
                }
            }
        }
        NodeKind::Internal | NodeKind::Placeholder => {
            let mut opened = Vec::new();
            for &b in &item.buckets {
                counts.opens += 1;
                let bucket = &mut buckets[b as usize];
                if visitor.open(&view, bucket) {
                    opened.push(b);
                } else {
                    counts.node_interactions += bucket.len() as u64;
                    if apply {
                        visitor.node(&view, bucket);
                    }
                }
            }
            if opened.is_empty() {
                return;
            }
            if node.kind == NodeKind::Placeholder {
                fetches.push(PendingFetch { key: node.key, node: item.node, buckets: opened });
            } else {
                // Reverse slot order: a LIFO stack then visits children
                // in ascending slot (depth-first, SFC) order.
                for i in (0..8).rev() {
                    if let Some(c) = node.child(i) {
                        out.push(WorkItem { node: NodeHandle::new(c), buckets: opened.clone() });
                    }
                }
            }
        }
    }
}

/// Builds the initial work list for one partition's buckets.
pub fn seed_items<V: Visitor>(
    cache: &CacheTree<V::Data>,
    kind: TraversalKind,
    buckets: &[TargetBucket<V::State>],
) -> Vec<WorkItem<V::Data>> {
    let root = match cache.root() {
        Some(r) => r,
        None => return Vec::new(),
    };
    match kind {
        TraversalKind::TopDown => {
            if buckets.is_empty() {
                return Vec::new();
            }
            vec![WorkItem {
                node: NodeHandle::new(root),
                buckets: (0..buckets.len() as u32).collect(),
            }]
        }
        TraversalKind::BasicDfs => (0..buckets.len() as u32)
            .map(|b| WorkItem { node: NodeHandle::new(root), buckets: vec![b] })
            .collect(),
        TraversalKind::UpAndDown => {
            let mut items = Vec::new();
            for (bi, bucket) in buckets.iter().enumerate() {
                seed_up_and_down::<V>(cache, bucket.leaf_key, bi as u32, &mut items);
            }
            items
        }
        TraversalKind::DualTree => {
            panic!("dual-tree traversal runs on the shared-memory engine only (traverse_local)")
        }
    }
}

/// Runs a dual-tree traversal (Gray & Moore) over one partition's
/// buckets. The work unit is a *(source node, target node)* pair; the
/// visitor's `cell()` decides whether to open both sides (B² child
/// pairs) or only the source (B pairs), and a source pruned against an
/// internal target applies its summary to every partition bucket below
/// that target at once — the bulk saving dual-tree methods offer.
///
/// Pruning against internal targets is conservative: `open()` is
/// consulted with an empty pseudo-bucket carrying the target node's
/// bounding box and default state.
pub fn traverse_dual<V: Visitor>(
    cache: &CacheTree<V::Data>,
    visitor: &V,
    buckets: &mut [TargetBucket<V::State>],
) -> WorkCounts {
    let mut counts = WorkCounts::default();
    let root = match cache.root() {
        Some(r) => r,
        None => return counts,
    };
    if buckets.is_empty() {
        return counts;
    }
    let bits = cache.bits;
    // Buckets of this partition beneath a given target node.
    let under =
        |key: paratreet_geometry::NodeKey, buckets: &[TargetBucket<V::State>]| -> Vec<u32> {
            buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| key == b.leaf_key || key.is_ancestor_of(b.leaf_key, bits))
                .map(|(i, _)| i as u32)
                .collect()
        };
    // Target nodes worth visiting: ancestors (and selves) of this
    // partition's bucket leaves. Everything else belongs to other
    // partitions and is skipped before it costs a pair evaluation.
    let mut relevant: std::collections::HashSet<paratreet_geometry::NodeKey> =
        std::collections::HashSet::new();
    for b in buckets.iter() {
        let mut k = b.leaf_key;
        loop {
            if !relevant.insert(k) || k == paratreet_geometry::NodeKey::root() {
                break;
            }
            k = k.parent(bits);
        }
    }

    let mut stack: Vec<NodePair<V::Data>> = vec![(NodeHandle::new(root), NodeHandle::new(root))];
    while let Some((src_h, tgt_h)) = stack.pop() {
        let src = src_h.get(cache);
        let tgt = tgt_h.get(cache);
        if !relevant.contains(&tgt.key) {
            continue;
        }
        counts.nodes_visited += 1;
        let src_view = SpatialNodeView::of(src);

        if tgt.kind == NodeKind::Leaf {
            // Single-tree semantics against the bucket(s) of this leaf.
            let members = under(tgt.key, buckets);
            for b in members {
                let bucket = &mut buckets[b as usize];
                counts.opens += 1;
                if !visitor.open(&src_view, bucket) {
                    counts.node_interactions += bucket.len() as u64;
                    visitor.node(&src_view, bucket);
                } else if src.kind == NodeKind::Leaf {
                    counts.leaf_interactions += (src.particles.len() * bucket.len()) as u64;
                    visitor.leaf(&src_view, bucket);
                } else {
                    assert!(
                        src.kind == NodeKind::Internal || src.kind == NodeKind::Empty,
                        "dual-tree traversal requires a fully local tree"
                    );
                    for i in (0..8).rev() {
                        if let Some(c) = src.child(i) {
                            stack.push((NodeHandle::new(c), tgt_h));
                        }
                    }
                }
            }
            continue;
        }
        // Internal target: does this partition own anything below it?
        let members = under(tgt.key, buckets);
        if members.is_empty() || tgt.kind == NodeKind::Empty {
            continue;
        }
        assert!(tgt.kind == NodeKind::Internal, "dual-tree traversal requires a fully local tree");
        // Conservative pruning with a pseudo-bucket at the target's box.
        let pseudo = TargetBucket {
            leaf_key: tgt.key,
            particles: Vec::new(),
            bbox: tgt.bbox,
            state: V::State::default(),
        };
        counts.opens += 1;
        if !visitor.open(&src_view, &pseudo) {
            // The source's summary covers every bucket below the target.
            for b in members {
                let bucket = &mut buckets[b as usize];
                counts.node_interactions += bucket.len() as u64;
                visitor.node(&src_view, bucket);
            }
            continue;
        }
        if src.kind != NodeKind::Internal {
            // Source cannot open further (leaf): descend the target only.
            for i in (0..8).rev() {
                if let Some(c) = tgt.child(i) {
                    stack.push((src_h, NodeHandle::new(c)));
                }
            }
            continue;
        }
        let tgt_view = SpatialNodeView::of(tgt);
        if visitor.cell(&src_view, &tgt_view) {
            // Open both: B² child pairs.
            for i in (0..8).rev() {
                if let Some(sc) = src.child(i) {
                    for j in (0..8).rev() {
                        if let Some(tc) = tgt.child(j) {
                            stack.push((NodeHandle::new(sc), NodeHandle::new(tc)));
                        }
                    }
                }
            }
        } else {
            // Keep the target, open only the source: B pairs.
            for i in (0..8).rev() {
                if let Some(sc) = src.child(i) {
                    stack.push((NodeHandle::new(sc), tgt_h));
                }
            }
        }
    }
    counts
}

/// Up-and-down seeds for one bucket: walk the path root → leaf; emit, for
/// every ancestor, its non-path children, and the leaf itself last — so a
/// LIFO stack visits the bucket's own leaf first, then nearby siblings,
/// then progressively farther subtrees. If the walk hits a placeholder
/// (the leaf lives under unfetched remote data), the placeholder itself
/// is emitted as the final, nearest item.
fn seed_up_and_down<V: Visitor>(
    cache: &CacheTree<V::Data>,
    leaf_key: NodeKey,
    bucket: u32,
    items: &mut Vec<WorkItem<V::Data>>,
) {
    let root = match cache.root() {
        Some(r) => r,
        None => return,
    };
    let bits = cache.bits;
    let leaf_level = leaf_key.level(bits);
    let mut node = root;
    let mut level = node.key.level(bits);
    loop {
        if node.key == leaf_key || node.kind != NodeKind::Internal {
            // Reached the leaf (or a placeholder / oversized leaf that
            // covers it): nearest item, emitted last → popped first.
            items.push(WorkItem { node: NodeHandle::new(node), buckets: vec![bucket] });
            return;
        }
        level += 1;
        debug_assert!(level <= leaf_level, "leaf key must be beneath the root");
        let path_slot = leaf_key.ancestor_at(level, bits).child_index(bits);
        for i in (0..8).rev() {
            if i == path_slot {
                continue;
            }
            if let Some(c) = node.child(i) {
                items.push(WorkItem { node: NodeHandle::new(c), buckets: vec![bucket] });
            }
        }
        match node.child(path_slot) {
            Some(c) => node = c,
            None => return, // leaf's slot vanished: nothing nearer to add
        }
    }
}

/// Runs a traversal over one partition's buckets entirely locally,
/// panicking if any placeholder is opened (the shared-memory engine
/// guarantees all data is local). Returns the interaction counters.
pub fn traverse_local<V: Visitor>(
    cache: &CacheTree<V::Data>,
    visitor: &V,
    kind: TraversalKind,
    buckets: &mut [TargetBucket<V::State>],
) -> WorkCounts {
    if kind == TraversalKind::DualTree {
        return traverse_dual(cache, visitor, buckets);
    }
    let mut counts = WorkCounts::default();
    let mut stack = seed_items::<V>(cache, kind, buckets);
    // Up-and-down seeds are ordered nearest-last; reverse handled by LIFO.
    let mut fetches = Vec::new();
    while let Some(item) = stack.pop() {
        process_item(cache, visitor, buckets, item, &mut stack, &mut fetches, &mut counts);
        assert!(
            fetches.is_empty(),
            "local traversal reached a remote placeholder {:?}",
            fetches[0].key
        );
    }
    counts
}
