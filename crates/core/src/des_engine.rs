//! The distributed execution engine on the discrete-event machine model.
//!
//! This engine runs the *same* pipeline as [`crate::Framework`] — real
//! decomposition, real trees, real cache fills, identical interaction
//! counts — but places Subtrees and Partitions on the ranks of a
//! [`MachineSpec`] and charges virtual time for every task and message.
//! It is the stand-in for ParaTreeT's Charm++ execution, and the engine
//! behind the paper's scaling figures (3, 9, 10, 11, 13).
//!
//! Charm++ semantics are preserved where they matter:
//!
//! * a Partition is a chare — its traversal work items are processed by
//!   run-to-completion tasks serialised per partition (an exclusive
//!   resource), overlapping freely with other partitions on the rank;
//! * fill messages go to "the currently least busy worker thread on the
//!   process" (the simulator's scheduling rule);
//! * the three cache models of Fig. 3 differ only in how fills are
//!   handled: any-worker insertion (WaitFree), one-lock-per-rank
//!   insertion (XWrite), or per-thread caches with duplicated fetches
//!   (PerThread/"Sequential").

use crate::config::{Configuration, TraversalKind};
use crate::decomp::decompose;
use crate::traversal::{process_item, seed_items, CacheModel, PendingFetch, WorkCounts, WorkItem};
use crate::visitor::{TargetBucket, Visitor};
use paratreet_cache::stats::CacheStatsSnapshot;
use paratreet_cache::{CacheTree, NodeHandle, RequestOutcome, SubtreeSummary};
use paratreet_geometry::{BoundingBox, NodeKey};
use paratreet_particles::io::PARTICLE_WIRE_BYTES;
use paratreet_particles::Particle;
use paratreet_runtime::sim::CommStats;
use paratreet_runtime::{
    FaultAction, FaultConfig, FaultInjector, FaultStats, Ledger, MachineSpec, Phase, Sim,
};
use paratreet_telemetry::{MetricsRegistry, Telemetry, Track};
use paratreet_tree::TreeBuilder;
use serde::Serialize;
use std::collections::HashMap;

pub use paratreet_cache::stats::CacheStatsSnapshot as CacheSnapshot;

/// Calibrated per-unit costs (seconds on the Stampede2 Skylake baseline).
/// The absolute values set the scale; the *shapes* of the scaling curves
/// come from the algorithmic counts they multiply.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// One particle–particle exact interaction.
    pub pp: f64,
    /// One particle–node approximation.
    pub pn: f64,
    /// One `open()` test.
    pub open: f64,
    /// Fixed overhead per work item processed.
    pub visit: f64,
    /// Decomposition cost per particle per log2(n) (key + sort).
    pub sort_per_particle_log: f64,
    /// Tree build cost per particle per log2 level.
    pub build_per_particle_log: f64,
    /// Fill serialisation per byte (home side).
    pub serialize_per_byte: f64,
    /// Fill insertion per byte (requesting side).
    pub insert_per_byte: f64,
    /// Fixed cost per fill insertion.
    pub insert_fixed: f64,
    /// Fixed cost to resume one paused traversal (metadata fetch).
    pub resume: f64,
    /// Wire size of one fetch request.
    pub request_bytes: u64,
    /// Wire size of one subtree summary in the share step.
    pub summary_bytes: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            pp: 1.1e-8,
            pn: 1.6e-8,
            open: 6.0e-9,
            visit: 2.5e-8,
            sort_per_particle_log: 8.0e-9,
            build_per_particle_log: 4.0e-8,
            serialize_per_byte: 2.5e-10,
            insert_per_byte: 6.0e-10,
            insert_fixed: 1.5e-6,
            resume: 1.2e-6,
            request_bytes: 64,
            summary_bytes: 96,
        }
    }
}

impl CostModel {
    /// Cost of a batch of traversal work.
    fn work(&self, c: &WorkCounts) -> f64 {
        c.leaf_interactions as f64 * self.pp
            + c.node_interactions as f64 * self.pn
            + c.opens as f64 * self.open
            + c.nodes_visited as f64 * self.visit
    }
}

/// What one simulated iteration measured. The named fields remain for
/// direct access; they are assembled from [`IterationReport::metrics`],
/// which carries every statistic under a stable dotted name (e.g.
/// `cache.requests_sent`, `phase_busy_s.local_traversal`).
#[derive(Clone, Debug, Serialize)]
pub struct IterationReport {
    /// Virtual end-to-end time of the iteration (seconds).
    pub makespan: f64,
    /// Virtual time when setup (decompose+build+share) finished and
    /// traversal began.
    pub traversal_start: f64,
    /// Busy seconds per phase.
    pub phase_busy: [f64; paratreet_runtime::phase::N_PHASES],
    /// Network traffic.
    pub comm: CommStats,
    /// Exact interaction counts (engine-independent).
    pub counts: WorkCounts,
    /// Cache traffic aggregated over all cache instances.
    pub cache: CacheStatsSnapshot,
    /// Worker utilisation over the iteration (0..=1).
    pub utilization: f64,
    /// The per-phase ledger (for Fig. 9 profiles).
    pub ledger: Ledger,
    /// Buckets that crossed rank boundaries during leaf sharing.
    pub n_shared_buckets: usize,
    /// Measured traversal cost per partition (calibrated seconds) — the
    /// load measurement the SFC re-balancer consumes.
    pub partition_costs: Vec<f64>,
    /// Final particle state (for physics validation against the
    /// shared-memory engine).
    pub particles: Vec<Particle>,
    /// Faults injected into fetch/fill messages this iteration (all
    /// zero unless the engine was configured with
    /// [`DistributedEngine::with_faults`]).
    pub faults: FaultStats,
    /// Fetches re-sent after a retry timeout expired.
    pub fetch_retries: u64,
    /// Fills the cache rejected ([`paratreet_cache::CacheError`]); each
    /// was logged and degraded to a re-request instead of aborting.
    pub fill_errors: u64,
    /// Every statistic above under a stable dotted name, plus derived
    /// timings — query with [`MetricsRegistry::get_u64`] /
    /// [`MetricsRegistry::get_f64`], or dump via `--metrics-out`.
    pub metrics: MetricsRegistry,
}

/// Event payloads of the engine's simulation. `Clone` because the fault
/// layer may deliver a message twice.
#[derive(Clone)]
enum Ev {
    DecompDone,
    BuildDone,
    ShareArrive,
    LeafShareArrive,
    /// (Re)process a partition's work list.
    PartRun {
        part: u32,
    },
    /// A partition's processing batch finished; release its effects.
    PartWorkDone {
        part: u32,
        fetches: Vec<(NodeKey, Vec<u32>)>,
    },
    /// A fetch request arrived at the home rank.
    RequestArrive {
        key: NodeKey,
        home_rank: u32,
        to_cache: u32,
        requester_rank: u32,
    },
    /// The home rank finished serialising a fill.
    FillServeDone {
        home_rank: u32,
        to_cache: u32,
        requester_rank: u32,
        bytes: Vec<u8>,
    },
    /// A fill arrived at the requesting rank.
    FillArrive {
        to_cache: u32,
        bytes: Vec<u8>,
    },
    /// An insertion task completed: splice and resume.
    InsertDone {
        to_cache: u32,
        bytes: Vec<u8>,
    },
    /// A paused partition's resumption task completed.
    Resumed {
        part: u32,
        key: NodeKey,
    },
    /// A fetch's retry timer expired; re-request if the fill never came.
    /// Only scheduled when fault injection is on.
    FetchTimeout {
        key: NodeKey,
        home_rank: u32,
        to_cache: u32,
        requester_rank: u32,
        attempt: u32,
    },
}

/// Routes one engine message through the fault layer: deliver, drop,
/// duplicate, or delay it per the injector's seeded decision stream.
/// With no injector this is exactly [`Sim::send`].
fn send_faulty(
    sim: &mut Sim<Ev>,
    injector: &mut Option<FaultInjector>,
    from: u32,
    to: u32,
    bytes: u64,
    ev: Ev,
) {
    match injector.as_mut().map(FaultInjector::decide) {
        None | Some(FaultAction::Deliver) => sim.send(from, to, bytes, ev),
        Some(FaultAction::Drop) => {}
        Some(FaultAction::Duplicate) => {
            sim.send(from, to, bytes, ev.clone());
            sim.send(from, to, bytes, ev);
        }
        Some(FaultAction::Delay(extra)) => sim.send_delayed(from, to, bytes, extra, ev),
    }
}

/// Per-partition chare state.
struct PartState<V: Visitor> {
    rank: u32,
    cache_idx: u32,
    buckets: Vec<TargetBucket<V::State>>,
    /// Master indices per bucket (for write-back).
    bucket_indices: Vec<Vec<u32>>,
    stack: Vec<WorkItem<V::Data>>,
    paused: HashMap<NodeKey, Vec<WorkItem<V::Data>>>,
    outstanding: usize,
    /// Work batches spawned whose `PartWorkDone` has not fired yet.
    in_flight: usize,
    /// Accumulated traversal cost (the chare's measured load).
    cost: f64,
    seeded: bool,
    resumed_once: bool,
    finished: bool,
}

/// The distributed engine. See module docs.
pub struct DistributedEngine<'v, V: Visitor> {
    /// Machine to simulate.
    pub machine: MachineSpec,
    /// Framework configuration.
    pub config: Configuration,
    /// Cache model under test.
    pub cache_model: CacheModel,
    /// Cost calibration.
    pub costs: CostModel,
    /// Traversal schedule.
    pub kind: TraversalKind,
    /// Optional deterministic fault injection on fetch/fill messages.
    /// Enables the retry-timeout path; `None` means a perfect network.
    pub faults: Option<FaultConfig>,
    /// Span/counter sink. Attach an enabled virtual-time handle (see
    /// [`Telemetry::virtual_time`]) to get one span per simulated task on
    /// its `(rank, worker)` track; the default disabled handle records
    /// nothing.
    pub telemetry: Telemetry,
    visitor: &'v V,
}

impl<'v, V: Visitor> DistributedEngine<'v, V> {
    /// A new engine; `config.n_subtrees`/`n_partitions` are raised to at
    /// least the machine's rank count so every rank has work.
    pub fn new(
        machine: MachineSpec,
        config: Configuration,
        cache_model: CacheModel,
        kind: TraversalKind,
        visitor: &'v V,
    ) -> DistributedEngine<'v, V> {
        DistributedEngine {
            machine,
            config,
            cache_model,
            costs: CostModel::default(),
            kind,
            faults: None,
            telemetry: Telemetry::disabled(),
            visitor,
        }
    }

    /// Injects seeded message faults (drops, duplicates, delays) into
    /// the fetch/fill traffic and arms the retry timeout.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches a telemetry handle; spans are stamped in virtual time,
    /// so a given workload and seed produce a byte-identical trace.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Runs one full iteration over `particles` and reports.
    pub fn run_iteration(&self, particles: Vec<Particle>) -> IterationReport {
        self.run_iteration_with_assignment(particles, None)
    }

    /// Like [`DistributedEngine::run_iteration`], but with an explicit
    /// partition → rank assignment (same length as the effective
    /// partition count of an identical previous run). This is the hook
    /// the measured-load SFC re-balancer uses: run once, feed the
    /// measured [`IterationReport::partition_costs`] through
    /// [`sfc_balanced_assignment`], run again.
    pub fn run_iteration_with_assignment(
        &self,
        particles: Vec<Particle>,
        assignment: Option<&[u32]>,
    ) -> IterationReport {
        let n_total = particles.len().max(2);
        let log_n = (n_total as f64).log2();
        let ranks = self.machine.nodes as u32;
        let workers = self.machine.workers_per_rank as u32;

        // Overdecomposition: the configured counts are minimums. Every
        // rank needs several Subtrees, and enough Partitions to keep its
        // workers busy across fetch stalls (Charm++'s "more partitions
        // than processors") — bounded by bucket granularity so
        // partitions keep enough buckets for the loop transposition.
        let mut config = self.config.clone();
        config.n_subtrees = config.n_subtrees.max(self.machine.nodes * 4);
        let by_granularity = (n_total / (config.bucket_size * 4)).max(1);
        let by_machine = self.machine.nodes * self.machine.workers_per_rank * 2;
        config.n_partitions =
            config.n_partitions.max(by_machine.min(by_granularity).max(self.machine.nodes * 2));

        // ---- Decomposition (centrally executed, per-rank charged) ----
        let decomp = decompose(particles, &config);
        let n_subtrees = decomp.subtrees.len();

        // Subtrees to ranks: contiguous blocks in piece (SFC) order.
        let subtree_rank =
            |si: usize| -> u32 { (si as u64 * ranks as u64 / n_subtrees as u64) as u32 };
        // Partitions to ranks: contiguous id blocks by default (the SFC
        // placement), or the caller's measured-load assignment.
        let n_partitions = decomp.n_partitions.max(1);
        if let Some(a) = assignment {
            assert_eq!(a.len(), n_partitions, "assignment must cover every partition");
        }
        let partition_rank = |pi: usize| -> u32 {
            match assignment {
                Some(a) => a[pi],
                None => (pi as u64 * ranks as u64 / n_partitions as u64) as u32,
            }
        };

        // ---- Build local trees (real) ----
        let trees: Vec<(u32, paratreet_tree::BuiltTree<V::Data>)> = decomp
            .subtrees
            .into_iter()
            .enumerate()
            .map(|(si, piece)| {
                let builder = TreeBuilder {
                    root_key: piece.key,
                    root_depth: piece.depth,
                    parallel: false,
                    ..TreeBuilder::new(config.tree_type)
                }
                .bucket_size(config.bucket_size);
                (subtree_rank(si), builder.build::<V::Data>(piece.particles, piece.bbox))
            })
            .collect();

        let summaries: Vec<SubtreeSummary<V::Data>> = trees
            .iter()
            .map(|(rank, t)| SubtreeSummary {
                key: t.root().key,
                bbox: t.root().bbox,
                n_particles: t.root().n_particles,
                data: t.root().data.clone(),
                home_rank: *rank,
            })
            .collect();

        // ---- Master array + leaf sharing (bucket construction) ----
        let mut master: Vec<Particle> = Vec::new();
        struct BucketSeed {
            leaf_key: NodeKey,
            partition: u32,
            subtree_rank: u32,
            indices: Vec<u32>,
        }
        let mut bucket_seeds: Vec<BucketSeed> = Vec::new();
        for (rank, tree) in &trees {
            let offset = master.len() as u32;
            for li in tree.leaf_indices() {
                let node = tree.node(li);
                let range = node.bucket_range().expect("leaf");
                let mut per_part: Vec<(u32, Vec<u32>)> = Vec::new();
                for i in range {
                    let part = decomp.partitioner.assign(&tree.particles[i]);
                    match per_part.iter_mut().find(|(p, _)| *p == part) {
                        Some((_, v)) => v.push(offset + i as u32),
                        None => per_part.push((part, vec![offset + i as u32])),
                    }
                }
                for (partition, indices) in per_part {
                    bucket_seeds.push(BucketSeed {
                        leaf_key: node.key,
                        partition,
                        subtree_rank: *rank,
                        indices,
                    });
                }
            }
            master.extend_from_slice(&tree.particles);
        }

        // ---- Cache instances ----
        // WaitFree/XWrite: one per rank. PerThread: one per worker; a
        // partition binds to cache (rank, local_part % workers).
        let bits = config.tree_type.bits_per_level();
        let caches_per_rank: u32 =
            if self.cache_model == CacheModel::PerThread { workers } else { 1 };
        let n_caches = ranks * caches_per_rank;
        let caches: Vec<CacheTree<V::Data>> =
            (0..n_caches).map(|ci| CacheTree::new(ci / caches_per_rank, bits)).collect();
        // Graft local trees into every cache instance of their home rank.
        let mut per_rank_trees: Vec<Vec<paratreet_tree::BuiltTree<V::Data>>> =
            (0..ranks).map(|_| Vec::new()).collect();
        for (rank, tree) in trees {
            per_rank_trees[rank as usize].push(tree);
        }
        for ci in 0..n_caches {
            let rank = (ci / caches_per_rank) as usize;
            // Each cache instance needs its own grafted copy.
            let local: Vec<_> = if ci % caches_per_rank == caches_per_rank - 1 {
                std::mem::take(&mut per_rank_trees[rank])
            } else {
                per_rank_trees[rank].clone()
            };
            caches[ci as usize].init(&summaries, local);
        }

        // Debug builds sweep every cache's structural invariants at
        // phase boundaries; release builds skip the O(cache) walk.
        #[cfg(debug_assertions)]
        let audit_all = |caches: &[CacheTree<V::Data>], when: &str| {
            for (ci, c) in caches.iter().enumerate() {
                if let Err(e) = c.audit() {
                    panic!("cache {ci} audit failed {when}: {e}");
                }
            }
        };
        #[cfg(debug_assertions)]
        audit_all(&caches, "after init");

        // XWrite lock resource ids (one per rank), partition resources.
        const LOCK_BASE: u64 = 1 << 48;
        let part_resource = |p: u32| -> u64 { p as u64 + 1 };

        // ---- Partition states ----
        let mut parts: Vec<PartState<V>> = (0..n_partitions as u32)
            .map(|p| {
                let rank = partition_rank(p as usize);
                let local_idx = p as u64 % caches_per_rank as u64;
                let cache_idx = rank * caches_per_rank + local_idx as u32;
                PartState {
                    rank,
                    cache_idx,
                    buckets: Vec::new(),
                    bucket_indices: Vec::new(),
                    stack: Vec::new(),
                    paused: HashMap::new(),
                    outstanding: 0,
                    in_flight: 0,
                    cost: 0.0,
                    seeded: false,
                    resumed_once: false,
                    finished: false,
                }
            })
            .collect();
        let mut n_shared_buckets = 0usize;
        let mut leaf_share_msgs: Vec<(u32, u32, u64)> = Vec::new(); // (from, to, bytes)
        for seed in &bucket_seeds {
            let part = &mut parts[seed.partition as usize];
            let particles: Vec<Particle> =
                seed.indices.iter().map(|&i| master[i as usize]).collect();
            let bbox = BoundingBox::around(particles.iter().map(|p| p.pos));
            if seed.subtree_rank != part.rank {
                n_shared_buckets += 1;
                leaf_share_msgs.push((
                    seed.subtree_rank,
                    part.rank,
                    (particles.len() * PARTICLE_WIRE_BYTES) as u64,
                ));
            }
            part.buckets.push(TargetBucket {
                leaf_key: seed.leaf_key,
                particles,
                bbox,
                state: V::State::default(),
            });
            part.bucket_indices.push(seed.indices.clone());
        }

        // ---- Simulate ----
        let mut sim: Sim<Ev> = Sim::new(self.machine.clone());
        sim.telemetry = self.telemetry.clone();
        let mut counts_total = WorkCounts::default();
        let costs = self.costs;
        let fetch_depth = config.fetch_depth;
        let cache_model = self.cache_model;
        let visitor = self.visitor;
        let kind = self.kind;

        // Phase 1: decomposition tasks — the per-rank sort parallelises
        // over the rank's workers (rayon in the real engine).
        let per_rank_particles = (n_total as f64 / ranks as f64).max(1.0);
        let decomp_tasks_per_rank = workers.min(8);
        for r in 0..ranks {
            for _ in 0..decomp_tasks_per_rank {
                sim.spawn(
                    r,
                    Phase::Decomposition,
                    costs.sort_per_particle_log * per_rank_particles * log_n
                        / decomp_tasks_per_rank as f64,
                    Ev::DecompDone,
                );
            }
        }

        // Counters used by the barrier logic inside the handler.
        let mut decomp_left = (ranks * decomp_tasks_per_rank) as usize;
        let mut build_left = 0usize;
        let mut share_left = 0usize;
        let mut leaf_share_left = 0usize;
        let mut traversal_start = 0.0f64;
        let mut parts_done = 0usize;

        // Fault layer (None ⇒ perfect network, no timers) and the error
        // accounting the report surfaces.
        let mut injector = self.faults.map(FaultInjector::new);
        let retry_timeout = self.faults.map(|f| f.retry_timeout_s).unwrap_or(0.0);
        let mut fetch_retries = 0u64;
        let mut fill_errors = 0u64;

        // Per-subtree build costs: Subtrees build independently, in
        // parallel across each rank's workers (the model's
        // synchronisation-free build).
        let subtree_builds: Vec<(u32, f64)> = summaries
            .iter()
            .map(|s| {
                let n_i = s.n_particles.max(1) as f64;
                (s.home_rank, costs.build_per_particle_log * n_i * (n_i.log2().max(1.0)))
            })
            .collect();

        sim.run(|sim, ev| match ev {
            Ev::DecompDone => {
                decomp_left -= 1;
                if decomp_left == 0 {
                    // Phase 2: tree builds, one task per Subtree.
                    for &(rank, cost) in &subtree_builds {
                        build_left += 1;
                        sim.spawn(rank, Phase::TreeBuild, cost, Ev::BuildDone);
                    }
                }
            }
            Ev::BuildDone => {
                build_left -= 1;
                if build_left == 0 {
                    // Phase 3: share summaries all-to-all.
                    let payload = summaries.len() as u64 * costs.summary_bytes;
                    for from in 0..ranks {
                        for to in 0..ranks {
                            if from != to {
                                share_left += 1;
                                sim.send(from, to, payload / ranks as u64, Ev::ShareArrive);
                            }
                        }
                    }
                    if ranks == 1 {
                        share_left += 1;
                        sim.post(Ev::ShareArrive);
                    }
                }
            }
            Ev::ShareArrive => {
                share_left -= 1;
                if share_left == 0 {
                    // Small skeleton-build task per rank, then leaf share.
                    for r in 0..ranks {
                        sim.spawn(
                            r,
                            Phase::ShareTopLevels,
                            costs.insert_fixed + summaries.len() as f64 * 1e-7,
                            Ev::LeafShareArrive,
                        );
                    }
                    leaf_share_left += ranks as usize;
                    for (from, to, bytes) in leaf_share_msgs.drain(..) {
                        leaf_share_left += 1;
                        sim.send(from, to, bytes, Ev::LeafShareArrive);
                    }
                }
            }
            Ev::LeafShareArrive => {
                leaf_share_left -= 1;
                if leaf_share_left == 0 {
                    #[cfg(debug_assertions)]
                    audit_all(&caches, "at traversal start");
                    traversal_start = sim.now();
                    // Seed every partition's traversal.
                    for p in 0..parts.len() as u32 {
                        sim.post(Ev::PartRun { part: p });
                    }
                }
            }
            Ev::PartRun { part } => {
                let ps = &mut parts[part as usize];
                let cache = &caches[ps.cache_idx as usize];
                if !ps.seeded {
                    ps.seeded = true;
                    ps.stack = seed_items::<V>(cache, kind, &ps.buckets);
                }
                // Run-to-completion: drain the stack, surrendering
                // placeholder hits. Up-and-down traversals stop at the
                // *first* pending fetch instead: their pruning bounds
                // tighten as items complete in order, so racing ahead
                // with untightened bounds would fetch (and evaluate) far
                // more remote data than the sequential schedule — the
                // partition waits, while other partitions on the rank
                // keep the workers busy.
                let ordered = kind == TraversalKind::UpAndDown;
                let mut batch = WorkCounts::default();
                let mut fetches: Vec<PendingFetch<V::Data>> = Vec::new();
                while let Some(item) = ps.stack.pop() {
                    process_item(
                        cache,
                        visitor,
                        &mut ps.buckets,
                        item,
                        &mut ps.stack,
                        &mut fetches,
                        &mut batch,
                    );
                    if ordered && !fetches.is_empty() {
                        break;
                    }
                }
                counts_total += batch;
                let phase =
                    if ps.resumed_once { Phase::RemoteTraversal } else { Phase::LocalTraversal };
                let fetch_list: Vec<(NodeKey, Vec<u32>)> =
                    fetches.into_iter().map(|f| (f.key, f.buckets)).collect();
                ps.in_flight += 1;
                let batch_cost = costs.work(&batch).max(1e-9);
                ps.cost += batch_cost;
                sim.spawn_exclusive(
                    ps.rank,
                    part_resource(part),
                    phase,
                    batch_cost,
                    Ev::PartWorkDone { part, fetches: fetch_list },
                );
            }
            Ev::PartWorkDone { part, fetches } => {
                let ps = &mut parts[part as usize];
                let cache = &caches[ps.cache_idx as usize];
                ps.in_flight -= 1;
                let mut rerun = false;
                for (key, buckets) in fetches {
                    // Re-find the placeholder (it may have been swapped).
                    // The skeleton guarantees the key exists; a miss is
                    // an engine bug, not a recoverable message fault.
                    let Some(node) = cache.find(key) else {
                        debug_assert!(false, "fetch target {key} missing from skeleton");
                        fill_errors += 1;
                        sim.telemetry.count("des.fill_errors", 1);
                        continue;
                    };
                    if !node.is_placeholder() {
                        // Fill landed while we were busy: traverse on.
                        ps.stack.push(WorkItem { node: NodeHandle::new(node), buckets });
                        rerun = true;
                        continue;
                    }
                    match cache.request(node, part as u64) {
                        RequestOutcome::Ready(n) => {
                            ps.stack.push(WorkItem { node: NodeHandle::new(n), buckets });
                            rerun = true;
                        }
                        RequestOutcome::SendFetch { home_rank } => {
                            ps.paused
                                .entry(key)
                                .or_default()
                                .push(WorkItem { node: NodeHandle::new(node), buckets });
                            ps.outstanding += 1;
                            // Small CPU cost to issue the request.
                            sim.ledger.record(sim.now(), sim.now(), Phase::CacheRequest);
                            sim.telemetry.span_at(
                                Track { rank: ps.rank, worker: 0 },
                                "cache request",
                                sim.now() * 1e6,
                                0.0,
                                Some(key.raw()),
                            );
                            send_faulty(
                                sim,
                                &mut injector,
                                ps.rank,
                                home_rank,
                                costs.request_bytes,
                                Ev::RequestArrive {
                                    key,
                                    home_rank,
                                    to_cache: ps.cache_idx,
                                    requester_rank: ps.rank,
                                },
                            );
                            if injector.is_some() {
                                sim.post_after(
                                    retry_timeout,
                                    Ev::FetchTimeout {
                                        key,
                                        home_rank,
                                        to_cache: ps.cache_idx,
                                        requester_rank: ps.rank,
                                        attempt: 1,
                                    },
                                );
                            }
                        }
                        RequestOutcome::InFlight => {
                            ps.paused
                                .entry(key)
                                .or_default()
                                .push(WorkItem { node: NodeHandle::new(node), buckets });
                            ps.outstanding += 1;
                        }
                    }
                }
                if rerun {
                    sim.post(Ev::PartRun { part });
                } else if ps.stack.is_empty()
                    && ps.outstanding == 0
                    && ps.in_flight == 0
                    && !ps.finished
                {
                    ps.finished = true;
                    parts_done += 1;
                }
            }
            Ev::RequestArrive { key, home_rank: home, to_cache, requester_rank } => {
                // Serve at the home rank: the authoritative copy lives in
                // every cache instance of that rank (with PerThread they
                // all graft the local trees), so its first cache serves.
                let home_cache = (home * caches_per_rank) as usize;
                match caches[home_cache].serialize_fragment(key, fetch_depth) {
                    Ok(bytes) => {
                        let cost = costs.serialize_per_byte * bytes.len() as f64
                            + costs.insert_fixed / 2.0;
                        sim.spawn(
                            home,
                            Phase::FillServe,
                            cost,
                            Ev::FillServeDone { home_rank: home, to_cache, requester_rank, bytes },
                        );
                    }
                    Err(e) => {
                        // The home rank cannot serve this key. Drop the
                        // request; the requester's retry timer re-issues
                        // it rather than aborting the simulation.
                        fill_errors += 1;
                        sim.telemetry.count("des.fill_errors", 1);
                        eprintln!("des: fetch for {key} failed at home rank {home}: {e}");
                    }
                }
            }
            Ev::FillServeDone { home_rank, to_cache, requester_rank, bytes } => {
                let nbytes = bytes.len() as u64;
                send_faulty(
                    sim,
                    &mut injector,
                    home_rank,
                    requester_rank,
                    nbytes,
                    Ev::FillArrive { to_cache, bytes },
                );
            }
            Ev::FillArrive { to_cache, bytes } => {
                let rank = caches[to_cache as usize].rank;
                let cost = costs.insert_fixed + costs.insert_per_byte * bytes.len() as f64;
                match cache_model {
                    CacheModel::XWrite => sim.spawn_exclusive(
                        rank,
                        LOCK_BASE + rank as u64,
                        Phase::CacheInsertion,
                        cost,
                        Ev::InsertDone { to_cache, bytes },
                    ),
                    _ => sim.spawn(
                        rank,
                        Phase::CacheInsertion,
                        cost,
                        Ev::InsertDone { to_cache, bytes },
                    ),
                }
            }
            Ev::InsertDone { to_cache, bytes } => {
                let cache = &caches[to_cache as usize];
                match cache.insert_fragment(&bytes) {
                    Ok(outcome) => {
                        // A fill may materialise several keys at once (a
                        // deep fragment covering earlier shallow waits);
                        // every (key, waiter) pair resumes independently.
                        for (key, waiter) in outcome.resumed {
                            let part = waiter as u32;
                            let rank = parts[part as usize].rank;
                            sim.spawn(
                                rank,
                                Phase::TraversalResumption,
                                costs.resume,
                                Ev::Resumed { part, key },
                            );
                        }
                    }
                    Err(e) => {
                        // A bad fill degrades to a logged drop; the
                        // placeholder stays pending and the retry timer
                        // re-requests it.
                        fill_errors += 1;
                        sim.telemetry.count("des.fill_errors", 1);
                        eprintln!("des: fill rejected by cache {to_cache}: {e}");
                    }
                }
            }
            Ev::Resumed { part, key } => {
                let ps = &mut parts[part as usize];
                let cache = &caches[ps.cache_idx as usize];
                if let Some(items) = ps.paused.remove(&key) {
                    let Some(node) = cache.find(key) else {
                        // Resumption implies the key was just spliced;
                        // losing it again is an engine bug.
                        debug_assert!(false, "resumed key {key} missing from cache");
                        ps.paused.insert(key, items);
                        return;
                    };
                    for item in items {
                        ps.outstanding -= 1;
                        ps.stack
                            .push(WorkItem { node: NodeHandle::new(node), buckets: item.buckets });
                    }
                    ps.resumed_once = true;
                    sim.post(Ev::PartRun { part });
                }
            }
            Ev::FetchTimeout { key, home_rank, to_cache, requester_rank, attempt } => {
                // Re-request only if the fill never landed (the fetch or
                // the fill was dropped, or both are still delayed — a
                // duplicate fill is idempotent, so over-asking is safe).
                let still_pending =
                    caches[to_cache as usize].find(key).is_some_and(|n| n.is_placeholder());
                if still_pending && injector.is_some() {
                    fetch_retries += 1;
                    sim.telemetry.count("des.fetch_retries", 1);
                    send_faulty(
                        sim,
                        &mut injector,
                        requester_rank,
                        home_rank,
                        costs.request_bytes,
                        Ev::RequestArrive { key, home_rank, to_cache, requester_rank },
                    );
                    sim.post_after(
                        retry_timeout,
                        Ev::FetchTimeout {
                            key,
                            home_rank,
                            to_cache,
                            requester_rank,
                            attempt: attempt + 1,
                        },
                    );
                }
            }
        });

        assert_eq!(parts_done, parts.len(), "all partitions must finish");
        #[cfg(debug_assertions)]
        audit_all(&caches, "after traversal");

        // ---- Write-back and reporting ----
        for ps in &parts {
            for (indices, bucket) in ps.bucket_indices.iter().zip(&ps.buckets) {
                for (&mi, p) in indices.iter().zip(&bucket.particles) {
                    master[mi as usize] = *p;
                }
            }
        }
        let mut cache_stats = CacheStatsSnapshot::default();
        for c in &caches {
            cache_stats.merge(&c.stats.snapshot());
        }
        let partition_costs: Vec<f64> = parts.iter().map(|p| p.cost).collect();
        let fault_stats = injector.map(|f| f.stats).unwrap_or_default();

        // Assemble the registry first; the report's named fields read
        // back from it, so the two can never disagree.
        let mut metrics = MetricsRegistry::new();
        metrics.absorb("comm", &sim.comm);
        metrics.absorb("cache", &cache_stats);
        metrics.absorb("counts", &counts_total);
        metrics.absorb("faults", &fault_stats);
        metrics.absorb("phase_busy_s", &sim.ledger);
        metrics.set_f64("time.makespan_s", sim.makespan());
        metrics.set_f64("time.traversal_start_s", traversal_start);
        metrics.set_f64("time.traversal_s", sim.makespan() - traversal_start);
        metrics.set_f64("util.workers", sim.utilization());
        metrics.set_u64("des.fetch_retries", fetch_retries);
        metrics.set_u64("des.fill_errors", fill_errors);
        metrics.set_u64("des.n_shared_buckets", n_shared_buckets as u64);
        metrics.set_u64("des.n_partitions", partition_costs.len() as u64);
        IterationReport {
            makespan: metrics.get_f64("time.makespan_s"),
            traversal_start: metrics.get_f64("time.traversal_start_s"),
            phase_busy: sim.ledger.busy_per_phase(),
            comm: sim.comm,
            counts: counts_total,
            cache: cache_stats,
            utilization: metrics.get_f64("util.workers"),
            ledger: sim.ledger.clone(),
            n_shared_buckets,
            partition_costs,
            particles: master,
            faults: fault_stats,
            fetch_retries: metrics.get_u64("des.fetch_retries"),
            fill_errors: metrics.get_u64("des.fill_errors"),
            metrics,
        }
    }
}

/// The measured-load SFC re-balancing the paper adopts from ChaNGa:
/// partitions keep their space-filling-curve order but rank boundaries
/// move so each rank receives (approximately) equal measured load.
/// "Weighted sections of this curve can be used to remap processor
/// assignments to achieve better load balance" (§V).
pub fn sfc_balanced_assignment(costs: &[f64], ranks: usize) -> Vec<u32> {
    let ranks = ranks.max(1);
    let total: f64 = costs.iter().sum();
    if total <= 0.0 {
        return (0..costs.len()).map(|i| (i * ranks / costs.len().max(1)) as u32).collect();
    }
    let per_rank = total / ranks as f64;
    let mut out = Vec::with_capacity(costs.len());
    let mut acc = 0.0;
    let mut rank = 0u32;
    for &c in costs {
        // Close the chunk when adding this partition would overshoot the
        // target more than leaving it out undershoots.
        if rank as usize + 1 < ranks && acc + c / 2.0 > per_rank * (rank as f64 + 1.0) {
            rank += 1;
        }
        acc += c;
        out.push(rank);
    }
    out
}
