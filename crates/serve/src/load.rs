//! Seeded open-loop load generation: thousands of simulated clients
//! multiplexed over a few driver threads, issuing a mixed query stream
//! against a [`QueryService`](crate::service::QueryService).
//!
//! Every client's query stream is a pure function of
//! `(seed, client id)`, so two runs against the *same pinned snapshot*
//! produce bit-identical result checksums — the replay property — while
//! runs against a live writer legitimately differ only in which epoch
//! answered each query.

use crate::request::{Query, QueryClass, Request, Response};
use crate::service::QueryService;
use crate::ServeError;
use paratreet_geometry::{BoundingBox, Vec3};
use paratreet_tree::Data;
use rand::{Rng, SeedableRng, StdRng};

/// Folds one response into the order-independent run checksum: the
/// XOR over responses of a per-response mix of client, sequence
/// number, and result checksum. Epochs are deliberately excluded —
/// they vary under a live writer; the *results per request* are what
/// replays compare.
pub fn checksum_fold(resp: &Response) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [resp.client as u64, resp.seq as u64, resp.result.checksum()] {
        h = (h ^ v).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Traffic shape for one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Simulated clients.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// OS threads driving the clients.
    pub threads: usize,
    /// Queries per submitted batch.
    pub batch: usize,
    /// Neighbour count for kNN queries.
    pub k: usize,
    /// Stream seed: same seed, same query streams.
    pub seed: u64,
    /// Relative class weights, [`QueryClass::ALL`] order
    /// (knn, ball, range, ray).
    pub mix: [u32; 4],
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 1000,
            queries_per_client: 100,
            threads: 8,
            batch: 32,
            k: 8,
            seed: 42,
            mix: [4, 3, 2, 1],
        }
    }
}

/// What a load run did.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadReport {
    /// Queries accepted by the service.
    pub submitted: u64,
    /// Queries whose responses came back.
    pub completed: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Queries generated per class ([`QueryClass::ALL`] order).
    pub per_class: [u64; 4],
    /// Wall seconds from first submit to last response.
    pub elapsed_s: f64,
    /// Completed queries per second.
    pub throughput: f64,
    /// Lowest snapshot epoch observed in a response.
    pub min_epoch: u64,
    /// Highest snapshot epoch observed in a response.
    pub max_epoch: u64,
    /// Order-independent XOR of response checksums (see
    /// [`checksum_fold`]).
    pub checksum: u64,
}

/// One seeded random query with anchors inside `universe`.
pub fn random_query(rng: &mut StdRng, universe: &BoundingBox, k: usize, mix: &[u32; 4]) -> Query {
    let size = universe.size();
    let extent = size.x.max(size.y).max(size.z).max(1e-9);
    let point = |rng: &mut StdRng| {
        Vec3::new(
            universe.lo.x + rng.random_range(0.0..1.0) * size.x.max(1e-9),
            universe.lo.y + rng.random_range(0.0..1.0) * size.y.max(1e-9),
            universe.lo.z + rng.random_range(0.0..1.0) * size.z.max(1e-9),
        )
    };
    let total: u32 = mix.iter().sum::<u32>().max(1);
    let mut pick = rng.random_range(0..total);
    let mut class = QueryClass::Knn;
    for c in QueryClass::ALL {
        let w = mix[c.index()];
        if pick < w {
            class = c;
            break;
        }
        pick -= w;
    }
    match class {
        QueryClass::Knn => Query::Knn { pos: point(rng), k },
        QueryClass::Ball => {
            Query::Ball { center: point(rng), radius: extent * rng.random_range(0.02..0.1) }
        }
        QueryClass::Range => Query::Range {
            bbox: BoundingBox::cube(point(rng), extent * rng.random_range(0.02..0.08)),
        },
        QueryClass::Ray => {
            let origin = point(rng);
            let through = point(rng);
            Query::Ray { origin, dir: through - origin, radius: extent * 0.02, t_max: extent * 4.0 }
        }
    }
}

/// Drives `config.clients` simulated clients against `service` and
/// blocks until every accepted query is answered. Sheds are counted,
/// not retried (the service's own `serve.queries.shed` agrees).
pub fn run_load<D: Data>(
    service: &QueryService<D>,
    universe: BoundingBox,
    config: &LoadConfig,
) -> LoadReport {
    let threads = config.threads.clamp(1, config.clients.max(1));
    let t0 = std::time::Instant::now();
    let mut report = LoadReport { min_epoch: u64::MAX, ..LoadReport::default() };

    let partials: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|ti| {
                let config = *config;
                scope.spawn(move || drive_clients(service, &universe, &config, ti, threads))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load driver panicked")).collect()
    });

    for p in partials {
        report.submitted += p.submitted;
        report.completed += p.completed;
        report.shed += p.shed;
        for i in 0..4 {
            report.per_class[i] += p.per_class[i];
        }
        report.min_epoch = report.min_epoch.min(p.min_epoch);
        report.max_epoch = report.max_epoch.max(p.max_epoch);
        report.checksum ^= p.checksum;
    }
    if report.completed == 0 {
        report.min_epoch = 0;
    }
    report.elapsed_s = t0.elapsed().as_secs_f64();
    report.throughput =
        if report.elapsed_s > 0.0 { report.completed as f64 / report.elapsed_s } else { 0.0 };
    report
}

/// One driver thread: its share of the clients, one reply channel.
fn drive_clients<D: Data>(
    service: &QueryService<D>,
    universe: &BoundingBox,
    config: &LoadConfig,
    thread_index: usize,
    threads: usize,
) -> LoadReport {
    let (tx, rx) = crossbeam::channel::unbounded::<Vec<Response>>();
    let mut report = LoadReport { min_epoch: u64::MAX, ..LoadReport::default() };
    let mut accepted_batches = 0u64;
    let mut received_batches = 0u64;
    let batch_len = config.batch.max(1);

    let absorb = |report: &mut LoadReport, responses: Vec<Response>| {
        for resp in &responses {
            report.completed += 1;
            report.min_epoch = report.min_epoch.min(resp.epoch);
            report.max_epoch = report.max_epoch.max(resp.epoch);
            report.checksum ^= checksum_fold(resp);
        }
    };

    let mut client = thread_index;
    while client < config.clients {
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut pending: Vec<Request> = Vec::with_capacity(batch_len);
        for seq in 0..config.queries_per_client {
            let query = random_query(&mut rng, universe, config.k, &config.mix);
            report.per_class[query.class().index()] += 1;
            pending.push(Request::new(client as u32, seq as u32, query));
            if pending.len() == batch_len {
                submit_batch(service, &mut pending, &tx, &mut report, &mut accepted_batches);
                // Keep memory bounded: absorb whatever already came back.
                while let Ok(responses) = rx.try_recv() {
                    received_batches += 1;
                    absorb(&mut report, responses);
                }
            }
        }
        if !pending.is_empty() {
            submit_batch(service, &mut pending, &tx, &mut report, &mut accepted_batches);
        }
        client += threads;
    }

    // Every accepted batch eventually answers exactly once.
    while received_batches < accepted_batches {
        let responses = rx.recv().expect("service dropped a reply channel");
        received_batches += 1;
        absorb(&mut report, responses);
    }
    report
}

/// Submits one batch, charging sheds to the report.
fn submit_batch<D: Data>(
    service: &QueryService<D>,
    pending: &mut Vec<Request>,
    tx: &crossbeam::channel::Sender<Vec<Response>>,
    report: &mut LoadReport,
    accepted_batches: &mut u64,
) {
    let batch = std::mem::take(pending);
    let n = batch.len() as u64;
    match service.submit(batch, Some(tx.clone())) {
        Ok(()) => {
            report.submitted += n;
            *accepted_batches += 1;
        }
        Err(ServeError::Overloaded { .. }) => report.shed += n,
        Err(e) => panic!("unexpected submit failure: {e}"),
    }
}
