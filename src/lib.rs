//! Umbrella crate: re-exports the whole ParaTreeT reproduction so
//! examples, integration tests, and the `paratreet` CLI can reach every
//! layer through one dependency.
//!
//! See the README for a tour and DESIGN.md for the system inventory.

/// The framework crate (`paratreet-core`), under its conventional alias.
pub use paratreet_core as core_api;

pub use paratreet_apps as apps;
pub use paratreet_baselines as baselines;
pub use paratreet_cache as cache;
pub use paratreet_cachesim as cachesim;
pub use paratreet_geometry as geometry;
pub use paratreet_particles as particles;
pub use paratreet_runtime as runtime;
pub use paratreet_serve as serve;
pub use paratreet_telemetry as telemetry;
pub use paratreet_tree as tree;
