//! End-to-end physics validation: the Barnes-Hut traversal through the
//! full framework (decomposition → Partitions–Subtrees → cache →
//! traversal) must reproduce direct-summation forces to the accuracy
//! the opening angle implies, for every tree type and decomposition.

use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_baselines::direct::{direct_gravity, rms_acc_error};
use paratreet_core::{Configuration, DecompType, Framework, TraversalKind};
use paratreet_particles::gen;
use paratreet_particles::Particle;
use paratreet_tree::TreeType;

fn tree_gravity(
    particles: Vec<Particle>,
    config: Configuration,
    theta: f64,
    kind: TraversalKind,
) -> Vec<Particle> {
    let mut fw: Framework<CentroidData> = Framework::new(config, particles);
    let visitor = GravityVisitor { theta, g: 1.0 };
    fw.step(|step| {
        step.traverse(&visitor, kind);
    });
    fw.particles().to_vec()
}

fn check_accuracy(config: Configuration, theta: f64, kind: TraversalKind, tol: f64) {
    let mut ps = gen::plummer(1500, 42, 1.0, 1.0);
    for p in &mut ps {
        p.softening = 0.01;
    }
    let tree = tree_gravity(ps.clone(), config, theta, kind);
    direct_gravity(&mut ps, 1.0);
    let err = rms_acc_error(&tree, &ps);
    assert!(err < tol, "rms acceleration error {err} exceeds {tol}");
}

#[test]
fn octree_sfc_matches_direct() {
    let config = Configuration { bucket_size: 16, ..Default::default() };
    check_accuracy(config, 0.6, TraversalKind::TopDown, 0.02);
}

#[test]
fn kd_tree_matches_direct() {
    let config = Configuration {
        tree_type: TreeType::KdTree,
        decomp_type: DecompType::Kd,
        bucket_size: 16,
        ..Default::default()
    };
    check_accuracy(config, 0.6, TraversalKind::TopDown, 0.02);
}

#[test]
fn longest_dim_tree_matches_direct() {
    let config = Configuration {
        tree_type: TreeType::LongestDim,
        decomp_type: DecompType::LongestDim,
        bucket_size: 16,
        ..Default::default()
    };
    check_accuracy(config, 0.6, TraversalKind::TopDown, 0.02);
}

#[test]
fn binary_oct_tree_matches_direct() {
    let config =
        Configuration { tree_type: TreeType::BinaryOct, bucket_size: 16, ..Default::default() };
    check_accuracy(config, 0.6, TraversalKind::TopDown, 0.02);
}

#[test]
fn oct_decomposition_matches_direct() {
    let config =
        Configuration { decomp_type: DecompType::Oct, bucket_size: 16, ..Default::default() };
    check_accuracy(config, 0.6, TraversalKind::TopDown, 0.02);
}

#[test]
fn basic_dfs_gives_identical_forces_to_transposed() {
    // BasicTrav and the transposed traversal must produce *identical*
    // interactions, not merely close ones (same opens, same kernels).
    let ps = gen::clustered(800, 3, 7, 1.0, 1.0);
    let config = Configuration { bucket_size: 8, ..Default::default() };
    let a = tree_gravity(ps.clone(), config.clone(), 0.7, TraversalKind::TopDown);
    let b = tree_gravity(ps, config, 0.7, TraversalKind::BasicDfs);
    let err = rms_acc_error(&a, &b);
    assert!(err < 1e-12, "traversal styles disagree: {err}");
}

#[test]
fn dual_tree_matches_direct() {
    // The dual-tree schedule prunes with node-box (not bucket-box)
    // queries, so it makes *more conservative* opening decisions than
    // the single-tree walk — its error is bounded by the same θ.
    let config = Configuration { bucket_size: 16, ..Default::default() };
    check_accuracy(config, 0.6, TraversalKind::DualTree, 0.02);
}

#[test]
fn dual_tree_visits_fewer_nodes_than_per_bucket_walks() {
    let ps = gen::uniform_cube(2000, 3, 1.0, 1.0);
    let config = Configuration { bucket_size: 8, ..Default::default() };
    let run = |kind| {
        let mut fw: Framework<CentroidData> = Framework::new(config.clone(), ps.clone());
        let visitor = GravityVisitor::default();
        let (_, report) = fw.step(|s| {
            s.traverse(&visitor, kind);
        });
        report.counts
    };
    let dual = run(TraversalKind::DualTree);
    let dfs = run(TraversalKind::BasicDfs);
    assert!(
        dual.nodes_visited < dfs.nodes_visited,
        "dual {} vs per-bucket {}",
        dual.nodes_visited,
        dfs.nodes_visited
    );
}

#[test]
fn smaller_theta_is_more_accurate() {
    let mut ps = gen::plummer(1200, 11, 1.0, 1.0);
    for p in &mut ps {
        p.softening = 0.01;
    }
    let config = Configuration { bucket_size: 16, ..Default::default() };
    let loose = tree_gravity(ps.clone(), config.clone(), 1.0, TraversalKind::TopDown);
    let tight = tree_gravity(ps.clone(), config, 0.3, TraversalKind::TopDown);
    direct_gravity(&mut ps, 1.0);
    let err_loose = rms_acc_error(&loose, &ps);
    let err_tight = rms_acc_error(&tight, &ps);
    assert!(
        err_tight < err_loose / 3.0,
        "θ=0.3 error {err_tight} not much better than θ=1.0 error {err_loose}"
    );
}

#[test]
fn partitions_subtrees_split_buckets_do_not_change_forces() {
    // Mismatched partition/subtree counts force split buckets (Fig. 5);
    // physics must be unaffected.
    let ps = gen::uniform_cube(700, 5, 1.0, 1.0);
    let aligned = Configuration {
        decomp_type: DecompType::Oct,
        n_subtrees: 8,
        n_partitions: 8,
        bucket_size: 8,
        ..Default::default()
    };
    let skewed = Configuration {
        decomp_type: DecompType::Kd,
        n_subtrees: 13,
        n_partitions: 7,
        bucket_size: 8,
        ..Default::default()
    };
    let a = tree_gravity(ps.clone(), aligned, 0.7, TraversalKind::TopDown);
    let b = tree_gravity(ps, skewed, 0.7, TraversalKind::TopDown);
    // The tree (octree) is identical, so forces agree up to the effect
    // of bucket splitting: split buckets have tighter target boxes,
    // which can flip borderline opening decisions. That changes which
    // *valid* Barnes-Hut approximation is applied, never the physics
    // beyond the θ error bound.
    let err = rms_acc_error(&a, &b);
    assert!(err < 2e-2, "decomposition changed forces beyond BH noise: {err}");
}
