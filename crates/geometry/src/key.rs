//! Prefix keys for tree nodes.
//!
//! Following the hashed oct-tree convention (Warren & Salmon, ref. 6 of
//! the paper), every node of the global tree is named by an integer whose
//! binary digits spell the path from the root: a leading 1 "sentinel" bit
//! followed by one fixed-width digit per level. Octrees use 3-bit digits,
//! binary trees (k-d, longest-dimension) 1-bit digits.
//!
//! Keys give the layers above a location-independent way to talk about
//! nodes: the software cache's process-level hash table is keyed by
//! `NodeKey`, remote requests carry a `NodeKey`, and ancestor/descendant
//! checks are bit operations.

use serde::{Deserialize, Serialize};

/// The key of the global root node (just the sentinel bit).
pub const ROOT_KEY: NodeKey = NodeKey(1);

/// A node's path-prefix key. Wraps a `u64`: sentinel `1` bit followed by
/// `level` digits of `bits_per_level` bits each.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeKey(pub u64);

impl NodeKey {
    /// The root key.
    #[inline]
    pub const fn root() -> NodeKey {
        ROOT_KEY
    }

    /// The key of this node's `i`-th child in a tree with `bits_per_level`
    /// bits per digit (3 for octrees, 1 for binary trees).
    ///
    /// Panics in debug builds if the child index does not fit the digit or
    /// the key would overflow 64 bits.
    #[inline]
    pub fn child(self, i: usize, bits_per_level: u32) -> NodeKey {
        debug_assert!((i as u64) < (1u64 << bits_per_level));
        debug_assert!(self.0.leading_zeros() >= bits_per_level, "node key depth overflow");
        NodeKey((self.0 << bits_per_level) | i as u64)
    }

    /// The parent key; the root is its own parent.
    #[inline]
    pub fn parent(self, bits_per_level: u32) -> NodeKey {
        if self == ROOT_KEY {
            ROOT_KEY
        } else {
            NodeKey(self.0 >> bits_per_level)
        }
    }

    /// This node's index among its siblings (the last digit).
    #[inline]
    pub fn child_index(self, bits_per_level: u32) -> usize {
        (self.0 & ((1u64 << bits_per_level) - 1)) as usize
    }

    /// Depth below the root (root is level 0).
    #[inline]
    pub fn level(self, bits_per_level: u32) -> u32 {
        debug_assert!(self.0 != 0, "invalid zero key");
        (63 - self.0.leading_zeros()) / bits_per_level
    }

    /// True when `self` is an ancestor of `other` (strict: a node is not
    /// its own ancestor).
    #[inline]
    pub fn is_ancestor_of(self, other: NodeKey, bits_per_level: u32) -> bool {
        let la = self.level(bits_per_level);
        let lb = other.level(bits_per_level);
        lb > la && (other.0 >> ((lb - la) * bits_per_level)) == self.0
    }

    /// The ancestor of this node at `level`; panics in debug builds if the
    /// node is above that level.
    #[inline]
    pub fn ancestor_at(self, level: u32, bits_per_level: u32) -> NodeKey {
        let l = self.level(bits_per_level);
        debug_assert!(level <= l);
        NodeKey(self.0 >> ((l - level) * bits_per_level))
    }

    /// Converts the node key into the smallest particle Morton key that
    /// can fall inside this node, for octree keys (3-bit digits) against
    /// 63-bit Morton particle keys. Used to locate SFC splitters in the
    /// tree. The result has the node's digits as its leading octree
    /// digits and zeros below.
    #[inline]
    pub fn to_morton_floor(self, morton_levels: u32) -> u64 {
        let l = self.level(3);
        debug_assert!(l <= morton_levels);
        (self.0 & !(1u64 << (3 * l))) << (3 * (morton_levels - l))
    }

    /// First key of the half-open Morton interval covered by this octree
    /// node — alias of [`NodeKey::to_morton_floor`].
    #[inline]
    pub fn morton_range(self, morton_levels: u32) -> (u64, u64) {
        let l = self.level(3);
        let lo = self.to_morton_floor(morton_levels);
        let width = 1u64 << (3 * (morton_levels - l));
        (lo, lo + width)
    }

    /// The raw integer value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for NodeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#b}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        assert_eq!(ROOT_KEY.level(3), 0);
        assert_eq!(ROOT_KEY.level(1), 0);
        assert_eq!(ROOT_KEY.parent(3), ROOT_KEY);
    }

    #[test]
    fn child_parent_roundtrip_octree() {
        for i in 0..8 {
            let c = ROOT_KEY.child(i, 3);
            assert_eq!(c.parent(3), ROOT_KEY);
            assert_eq!(c.child_index(3), i);
            assert_eq!(c.level(3), 1);
        }
    }

    #[test]
    fn child_parent_roundtrip_binary() {
        let a = ROOT_KEY.child(1, 1).child(0, 1).child(1, 1);
        assert_eq!(a.level(1), 3);
        assert_eq!(a.child_index(1), 1);
        assert_eq!(a.parent(1).child_index(1), 0);
        assert_eq!(a.parent(1).parent(1).parent(1), ROOT_KEY);
    }

    #[test]
    fn ancestor_checks() {
        let a = ROOT_KEY.child(3, 3);
        let b = a.child(5, 3).child(7, 3);
        assert!(ROOT_KEY.is_ancestor_of(b, 3));
        assert!(a.is_ancestor_of(b, 3));
        assert!(!b.is_ancestor_of(a, 3));
        assert!(!a.is_ancestor_of(a, 3)); // strict
        let sibling = ROOT_KEY.child(4, 3);
        assert!(!sibling.is_ancestor_of(b, 3));
        assert_eq!(b.ancestor_at(1, 3), a);
        assert_eq!(b.ancestor_at(0, 3), ROOT_KEY);
    }

    #[test]
    fn morton_interval_of_node() {
        // Octant 7 of the root covers the top 1/8 of the Morton line.
        let k = ROOT_KEY.child(7, 3);
        let (lo, hi) = k.morton_range(21);
        assert_eq!(lo, 7u64 << 60);
        assert_eq!(hi - lo, 1u64 << 60);
        // Root covers everything.
        let (lo, hi) = ROOT_KEY.morton_range(21);
        assert_eq!(lo, 0);
        assert_eq!(hi, 1u64 << 63);
    }

    #[test]
    fn keys_are_unique_per_path() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        // Enumerate a two-level octree: 1 + 8 + 64 keys, all distinct.
        seen.insert(ROOT_KEY);
        for i in 0..8 {
            let c = ROOT_KEY.child(i, 3);
            assert!(seen.insert(c));
            for j in 0..8 {
                assert!(seen.insert(c.child(j, 3)));
            }
        }
        assert_eq!(seen.len(), 73);
    }

    #[test]
    fn display_is_binary() {
        assert_eq!(format!("{}", ROOT_KEY.child(5, 3)), "0b1101");
    }
}
