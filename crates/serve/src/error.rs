//! Structured service errors — admission control speaks through these.

use std::fmt;

/// Why the service declined a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the batch: the work queue was at
    /// capacity under the `Shed` policy. Carries the observed depth
    /// and the bound so clients can implement informed retry/backoff.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// No snapshot has been published yet; there is nothing to query.
    NotReady,
    /// The service is shutting down; no further work is accepted.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            ServeError::NotReady => write!(f, "no snapshot published yet"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}
