//! Structured errors for the fetch → serialize → fill → resume pipeline.
//!
//! The error-handling contract of this crate (see also DESIGN.md):
//!
//! * **Recoverable conditions return [`CacheError`]** — malformed or
//!   truncated fill payloads, fills whose splice point is not
//!   materialised yet (orphans), and fetches for keys the home rank
//!   cannot locate. Engines log these and degrade to a re-request; they
//!   must never abort a simulation.
//! * **Programming errors panic** — API misuse that no message can
//!   trigger, such as calling [`crate::CacheTree::init`] with duplicate
//!   subtree summaries or grafting a tree whose first node is not its
//!   root. These stay `assert!`/`debug_assert!`.
//!
//! Every variant carries enough context to be logged without access to
//! the failing payload.

use paratreet_geometry::NodeKey;

/// Why a cache operation was rejected. All variants are recoverable:
/// the cache's state is unchanged (failed operations are atomic — they
/// validate before they mutate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A fill payload failed to decode (truncated, bad magic, or an
    /// inconsistent node table).
    MalformedFragment {
        /// Payload size, for log correlation.
        len: usize,
    },
    /// A fill payload decoded to zero nodes.
    EmptyFragment,
    /// A fill arrived for a subtree whose parent is not materialised on
    /// this rank, so there is nowhere to splice it. Seen when faults
    /// reorder a fill ahead of the fill that creates its splice point.
    OrphanFill {
        /// Root key of the orphaned fragment.
        key: NodeKey,
    },
    /// A fetch asked this rank to serialise a key it cannot locate
    /// (not in the hash table and not reachable from the root).
    UnknownKey {
        /// The key the requester asked for.
        key: NodeKey,
    },
    /// The cache has no root yet ([`crate::CacheTree::init`] has not
    /// run), so nothing can be located or spliced.
    NotInitialized,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::MalformedFragment { len } => {
                write!(f, "malformed fill fragment ({len} bytes)")
            }
            CacheError::EmptyFragment => write!(f, "empty fill fragment"),
            CacheError::OrphanFill { key } => {
                write!(f, "fill for {key} has no materialised parent to splice into")
            }
            CacheError::UnknownKey { key } => {
                write!(f, "no node for key {key} on this rank")
            }
            CacheError::NotInitialized => write!(f, "cache has no root (init not called)"),
        }
    }
}

impl std::error::Error for CacheError {}
