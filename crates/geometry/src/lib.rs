//! Geometric primitives for ParaTreeT.
//!
//! This crate holds everything the tree layers need to reason about space:
//!
//! * [`Vec3`] — a plain 3-component `f64` vector with the small set of
//!   operations the physics kernels use,
//! * [`BoundingBox`] — axis-aligned boxes with grow/intersect/containment,
//! * [`Sphere`] — bounding spheres used by opening criteria,
//! * [`morton`] — space-filling-curve (Morton / Z-order) particle keys used
//!   by SFC decomposition,
//! * [`hilbert`] — 3-D Hilbert-curve keys (Skilling's algorithm), the
//!   locality-preserving alternative production codes prefer,
//! * [`key`] — prefix keys identifying nodes of a hierarchical tree, the
//!   same keying scheme classic hashed oct-tree codes use,
//! * [`periodic`] — periodic (wrapped) domains with minimum-image
//!   distances, for tiled cosmology boxes.
//!
//! Everything here is `Copy`, allocation-free, and deterministic so the
//! higher layers can use it inside tight traversal loops and reproducible
//! tests.

pub mod bbox;
pub mod hilbert;
pub mod key;
pub mod morton;
pub mod periodic;
pub mod sphere;
pub mod vec3;

pub use bbox::BoundingBox;
pub use hilbert::{hilbert_key, HILBERT_BITS_PER_DIM};
pub use key::{NodeKey, ROOT_KEY};
pub use morton::{morton_key, MortonKey, MORTON_BITS_PER_DIM};
pub use periodic::PeriodicBox;
pub use sphere::Sphere;
pub use vec3::Vec3;

/// The three spatial axes, used by k-d style splits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The x axis (component 0).
    X,
    /// The y axis (component 1).
    Y,
    /// The z axis (component 2).
    Z,
}

impl Axis {
    /// All axes in component order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// The component index of this axis (0, 1, or 2).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// The axis for a component index; panics if `i > 2`.
    #[inline]
    pub fn from_index(i: usize) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            _ => panic!("axis index out of range: {i}"),
        }
    }
}
