//! The arena a tree build produces.
//!
//! A [`BuiltTree`] is one *Subtree*'s piece of the global tree: an array
//! of nodes (index 0 is the subtree root) plus the particle array,
//! reordered so every leaf owns one contiguous *bucket*. Storing nodes in
//! an arena keeps the build allocation-free per node, makes bottom-up
//! `Data` accumulation a reverse scan, and lets the cache layer serialise
//! any subtree fragment as a contiguous slice walk.

use crate::Data;
use paratreet_geometry::{BoundingBox, NodeKey};
use paratreet_particles::Particle;
use std::collections::HashMap;

/// Index of a node within a [`BuiltTree`] arena.
pub type NodeIdx = u32;

/// Sentinel for "no child".
pub const NO_NODE: NodeIdx = u32::MAX;

/// The structural kind of a built node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeShape {
    /// Interior node with at least one child.
    Internal,
    /// Leaf owning the particle bucket `particles[start..end]`.
    Leaf {
        /// First particle index of the bucket.
        start: u32,
        /// One past the last particle index of the bucket.
        end: u32,
    },
    /// A region with no particles (only produced by octree splits).
    Empty,
}

/// One node of a built tree.
#[derive(Clone, Debug)]
pub struct BuildNode<D> {
    /// Path key of this node in the global tree.
    pub key: NodeKey,
    /// Spatial footprint. For octrees this is the node's octant region;
    /// for median-split trees the region bounded by split planes.
    pub bbox: BoundingBox,
    /// Structural kind.
    pub shape: NodeShape,
    /// Children arena indices ([`NO_NODE`] where absent). Only the first
    /// `branch_factor` entries are meaningful.
    pub children: [NodeIdx; 8],
    /// Accumulated application state.
    pub data: D,
    /// Total particles beneath this node.
    pub n_particles: u32,
    /// Depth below the subtree root.
    pub depth: u32,
}

impl<D> BuildNode<D> {
    /// Iterator over present child indices.
    pub fn child_indices(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.children.iter().copied().filter(|&c| c != NO_NODE)
    }

    /// True for leaves (not internal, not empty).
    pub fn is_leaf(&self) -> bool {
        matches!(self.shape, NodeShape::Leaf { .. })
    }

    /// The bucket range for a leaf; `None` otherwise.
    pub fn bucket_range(&self) -> Option<std::ops::Range<usize>> {
        match self.shape {
            NodeShape::Leaf { start, end } => Some(start as usize..end as usize),
            _ => None,
        }
    }
}

/// A built (sub)tree: node arena plus bucket-ordered particles.
#[derive(Clone, Debug)]
pub struct BuiltTree<D> {
    /// Node arena; index 0 is this subtree's root.
    pub nodes: Vec<BuildNode<D>>,
    /// Particles, reordered so each leaf's bucket is contiguous.
    pub particles: Vec<Particle>,
    /// Bits per key digit (3 = octree, 1 = binary trees).
    pub bits_per_level: u32,
}

impl<D: Data> BuiltTree<D> {
    /// The root node.
    pub fn root(&self) -> &BuildNode<D> {
        &self.nodes[0]
    }

    /// The node at arena index `i`.
    pub fn node(&self, i: NodeIdx) -> &BuildNode<D> {
        &self.nodes[i as usize]
    }

    /// The particles of leaf `i`; empty slice for non-leaves.
    pub fn bucket(&self, i: NodeIdx) -> &[Particle] {
        match self.node(i).bucket_range() {
            Some(r) => &self.particles[r],
            None => &[],
        }
    }

    /// Arena indices of all leaves, in DFS (which equals SFC) order.
    pub fn leaf_indices(&self) -> Vec<NodeIdx> {
        let mut out = Vec::new();
        let mut stack = vec![0 as NodeIdx];
        while let Some(i) = stack.pop() {
            let n = self.node(i);
            if n.is_leaf() {
                out.push(i);
            }
            // Push children in reverse so they pop in ascending order.
            for c in n.children.iter().rev() {
                if *c != NO_NODE {
                    stack.push(*c);
                }
            }
        }
        out
    }

    /// A key → arena-index map for this subtree.
    pub fn key_index(&self) -> HashMap<NodeKey, NodeIdx> {
        self.nodes.iter().enumerate().map(|(i, n)| (n.key, i as NodeIdx)).collect()
    }

    /// Maximum node depth below the subtree root.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Checks the structural invariants the rest of the system relies on;
    /// returns a description of the first violation, if any. Used by
    /// tests and debug assertions, not on hot paths.
    pub fn validate(&self, bucket_size: usize) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("tree has no nodes".into());
        }
        let mut seen_particles = 0usize;
        let mut next_start = 0u32;
        for (i, n) in self.nodes.iter().enumerate() {
            match n.shape {
                NodeShape::Leaf { start, end } => {
                    if end < start || end as usize > self.particles.len() {
                        return Err(format!("leaf {i} has bad bucket range {start}..{end}"));
                    }
                    if (end - start) as usize > bucket_size {
                        return Err(format!(
                            "leaf {i} bucket of {} exceeds bucket size {bucket_size}",
                            end - start
                        ));
                    }
                    if start != next_start {
                        return Err(format!(
                            "leaf {i} bucket starts at {start}, expected {next_start} (buckets must tile the particle array in DFS order)"
                        ));
                    }
                    next_start = end;
                    seen_particles += (end - start) as usize;
                    if n.n_particles != end - start {
                        return Err(format!("leaf {i} count mismatch"));
                    }
                    for p in &self.particles[start as usize..end as usize] {
                        if !n.bbox.contains(p.pos) {
                            return Err(format!("leaf {i} bbox does not contain its particle"));
                        }
                    }
                }
                NodeShape::Internal => {
                    let mut child_count = 0;
                    for &c in &n.children {
                        if c == NO_NODE {
                            continue;
                        }
                        let c = c as usize;
                        if c >= self.nodes.len() {
                            return Err(format!("node {i} child index {c} out of bounds"));
                        }
                        let child = &self.nodes[c];
                        if child.depth != n.depth + 1 {
                            return Err(format!("node {i} child {c} depth mismatch"));
                        }
                        if child.key.parent(self.bits_per_level) != n.key {
                            return Err(format!("node {i} child {c} key mismatch"));
                        }
                        child_count += child.n_particles;
                    }
                    if child_count != n.n_particles {
                        return Err(format!(
                            "node {i} particle count {} != children sum {child_count}",
                            n.n_particles
                        ));
                    }
                    if child_count == 0 {
                        return Err(format!("internal node {i} is empty"));
                    }
                }
                NodeShape::Empty => {
                    if n.n_particles != 0 {
                        return Err(format!("empty node {i} claims particles"));
                    }
                }
            }
        }
        if seen_particles != self.particles.len() {
            return Err(format!(
                "leaves cover {seen_particles} particles, array has {}",
                self.particles.len()
            ));
        }
        Ok(())
    }
}

/// DFS iteration helper used by validation in tests.
pub fn count_reachable<D: Data>(tree: &BuiltTree<D>) -> usize {
    let mut seen = 0;
    let mut stack = vec![0 as NodeIdx];
    while let Some(i) = stack.pop() {
        seen += 1;
        for c in tree.node(i).child_indices() {
            stack.push(c);
        }
    }
    seen
}
