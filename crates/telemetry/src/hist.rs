//! Concurrent latency histograms with a fixed logarithmic bucket layout.
//!
//! A [`Histogram`] is a lock-free array of atomic bucket counters that
//! many threads record into concurrently; the serving layer keeps one
//! per query class and records nanosecond latencies from every worker.
//! The bucket layout is *fixed and deterministic* (HDR-style: exact
//! buckets below 8, then 8 sub-buckets per power of two, covering the
//! full `u64` domain in 496 buckets, ≤ 12.5 % relative width), so two
//! histograms fed the same values always snapshot to byte-identical
//! JSON regardless of thread interleaving — recording is loss-free and
//! order-free.
//!
//! Percentiles ([`HistogramSnapshot::percentile`]) are read from the
//! bucket upper bound, a deterministic conservative estimate of the
//! true order statistic.

use crate::json::Json;
use crate::metrics::{MetricSource, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket bits per power of two (8 sub-buckets → ≤ 1/8 bucket width).
const SUB_BITS: u32 = 3;
/// Number of sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets covering `0..=u64::MAX` (highest index + 1).
pub const N_BUCKETS: usize =
    (((64 - SUB_BITS as usize) << SUB_BITS as usize) | (SUB as usize - 1)) + 1;

/// Bucket index for a recorded value (total order preserved).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        (((msb - SUB_BITS + 1) as usize) << SUB_BITS as usize) | ((v >> shift) & (SUB - 1)) as usize
    }
}

/// Inclusive value range `[lo, hi]` covered by bucket `idx`.
#[inline]
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB as usize {
        (idx as u64, idx as u64)
    } else {
        let octave = (idx >> SUB_BITS as usize) as u32;
        let sub = idx as u64 & (SUB - 1);
        let shift = octave - 1;
        let lo = (SUB + sub) << shift;
        (lo, lo + ((1u64 << shift) - 1))
    }
}

/// One captured exemplar: a concrete traced request that landed in a
/// bucket, so a percentile read off that bucket links back to a real
/// request's span chain in the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Exemplar {
    /// The recorded value (e.g. latency in nanoseconds).
    pub value: u64,
    /// The request id (`client << 32 | seq` in `serve`).
    pub request: u64,
    /// The request's root span id in the trace (0 when tracing is off).
    pub span: u64,
}

/// Last-written exemplar slot for one bucket. `tag` is `request + 1`
/// (0 = empty); the three fields are independently relaxed atomics, so
/// a concurrent pair of writers can tear value/request across two real
/// requests — acceptable for exemplars, every stored field is a value
/// some real request produced.
#[derive(Debug)]
struct ExemplarSlot {
    tag: AtomicU64,
    value: AtomicU64,
    span: AtomicU64,
}

/// A concurrent fixed-layout log-bucket histogram. Recording is a
/// single relaxed atomic increment per bucket plus count/sum/min/max
/// maintenance — safe to share across any number of recording threads
/// via `Arc` with no locking and no loss.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Per-bucket exemplar slots, allocated only by
    /// [`Histogram::with_exemplars`].
    exemplars: Option<Vec<ExemplarSlot>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplars: None,
        }
    }

    /// An empty histogram that additionally keeps one exemplar per
    /// bucket (last write wins), populated by
    /// [`Histogram::record_traced`]. Costs three relaxed stores per
    /// traced record.
    pub fn with_exemplars() -> Histogram {
        let mut h = Histogram::new();
        h.exemplars = Some(
            (0..N_BUCKETS)
                .map(|_| ExemplarSlot {
                    tag: AtomicU64::new(0),
                    value: AtomicU64::new(0),
                    span: AtomicU64::new(0),
                })
                .collect(),
        );
        h
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records one value and, when this histogram keeps exemplars,
    /// remembers `(request, span)` as the bucket's exemplar.
    #[inline]
    pub fn record_traced(&self, v: u64, request: u64, span: u64) {
        let idx = bucket_of(v);
        if let Some(slots) = &self.exemplars {
            let slot = &slots[idx];
            slot.value.store(v, Ordering::Relaxed);
            slot.span.store(span, Ordering::Relaxed);
            slot.tag.store(request.wrapping_add(1).max(1), Ordering::Relaxed);
        }
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as whole nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for percentile queries and export. Taken
    /// while recorders are quiescent it is exact; taken live it is a
    /// consistent-enough sample (each bucket is individually exact).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let exemplars = self.exemplars.as_ref().map(|slots| {
            slots
                .iter()
                .enumerate()
                .filter_map(|(idx, slot)| {
                    let tag = slot.tag.load(Ordering::Relaxed);
                    (tag != 0).then(|| {
                        (
                            idx,
                            Exemplar {
                                value: slot.value.load(Ordering::Relaxed),
                                request: tag.wrapping_sub(1),
                                span: slot.span.load(Ordering::Relaxed),
                            },
                        )
                    })
                })
                .collect()
        });
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            exemplars,
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Sparse `(bucket index, exemplar)` pairs, ascending by index.
    /// `None` when the source histogram does not keep exemplars.
    exemplars: Option<Vec<(usize, Exemplar)>>,
}

impl HistogramSnapshot {
    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding that order statistic, clamped to the observed max.
    /// Deterministic; 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        match self.percentile_bucket(q) {
            Some(idx) => bucket_bounds(idx).1.min(self.max),
            None => {
                if self.count == 0 {
                    0
                } else {
                    self.max
                }
            }
        }
    }

    /// The bucket index holding the `q`-quantile order statistic.
    fn percentile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(idx);
            }
        }
        None
    }

    /// Whether the source histogram keeps exemplars at all.
    pub fn has_exemplars(&self) -> bool {
        self.exemplars.is_some()
    }

    /// The exemplar backing the `q`-quantile: the one captured in the
    /// quantile's bucket, falling back to the nearest populated bucket
    /// below then above (a racing snapshot can see a bucket count before
    /// its exemplar write). `None` when empty or exemplars are off.
    pub fn percentile_exemplar(&self, q: f64) -> Option<Exemplar> {
        let exemplars = self.exemplars.as_ref()?;
        let target = self.percentile_bucket(q)?;
        exemplars
            .iter()
            .rev()
            .find(|(idx, _)| *idx <= target)
            .or_else(|| exemplars.iter().find(|(idx, _)| *idx > target))
            .map(|&(_, ex)| ex)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Deterministic JSON: summary fields plus the sparse bucket list
    /// (`[index, count]` pairs, ascending by index).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.push("count", Json::U64(self.count));
        obj.push("sum", Json::U64(self.sum));
        obj.push("min", Json::U64(self.min().unwrap_or(0)));
        obj.push("max", Json::U64(self.max().unwrap_or(0)));
        obj.push("p50", Json::U64(self.p50()));
        obj.push("p99", Json::U64(self.p99()));
        obj.push("p999", Json::U64(self.p999()));
        let mut arr = Vec::new();
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                arr.push(Json::Arr(vec![Json::U64(idx as u64), Json::U64(c)]));
            }
        }
        obj.push("buckets", Json::Arr(arr));
        if let Some(exemplars) = &self.exemplars {
            let mut arr = Vec::new();
            for &(idx, ex) in exemplars {
                arr.push(Json::Arr(vec![
                    Json::U64(idx as u64),
                    Json::U64(ex.value),
                    Json::U64(ex.request),
                    Json::U64(ex.span),
                ]));
            }
            obj.push("exemplars", Json::Arr(arr));
        }
        obj
    }
}

impl MetricSource for HistogramSnapshot {
    /// Registers `{prefix}.{count,mean,p50,p99,p999,max}` — the summary
    /// a metrics dump needs; full bucket detail goes through
    /// [`HistogramSnapshot::to_json`]. Exemplar-keeping histograms also
    /// register `{prefix}.p999_exemplar.{value,request,span}` (always
    /// present, 0 when nothing was traced — schema-stable for tooling).
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.count"), self.count);
        registry.set_f64(format!("{prefix}.mean"), self.mean());
        registry.set_u64(format!("{prefix}.p50"), self.p50());
        registry.set_u64(format!("{prefix}.p99"), self.p99());
        registry.set_u64(format!("{prefix}.p999"), self.p999());
        registry.set_u64(format!("{prefix}.max"), self.max().unwrap_or(0));
        if self.has_exemplars() {
            let ex = self.percentile_exemplar(0.999).unwrap_or_default();
            registry.set_u64(format!("{prefix}.p999_exemplar.value"), ex.value);
            registry.set_u64(format!("{prefix}.p999_exemplar.request"), ex.request);
            registry.set_u64(format!("{prefix}.p999_exemplar.span"), ex.span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_layout_is_monotone_and_tiles_u64() {
        let mut prev_hi: Option<u64> = None;
        for idx in 0..N_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= hi, "bucket {idx}");
            match prev_hi {
                None => assert_eq!(lo, 0),
                Some(p) => assert_eq!(lo, p.wrapping_add(1), "gap before bucket {idx}"),
            }
            prev_hi = Some(hi);
            // Both edges map back to this bucket.
            assert_eq!(bucket_of(lo), idx);
            assert_eq!(bucket_of(hi), idx);
        }
        assert_eq!(prev_hi, Some(u64::MAX));
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for idx in SUB as usize..N_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            // Width ≤ lo/8: ≤ 12.5 % relative error from bucketing.
            assert!(hi - lo < (lo / SUB).max(1), "bucket {idx}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn exact_percentiles_on_known_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(1000));
        // Upper-bound estimates: within one bucket (≤ 12.5 %) above the
        // true order statistic, never below it.
        for (q, truth) in [(0.5, 500u64), (0.99, 990), (0.999, 999)] {
            let est = s.percentile(q);
            assert!(est >= truth, "p{q}: {est} < {truth}");
            assert!(est <= truth + truth / 8 + 1, "p{q}: {est} too far above {truth}");
        }
        assert_eq!(s.percentile(1.0), 1000);
        assert_eq!(
            s.percentile(0.0),
            s.buckets.iter().position(|&c| c > 0).map(|i| bucket_bounds(i).1).unwrap()
        );
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
    }

    #[test]
    fn concurrent_recording_is_loss_free() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic value mix spanning many octaves.
                        h.record((i.wrapping_mul(2654435761) >> (t % 7)) % 1_000_000);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let concurrent = h.snapshot();
        assert_eq!(concurrent.count(), threads * per_thread);

        // A serial histogram fed the same multiset agrees exactly.
        let serial = Histogram::new();
        for t in 0..threads {
            for i in 0..per_thread {
                serial.record((i.wrapping_mul(2654435761) >> (t % 7)) % 1_000_000);
            }
        }
        assert_eq!(concurrent, serial.snapshot());
        assert_eq!(concurrent.to_json().to_string(), serial.snapshot().to_json().to_string());
    }

    #[test]
    fn metric_source_registers_summary() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let mut r = MetricsRegistry::new();
        r.absorb("serve.latency.knn", &h.snapshot());
        assert_eq!(r.get_u64("serve.latency.knn.count"), 4);
        assert_eq!(r.get_f64("serve.latency.knn.mean"), 25.0);
        assert!(r.get_u64("serve.latency.knn.p99") >= 40);
        assert_eq!(r.get_u64("serve.latency.knn.max"), 40);
    }

    #[test]
    fn exemplars_link_percentiles_to_requests() {
        let h = Histogram::with_exemplars();
        for seq in 0..100u64 {
            // Request ids `client 1, seq N`; value grows with seq, so the
            // tail bucket's exemplar is one of the slowest requests.
            h.record_traced((seq + 1) * 100, (1 << 32) | seq, 1000 + seq);
        }
        let s = h.snapshot();
        assert!(s.has_exemplars());
        let ex = s.percentile_exemplar(0.999).expect("tail exemplar");
        assert_eq!(ex.request >> 32, 1);
        assert!(ex.value >= s.p50(), "tail exemplar {ex:?} below median");
        assert_eq!(ex.span, 1000 + (ex.request & 0xffff_ffff));
        // Registry export carries the schema-stable exemplar keys.
        let mut r = MetricsRegistry::new();
        r.absorb("serve.latency.knn", &s);
        assert_eq!(r.get_u64("serve.latency.knn.p999_exemplar.request"), ex.request);
        assert_eq!(r.get_u64("serve.latency.knn.p999_exemplar.value"), ex.value);
        // JSON form lists sparse exemplars.
        assert!(s.to_json().to_string().contains("\"exemplars\":[["));
    }

    #[test]
    fn empty_exemplar_histogram_is_schema_stable() {
        let s = Histogram::with_exemplars().snapshot();
        assert!(s.has_exemplars());
        assert_eq!(s.percentile_exemplar(0.999), None);
        let mut r = MetricsRegistry::new();
        r.absorb("serve.latency.ray", &s);
        assert!(r.contains("serve.latency.ray.p999_exemplar.request"));
        assert_eq!(r.get_u64("serve.latency.ray.p999_exemplar.value"), 0);
        // Plain histograms do not grow exemplar keys.
        let mut r2 = MetricsRegistry::new();
        r2.absorb("x", &Histogram::new().snapshot());
        assert!(!r2.contains("x.p999_exemplar.request"));
    }

    #[test]
    fn json_is_deterministic_and_sparse() {
        let h = Histogram::new();
        h.record(0);
        h.record(7);
        h.record(1_000_000);
        let j = h.snapshot().to_json().to_string();
        assert_eq!(j, h.snapshot().to_json().to_string());
        assert!(j.contains("\"count\":3"));
        assert!(j.contains("\"buckets\":[[0,1],[7,1],"));
    }
}
