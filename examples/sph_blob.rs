//! SPH demo: an over-pressured gas blob expanding into a lattice —
//! the §III-B pipeline (kNN density, equation of state, pressure
//! forces) end to end.
//!
//! ```text
//! cargo run --release --example sph_blob -- [n] [steps]
//! ```

use paratreet::core_api::Configuration;
use paratreet_apps::sph::{sph_framework, SphSimulation};
use paratreet_geometry::Vec3;
use paratreet_particles::gen;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4_096);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);

    // A uniform gas with a hot, over-pressured core.
    let mut particles = gen::perturbed_lattice(n, 5, 0.5, 0.02);
    for p in &mut particles {
        if p.pos.norm() < 0.15 {
            p.internal_energy = 10.0; // the blob
        }
    }

    let config =
        Configuration { bucket_size: 16, n_subtrees: 8, n_partitions: 8, ..Default::default() };
    let mut fw = sph_framework(config, particles);
    let sph = SphSimulation { k: 32, ..Default::default() };
    let dt = 2e-3;

    println!("an over-pressured blob of hot gas in a {n}-particle lattice");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>14}",
        "step", "mean rho", "core rho", "core radius", "max |v|"
    );

    for step in 0..steps {
        // Density + pressure forces (one kNN traversal + neighbour-list
        // force pass), then integrate.
        for p in fw.particles_mut().iter_mut() {
            p.acc = Vec3::ZERO;
        }
        let stats = sph.step(&mut fw);
        for p in fw.particles_mut().iter_mut() {
            p.vel += p.acc * dt;
            p.pos += p.vel * dt;
        }

        // The hot core should expand: track the hot particles' extent.
        let hot: Vec<_> = fw.particles().iter().filter(|p| p.internal_energy > 5.0).collect();
        let core_radius = hot.iter().map(|p| p.pos.norm()).fold(0.0, f64::max);
        let core_rho = hot.iter().map(|p| p.density).sum::<f64>() / hot.len().max(1) as f64;
        let vmax = fw.particles().iter().map(|p| p.vel.norm()).fold(0.0, f64::max);
        if step % 4 == 0 || step + 1 == steps {
            println!(
                "{:>6} {:>12.4} {:>14.4} {:>14.4} {:>14.4}",
                step, stats.mean_density, core_rho, core_radius, vmax
            );
        }
    }
    println!("\nexpected: the core's density falls and its radius grows as pressure");
    println!("forces push the hot blob into the surrounding gas.");
}
